// Runs all six interoperability cases of the paper's section V and prints a
// result matrix: each legacy client (SLP, UPnP, Bonjour) discovering each
// heterogeneous legacy service through a freshly deployed Starlink bridge.
#include <iomanip>
#include <iostream>
#include <optional>

#include "net/sim_network.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"

namespace {

using namespace starlink;
using bridge::models::Case;

struct Outcome {
    bool success = false;
    std::string url;
    double clientMs = 0;
    double bridgeMs = 0;
};

double toMs(net::Duration d) {
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(d).count();
}

/// One isolated simulation per case: client 10.0.0.1, service 10.0.0.3,
/// bridge 10.0.0.9.
Outcome runCase(Case c) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    bridge::Starlink starlink(network);
    auto& deployed = starlink.deploy(bridge::models::forCase(c, "10.0.0.9"), "10.0.0.9");

    // Service side.
    std::optional<slp::ServiceAgent> slpService;
    std::optional<mdns::Responder> mdnsService;
    std::optional<ssdp::Device> upnpService;
    switch (c) {
        case Case::UpnpToSlp:
        case Case::BonjourToSlp: {
            slp::ServiceAgent::Config config;
            slpService.emplace(network, config);
            break;
        }
        case Case::SlpToBonjour:
        case Case::UpnpToBonjour:
            mdnsService.emplace(network, mdns::Responder::Config{});
            break;
        case Case::SlpToUpnp:
        case Case::BonjourToUpnp:
            upnpService.emplace(network, ssdp::Device::Config{});
            break;
    }

    // Client side.
    Outcome outcome;
    std::optional<slp::UserAgent> slpClient;
    std::optional<mdns::Resolver> mdnsClient;
    std::optional<ssdp::ControlPoint> upnpClient;
    switch (c) {
        case Case::SlpToUpnp:
        case Case::SlpToBonjour:
            slpClient.emplace(network, slp::UserAgent::Config{});
            slpClient->lookup("service:printer", [&outcome](const slp::UserAgent::Result& r) {
                outcome.success = !r.urls.empty();
                if (outcome.success) outcome.url = r.urls[0];
                outcome.clientMs = toMs(r.elapsed);
            });
            break;
        case Case::UpnpToSlp:
        case Case::UpnpToBonjour:
            upnpClient.emplace(network, ssdp::ControlPoint::Config{});
            upnpClient->search("urn:schemas-upnp-org:service:printer:1",
                               [&outcome](const ssdp::ControlPoint::Result& r) {
                                   outcome.success = !r.urls.empty();
                                   if (outcome.success) outcome.url = r.urls[0];
                                   outcome.clientMs = toMs(r.elapsed);
                               });
            break;
        case Case::BonjourToUpnp:
        case Case::BonjourToSlp:
            mdnsClient.emplace(network, mdns::Resolver::Config{});
            mdnsClient->browse("_printer._tcp.local",
                               [&outcome](const mdns::Resolver::Result& r) {
                                   outcome.success = !r.urls.empty();
                                   if (outcome.success) outcome.url = r.urls[0];
                                   outcome.clientMs = toMs(r.elapsed);
                               });
            break;
    }

    scheduler.runUntilIdle();
    if (!deployed.engine().sessions().empty()) {
        outcome.bridgeMs = toMs(deployed.engine().sessions().front().translationTime());
    }
    return outcome;
}

}  // namespace

int main() {
    std::cout << "Starlink all-pairs discovery matrix (paper section V)\n";
    std::cout << std::string(96, '-') << "\n";
    std::cout << std::left << std::setw(18) << "case" << std::setw(9) << "result"
              << std::setw(13) << "client ms" << std::setw(13) << "bridge ms"
              << "resolved URL\n";
    std::cout << std::string(96, '-') << "\n";

    bool allOk = true;
    for (const Case c : bridge::models::kAllCases) {
        const Outcome outcome = runCase(c);
        allOk = allOk && outcome.success;
        std::cout << std::left << std::setw(18) << bridge::models::caseName(c) << std::setw(9)
                  << (outcome.success ? "OK" : "FAIL") << std::setw(13) << std::fixed
                  << std::setprecision(1) << outcome.clientMs << std::setw(13)
                  << outcome.bridgeMs << outcome.url << "\n";
    }
    std::cout << std::string(96, '-') << "\n";
    std::cout << (allOk ? "all six cases interoperate\n" : "SOME CASES FAILED\n");
    return allOk ? 0 : 1;
}
