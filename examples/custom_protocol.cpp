// Extensibility demo ("minimize development effort", paper section II-E /
// V-C): a brand-new discovery protocol -- XDP, invented here -- is described
// purely in XML at runtime and bridged to a legacy SLP service. No framework
// code is recompiled:
//   1. an MDL document teaches the generic parser/composer the XDP wire
//      format;
//   2. a colored automaton document teaches the engine its behaviour and
//      network semantics;
//   3. a bridge document merges it with the stock SLP model;
//   4. one translation function is registered at runtime for the
//      XDP-name -> SLP-service-type conversion.
#include <iostream>

#include "net/sim_network.hpp"
#include "common/bytes.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "protocols/slp/slp_agents.hpp"

namespace {

using namespace starlink;

// The XDP wire format, as its (imaginary) legacy implementors would write
// it: magic 0xBEEF (16 bits), kind (8 bits: 1=query, 2=answer), tag
// (16 bits), then a length-prefixed name (query) or URL (answer).
const char* kXdpMdl = R"(<Mdl protocol="XDP" kind="binary">
  <Types>
    <Magic>Integer</Magic>
    <Kind>Integer</Kind>
    <Tag>Integer</Tag>
    <NameLen>Integer[f-length(Name)]</NameLen>
    <Name>String</Name>
    <UrlLen>Integer[f-length(Url)]</UrlLen>
    <Url>String</Url>
  </Types>
  <Header type="XDP">
    <Magic default="48879">16</Magic>
    <Kind>8</Kind>
    <Tag mandatory="true">16</Tag>
  </Header>
  <Message type="XQuery">
    <Rule>Kind=1</Rule>
    <NameLen>16</NameLen>
    <Name mandatory="true">NameLen</Name>
  </Message>
  <Message type="XAnswer">
    <Rule>Kind=2</Rule>
    <UrlLen>16</UrlLen>
    <Url mandatory="true">UrlLen</Url>
  </Message>
</Mdl>
)";

// XDP talks async multicast on its own group.
const char* kXdpAutomaton = R"(<Automaton name="XDP">
  <Color transport_protocol="udp" port="7777" mode="async" multicast="yes" group="239.1.2.3"/>
  <State id="x0" initial="true"/>
  <State id="x1"/>
  <State id="x2" accepting="true"/>
  <Transition from="x0" action="receive" message="XQuery" to="x1"/>
  <Transition from="x1" action="send" message="XAnswer" to="x2"/>
</Automaton>
)";

const char* kXdpToSlpBridge = R"(<Bridge name="xdp-to-slp">
  <Start state="x0"/>
  <Accept state="x2"/>
  <Equivalence message="SLPSrvRequest" of="XQuery"/>
  <Equivalence message="XAnswer" of="SLPSrvReply,XQuery"/>
  <TranslationLogic>
    <Assignment transform="xdp_name_to_slp">
      <Field state="s10" message="SLPSrvRequest" path="SRVType"/>
      <Field state="x1" message="XQuery" path="Name"/>
    </Assignment>
    <Assignment>
      <Field state="s10" message="SLPSrvRequest" path="XID"/>
      <Constant>9</Constant>
    </Assignment>
    <Assignment>
      <Field state="x1" message="XAnswer" path="Tag"/>
      <Field state="x1" message="XQuery" path="Tag"/>
    </Assignment>
    <Assignment>
      <Field state="x1" message="XAnswer" path="Url"/>
      <Field state="s12" message="SLPSrvReply" path="URLEntry"/>
    </Assignment>
  </TranslationLogic>
  <DeltaTransition from="x1" to="s10"/>
  <DeltaTransition from="s12" to="x1"/>
</Bridge>
)";

// A hand-rolled XDP legacy client (knows nothing of Starlink).
Bytes encodeXdpQuery(std::uint16_t tag, const std::string& name) {
    Bytes out;
    appendUint(out, 0xBEEF, 2);
    appendUint(out, 1, 1);
    appendUint(out, tag, 2);
    appendUint(out, name.size(), 2);
    const Bytes nameBytes = toBytes(name);
    out.insert(out.end(), nameBytes.begin(), nameBytes.end());
    return out;
}

struct XdpAnswer {
    std::uint16_t tag = 0;
    std::string url;
};

std::optional<XdpAnswer> decodeXdpAnswer(const Bytes& data) {
    std::uint64_t magic = 0;
    std::uint64_t kind = 0;
    std::uint64_t tag = 0;
    std::uint64_t urlLength = 0;
    if (!readUint(data, 0, 2, magic) || magic != 0xBEEF) return std::nullopt;
    if (!readUint(data, 2, 1, kind) || kind != 2) return std::nullopt;
    if (!readUint(data, 3, 2, tag) || !readUint(data, 5, 2, urlLength)) return std::nullopt;
    if (7 + urlLength != data.size()) return std::nullopt;
    XdpAnswer answer;
    answer.tag = static_cast<std::uint16_t>(tag);
    answer.url.assign(data.begin() + 7, data.end());
    return answer;
}

}  // namespace

int main() {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);

    // Legacy SLP service, unchanged.
    slp::ServiceAgent slpService(network, {});

    bridge::Starlink starlink(network);

    // Runtime extension: one translation function for the new protocol.
    starlink.translations().add("xdp_name_to_slp",
                                [](const Value& v) -> std::optional<Value> {
        const auto text = v.coerceTo(ValueType::String);
        if (!text) return std::nullopt;
        return Value::ofString("service:" + *text->asString());
    });

    // Assemble the deployment from the runtime-authored XDP models plus the
    // stock SLP models.
    bridge::models::DeploymentSpec spec;
    spec.protocols.push_back({kXdpMdl, kXdpAutomaton});
    spec.protocols.push_back({bridge::models::slpMdl(),
                              bridge::models::slpAutomaton(bridge::models::Role::Client)});
    spec.bridgeXml = kXdpToSlpBridge;
    auto& deployed = starlink.deploy(spec, "10.0.0.9");
    std::cout << "Deployed bridge '" << deployed.engine().merged().name()
              << "' for a protocol that did not exist at compile time.\n";

    // The legacy XDP client multicasts a query and awaits the answer.
    auto clientSocket = network.openUdp("10.0.0.1", 7777);
    clientSocket->joinGroup(net::Address{"239.1.2.3", 7777});
    bool answered = false;
    clientSocket->onDatagram([&answered](const Bytes& payload, const net::Address&) {
        const auto answer = decodeXdpAnswer(payload);
        if (!answer) return;
        answered = true;
        std::cout << "XDP client: answer tag=" << answer->tag << " url=" << answer->url << "\n";
    });
    clientSocket->sendTo(net::Address{"239.1.2.3", 7777}, encodeXdpQuery(42, "printer"));

    scheduler.runUntilIdle();

    std::cout << (answered ? "XDP <-> SLP interoperability achieved without recompiling.\n"
                           : "FAILED\n");
    return answered ? 0 : 1;
}
