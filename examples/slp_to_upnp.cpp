// The paper's flagship example (Figs 4-5): an SLP client discovers a UPnP
// device through a WEAKLY merged three-protocol automaton -- SLP, SSDP and
// HTTP chained by delta-transitions, including the set_host lambda action
// that points the HTTP leg at the LOCATION announced over SSDP.
#include <iostream>

#include "net/sim_network.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/merge/merged_automaton.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"

int main() {
    using namespace starlink;

    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);

    // The legacy UPnP device: SSDP announcer + HTTP description server.
    ssdp::Device device(network, {});
    std::cout << "UPnP device at " << device.config().host << ", description at "
              << device.location() << "\n";

    // The legacy SLP client.
    slp::UserAgent slpClient(network, {});

    // Deploy the three-protocol bridge.
    bridge::Starlink starlink(network);
    const auto models = bridge::models::forCase(bridge::models::Case::SlpToUpnp, "10.0.0.9");
    auto& deployed = starlink.deploy(models, "10.0.0.9");

    const auto& merged = deployed.engine().merged();
    std::cout << "Merged automaton '" << merged.name() << "' combines";
    for (const auto& component : merged.components()) {
        std::cout << " " << component->name();
    }
    std::cout << " and is "
              << (merged.classify() == merge::MergeKind::Weak ? "WEAKLY" : "STRONGLY")
              << " merged (" << merged.deltas().size() << " delta-transitions, "
              << merged.assignments().size() << " assignments)\n\n";

    bool found = false;
    slpClient.lookup("service:printer", [&](const slp::UserAgent::Result& result) {
        found = !result.urls.empty();
        std::cout << "SLP client "
                  << (found ? "received URL: " + result.urls[0] : std::string("timed out"))
                  << " after "
                  << std::chrono::duration_cast<std::chrono::milliseconds>(result.elapsed).count()
                  << " ms (virtual)\n";
    });

    scheduler.runUntilIdle();

    std::cout << "\nWalkthrough (each delta-transition is a bridge state of Fig 4):\n";
    for (const auto& event : deployed.engine().trace().events()) {
        if (event.action) {
            std::cout << "  [" << event.automaton << "] " << event.from << " "
                      << automata::actionSymbol(*event.action) << event.message.type() << " -> "
                      << event.to << "\n";
        } else {
            std::cout << "  [bridge] delta " << event.from << " -> " << event.to
                      << "  (cross-protocol hand-over)\n";
        }
    }
    return found ? 0 : 1;
}
