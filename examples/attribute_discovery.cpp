// Rich translations in action (paper section III-A): an SLP client's
// attribute predicate survives translation into an LDAP filter, so the
// directory picks the RIGHT service -- and the same lookup through a
// greatest-common-divisor style bridge (predicate dropped, as a subset
// intermediary would) picks the wrong one.
#include <iostream>
#include <optional>

#include "net/sim_network.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "protocols/ldap/ldap_agents.hpp"
#include "protocols/slp/slp_codec.hpp"

namespace {

using namespace starlink;

std::optional<std::string> lookupThrough(const bridge::models::DeploymentSpec& spec,
                                         const std::string& predicate) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    bridge::Starlink starlink(network);
    starlink.deploy(spec, "10.0.0.9");

    ldap::DirectoryServer directory(network, {});
    directory.addEntry({"cn=mono,dc=services,dc=local", "service:printer",
                        "service:printer://10.0.0.3:515/mono", {{"color", "false"}}});
    directory.addEntry({"cn=color,dc=services,dc=local", "service:printer",
                        "service:printer://10.0.0.3:515/color", {{"color", "true"}}});

    auto socket = network.openUdp("10.0.0.1");
    std::optional<std::string> url;
    socket->onDatagram([&url](const Bytes& payload, const net::Address&) {
        if (const auto reply = slp::decodeReply(payload)) url = reply->url;
    });
    slp::SrvRequest request;
    request.xid = 77;
    request.serviceType = "service:printer";
    request.predicate = predicate;
    socket->sendTo(net::Address{slp::kGroup, slp::kPort}, slp::encode(request));
    scheduler.runUntilIdle();
    return url;
}

}  // namespace

int main() {
    const std::string predicate = "(color=true)";
    std::cout << "An LDAP directory holds two printers; the SLP client asks for\n"
              << "service:printer with predicate " << predicate << ".\n\n";

    const auto rich = lookupThrough(bridge::models::slpToLdap("10.0.0.3"), predicate);
    std::cout << "Starlink bridge (predicate translated to an LDAP filter):\n  -> "
              << rich.value_or("NO REPLY") << "\n\n";

    const auto gcd =
        lookupThrough(bridge::models::slpToLdapWithoutPredicate("10.0.0.3"), predicate);
    std::cout << "GCD-style bridge (predicate dropped, as a common-subset\n"
              << "intermediary would):\n  -> " << gcd.value_or("NO REPLY") << "\n\n";

    const bool ok = rich == "service:printer://10.0.0.3:515/color" &&
                    gcd == "service:printer://10.0.0.3:515/mono";
    std::cout << (ok ? "Attribute-based interoperability preserved only by the rich "
                       "translation.\n"
                     : "UNEXPECTED RESULT\n");
    return ok ? 0 : 1;
}
