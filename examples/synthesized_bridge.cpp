// The paper's future work, running (section VII): the framework itself
// generates the merged automaton and translation logic by reasoning over the
// two protocols' MDLs, coloured automata and a field ontology -- no bridge
// specification is written by hand.
//
// Compare examples/quickstart.cpp, which deploys the HAND-WRITTEN Fig 10
// bridge for the same protocol pair.
#include <iostream>

#include "net/sim_network.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/merge/dot_export.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"

int main() {
    using namespace starlink;
    using bridge::models::ProtocolModel;
    using bridge::models::Role;

    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);

    mdns::Responder printer(network, {});
    slp::UserAgent slpClient(network, {});

    bridge::Starlink starlink(network);
    std::vector<std::string> report;
    auto& deployed = starlink.deploySynthesized(
        ProtocolModel{bridge::models::slpMdl(), bridge::models::slpAutomaton(Role::Server)},
        ProtocolModel{bridge::models::dnsMdl(), bridge::models::mdnsAutomaton(Role::Client)},
        merge::Ontology::discovery(), "10.0.0.9", {}, &report);

    std::cout << "Synthesized bridge '" << deployed.engine().merged().name() << "'.\n";
    std::cout << "\nInference report (every match the synthesizer made):\n";
    for (const std::string& line : report) {
        std::cout << "  " << line << "\n";
    }

    bool found = false;
    slpClient.lookup("service:printer", [&found](const slp::UserAgent::Result& result) {
        found = !result.urls.empty();
        std::cout << "\nSLP client "
                  << (found ? "discovered: " + result.urls[0] : std::string("FAILED")) << "\n";
    });
    scheduler.runUntilIdle();

    std::cout << "\nGenerated merged automaton, in GraphViz form (compare paper Fig 10):\n";
    std::cout << merge::toDot(deployed.engine().merged());
    return found ? 0 : 1;
}
