// Quickstart: an SLP client discovers a Bonjour printer through a Starlink
// bridge deployed at runtime from XML models (paper case 2, Fig 10).
//
// Three parties, none aware of the others' protocols:
//   10.0.0.1  a legacy SLP user agent looking for "service:printer"
//   10.0.0.3  a legacy Bonjour (mDNS) responder advertising the printer
//   10.0.0.9  the Starlink bridge, deployed from 5 XML documents:
//             SLP MDL, SLP automaton, DNS MDL, mDNS automaton, bridge spec
#include <iostream>

#include "net/sim_network.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"

int main() {
    using namespace starlink;

    // 1. A simulated network on virtual time (see DESIGN.md: substitution
    //    for the paper's real LAN).
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);

    // 2. The legacy applications. They speak only their own protocol.
    mdns::Responder::Config printerConfig;
    printerConfig.serviceName = "_printer._tcp.local";
    printerConfig.url = "http://10.0.0.3:631/ipp";
    mdns::Responder printer(network, printerConfig);

    slp::UserAgent slpClient(network, {});

    // 3. Deploy the Starlink bridge -- models only, no protocol code.
    bridge::Starlink starlink(network);
    const auto models = bridge::models::forCase(bridge::models::Case::SlpToBonjour, "10.0.0.9");
    std::cout << "Deploying bridge from " << models.protocols.size()
              << " protocol model pairs + 1 bridge spec ("
              << bridge::models::bridgeSpecLines(models) << " lines of XML)\n";
    auto& deployed = starlink.deploy(models, "10.0.0.9");

    // 4. The SLP client looks up a printer; the Bonjour responder answers.
    bool found = false;
    slpClient.lookup("service:printer", [&](const slp::UserAgent::Result& result) {
        if (result.urls.empty()) {
            std::cout << "lookup FAILED (timed out)\n";
            return;
        }
        found = true;
        std::cout << "SLP client got a reply in "
                  << std::chrono::duration_cast<std::chrono::milliseconds>(result.elapsed).count()
                  << " ms (virtual): " << result.urls[0] << "\n";
    });

    scheduler.runUntilIdle();

    // 5. What the bridge saw.
    for (const auto& session : deployed.engine().sessions()) {
        std::cout << "bridge session: " << session.messagesIn << " in / " << session.messagesOut
                  << " out, translation time "
                  << std::chrono::duration_cast<std::chrono::milliseconds>(
                         session.translationTime())
                         .count()
                  << " ms\n";
    }
    std::cout << "\nTrace through the merged automaton:\n";
    for (const auto& event : deployed.engine().trace().events()) {
        std::cout << "  " << event.automaton << ": " << event.from;
        if (event.action) {
            std::cout << " " << automata::actionSymbol(*event.action) << event.message.type();
        } else {
            std::cout << " --delta--";
        }
        std::cout << " -> " << event.to << "\n";
    }
    return found ? 0 : 1;
}
