#!/usr/bin/env python3
"""Regression gate for the --json microbench dumps.

    bench_compare.py <baseline.json> <current.json> [--threshold 0.20] [--absolute]

Compares medians row by row. Absolute timings vary wildly between machines
(the committed baseline was captured on one particular box), so rows are
first normalised by a reference median taken from the SAME file: the summed
`*/interp` medians, i.e. the cost of the unoptimised interpreter on that
machine. A row regresses when its normalised median grew by more than the
threshold over the baseline's normalised median -- in other words, when the
plan path lost ground RELATIVE to the interpreter, which no amount of
machine noise explains.

With --absolute the normalisation is skipped and raw medians are compared
directly. That is the right mode for VIRTUAL-TIME benches (fig12b, the
resilience sweep): their timings are deterministic simulation outputs, so
any drift at all is a real behavioural change, and growth in EITHER
direction beyond the threshold fails the gate.

Rows present only in the current file are reported but never fail the gate,
so benches may grow new rows ahead of a baseline refresh.

Exit status: 0 clean, 1 regression (or malformed/mismatched inputs).
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as handle:
        data = json.load(handle)
    rows = {row["name"]: row for row in data.get("rows", [])}
    if not rows:
        sys.exit(f"{path}: no rows")
    return rows


def reference_median(rows):
    """Sum of the interpreter-path medians: the machine-speed yardstick."""
    total = sum(r["median"] for name, r in rows.items() if name.endswith("/interp"))
    if total <= 0:
        sys.exit("no '*/interp' reference rows to normalise against")
    return total


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed relative median growth (default 0.20)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw medians (virtual-time benches); "
                             "drift in either direction beyond the threshold fails")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"FAIL: rows missing from {args.current}: {', '.join(missing)}")
        return 1
    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"note: rows not in baseline (not gated): {', '.join(extra)}")

    if args.absolute:
        base_ref = cur_ref = 1.0
    else:
        base_ref = reference_median(baseline)
        cur_ref = reference_median(current)

    failures = []
    for name in sorted(baseline):
        base_norm = baseline[name]["median"] / base_ref
        cur_norm = current[name]["median"] / cur_ref
        growth = cur_norm / base_norm - 1.0 if base_norm > 0 else 0.0
        marker = ""
        regressed = abs(growth) > args.threshold if args.absolute else growth > args.threshold
        if regressed:
            failures.append(name)
            marker = "  <-- REGRESSION"
        print(f"{name:40s} baseline {base_norm:8.4f}  current {cur_norm:8.4f}  "
              f"{growth:+7.1%}{marker}")

    yardstick = ("raw medians" if args.absolute
                 else "normalised by the interpreter reference")
    if failures:
        print(f"\nFAIL: {len(failures)} row(s) drifted more than "
              f"{args.threshold:.0%} ({yardstick})")
        return 1
    print(f"\nPASS: no row drifted more than {args.threshold:.0%} ({yardstick})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
