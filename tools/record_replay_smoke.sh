#!/usr/bin/env bash
# Record -> postmortem -> replay round trip over the real CLI.
#
# Runs a seeded chaos serve with the flight recorder on and a postmortem
# spool, then requires that (a) at least one abort bundle was spooled,
# (b) `starlinkd postmortem` decodes each bundle, and (c) `starlinkd replay`
# reproduces each one bit-identically (exit 0 == REPRODUCED). Seed 7 is
# pinned because it deterministically aborts at this loss level.
#
# Usage: record_replay_smoke.sh <path-to-starlinkd> <work-dir>
set -euo pipefail

starlinkd="$1"
workdir="$2"

spool="$workdir/postmortem"
rm -rf "$spool"
mkdir -p "$spool"

"$starlinkd" serve --shards 2 --sessions 24 --chaos --seed 7 \
    --record --postmortem-dir "$spool"

shopt -s nullglob
bundles=("$spool"/*.slfr)
if [ "${#bundles[@]}" -eq 0 ]; then
    echo "FAIL: chaos serve spooled no postmortem bundles" >&2
    exit 1
fi
echo "spooled ${#bundles[@]} bundle(s)"

"$starlinkd" postmortem "${bundles[0]}"

for bundle in "${bundles[@]}"; do
    echo "replaying $bundle"
    "$starlinkd" replay "$bundle"
done

echo "record/replay smoke: every bundle reproduced"
