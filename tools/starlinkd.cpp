// starlinkd -- command-line front end to the Starlink framework.
//
//   starlinkd errors                    print the error-code taxonomy (see
//                                       docs/ERRORS.md); every failure exits
//                                       with a structured JSON envelope on
//                                       stderr and a per-layer exit code
//   starlinkd list                      enumerate built-in models and cases
//   starlinkd export <dir>              write every built-in model to XML files
//   starlinkd demo <case>               run one of the six paper cases end to end
//   starlinkd demo-files <served.mdl> <served.automaton>
//                        <queried.mdl> <queried.automaton> <bridge.xml>
//                                       deploy a bridge FROM MODEL FILES and run
//                                       the SLP-client / Bonjour-service demo
//   starlinkd dot <case>                print the case's merged automaton as GraphViz
//   starlinkd lint <paths...> [--json]  statically validate model files (MDL,
//                                       automata, bridge specs) against each
//                                       other; directories are scanned for
//                                       *.xml; exits nonzero on any error-
//                                       severity finding (see docs/LINT.md)
//   starlinkd plan <mdl>                dump the codec plan compiled from an MDL
//                                       (built-in name slp|dns|ssdp|http|ldap|wsd,
//                                       or a .mdl.xml file path)
//   starlinkd chaos <case> [loss] [seed]
//                                       run the case under per-hop loss plus a
//                                       seeded FaultSchedule and report every
//                                       bridge session's outcome and cause
//   starlinkd trace <case> [--out f.json]
//                                       run a few lookups with span collection
//                                       on and export the session span trees
//                                       as Chrome trace JSON (Perfetto-loadable)
//   starlinkd metrics <case>            run a few lookups with telemetry on and
//                                       print the Prometheus text exposition
//   starlinkd serve [--shards N] [--sessions M] [--chaos] [--loss P]
//                   [--seed S] [--metrics] [--max-sessions Q] [--idle-timeout MS]
//                   [--record] [--postmortem-dir DIR]
//                                       drive a mixed-direction session workload
//                                       through the sharded engine (N threads,
//                                       hash-by-key dispatch) and report per-
//                                       shard accounting plus the aggregate
//                                       virtual-time throughput. --max-sessions
//                                       bounds each shard's admission queue
//                                       (excess jobs are shed with
//                                       engine.overload); --idle-timeout evicts
//                                       sessions with no message movement for
//                                       MS milliseconds (engine.idle-timeout);
//                                       --record turns the wire-level flight
//                                       recorder on, and --postmortem-dir
//                                       (implies --record) spools every abort
//                                       as a replayable bundle into DIR;
//                                       --models-dir deploys a lint-gated,
//                                       versioned model set from disk (the
//                                       starlinkd-export layout) through the
//                                       ModelRegistry, and --canary-percent
//                                       pins that share of new sessions to a
//                                       freshly loaded candidate (per-code
//                                       abort-rate regression rolls it back)
//   starlinkd serve --transport=os --case <case>
//                   [--bind A] [--port-base B] [--metrics-port P]
//                   [--with-peers] [--processing-ms MS] [--max-seconds S]
//                   [--record] [--postmortem-dir DIR]
//                                       persistent daemon: deploy the case's
//                                       bridge on REAL loopback sockets
//                                       (core/net/os_network.hpp) and serve
//                                       live sessions until SIGTERM/SIGINT;
//                                       --port-base maps logical port L to
//                                       real port B+L so scripted clients in
//                                       other processes can aim at it;
//                                       --metrics-port exposes the Prometheus
//                                       registry over plain HTTP (plus a
//                                       POST /reload hot-swap endpoint); a
//                                       SIGHUP (or /reload) re-reads
//                                       --models-dir, lint-gates the
//                                       candidate and swaps it in between
//                                       sessions -- a rejected candidate
//                                       leaves the old version serving;
//                                       exit 0 iff every abort carried a
//                                       taxonomy code
//   starlinkd postmortem <bundle>       pretty-print a spooled postmortem
//                                       bundle: provenance, the wire-event log
//                                       with per-leg message decode, and the
//                                       session's span tree
//   starlinkd replay <bundle> [--models-dir DIR]
//                                       re-inject the bundle's captured
//                                       datagrams into a fresh single-island
//                                       deployment and diff the outcome
//                                       against the capture (exit 0 iff the
//                                       session record and outbound wire
//                                       traffic reproduce exactly); with
//                                       --models-dir the deployed models are
//                                       resolved from disk by the bundle's
//                                       identity fingerprint, refusing to
//                                       replay against models that did not
//                                       produce the capture
//
// The demo topology is always: legacy client at 10.0.0.1, legacy service at
// 10.0.0.3, bridge at 10.0.0.9, on the simulated network over virtual time.
#include <algorithm>
#include <csignal>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>

#include "core/net/os_network.hpp"
#include "net/sim_network.hpp"
#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/registry.hpp"
#include "core/bridge/replay.hpp"
#include "core/bridge/starlink.hpp"
#include "core/engine/shard_engine.hpp"
#include "core/lint/linter.hpp"
#include "core/mdl/codec.hpp"
#include "core/merge/dot_export.hpp"
#include "core/merge/spec_loader.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/recorder.hpp"
#include "core/telemetry/trace_export.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"

namespace {

using namespace starlink;
using bridge::models::Case;
using bridge::models::Role;

int usage() {
    std::cerr << "usage: starlinkd errors\n"
                 "       starlinkd list\n"
                 "       starlinkd export <dir>\n"
                 "       starlinkd demo <case>\n"
                 "       starlinkd demo-files <served.mdl> <served.automaton> "
                 "<queried.mdl> <queried.automaton> <bridge.xml>\n"
                 "       starlinkd dot <case>\n"
                 "       starlinkd lint <paths...> [--json]\n"
                 "       starlinkd plan <mdl>\n"
                 "       starlinkd chaos <case> [loss] [seed]\n"
                 "       starlinkd trace <case> [--out file.json]\n"
                 "       starlinkd metrics <case>\n"
                 "       starlinkd serve [--shards N] [--sessions M] [--chaos] "
                 "[--loss P] [--seed S] [--metrics] [--max-sessions Q] "
                 "[--idle-timeout MS] [--record] [--postmortem-dir DIR] "
                 "[--models-dir DIR] [--canary-percent P]\n"
                 "       starlinkd serve --transport=os --case <case> [--bind A] "
                 "[--port-base B] [--metrics-port P] [--with-peers] "
                 "[--processing-ms MS] [--max-seconds S] [--record] "
                 "[--postmortem-dir DIR] [--models-dir DIR] [--canary-percent P]\n"
                 "       starlinkd postmortem <bundle.slfr>\n"
                 "       starlinkd replay <bundle.slfr> [--models-dir DIR]\n"
                 "cases: slp-to-upnp slp-to-bonjour upnp-to-slp upnp-to-bonjour "
                 "bonjour-to-upnp bonjour-to-slp\n";
    return 2;
}

std::optional<Case> parseCase(const std::string& name) {
    if (name == "slp-to-upnp") return Case::SlpToUpnp;
    if (name == "slp-to-bonjour") return Case::SlpToBonjour;
    if (name == "upnp-to-slp") return Case::UpnpToSlp;
    if (name == "upnp-to-bonjour") return Case::UpnpToBonjour;
    if (name == "bonjour-to-upnp") return Case::BonjourToUpnp;
    if (name == "bonjour-to-slp") return Case::BonjourToSlp;
    return std::nullopt;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw SpecError("cannot read model file '" + path + "'");
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

Bytes slurpBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw SpecError("cannot read bundle file '" + path + "'");
    std::ostringstream out;
    out << in.rdbuf();
    const std::string content = out.str();
    return Bytes(content.begin(), content.end());
}

void spit(const std::filesystem::path& path, const std::string& content) {
    std::ofstream out(path);
    if (!out) throw SpecError("cannot write '" + path.string() + "'");
    out << content;
    std::cout << "wrote " << path.string() << "\n";
}

/// Startup probe for --postmortem-dir: create the directory and prove a
/// bundle can actually land there BEFORE any traffic is served. A bad path
/// must fail the daemon at startup with engine.spool-unwritable naming the
/// path -- not surface at the first abort, when the bundle it was supposed
/// to capture is already lost.
void probeSpoolDir(const std::string& dir) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        throw StarlinkError(errc::ErrorCode::EngineSpoolUnwritable,
                            "postmortem spool directory '" + dir +
                                "' cannot be created: " + ec.message());
    }
    const fs::path probe = fs::path(dir) / ".starlinkd-spool-probe";
    {
        std::ofstream out(probe, std::ios::trunc);
        out << "probe\n";
        out.flush();
        if (!out) {
            throw StarlinkError(errc::ErrorCode::EngineSpoolUnwritable,
                                "postmortem spool directory '" + dir + "' is not writable");
        }
    }
    fs::remove(probe, ec);
}

int cmdList() {
    std::cout << "MDL documents: slp dns (binary) | ssdp http (text) | wsd (xml) | ldap (binary)\n";
    std::cout << "colored automata: each protocol in client and server role\n";
    std::cout << "bridge cases:\n";
    for (const Case c : bridge::models::kAllCases) {
        const auto spec = bridge::models::forCase(c, "<bridge-host>");
        std::cout << "  " << bridge::models::caseName(c) << " ("
                  << spec.protocols.size() << " protocols, "
                  << bridge::models::bridgeSpecLines(spec) << " bridge-spec lines)\n";
    }
    std::cout << "extensions: slp-to-ldap, ldap-to-slp (rich translations); "
                 "slp-to-wsd, wsd-to-slp (xml dialect)\n";
    return 0;
}

int cmdExport(const std::string& directory) {
    const std::filesystem::path dir(directory);
    std::filesystem::create_directories(dir);
    spit(dir / "slp.mdl.xml", bridge::models::slpMdl());
    spit(dir / "dns.mdl.xml", bridge::models::dnsMdl());
    spit(dir / "ssdp.mdl.xml", bridge::models::ssdpMdl());
    spit(dir / "http.mdl.xml", bridge::models::httpMdl());
    spit(dir / "ldap.mdl.xml", bridge::models::ldapMdl());
    spit(dir / "wsd.mdl.xml", bridge::models::wsdMdl());
    for (const Role role : {Role::Server, Role::Client}) {
        const std::string suffix = role == Role::Server ? "server" : "client";
        spit(dir / ("slp." + suffix + ".automaton.xml"), bridge::models::slpAutomaton(role));
        spit(dir / ("mdns." + suffix + ".automaton.xml"), bridge::models::mdnsAutomaton(role));
        spit(dir / ("ssdp." + suffix + ".automaton.xml"), bridge::models::ssdpAutomaton(role));
        spit(dir / ("http." + suffix + ".automaton.xml"), bridge::models::httpAutomaton(role));
        spit(dir / ("wsd." + suffix + ".automaton.xml"), bridge::models::wsdAutomaton(role));
        // The LDAP client color carries the directory host the demos use.
        spit(dir / ("ldap." + suffix + ".automaton.xml"),
             bridge::models::ldapAutomaton(role, role == Role::Client ? "10.0.0.3" : ""));
    }
    spit(dir / "SLP-to-WSD.bridge.xml", bridge::models::slpToWsd().bridgeXml);
    spit(dir / "WSD-to-SLP.bridge.xml", bridge::models::wsdToSlp().bridgeXml);
    spit(dir / "SLP-to-LDAP.bridge.xml", bridge::models::slpToLdap("10.0.0.3").bridgeXml);
    spit(dir / "LDAP-to-SLP.bridge.xml", bridge::models::ldapToSlp().bridgeXml);
    for (const Case c : bridge::models::kAllCases) {
        const auto spec = bridge::models::forCase(c, "10.0.0.9");
        std::string name = bridge::models::caseName(c);
        for (char& ch : name) {
            if (ch == ' ') ch = '-';
        }
        spit(dir / (name + ".bridge.xml"), spec.bridgeXml);
    }
    return 0;
}

/// Statically validates a set of model files against each other (the lint
/// pass CI runs over models/). Directories are scanned non-recursively for
/// *.xml, files are taken verbatim; the closure is linted as one unit so
/// bridge specs resolve against the automata and MDLs next to them.
int cmdLint(const std::vector<std::string>& paths, bool json) {
    std::vector<std::string> files;
    for (const std::string& path : paths) {
        if (std::filesystem::is_directory(path)) {
            std::vector<std::string> found;
            for (const auto& entry : std::filesystem::directory_iterator(path)) {
                if (entry.is_regular_file() && entry.path().extension() == ".xml") {
                    found.push_back(entry.path().string());
                }
            }
            std::sort(found.begin(), found.end());
            files.insert(files.end(), found.begin(), found.end());
        } else {
            files.push_back(path);
        }
    }
    if (files.empty()) {
        std::cerr << "starlinkd: lint: no model files found\n";
        return 2;
    }
    lint::Linter linter;
    for (const std::string& file : files) linter.addModel(file, slurp(file));
    const std::vector<lint::Diagnostic> diagnostics = linter.run();
    if (json) {
        std::cout << lint::renderJson(diagnostics);
    } else {
        std::cout << lint::renderText(diagnostics);
        std::cout << files.size() << " model(s) checked, " << diagnostics.size()
                  << " finding(s)\n";
    }
    return lint::hasErrors(diagnostics) ? 1 : 0;
}

/// Runs the demo scenario for a deployment: which legacy endpoints to spawn
/// is derived from the protocols the bridge serves/queries.
int runDemo(const bridge::models::DeploymentSpec& spec, Case c) {
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler);
    bridge::Starlink starlink(network);
    auto& deployed = starlink.deploy(spec, "10.0.0.9");
    std::cout << "deployed bridge '" << deployed.engine().merged().name() << "' at 10.0.0.9\n";

    std::optional<slp::ServiceAgent> slpService;
    std::optional<mdns::Responder> mdnsService;
    std::optional<ssdp::Device> upnpService;
    std::optional<slp::UserAgent> slpClient;
    std::optional<mdns::Resolver> mdnsClient;
    std::optional<ssdp::ControlPoint> upnpClient;

    bool ok = false;
    auto report = [&ok](const std::string& who, const std::vector<std::string>& urls,
                        net::Duration elapsed) {
        ok = !urls.empty();
        std::cout << who << ": "
                  << (ok ? "discovered " + urls[0] : std::string("no reply")) << " after "
                  << std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count()
                  << " ms (virtual)\n";
    };

    switch (c) {
        case Case::UpnpToSlp:
        case Case::BonjourToSlp:
            slpService.emplace(network, slp::ServiceAgent::Config{});
            break;
        case Case::SlpToBonjour:
        case Case::UpnpToBonjour:
            mdnsService.emplace(network, mdns::Responder::Config{});
            break;
        case Case::SlpToUpnp:
        case Case::BonjourToUpnp:
            upnpService.emplace(network, ssdp::Device::Config{});
            break;
    }
    switch (c) {
        case Case::SlpToUpnp:
        case Case::SlpToBonjour:
            slpClient.emplace(network, slp::UserAgent::Config{});
            slpClient->lookup("service:printer", [&report](const slp::UserAgent::Result& r) {
                report("SLP client", r.urls, r.elapsed);
            });
            break;
        case Case::UpnpToSlp:
        case Case::UpnpToBonjour:
            upnpClient.emplace(network, ssdp::ControlPoint::Config{});
            upnpClient->search("urn:schemas-upnp-org:service:printer:1",
                               [&report](const ssdp::ControlPoint::Result& r) {
                                   report("UPnP control point", r.urls, r.elapsed);
                               });
            break;
        case Case::BonjourToUpnp:
        case Case::BonjourToSlp:
            mdnsClient.emplace(network, mdns::Resolver::Config{});
            mdnsClient->browse("_printer._tcp.local",
                               [&report](const mdns::Resolver::Result& r) {
                                   report("Bonjour browser", r.urls, r.elapsed);
                               });
            break;
    }

    scheduler.runUntilIdle();
    for (const auto& session : deployed.engine().sessions()) {
        std::cout << "bridge session: " << session.messagesIn << " in / "
                  << session.messagesOut << " out, translation "
                  << std::chrono::duration_cast<std::chrono::milliseconds>(
                         session.translationTime())
                         .count()
                  << " ms\n";
    }
    return ok ? 0 : 1;
}

int cmdDemo(const std::string& caseName) {
    const auto c = parseCase(caseName);
    if (!c) return usage();
    return runDemo(bridge::models::forCase(*c, "10.0.0.9"), *c);
}

int cmdDemoFiles(char** argv) {
    bridge::models::DeploymentSpec spec;
    spec.protocols.push_back({slurp(argv[0]), slurp(argv[1])});
    spec.protocols.push_back({slurp(argv[2]), slurp(argv[3])});
    spec.bridgeXml = slurp(argv[4]);
    std::cout << "loaded 5 model files\n";
    // The file-driven demo runs the SLP-client / Bonjour-service topology.
    return runDemo(spec, Case::SlpToBonjour);
}

/// Drives one case over a hostile network: steady per-hop loss plus a seeded
/// chaos FaultSchedule (loss bursts, latency spikes, partition flaps, connect
/// blackholes). Prints every bridge session's outcome with its structured
/// failure cause and the network's drop accounting. Succeeds when at least
/// one lookup discovers the service AND the connector never wedged (it is
/// back at its initial state at the end).
int cmdChaos(const std::string& caseName, double loss, std::uint64_t seed) {
    const auto parsed = parseCase(caseName);
    if (!parsed) return usage();
    const Case c = *parsed;
    constexpr int kLookups = 10;
    const net::Duration kHorizon = net::ms(60000);

    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler, seed);
    network.latency().lossProbability = loss;
    network.setFaultSchedule(net::FaultSchedule::chaos(
        seed, kHorizon, {"10.0.0.1", "10.0.0.3", "10.0.0.9"}));

    bridge::Starlink starlink(network);
    engine::EngineOptions options;
    options.receiveTimeout = net::ms(7000);
    options.maxRetransmits = 5;
    options.retransmitBackoff = 1.5;
    options.retransmitJitter = net::ms(100);
    options.sessionTimeout = net::ms(30000);
    auto& deployed = starlink.deploy(bridge::models::forCase(c, "10.0.0.9"), "10.0.0.9", options);
    std::cout << "deployed bridge '" << deployed.engine().merged().name()
              << "' under chaos (loss " << loss << ", seed " << seed << ", "
              << network.faultSchedule().episodes().size() << " fault episodes)\n";

    std::optional<slp::ServiceAgent> slpService;
    std::optional<mdns::Responder> mdnsService;
    std::optional<ssdp::Device> upnpService;
    switch (c) {
        case Case::UpnpToSlp:
        case Case::BonjourToSlp:
            slpService.emplace(network, slp::ServiceAgent::Config{});
            break;
        case Case::SlpToBonjour:
        case Case::UpnpToBonjour:
            mdnsService.emplace(network, mdns::Responder::Config{});
            break;
        case Case::SlpToUpnp:
        case Case::BonjourToUpnp:
            upnpService.emplace(network, ssdp::Device::Config{});
            break;
    }

    std::optional<slp::UserAgent> slpClient;
    std::optional<mdns::Resolver> mdnsClient;
    std::optional<ssdp::ControlPoint> upnpClient;
    const net::Duration clientResend = net::ms(8000);
    const net::Duration clientTimeout = net::ms(120000);
    int successes = 0;
    for (int i = 0; i < kLookups; ++i) {
        bool success = false;
        switch (c) {
            case Case::SlpToUpnp:
            case Case::SlpToBonjour: {
                if (!slpClient) {
                    slp::UserAgent::Config config;
                    config.timeout = clientTimeout;
                    config.retransmitInterval = clientResend;
                    slpClient.emplace(network, config);
                }
                slpClient->lookup("service:printer",
                                  [&success](const slp::UserAgent::Result& r) {
                                      success = !r.urls.empty();
                                  });
                break;
            }
            case Case::UpnpToSlp:
            case Case::UpnpToBonjour: {
                if (!upnpClient) {
                    ssdp::ControlPoint::Config config;
                    config.timeout = clientTimeout;
                    config.retransmitInterval = clientResend;
                    upnpClient.emplace(network, config);
                }
                upnpClient->search("urn:schemas-upnp-org:service:printer:1",
                                   [&success](const ssdp::ControlPoint::Result& r) {
                                       success = !r.urls.empty();
                                   });
                break;
            }
            case Case::BonjourToUpnp:
            case Case::BonjourToSlp: {
                if (!mdnsClient) {
                    mdns::Resolver::Config config;
                    config.timeout = clientTimeout;
                    config.retransmitInterval = clientResend;
                    mdnsClient.emplace(network, config);
                }
                mdnsClient->browse("_printer._tcp.local",
                                   [&success](const mdns::Resolver::Result& r) {
                                       success = !r.urls.empty();
                                   });
                break;
            }
        }
        scheduler.runUntilIdle(2000000);
        if (success) ++successes;
    }

    for (const auto& session : deployed.engine().sessions()) {
        std::cout << "session: " << (session.completed ? "completed" : "ABORTED ") << " cause="
                  << engine::failureCauseName(session.cause) << " retransmits="
                  << session.retransmits << " in/out=" << session.messagesIn << "/"
                  << session.messagesOut << " translation="
                  << std::chrono::duration_cast<std::chrono::milliseconds>(
                         session.translationTime())
                         .count()
                  << " ms\n";
    }
    std::cout << "lookups: " << successes << "/" << kLookups << " discovered\n";
    std::cout << "network: " << network.datagramsSent() << " datagrams sent, "
              << network.datagramsLost() << " lost, " << network.partitionDrops()
              << " partition drops, " << network.connectsRefused() << " connects refused\n";
    const bool connectorHealthy =
        deployed.engine().currentState() == deployed.engine().merged().initialState();
    std::cout << "connector: " << (connectorHealthy ? "re-armed at q0" : "WEDGED") << "\n";
    return successes > 0 && connectorHealthy ? 0 : 1;
}

/// What a field's length rule compiles to, for the plan dump.
std::string describeLength(const mdl::FieldSpec& spec) {
    using Length = mdl::FieldSpec::Length;
    switch (spec.length) {
        case Length::Bits: return "bits(" + std::to_string(spec.bits) + ")";
        case Length::FieldRef: return "ref(" + spec.ref + ")";
        case Length::Auto: return "auto";
        case Length::Delimiter: return "delimiter[" + std::to_string(spec.delimiter.size()) + "B]";
        case Length::FieldsBlock: return "fields-block";
        case Length::Body: return "body";
        case Length::Meta: return "meta";
        case Length::XmlPath: return "xml-path(" + spec.ref + ")";
    }
    return "?";
}

void printPlanField(const mdl::PlanField& field, int flatIndex) {
    std::cout << "    [" << flatIndex << "] " << field.spec->label << "  "
              << describeLength(*field.spec);
    if (!field.marshallerName.empty()) std::cout << "  marshaller=" << field.marshallerName;
    if (field.refIndex >= 0) std::cout << "  length<-flat[" << field.refIndex << "]";
    if (field.searcherIndex >= 0) std::cout << "  searcher#" << field.searcherIndex;
    if (field.isMsgLength) std::cout << "  f-msglength";
    if (!field.pathSteps.empty()) {
        std::cout << "  path=";
        for (std::size_t i = 0; i < field.pathSteps.size(); ++i) {
            std::cout << (i ? "/" : "") << field.pathSteps[i];
        }
    }
    if (field.defaultValue) std::cout << "  default=\"" << field.defaultValue->toText() << "\"";
    std::cout << "\n";
}

/// Dumps the codec plan an MDL compiles to: the flat header, every message
/// plan with its dispatch rule, and the compose metadata the interpreters
/// used to re-derive per message.
int cmdPlan(const std::string& which) {
    std::string mdlXml;
    if (which == "slp") mdlXml = bridge::models::slpMdl();
    else if (which == "dns") mdlXml = bridge::models::dnsMdl();
    else if (which == "ssdp") mdlXml = bridge::models::ssdpMdl();
    else if (which == "http") mdlXml = bridge::models::httpMdl();
    else if (which == "ldap") mdlXml = bridge::models::ldapMdl();
    else if (which == "wsd") mdlXml = bridge::models::wsdMdl();
    else mdlXml = slurp(which);

    const auto codec = mdl::MessageCodec::fromXml(mdlXml);
    const mdl::CodecPlan& plan = codec->plan();
    const auto& doc = codec->document();
    const char* kind = doc.kind() == mdl::MdlKind::Binary   ? "binary"
                       : doc.kind() == mdl::MdlKind::Text   ? "text"
                                                            : "xml";
    std::cout << "protocol " << doc.protocol() << " (" << kind << " dialect)\n";

    std::cout << "header (" << plan.header().size() << " fields):\n";
    for (std::size_t i = 0; i < plan.header().size(); ++i) {
        printPlanField(plan.header()[i], static_cast<int>(i));
    }

    std::cout << "messages (" << plan.messages().size() << "):\n";
    for (const mdl::MessagePlan& mp : plan.messages()) {
        std::cout << "  " << mp.spec->type;
        if (mp.spec->rule) {
            std::cout << "  rule " << mp.spec->rule->field << "=" << mp.spec->rule->value;
        } else {
            std::cout << "  (unruled fallback)";
        }
        std::cout << "\n";
        for (std::size_t i = 0; i < mp.body.size(); ++i) {
            printPlanField(mp.body[i],
                           static_cast<int>(plan.header().size() + i));
        }
        if (!mp.mandatory.empty()) {
            std::cout << "    mandatory:";
            for (const std::string& label : mp.mandatory) std::cout << " " << label;
            std::cout << "\n";
        }
    }
    return 0;
}

/// One paper case on the simulated network, packaged for the observability
/// commands: deploys the bridge at 10.0.0.9, spawns the matching legacy
/// service, and drives N lookups from the matching legacy client.
struct CaseHarness {
    net::VirtualClock clock;
    net::EventScheduler scheduler{clock};
    net::SimNetwork network{scheduler};
    bridge::Starlink starlink{network};
    bridge::DeployedBridge* deployed = nullptr;
    Case c;

    std::optional<slp::ServiceAgent> slpService;
    std::optional<mdns::Responder> mdnsService;
    std::optional<ssdp::Device> upnpService;
    std::optional<slp::UserAgent> slpClient;
    std::optional<mdns::Resolver> mdnsClient;
    std::optional<ssdp::ControlPoint> upnpClient;

    CaseHarness(Case whichCase, engine::EngineOptions options) : c(whichCase) {
        deployed = &starlink.deploy(bridge::models::forCase(c, "10.0.0.9"), "10.0.0.9",
                                    options);
        switch (c) {
            case Case::UpnpToSlp:
            case Case::BonjourToSlp:
                slpService.emplace(network, slp::ServiceAgent::Config{});
                break;
            case Case::SlpToBonjour:
            case Case::UpnpToBonjour:
                mdnsService.emplace(network, mdns::Responder::Config{});
                break;
            case Case::SlpToUpnp:
            case Case::BonjourToUpnp:
                upnpService.emplace(network, ssdp::Device::Config{});
                break;
        }
    }

    /// Sequential lookups, each run to quiescence; returns how many
    /// discovered the service.
    int runLookups(int n) {
        int successes = 0;
        for (int i = 0; i < n; ++i) {
            bool success = false;
            switch (c) {
                case Case::SlpToUpnp:
                case Case::SlpToBonjour:
                    if (!slpClient) slpClient.emplace(network, slp::UserAgent::Config{});
                    slpClient->lookup("service:printer",
                                      [&success](const slp::UserAgent::Result& r) {
                                          success = !r.urls.empty();
                                      });
                    break;
                case Case::UpnpToSlp:
                case Case::UpnpToBonjour:
                    if (!upnpClient) {
                        upnpClient.emplace(network, ssdp::ControlPoint::Config{});
                    }
                    upnpClient->search("urn:schemas-upnp-org:service:printer:1",
                                       [&success](const ssdp::ControlPoint::Result& r) {
                                           success = !r.urls.empty();
                                       });
                    break;
                case Case::BonjourToUpnp:
                case Case::BonjourToSlp:
                    if (!mdnsClient) mdnsClient.emplace(network, mdns::Resolver::Config{});
                    mdnsClient->browse("_printer._tcp.local",
                                       [&success](const mdns::Resolver::Result& r) {
                                           success = !r.urls.empty();
                                       });
                    break;
            }
            scheduler.runUntilIdle();
            if (success) ++successes;
        }
        return successes;
    }
};

/// Runs a few bridged lookups with span collection on and exports the span
/// trees as Chrome trace JSON (stdout, or --out <file>). The summary goes to
/// stderr so a redirected stdout stays pure JSON.
int cmdTrace(const std::string& caseName, const std::optional<std::string>& outPath) {
    const auto c = parseCase(caseName);
    if (!c) return usage();
    telemetry::setEnabled(true);
    engine::EngineOptions options;
    options.spanCapacity = 16384;
    CaseHarness harness(*c, options);
    const int successes = harness.runLookups(3);

    const auto& spans = harness.deployed->engine().spans();
    const std::string processName =
        "starlink-bridge " + std::string(bridge::models::caseName(*c));
    if (outPath) {
        std::ofstream out(*outPath);
        if (!out) throw SpecError("cannot write '" + *outPath + "'");
        telemetry::writeChromeTrace(spans, out, processName);
        std::cout << "wrote " << *outPath << "\n";
    } else {
        telemetry::writeChromeTrace(spans, std::cout, processName);
    }
    std::cerr << "traced " << harness.deployed->engine().sessions().size() << " sessions ("
              << spans.size() << " spans, " << spans.dropped() << " dropped); " << successes
              << "/3 lookups discovered\n";
    return successes > 0 && spans.size() > 0 ? 0 : 1;
}

/// Runs a few bridged lookups with metric recording on and prints the
/// process-wide registry as Prometheus text exposition.
int cmdMetrics(const std::string& caseName) {
    const auto c = parseCase(caseName);
    if (!c) return usage();
    telemetry::setEnabled(true);
    CaseHarness harness(*c, engine::EngineOptions{});
    const int successes = harness.runLookups(5);

    const auto virtualUs = std::chrono::duration_cast<std::chrono::microseconds>(
                               harness.network.now().time_since_epoch())
                               .count();
    std::cout << telemetry::MetricsRegistry::global().renderPrometheus(virtualUs);
    std::cerr << successes << "/5 lookups discovered\n";
    return successes > 0 ? 0 : 1;
}

// -- serve --transport=os ----------------------------------------------------

// The live daemon's shutdown path: the handler may only touch
// async-signal-safe state, so it flips OsNetwork's volatile stop flag and
// writes the wake eventfd; the event loop notices on its next iteration.
net::OsNetwork* gServeNetwork = nullptr;

void handleServeSignal(int) {
    if (gServeNetwork != nullptr) {
        gServeNetwork->requestStop();
        gServeNetwork->wakeFromSignal();
    }
}

// SIGHUP requests a model reload. The handler only flips a sig_atomic_t and
// wakes the event loop; the load + lint gate + swap run inline in the poll
// loop, where failure can be reported and the old version kept serving.
volatile std::sig_atomic_t gReloadRequested = 0;

void handleReloadSignal(int) {
    gReloadRequested = 1;
    if (gServeNetwork != nullptr) gServeNetwork->wakeFromSignal();
}

/// Persistent daemon on the OS transport: deploys one case's bridge on real
/// loopback sockets and serves live sessions until SIGTERM/SIGINT (or
/// --max-seconds as a belt-and-braces bound for scripted runs). Each session
/// prints one summary line as it ends; shutdown prints lifetime aggregates
/// and exits 0 iff no abort escaped the error taxonomy (code Unclassified).
int cmdServeOs(const std::string& caseName, const std::string& bindAddress, int portBase,
               int metricsPort, bool withPeers, int processingMs, int maxSeconds, bool record,
               const std::string& postmortemDir, const std::string& modelsDir,
               double canaryPercent) {
    const auto c = parseCase(caseName);
    if (!c) return usage();
    telemetry::setEnabled(true);

    if (!postmortemDir.empty()) probeSpoolDir(postmortemDir);

    net::OsNetwork::Options netOptions;
    netOptions.bindAddress = bindAddress;
    netOptions.portBase = static_cast<std::uint16_t>(portBase);
    net::OsNetwork network{netOptions};

    std::optional<telemetry::PostmortemSpool> spool;
    if (!postmortemDir.empty()) {
        spool.emplace(telemetry::PostmortemSpool::Options{postmortemDir, 64});
    }

    // Every deploy goes through the versioned registry -- the builtin fleet
    // when no --models-dir -- so SIGHUP reload, the lint gate, canary and
    // rollback behave identically for both sources. A defective INITIAL set
    // is fatal (bridge.deploy-rejected escapes to the envelope); a defective
    // RELOAD is not (the old version keeps serving, below).
    bridge::ModelRegistryOptions registryOptions;
    registryOptions.canaryPercent = canaryPercent;
    // The live daemon serves one session at a time, so a canary generation
    // serves every NEW session (time-based canary); after this many clean
    // canary sessions it is promoted outright.
    registryOptions.promoteAfter = canaryPercent > 0.0 ? 64 : 0;
    bridge::ModelRegistry registry{registryOptions};
    registry.onEvent = [](const bridge::RegistryEvent& event) {
        std::cout << "starlinkd[os]: registry " << bridge::registryEventName(event.kind)
                  << " v" << event.fromVersion << " -> v" << event.toVersion;
        if (!event.detail.empty()) std::cout << " (" << event.detail << ")";
        std::cout << "\n" << std::flush;
    };
    if (modelsDir.empty()) {
        registry.loadBuiltins();
    } else {
        registry.loadDirectory(modelsDir);
    }

    // The serving deployment is rebuilt on swap: destroying the old Starlink
    // closes its sockets (RAII + SO_REUSEADDR), the new generation rebinds
    // the same ports. Session aggregates are carried across retirements so
    // the shutdown summary spans every generation served.
    std::optional<bridge::Starlink> starlink;
    engine::AutomataEngine* engineRef = nullptr;
    std::shared_ptr<const bridge::ModelSet> serving;
    std::uint64_t carriedEnded = 0;
    std::uint64_t carriedCompleted = 0;
    std::uint64_t carriedAborted = 0;
    std::uint64_t carriedUncoded = 0;
    std::uint64_t reported = 0;  // per-engine session-report cursor

    const auto retireEngine = [&]() {
        if (engineRef == nullptr) return;
        const auto& history = engineRef->sessions();
        carriedEnded += history.totalEnded();
        carriedCompleted += history.totalCompleted();
        carriedAborted += history.totalAborted();
        for (const auto& [code, count] : history.abortsByCode()) {
            if (code == errc::ErrorCode::Unclassified) carriedUncoded += count;
        }
    };

    const auto deployServing = [&](std::shared_ptr<const bridge::ModelSet> set) {
        engine::EngineOptions options;
        if (processingMs >= 0) options.processingDelay = net::ms(processingMs);
        if (record || !postmortemDir.empty()) options.recorderSessionBytes = 1024 * 1024;
        if (spool) options.postmortemSpool = &*spool;
        options.modelVersion = set->version();
        starlink.reset();
        starlink.emplace(network);
        engineRef = &starlink->deploy(set->specFor(*c), "10.0.0.9", options).engine();
        serving = std::move(set);
        reported = 0;
    };
    deployServing(registry.active());

    // --with-peers co-hosts the case's legacy service, making one daemon a
    // self-contained island a scripted client can complete sessions against.
    // The response delays stay small: on this backend they cost wall time.
    std::optional<slp::ServiceAgent> slpService;
    std::optional<mdns::Responder> mdnsService;
    std::optional<ssdp::Device> upnpService;
    if (withPeers) {
        switch (*c) {
            case Case::UpnpToSlp:
            case Case::BonjourToSlp: {
                slp::ServiceAgent::Config config;
                config.responseDelayBase = net::ms(5);
                config.responseDelayJitter = net::ms(1);
                slpService.emplace(network, config);
                break;
            }
            case Case::SlpToBonjour:
            case Case::UpnpToBonjour: {
                mdns::Responder::Config config;
                config.responseDelayBase = net::ms(5);
                config.responseDelayJitter = net::ms(1);
                mdnsService.emplace(network, config);
                break;
            }
            case Case::SlpToUpnp:
            case Case::BonjourToUpnp: {
                ssdp::Device::Config config;
                config.responseDelayBase = net::ms(5);
                config.responseDelayJitter = net::ms(1);
                upnpService.emplace(network, config);
                break;
            }
        }
    }

    // /metrics: a raw-byte listener speaking just enough HTTP to satisfy a
    // Prometheus scrape -- read until the blank line, answer, close. The
    // connection's shared_ptr lives in the handler capture; close() clears
    // the handlers, which breaks the cycle.
    std::unique_ptr<net::TcpListener> metricsListener;
    if (metricsPort > 0) {
        metricsListener =
            network.listenTcpRaw(bindAddress, static_cast<std::uint16_t>(metricsPort));
        metricsListener->onAccept([&network](std::shared_ptr<net::TcpConnection> conn) {
            auto request = std::make_shared<std::string>();
            auto held = conn;
            conn->onData([&network, request, held](const Bytes& chunk) {
                request->append(chunk.begin(), chunk.end());
                if (request->find("\r\n\r\n") == std::string::npos) return;
                const bool isMetrics = request->rfind("GET /metrics", 0) == 0;
                // POST /reload (GET accepted for curl convenience) schedules
                // the same model reload SIGHUP does; it is applied in the
                // poll loop, between sessions, never mid-conversation.
                const bool isReload = request->rfind("POST /reload", 0) == 0 ||
                                      request->rfind("GET /reload", 0) == 0;
                if (isReload) gReloadRequested = 1;
                const bool found = isMetrics || isReload;
                const auto wallUs = std::chrono::duration_cast<std::chrono::microseconds>(
                                        network.now().time_since_epoch())
                                        .count();
                const std::string body =
                    isMetrics ? telemetry::MetricsRegistry::global().renderPrometheus(wallUs)
                    : isReload ? "reload scheduled\n"
                               : "not found\n";
                std::ostringstream response;
                response << (found ? "HTTP/1.1 200 OK" : "HTTP/1.1 404 Not Found") << "\r\n"
                         << "Content-Type: text/plain; version=0.0.4\r\n"
                         << "Content-Length: " << body.size() << "\r\n"
                         << "Connection: close\r\n\r\n"
                         << body;
                const std::string text = response.str();
                held->send(Bytes(text.begin(), text.end()));
                held->close();
            });
        });
    }

    std::cout << "starlinkd[os]: case " << bridge::models::caseName(*c)
              << ", bridge 10.0.0.9 on " << bindAddress;
    if (portBase > 0) {
        std::cout << ", port base " << portBase;
    } else {
        std::cout << ", kernel-assigned ports";
    }
    if (withPeers) std::cout << ", in-process peers";
    std::cout << "\n";
    std::cout << "starlinkd[os]: models v" << serving->version() << " ("
              << serving->source() << ", identity " << std::hex << serving->identity()
              << std::dec << ")";
    if (canaryPercent > 0.0) std::cout << ", canary on reload";
    std::cout << "\n";
    if (metricsListener != nullptr) {
        std::cout << "starlinkd[os]: metrics on http://" << bindAddress << ":" << metricsPort
                  << "/metrics (POST /reload to hot-swap)\n";
    }
    std::cout << "starlinkd[os]: ready (pid " << ::getpid() << ")\n" << std::flush;

    gServeNetwork = &network;
    gReloadRequested = 0;
    std::signal(SIGTERM, handleServeSignal);
    std::signal(SIGINT, handleServeSignal);
    std::signal(SIGHUP, handleReloadSignal);

    // One summary line per ended session. The history is an evicting ring,
    // but totalEnded() is exact, so the cursor never loses a record: every
    // loop iteration drains at most a poll's worth of fresh tail entries.
    // Each fresh terminal record is also fed to the registry's cohort judge.
    const auto reportNewSessions = [&]() {
        const auto& history = engineRef->sessions();
        const std::uint64_t total = history.totalEnded();
        if (total == reported) return;
        const std::size_t fresh =
            std::min(static_cast<std::size_t>(total - reported), history.size());
        std::uint64_t ordinal = carriedEnded + total - fresh;
        for (std::size_t i = history.size() - fresh; i < history.size(); ++i) {
            const auto& s = history[i];
            std::cout << "session #" << ++ordinal << ": "
                      << (s.completed ? "completed" : "aborted") << " in=" << s.messagesIn
                      << " out=" << s.messagesOut << " model=v" << s.modelVersion;
            if (!s.completed) {
                std::cout << " cause=" << engine::failureCauseName(s.cause)
                          << " code=" << errc::to_string(s.code);
            }
            std::cout << "\n";
            registry.noteSession(s.modelVersion, !s.completed, s.code);
        }
        std::cout << std::flush;
        reported = total;
    };

    // The generation NEW sessions should run on: the canary when one is in
    // flight (time-based canary -- the stable cohort already ran on the
    // active version), the active set otherwise.
    const auto desiredSet = [&registry]() {
        auto candidate = registry.canary();
        return candidate ? candidate : registry.active();
    };

    const auto started = network.now();
    while (!network.stopRequested()) {
        network.poll(net::ms(200));
        reportNewSessions();
        if (gReloadRequested) {
            gReloadRequested = 0;
            try {
                if (modelsDir.empty()) {
                    registry.loadBuiltins();
                } else {
                    registry.loadDirectory(modelsDir);
                }
            } catch (const StarlinkError& error) {
                // A defective candidate must never take a serving daemon
                // down: record the rejection and keep the old version.
                registry.noteReloadFailure(error.what());
                std::cout << "starlinkd[os]: reload rejected ["
                          << errc::to_string(error.code()) << "] " << error.what() << "\n"
                          << std::flush;
            }
        }
        // Apply a pending swap only while no session is in flight: the
        // in-flight conversation always finishes on the version it started.
        const auto want = desiredSet();
        if (want != nullptr && want->version() != serving->version() &&
            engineRef->currentState() == engineRef->merged().initialState()) {
            retireEngine();
            const auto fromVersion = serving->version();
            deployServing(want);
            std::cout << "starlinkd[os]: serving v" << fromVersion << " -> v"
                      << serving->version() << " (identity " << std::hex
                      << serving->identity() << std::dec << ")\n"
                      << std::flush;
        }
        if (maxSeconds > 0 && network.now() - started >= std::chrono::seconds(maxSeconds)) {
            break;
        }
    }

    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGHUP, SIG_DFL);
    gServeNetwork = nullptr;
    reportNewSessions();
    retireEngine();

    const auto wallMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(network.now() - started).count();
    std::cout << "starlinkd[os]: shutdown after " << wallMs << " ms: " << carriedEnded
              << " sessions (" << carriedCompleted << " completed, " << carriedAborted
              << " aborted, uncoded=" << carriedUncoded << ")";
    std::cout << ", serving v" << serving->version() << ", swaps=" << registry.swapsTotal()
              << ", rollbacks=" << registry.rollbacksTotal()
              << ", reload-failures=" << registry.reloadFailuresTotal();
    if (spool) {
        std::cout << ", " << spool->written() << " postmortem bundle(s) in "
                  << spool->directory();
    }
    std::cout << "\n";
    return carriedUncoded == 0 ? 0 : 1;
}

/// Drives a mixed workload (all six directions, round-robin) through the
/// sharded engine and reports per-shard accounting plus the aggregate
/// virtual-time throughput. With --chaos every session runs under a
/// seed-derived fault schedule; with --metrics the per-shard registries are
/// merged and printed as Prometheus text exposition (stdout stays pure
/// exposition, the report moves to stderr).
int cmdServe(int shards, int sessions, bool chaos, double loss, std::uint64_t seed,
             bool printMetrics, std::size_t maxSessions, int idleTimeoutMs, bool record,
             const std::string& postmortemDir, const std::string& modelsDir,
             double canaryPercent) {
    if (printMetrics) telemetry::setEnabled(true);
    if (!postmortemDir.empty()) probeSpoolDir(postmortemDir);
    engine::ShardEngineOptions options;
    options.shards = shards;
    options.baseSeed = seed;
    options.chaos = chaos;
    options.chaosLoss = loss;
    options.maxPendingPerShard = maxSessions;
    if (idleTimeoutMs > 0) options.engine.idleTimeout = net::ms(idleTimeoutMs);
    std::optional<telemetry::PostmortemSpool> spool;
    if (record || !postmortemDir.empty()) {
        options.engine.recorderSessionBytes = 1024 * 1024;
    }
    if (!postmortemDir.empty()) {
        spool.emplace(telemetry::PostmortemSpool::Options{postmortemDir, 64});
        options.engine.postmortemSpool = &*spool;
    }
    if (chaos) {
        options.engine.receiveTimeout = net::ms(7000);
        options.engine.maxRetransmits = 5;
        options.engine.retransmitBackoff = 1.5;
        options.engine.retransmitJitter = net::ms(100);
        options.engine.sessionTimeout = net::ms(30000);
    }
    // --models-dir routes every deploy through the versioned registry (lint
    // gate, per-session version pinning); --canary-percent alone exercises
    // the cohort split over the builtin fleet.
    std::optional<bridge::ModelRegistry> registry;
    if (!modelsDir.empty() || canaryPercent > 0.0) {
        bridge::ModelRegistryOptions registryOptions;
        registryOptions.canaryPercent = canaryPercent;
        registry.emplace(registryOptions);
        if (modelsDir.empty()) {
            registry->loadBuiltins();
        } else {
            registry->loadDirectory(modelsDir);
        }
        options.registry = &*registry;
    }
    engine::ShardEngine shardEngine(options);
    for (int i = 0; i < sessions; ++i) {
        engine::SessionJob job;
        job.caseId = bridge::models::kAllCases[static_cast<std::size_t>(i) % 6];
        job.key = "session-" + std::to_string(i);
        shardEngine.submit(job);
    }
    const auto& results = shardEngine.run();

    std::ostream& report = printMetrics ? std::cerr : std::cout;
    std::size_t discovered = 0;
    std::size_t bridgeSessions = 0;
    std::size_t completed = 0;
    std::size_t shedJobs = 0;
    for (const auto& result : results) {
        if (result.discovered) ++discovered;
        if (result.shed) ++shedJobs;
        bridgeSessions += result.outcomes.size();
        for (const auto& outcome : result.outcomes) {
            if (outcome.completed) ++completed;
        }
    }
    for (const auto& shard : shardEngine.reports()) {
        report << "shard " << shard.shard << ": " << shard.jobs << " jobs, "
               << shard.bridgeSessions << " bridge sessions (" << shard.completedSessions
               << " completed), " << shard.discovered << " discovered, " << shard.shed
               << " shed, busy "
               << std::chrono::duration_cast<std::chrono::milliseconds>(shard.busyVirtual)
                      .count()
               << " ms virtual\n";
    }
    report << "served " << results.size() << " sessions on " << shards
           << (shards == 1 ? " shard" : " shards") << (chaos ? " under chaos" : "")
           << ": " << discovered << " discovered, " << completed << "/" << bridgeSessions
           << " bridge sessions completed";
    if (shedJobs > 0) {
        report << ", " << shedJobs << " shed ("
               << errc::to_string(errc::ErrorCode::EngineOverload) << ")";
    }
    report << "\n";
    report << "virtual makespan "
           << std::chrono::duration_cast<std::chrono::milliseconds>(shardEngine.makespan())
                  .count()
           << " ms, aggregate " << shardEngine.virtualSessionsPerSecond()
           << " sessions/s (virtual)\n";
    if (spool) {
        report << "postmortem: " << spool->written() << " bundle(s) spooled to "
               << spool->directory() << "\n";
    }
    if (registry) {
        report << "registry: active v" << registry->active()->version();
        if (const auto candidate = registry->canary()) {
            report << ", canary v" << candidate->version();
        }
        report << ", swaps " << registry->swapsTotal() << ", rollbacks "
               << registry->rollbacksTotal() << "\n";
    }

    if (printMetrics) {
        telemetry::MetricsRegistry merged;
        shardEngine.mergeMetricsInto(merged);
        const auto virtualUs = std::chrono::duration_cast<std::chrono::microseconds>(
                                   shardEngine.makespan())
                                   .count();
        std::cout << merged.renderPrometheus(virtualUs);
    }
    return discovered * 2 > results.size() ? 0 : 1;
}

std::string formatTs(std::int64_t tsUs) {
    std::ostringstream out;
    out << tsUs / 1000 << "." << std::setw(3) << std::setfill('0') << tsUs % 1000 << "ms";
    return out.str();
}

/// Decoded one-liner for a captured payload: the parsed message type when the
/// leg's codec accepts the bytes, a byte count otherwise.
std::string describePayload(const std::shared_ptr<mdl::MessageCodec>& codec,
                            const Bytes& payload) {
    if (codec) {
        std::string error;
        if (const auto message = codec->parse(payload, &error)) {
            return message->type() + " (" + std::to_string(message->fields().size()) +
                   " fields, " + std::to_string(payload.size()) + " bytes)";
        }
    }
    return std::to_string(payload.size()) + " bytes (undecoded)";
}

/// Pretty-prints one spooled bundle: provenance header, the wire-event log
/// with per-leg message decode, and the captured span tree. The per-leg
/// decode deploys the bundle's case on a throwaway island purely to re-derive
/// the per-color codecs; no traffic runs.
int cmdPostmortem(const std::string& path) {
    const telemetry::PostmortemBundle bundle = telemetry::decodeBundle(slurpBytes(path));
    const errc::ErrorCode code = static_cast<errc::ErrorCode>(bundle.abortCode);

    std::cout << "postmortem " << path << "\n";
    std::cout << "  bridge:   " << bundle.bridge
              << (bundle.caseSlug.empty() ? "" : " (case " + bundle.caseSlug + ")") << " at "
              << bundle.bridgeHost << ", shard " << bundle.shard << ", session #"
              << bundle.sessionOrdinal << "\n";
    std::cout << "  abort:    " << bundle.abortCode << " " << errc::to_string(code) << " (cause "
              << engine::failureCauseName(static_cast<engine::FailureCause>(bundle.cause))
              << ")\n";
    std::cout << "  fix:      " << errc::remediation(code) << "\n";
    std::cout << "  seeds:    session=" << bundle.sessionSeed << " retry=" << bundle.retrySeed
              << " (+" << bundle.retryDraws << " draws burned), models="
              << std::hex << bundle.modelIdentity << std::dec << "\n";
    std::cout << "  timers:   processing=" << bundle.processingDelayUs / 1000
              << "ms receive=" << bundle.receiveTimeoutUs / 1000
              << "ms session=" << bundle.sessionTimeoutUs / 1000
              << "ms idle=" << bundle.idleTimeoutUs / 1000 << "ms retransmits<="
              << bundle.maxRetransmits << "\n";
    if (bundle.truncated) {
        std::cout << "  WARNING:  log truncated at the recorder byte cap ("
                  << bundle.droppedEvents << " events dropped); replay will refuse this "
                  << "bundle\n";
    }

    // Throwaway deployment for the codecs and the color registry.
    std::optional<net::VirtualClock> clock;
    std::optional<net::EventScheduler> scheduler;
    std::optional<net::SimNetwork> network;
    std::optional<bridge::Starlink> starlink;
    engine::AutomataEngine* engine = nullptr;
    if (const auto c = bridge::models::caseBySlug(bundle.caseSlug)) {
        const std::string host = bundle.bridgeHost.empty() ? "10.0.0.9" : bundle.bridgeHost;
        clock.emplace();
        scheduler.emplace(*clock);
        network.emplace(*scheduler);
        starlink.emplace(*network);
        engine = &starlink->deploy(bridge::models::forCase(*c, host), host).engine();
    }
    auto colorTag = [&](std::uint64_t k) {
        std::ostringstream out;
        if (starlink) {
            if (const automata::Color* color = starlink->colors().lookup(k)) {
                out << color->transport();
                if (const auto port = color->port()) out << ":" << *port;
                return out.str();
            }
        }
        out << "color:" << std::hex << k << std::dec;
        return out.str();
    };

    const std::vector<telemetry::WireEvent> events = telemetry::decodeEvents(bundle.events);
    std::cout << "  events (" << events.size() << "):\n";
    for (const telemetry::WireEvent& event : events) {
        std::cout << "    " << std::setw(12) << formatTs(event.tsUs) << "  ";
        const auto codec = engine ? engine->codecForColor(event.color) : nullptr;
        switch (event.kind) {
            case telemetry::WireEvent::Kind::Rx:
                std::cout << "rx  [" << colorTag(event.color) << "] " << event.from << " -> "
                          << (event.to.empty() ? "(tcp client leg)" : event.to) << "  "
                          << describePayload(codec, event.payload);
                break;
            case telemetry::WireEvent::Kind::Tx:
                std::cout << "tx  [" << colorTag(event.color) << "] "
                          << describePayload(codec, event.payload);
                break;
            case telemetry::WireEvent::Kind::TcpConnect:
                std::cout << "tcp-connect " << event.from << " "
                          << (event.action == telemetry::WireEvent::kConnectConnected
                                  ? "connected"
                                  : "REFUSED")
                          << " after " << event.attempts << " attempt(s)";
                break;
            case telemetry::WireEvent::Kind::Transition:
                std::cout << "step " << event.state << " -> " << event.stateTo << " ("
                          << (event.action == telemetry::WireEvent::kActionReceive ? "receive"
                              : event.action == telemetry::WireEvent::kActionSend ? "send"
                                                                                  : "delta");
                if (!event.messageType.empty()) std::cout << " " << event.messageType;
                std::cout << ") in " << event.component;
                break;
            case telemetry::WireEvent::Kind::Translate:
                std::cout << "translate at " << event.state << " -> " << event.messageType;
                break;
            case telemetry::WireEvent::Kind::Fault:
                std::cout << "fault [" << colorTag(event.color) << "] "
                          << (event.action == telemetry::WireEvent::kFaultPeerClosed
                                  ? "peer-closed"
                                  : "connect-refused")
                          << " " << event.from;
                break;
            case telemetry::WireEvent::Kind::SessionEnd:
                std::cout << "end " << (event.completed ? "completed" : "ABORTED") << " code="
                          << event.code << " "
                          << errc::to_string(static_cast<errc::ErrorCode>(event.code))
                          << " in/out=" << event.messagesIn << "/" << event.messagesOut
                          << " retransmits=" << event.retransmits;
                break;
        }
        std::cout << "\n";
    }

    if (!bundle.spans.empty()) {
        std::cout << "  spans (" << bundle.spans.size() << "):\n";
        std::map<std::uint64_t, std::vector<const telemetry::Span*>> children;
        std::map<std::uint64_t, const telemetry::Span*> byId;
        for (const telemetry::Span& span : bundle.spans) byId[span.id] = &span;
        std::vector<const telemetry::Span*> roots;
        for (const telemetry::Span& span : bundle.spans) {
            if (span.parent != 0 && byId.contains(span.parent)) {
                children[span.parent].push_back(&span);
            } else {
                roots.push_back(&span);
            }
        }
        const std::function<void(const telemetry::Span*, int)> printTree =
            [&](const telemetry::Span* span, int depth) {
                std::cout << "    " << std::string(static_cast<std::size_t>(depth) * 2, ' ')
                          << span->name << " "
                          << (span->end - span->start).count() << "us";
                for (const auto& attr : span->attrs) {
                    std::cout << " " << attr.key << "=" << attr.value;
                }
                std::cout << "\n";
                for (const telemetry::Span* child : children[span->id]) printTree(child, depth + 1);
            };
        for (const telemetry::Span* root : roots) printTree(root, 0);
    }
    return 0;
}

/// Replays a bundle and diffs the outcome against the capture. With
/// --models-dir the models that produced the capture are resolved from a
/// registry over that directory BY FINGERPRINT: a bundle no retained
/// generation matches is refused (bridge.version-unknown) before anything
/// deploys -- replay never guesses which models to run.
int cmdReplay(const std::string& path, const std::string& modelsDir) {
    const telemetry::PostmortemBundle bundle = telemetry::decodeBundle(slurpBytes(path));
    std::cout << "replaying " << path << " (case " << bundle.caseSlug << ", abort "
              << bundle.abortCode << " "
              << errc::to_string(static_cast<errc::ErrorCode>(bundle.abortCode)) << ")\n";
    bridge::ReplayComparison result;
    if (!modelsDir.empty()) {
        const auto c = bridge::models::caseBySlug(bundle.caseSlug);
        if (!c) {
            throw SpecError("bundle case '" + bundle.caseSlug +
                            "' is not a replayable built-in case");
        }
        bridge::ModelRegistry registry;
        registry.loadDirectory(modelsDir);
        const auto set = registry.byCaseIdentity(*c, bundle.modelIdentity);
        if (set == nullptr) {
            std::ostringstream message;
            message << "no model generation in '" << modelsDir
                    << "' matches the bundle's fingerprint " << std::hex
                    << bundle.modelIdentity << std::dec;
            throw SpecError(errc::ErrorCode::BridgeVersionUnknown, message.str());
        }
        std::cout << "  models:   v" << set->version() << " from " << set->source()
                  << " (identity " << std::hex << set->identityFor(*c) << std::dec << ")\n";
        result = bridge::replayBundle(bundle, set->specFor(*c));
    } else {
        result = bridge::replayBundle(bundle);
    }
    std::cout << "  replayed: " << (result.completed ? "completed" : "aborted") << " code="
              << result.abortCode << " in/out=" << result.messagesIn << "/"
              << result.messagesOut << " retransmits=" << result.retransmits << "\n";
    std::cout << "  wire:     " << result.replayedTx << "/" << result.originalTx
              << " outbound messages reproduced\n";
    if (result.ok()) {
        std::cout << "  verdict:  REPRODUCED (session record and wire traffic identical)\n";
        return 0;
    }
    std::cout << "  verdict:  DIVERGED -- " << result.detail << "\n";
    return 1;
}

int cmdDot(const std::string& caseName) {
    const auto c = parseCase(caseName);
    if (!c) return usage();
    const auto spec = bridge::models::forCase(*c, "10.0.0.9");
    automata::ColorRegistry colors;
    std::vector<std::shared_ptr<automata::ColoredAutomaton>> components;
    for (const auto& protocol : spec.protocols) {
        components.push_back(merge::loadAutomaton(protocol.automatonXml, colors));
    }
    const auto merged = merge::loadBridge(spec.bridgeXml, std::move(components));
    merged->validate();
    std::cout << merge::toDot(*merged);
    return 0;
}

/// Dump the taxonomy: one line per code, aligned, grouped by layer.
int cmdErrors() {
    const errc::Layer* last = nullptr;
    static errc::Layer lastStorage;
    for (const errc::ErrorCode code : errc::allCodes()) {
        if (code == errc::ErrorCode::Ok) continue;
        const errc::Layer layer = errc::layerOf(code);
        if (last == nullptr || *last != layer) {
            std::cout << "# " << errc::layerName(layer) << "\n";
            lastStorage = layer;
            last = &lastStorage;
        }
        std::cout << "  " << errc::to_error_code(code) << "\t" << errc::to_string(code)
                  << "\n\t\t" << errc::remediation(code) << "\n";
    }
    return 0;
}

/// Distinct nonzero exit code per taxonomy layer: 10 + layer index. Keeps
/// clear of 1 (demo/lint findings) and 2 (usage).
int exitCodeFor(errc::ErrorCode code) {
    return 10 + static_cast<int>(errc::layerOf(code));
}

}  // namespace

int main(int argc, char** argv) {
    const std::string command = argc >= 2 ? argv[1] : "";
    try {
        if (argc >= 2) {
            if (command == "errors" && argc == 2) return cmdErrors();
            if (command == "list" && argc == 2) return cmdList();
            if (command == "export" && argc == 3) return cmdExport(argv[2]);
            if (command == "demo" && argc == 3) return cmdDemo(argv[2]);
            if (command == "demo-files" && argc == 7) return cmdDemoFiles(argv + 2);
            if (command == "dot" && argc == 3) return cmdDot(argv[2]);
            if (command == "lint" && argc >= 3) {
                bool json = false;
                std::vector<std::string> paths;
                for (int i = 2; i < argc; ++i) {
                    const std::string arg = argv[i];
                    if (arg == "--json") {
                        json = true;
                    } else {
                        paths.push_back(arg);
                    }
                }
                if (paths.empty()) return usage();
                return cmdLint(paths, json);
            }
            if (command == "plan" && argc == 3) return cmdPlan(argv[2]);
            if (command == "chaos" && argc >= 3 && argc <= 5) {
                double loss = 0.25;
                std::uint64_t seed = 42;
                try {
                    if (argc > 3) loss = std::stod(argv[3]);
                    if (argc > 4) seed = std::stoull(argv[4]);
                } catch (const std::exception&) {
                    std::cerr << "starlinkd: chaos expects a numeric loss "
                                 "probability and seed\n";
                    return usage();
                }
                if (loss < 0.0 || loss > 1.0) {
                    std::cerr << "starlinkd: loss probability must be in [0, 1]\n";
                    return usage();
                }
                return cmdChaos(argv[2], loss, seed);
            }
            if (command == "trace" && (argc == 3 || argc == 5)) {
                std::optional<std::string> outPath;
                if (argc == 5) {
                    if (std::string(argv[3]) != "--out") return usage();
                    outPath = argv[4];
                }
                return cmdTrace(argv[2], outPath);
            }
            if (command == "metrics" && argc == 3) return cmdMetrics(argv[2]);
            if (command == "serve") {
                int shards = 4;
                int sessions = 120;
                bool chaos = false;
                double loss = 0.05;
                std::uint64_t seed = 0x5747524c494e4bULL;
                bool printMetrics = false;
                long long maxSessions = 0;  // 0 = unbounded admission
                int idleTimeoutMs = 0;      // 0 = no idle eviction
                bool record = false;
                std::string postmortemDir;
                std::string modelsDir;
                double canaryPercent = 0.0;  // 0 = swap immediately on reload
                std::string transport = "sim";
                std::string caseName;
                std::string bindAddress = "127.0.0.1";
                int portBase = 0;      // 0 = kernel-assigned real ports
                int metricsPort = 0;   // 0 = no /metrics endpoint
                bool withPeers = false;
                int processingMs = -1;  // -1 = engine default
                int maxSeconds = 0;     // 0 = run until signalled
                try {
                    for (int i = 2; i < argc; ++i) {
                        const std::string flag = argv[i];
                        if (flag == "--chaos") chaos = true;
                        else if (flag == "--metrics") printMetrics = true;
                        else if (flag == "--record") record = true;
                        else if (flag == "--with-peers") withPeers = true;
                        else if (flag.rfind("--transport=", 0) == 0) transport = flag.substr(12);
                        else if (flag == "--transport" && i + 1 < argc) transport = argv[++i];
                        else if (flag == "--case" && i + 1 < argc) caseName = argv[++i];
                        else if (flag == "--bind" && i + 1 < argc) bindAddress = argv[++i];
                        else if (flag == "--port-base" && i + 1 < argc) portBase = std::stoi(argv[++i]);
                        else if (flag == "--metrics-port" && i + 1 < argc) metricsPort = std::stoi(argv[++i]);
                        else if (flag == "--processing-ms" && i + 1 < argc) processingMs = std::stoi(argv[++i]);
                        else if (flag == "--max-seconds" && i + 1 < argc) maxSeconds = std::stoi(argv[++i]);
                        else if (flag == "--shards" && i + 1 < argc) shards = std::stoi(argv[++i]);
                        else if (flag == "--sessions" && i + 1 < argc) sessions = std::stoi(argv[++i]);
                        else if (flag == "--loss" && i + 1 < argc) loss = std::stod(argv[++i]);
                        else if (flag == "--seed" && i + 1 < argc) seed = std::stoull(argv[++i]);
                        else if (flag == "--max-sessions" && i + 1 < argc) maxSessions = std::stoll(argv[++i]);
                        else if (flag == "--idle-timeout" && i + 1 < argc) idleTimeoutMs = std::stoi(argv[++i]);
                        else if (flag == "--postmortem-dir" && i + 1 < argc) postmortemDir = argv[++i];
                        else if (flag == "--models-dir" && i + 1 < argc) modelsDir = argv[++i];
                        else if (flag == "--canary-percent" && i + 1 < argc) canaryPercent = std::stod(argv[++i]);
                        else return usage();
                    }
                } catch (const std::exception&) {
                    std::cerr << "starlinkd: serve expects numeric option values\n";
                    return usage();
                }
                if (canaryPercent < 0.0 || canaryPercent > 100.0) {
                    std::cerr << "starlinkd: serve: canary-percent in [0,100]\n";
                    return usage();
                }
                if (transport == "os") {
                    if (caseName.empty() || portBase < 0 || portBase > 45000 ||
                        metricsPort < 0 || metricsPort > 65535 || maxSeconds < 0) {
                        std::cerr << "starlinkd: serve --transport=os needs --case <case>; "
                                     "port-base in [0,45000], metrics-port in [0,65535]\n";
                        return usage();
                    }
                    return cmdServeOs(caseName, bindAddress, portBase, metricsPort, withPeers,
                                      processingMs, maxSeconds, record, postmortemDir,
                                      modelsDir, canaryPercent);
                }
                if (transport != "sim") {
                    std::cerr << "starlinkd: unknown transport '" << transport
                              << "' (sim or os)\n";
                    return usage();
                }
                if (shards < 1 || shards > 64 || sessions < 1 || loss < 0.0 || loss > 1.0 ||
                    maxSessions < 0 || idleTimeoutMs < 0) {
                    std::cerr << "starlinkd: serve: shards in [1,64], sessions >= 1, "
                                 "loss in [0,1], max-sessions >= 0, idle-timeout >= 0\n";
                    return usage();
                }
                return cmdServe(shards, sessions, chaos, loss, seed, printMetrics,
                                static_cast<std::size_t>(maxSessions), idleTimeoutMs, record,
                                postmortemDir, modelsDir, canaryPercent);
            }
            if (command == "postmortem" && argc == 3) return cmdPostmortem(argv[2]);
            if (command == "replay" && argc >= 3) {
                std::string modelsDir;
                std::string bundlePath;
                for (int i = 2; i < argc; ++i) {
                    const std::string arg = argv[i];
                    if (arg == "--models-dir" && i + 1 < argc) {
                        modelsDir = argv[++i];
                    } else if (bundlePath.empty()) {
                        bundlePath = arg;
                    } else {
                        return usage();
                    }
                }
                if (bundlePath.empty()) return usage();
                return cmdReplay(bundlePath, modelsDir);
            }
        }
        return usage();
    } catch (const std::exception& error) {
        // Every escaping failure leaves as a structured envelope: a human
        // line plus the machine-readable JSON (code, layer, trace id), with
        // a per-layer exit code so scripts can triage without parsing.
        const errc::ErrorCode code = to_error_code(error);
        errc::Envelope envelope;
        envelope.code = code;
        envelope.message = error.what();
        envelope.traceId = "starlinkd/" + (command.empty() ? std::string("?") : command);
        std::cerr << "starlinkd: [" << errc::to_string(code) << "] " << error.what() << "\n";
        std::cerr << errc::toJson(envelope) << "\n";
        return exitCodeFor(code);
    }
}
