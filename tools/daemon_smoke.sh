#!/usr/bin/env bash
# Live-daemon smoke: real loopback sockets end to end.
#
# Starts `starlinkd serve --transport=os` on a random port base, drives real
# UDP sessions through it with the scripted starlink_probe client (a separate
# process -- this exercises the cross-process port mapping, not an in-memory
# shortcut), scrapes /metrics over plain HTTP, then SIGTERMs the daemon and
# requires a clean, coded shutdown:
#
#   (a) every probe lookup discovers the bridged service URL,
#   (b) the /metrics scrape returns a non-empty Prometheus exposition,
#   (c) the daemon's stdout carries a terminal record for every session,
#   (d) the daemon exits 0 == zero aborts escaped the error taxonomy.
#
# Skips (exit 77) when the kernel does not deliver multicast on loopback
# (some CI sandboxes); retries a few port bases to dodge EADDRINUSE races.
#
# Usage: daemon_smoke.sh <path-to-starlinkd> <path-to-starlink_probe> <work-dir>
#        [sessions (default 100)]
set -uo pipefail

starlinkd="$1"
probe="$2"
workdir="$3"
sessions="${4:-100}"

rm -rf "$workdir"
mkdir -p "$workdir"
log="$workdir/daemon.log"

cleanup() {
    if [ -n "${daemon_pid:-}" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
}
trap cleanup EXIT

# The probe's OS backend skips itself in sandboxes without loopback
# multicast; probing one throwaway lookup against a dead base detects the
# same condition here. net.* bind failures exit with the Net layer code 17.
daemon_pid=""
started=0
for attempt in 1 2 3 4 5; do
    # Random base in [20000, 40000): logical ports (427, 1900, 5353, ...)
    # stay well under 65535, and parallel ctest runs rarely collide.
    port_base=$((20000 + RANDOM % 20000))
    metrics_port=$((port_base + 99))
    : > "$log"
    "$starlinkd" serve --transport=os --case slp-to-upnp --with-peers \
        --port-base "$port_base" --metrics-port "$metrics_port" \
        --processing-ms 1 --max-seconds 120 > "$log" 2>&1 &
    daemon_pid=$!

    # Wait for the ready line (or early death on a port clash).
    for _ in $(seq 1 50); do
        if grep -q "starlinkd\[os\]: ready" "$log"; then
            started=1
            break
        fi
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            break
        fi
        sleep 0.1
    done
    [ "$started" -eq 1 ] && break

    wait "$daemon_pid" 2>/dev/null
    rc=$?
    daemon_pid=""
    if [ "$rc" -eq 17 ] && grep -q "net.bind-conflict" "$log"; then
        echo "port base $port_base in use (attempt $attempt), retrying"
        continue
    fi
    echo "FAIL: daemon did not start (exit $rc):" >&2
    cat "$log" >&2
    exit 1
done

if [ "$started" -ne 1 ]; then
    echo "FAIL: no free port base after 5 attempts" >&2
    exit 1
fi
echo "daemon up (pid $daemon_pid, port base $port_base)"

# (a) live sessions: scripted client in its own process, same port base.
probe_out=$("$probe" lookup --proto slp --port-base "$port_base" \
            --sessions "$sessions" --timeout-ms 5000 2>&1)
probe_rc=$?
if [ "$probe_rc" -eq 77 ]; then
    echo "SKIP: loopback multicast unusable in this sandbox" >&2
    exit 77
fi
if [ "$probe_rc" -ne 0 ]; then
    echo "$probe_out"
    echo "FAIL: probe lookups did not all discover the service" >&2
    tail -5 "$log" >&2
    exit 1
fi
echo "$probe_out" | tail -1

if ! echo "$probe_out" | grep -q "probe: $sessions/$sessions lookups discovered"; then
    echo "FAIL: probe summary mismatch" >&2
    exit 1
fi

# (b) metrics scrape over plain HTTP.
metrics=$("$probe" scrape --port "$metrics_port") || {
    echo "FAIL: /metrics scrape failed" >&2
    exit 1
}
if ! echo "$metrics" | grep -q "# TYPE"; then
    echo "FAIL: scrape returned no Prometheus exposition" >&2
    echo "$metrics" >&2
    exit 1
fi
echo "scraped $(echo "$metrics" | grep -c '^# TYPE') metric families"

# (c)+(d) clean signal-driven shutdown with a terminal record per session.
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_rc=$?
daemon_pid=""
if [ "$daemon_rc" -ne 0 ]; then
    echo "FAIL: daemon exit code $daemon_rc after SIGTERM" >&2
    tail -20 "$log" >&2
    exit 1
fi

recorded=$(grep -c "^session #" "$log")
if [ "$recorded" -lt "$sessions" ]; then
    echo "FAIL: daemon recorded $recorded/$sessions session outcomes" >&2
    tail -20 "$log" >&2
    exit 1
fi
if ! grep -q "starlinkd\[os\]: shutdown after .* uncoded=0" "$log"; then
    echo "FAIL: shutdown summary missing or reported uncoded aborts" >&2
    tail -20 "$log" >&2
    exit 1
fi

echo "daemon smoke: $recorded live sessions, clean coded shutdown"
