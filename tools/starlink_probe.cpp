// starlink_probe -- scripted live client for a `starlinkd serve
// --transport=os` daemon, used by tools/daemon_smoke.sh (and by hand).
//
//   starlink_probe lookup [--proto slp|upnp|bonjour] --port-base B
//                  [--bind A] [--sessions N] [--timeout-ms T] [--retransmit-ms R]
//       Run N sequential discovery lookups against the daemon over REAL
//       loopback sockets, through the same net::OsNetwork backend the daemon
//       uses (--port-base must match the daemon's so logical ports resolve
//       to the same wire ports). Prints one line per lookup; exits 0 iff
//       every lookup discovered a service URL.
//
//   starlink_probe scrape --port P [--host A] [--path /metrics]
//       Fetch the daemon's metrics endpoint with a plain blocking TCP
//       socket -- deliberately NOT OsNetwork, whose client connections are
//       length-prefix framed; a Prometheus scrape is raw HTTP. Prints the
//       response body; exits 0 iff the status line says 200.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/net/os_network.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"

namespace {

using namespace starlink;

int usage() {
    std::cerr << "usage: starlink_probe lookup [--proto slp|upnp|bonjour] --port-base B\n"
                 "                      [--bind A] [--sessions N] [--timeout-ms T]\n"
                 "                      [--retransmit-ms R]\n"
                 "       starlink_probe scrape --port P [--host A] [--path /metrics]\n";
    return 2;
}

int cmdLookup(const std::string& proto, const std::string& bindAddress, int portBase,
              int sessions, int timeoutMs, int retransmitMs) {
    // Same capability gate the conformance suite uses: in sandboxes whose
    // kernel will not deliver multicast on loopback no discovery request can
    // reach the daemon; 77 is the automake/ctest "skip" convention.
    if (!net::OsNetwork::loopbackMulticastUsable()) {
        std::cerr << "probe: loopback multicast unusable in this sandbox; skipping\n";
        return 77;
    }
    net::OsNetwork::Options netOptions;
    netOptions.bindAddress = bindAddress;
    netOptions.portBase = static_cast<std::uint16_t>(portBase);
    net::OsNetwork network{netOptions};

    // One client agent reused across lookups, like a real legacy peer. The
    // windows are kept tight because this backend pays them in wall time.
    std::unique_ptr<slp::UserAgent> slpClient;
    std::unique_ptr<ssdp::ControlPoint> upnpClient;
    std::unique_ptr<mdns::Resolver> mdnsClient;
    if (proto == "slp") {
        slp::UserAgent::Config config;
        config.timeout = net::ms(timeoutMs);
        // Real discovery clients re-ask until something answers; the reload
        // smoke leans on this to ride out the daemon's swap rebind window.
        if (retransmitMs > 0) config.retransmitInterval = net::ms(retransmitMs);
        slpClient = std::make_unique<slp::UserAgent>(network, config);
    } else if (proto == "upnp") {
        ssdp::ControlPoint::Config config;
        config.mxWindowBase = net::ms(30);
        config.mxWindowJitter = net::ms(3);
        upnpClient = std::make_unique<ssdp::ControlPoint>(network, config);
    } else if (proto == "bonjour") {
        mdns::Resolver::Config config;
        config.aggregationBase = net::ms(20);
        config.aggregationJitter = net::ms(2);
        mdnsClient = std::make_unique<mdns::Resolver>(network, config);
    } else {
        return usage();
    }

    int successes = 0;
    for (int i = 1; i <= sessions; ++i) {
        bool settled = false;
        std::vector<std::string> urls;
        const auto capture = [&settled, &urls](std::vector<std::string> found) {
            urls = std::move(found);
            settled = true;
        };
        if (slpClient) {
            slpClient->lookup("service:printer", [capture](const slp::UserAgent::Result& r) {
                capture(r.urls);
            });
        } else if (upnpClient) {
            upnpClient->search("urn:schemas-upnp-org:service:printer:1",
                               [capture](const ssdp::ControlPoint::Result& r) {
                                   capture(r.urls);
                               });
        } else {
            mdnsClient->browse("_printer._tcp.local",
                               [capture](const mdns::Resolver::Result& r) {
                                   capture(r.urls);
                               });
        }
        network.runUntil([&settled] { return settled; },
                         net::ms(timeoutMs) + net::ms(2000));
        if (settled && !urls.empty()) {
            ++successes;
            std::cout << "lookup #" << i << ": ok " << urls.front() << "\n";
        } else {
            std::cout << "lookup #" << i << ": " << (settled ? "empty" : "unsettled") << "\n";
        }
    }
    std::cout << "probe: " << successes << "/" << sessions << " lookups discovered\n";
    return successes == sessions ? 0 : 1;
}

int cmdScrape(const std::string& host, int port, const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::cerr << "probe: socket: " << std::strerror(errno) << "\n";
        return 1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        std::cerr << "probe: bad host '" << host << "'\n";
        ::close(fd);
        return 1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        std::cerr << "probe: connect " << host << ":" << port << ": "
                  << std::strerror(errno) << "\n";
        ::close(fd);
        return 1;
    }
    const std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
    if (::send(fd, request.data(), request.size(), 0) < 0) {
        std::cerr << "probe: send: " << std::strerror(errno) << "\n";
        ::close(fd);
        return 1;
    }
    std::string response;
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) break;
        response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const auto headerEnd = response.find("\r\n\r\n");
    std::cout << (headerEnd == std::string::npos ? response
                                                 : response.substr(headerEnd + 4));
    return response.rfind("HTTP/1.1 200", 0) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string command = argc >= 2 ? argv[1] : "";
    std::string proto = "slp";
    std::string bindAddress = "127.0.0.1";
    std::string host = "127.0.0.1";
    std::string path = "/metrics";
    int portBase = 0;
    int sessions = 1;
    int timeoutMs = 3000;
    int port = 0;
    int retransmitMs = 0;
    try {
        for (int i = 2; i < argc; ++i) {
            const std::string flag = argv[i];
            if (flag == "--proto" && i + 1 < argc) proto = argv[++i];
            else if (flag == "--bind" && i + 1 < argc) bindAddress = argv[++i];
            else if (flag == "--host" && i + 1 < argc) host = argv[++i];
            else if (flag == "--path" && i + 1 < argc) path = argv[++i];
            else if (flag == "--port-base" && i + 1 < argc) portBase = std::stoi(argv[++i]);
            else if (flag == "--sessions" && i + 1 < argc) sessions = std::stoi(argv[++i]);
            else if (flag == "--timeout-ms" && i + 1 < argc) timeoutMs = std::stoi(argv[++i]);
            else if (flag == "--port" && i + 1 < argc) port = std::stoi(argv[++i]);
            else if (flag == "--retransmit-ms" && i + 1 < argc) retransmitMs = std::stoi(argv[++i]);
            else return usage();
        }
        if (command == "lookup" && portBase > 0 && portBase <= 45000 && sessions >= 1 &&
            timeoutMs >= 1) {
            return cmdLookup(proto, bindAddress, portBase, sessions, timeoutMs, retransmitMs);
        }
        if (command == "scrape" && port > 0 && port <= 65535) {
            return cmdScrape(host, port, path);
        }
        return usage();
    } catch (const std::exception& error) {
        const errc::ErrorCode code = to_error_code(error);
        std::cerr << "probe: [" << errc::to_string(code) << "] " << error.what() << "\n";
        return 10 + static_cast<int>(errc::layerOf(code));
    }
}
