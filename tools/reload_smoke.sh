#!/usr/bin/env bash
# Hot-swap reload smoke: live model deployment end to end.
#
# Exercises the versioned model registry on the real-socket daemon:
#
#   (0) a serve with an unwritable --postmortem-dir must fail AT STARTUP with
#       engine.spool-unwritable naming the path (JSON envelope, engine exit
#       code) -- in both sim and os transports,
#   (a) the daemon starts serving a --models-dir export (registry v1),
#   (b) a lint-clean model update + SIGHUP mid-traffic hot-swaps to v2 with
#       zero uncoded aborts and the version bump visible in /metrics,
#   (c) a lint-BROKEN update + SIGHUP is rejected (bridge.deploy-rejected in
#       the log, reload_failures_total in /metrics) while the old version
#       keeps serving live sessions,
#   (d) SIGTERM shutdown stays clean and coded across all of it.
#
# Skips (exit 77) when the kernel does not deliver multicast on loopback
# (some CI sandboxes); retries a few port bases to dodge EADDRINUSE races.
#
# Usage: reload_smoke.sh <path-to-starlinkd> <path-to-starlink_probe> <work-dir>
#        [sessions-per-batch (default 40)]
set -uo pipefail

starlinkd="$1"
probe="$2"
workdir="$3"
sessions="${4:-40}"

rm -rf "$workdir"
mkdir -p "$workdir"
log="$workdir/daemon.log"
models="$workdir/models"

cleanup() {
    if [ -n "${daemon_pid:-}" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
}
trap cleanup EXIT

# (0) Unwritable spool dir: a regular file where the directory path needs to
# go makes create_directories fail portably, even when running as root.
blocker="$workdir/blocker"
: > "$blocker"
for mode in "--shards 1 --sessions 1" "--transport=os --case slp-to-upnp --max-seconds 1"; do
    # shellcheck disable=SC2086
    err=$("$starlinkd" serve $mode --postmortem-dir "$blocker/spool" 2>&1)
    rc=$?
    if [ "$rc" -eq 0 ]; then
        echo "FAIL: serve ($mode) accepted an unwritable postmortem dir" >&2
        exit 1
    fi
    if ! echo "$err" | grep -q "engine.spool-unwritable"; then
        echo "FAIL: serve ($mode) did not report engine.spool-unwritable:" >&2
        echo "$err" >&2
        exit 1
    fi
    if ! echo "$err" | grep -q "$blocker/spool"; then
        echo "FAIL: envelope does not name the offending path:" >&2
        echo "$err" >&2
        exit 1
    fi
done
echo "unwritable spool dir refused at startup (engine.spool-unwritable)"

# (a) Export the builtin fleet and serve it through the registry.
"$starlinkd" export "$models" > /dev/null || {
    echo "FAIL: model export failed" >&2
    exit 1
}

daemon_pid=""
started=0
for attempt in 1 2 3 4 5; do
    port_base=$((20000 + RANDOM % 20000))
    metrics_port=$((port_base + 99))
    : > "$log"
    "$starlinkd" serve --transport=os --case slp-to-upnp --with-peers \
        --port-base "$port_base" --metrics-port "$metrics_port" \
        --models-dir "$models" \
        --processing-ms 1 --max-seconds 180 > "$log" 2>&1 &
    daemon_pid=$!

    for _ in $(seq 1 50); do
        if grep -q "starlinkd\[os\]: ready" "$log"; then
            started=1
            break
        fi
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            break
        fi
        sleep 0.1
    done
    [ "$started" -eq 1 ] && break

    wait "$daemon_pid" 2>/dev/null
    rc=$?
    daemon_pid=""
    if [ "$rc" -eq 17 ] && grep -q "net.bind-conflict" "$log"; then
        echo "port base $port_base in use (attempt $attempt), retrying"
        continue
    fi
    echo "FAIL: daemon did not start (exit $rc):" >&2
    cat "$log" >&2
    exit 1
done

if [ "$started" -ne 1 ]; then
    echo "FAIL: no free port base after 5 attempts" >&2
    exit 1
fi
if ! grep -q "starlinkd\[os\]: models v1" "$log"; then
    echo "FAIL: daemon did not announce registry v1" >&2
    cat "$log" >&2
    exit 1
fi
echo "daemon up (pid $daemon_pid, port base $port_base, models v1)"

run_probe() {
    probe_out=$("$probe" lookup --proto slp --port-base "$port_base" \
                --sessions "$sessions" --timeout-ms 5000 --retransmit-ms 500 2>&1)
    probe_rc=$?
    if [ "$probe_rc" -eq 77 ]; then
        echo "SKIP: loopback multicast unusable in this sandbox" >&2
        exit 77
    fi
    if [ "$probe_rc" -ne 0 ] ||
        ! echo "$probe_out" | grep -q "probe: $sessions/$sessions lookups discovered"; then
        echo "$probe_out"
        echo "FAIL: probe batch did not discover on every lookup" >&2
        tail -10 "$log" >&2
        exit 1
    fi
}

scrape() {
    "$probe" scrape --port "$metrics_port"
}

run_probe
echo "batch 1: $sessions/$sessions on v1"
metrics_now=$(scrape)
if ! echo "$metrics_now" | grep -q "starlink_registry_active_version 1"; then
    echo "FAIL: /metrics does not show registry v1 active" >&2
    echo "$metrics_now" | grep starlink_registry >&2
    exit 1
fi

# (b) Lint-clean update: identical semantics, different bytes -- a trailing
# XML comment changes the fingerprint, so the reload publishes v2. SIGHUP
# lands while the next probe batch is in flight: the swap must slot in
# between sessions without aborting any.
printf '\n<!-- fleet update %s -->\n' "$$" >> "$models/slp.mdl.xml"
# --retransmit-ms: a request datagram landing exactly in the swap's
# close-and-rebind window is lost like any dropped UDP packet; the client
# re-asks, exactly as OpenSLP multicast convergence does.
"$probe" lookup --proto slp --port-base "$port_base" \
    --sessions "$sessions" --timeout-ms 5000 --retransmit-ms 500 \
    > "$workdir/batch2.log" 2>&1 &
probe_pid=$!
sleep 0.3
kill -HUP "$daemon_pid"
wait "$probe_pid"
batch2_rc=$?
if [ "$batch2_rc" -eq 77 ]; then
    echo "SKIP: loopback multicast unusable in this sandbox" >&2
    exit 77
fi
if [ "$batch2_rc" -ne 0 ] ||
    ! grep -q "probe: $sessions/$sessions lookups discovered" "$workdir/batch2.log"; then
    cat "$workdir/batch2.log"
    echo "FAIL: probe batch across the hot swap lost sessions" >&2
    tail -10 "$log" >&2
    exit 1
fi
# The swap applies between sessions; give the poll loop a beat, then confirm.
deadline=$((SECONDS + 10))
until grep -q "starlinkd\[os\]: serving v1 -> v2" "$log"; do
    if [ "$SECONDS" -ge "$deadline" ]; then
        echo "FAIL: SIGHUP did not hot-swap to v2" >&2
        tail -20 "$log" >&2
        exit 1
    fi
    sleep 0.2
done
metrics_now=$(scrape)
if ! echo "$metrics_now" | grep -q "starlink_registry_active_version 2"; then
    echo "FAIL: /metrics does not show the version bump to v2" >&2
    echo "$metrics_now" | grep starlink_registry >&2
    exit 1
fi
echo "batch 2: $sessions/$sessions across SIGHUP hot-swap v1 -> v2"

# (c) Lint-broken update: the candidate must be rejected and v2 keep serving.
echo "<mdl>this document is torn mid-wri" > "$models/slp.mdl.xml"
kill -HUP "$daemon_pid"
deadline=$((SECONDS + 10))
until grep -q "reload rejected \[bridge.deploy-rejected\]" "$log"; do
    if [ "$SECONDS" -ge "$deadline" ]; then
        echo "FAIL: broken candidate was not rejected" >&2
        tail -20 "$log" >&2
        exit 1
    fi
    sleep 0.2
done
run_probe
echo "batch 3: $sessions/$sessions on v2 after rejected reload"
metrics_now=$(scrape)
if ! echo "$metrics_now" | grep -q "starlink_registry_active_version 2"; then
    echo "FAIL: rejected reload disturbed the active version" >&2
    exit 1
fi
if ! echo "$metrics_now" | grep -q "starlink_registry_reload_failures_total 1"; then
    echo "FAIL: reload failure not counted in /metrics" >&2
    echo "$metrics_now" | grep starlink_registry >&2
    exit 1
fi

# (d) Clean coded shutdown across all three batches and both versions.
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_rc=$?
daemon_pid=""
if [ "$daemon_rc" -ne 0 ]; then
    echo "FAIL: daemon exit code $daemon_rc after SIGTERM" >&2
    tail -20 "$log" >&2
    exit 1
fi
total=$((sessions * 3))
if ! grep -q "starlinkd\[os\]: shutdown after .* uncoded=0" "$log"; then
    echo "FAIL: shutdown summary missing or reported uncoded aborts" >&2
    tail -20 "$log" >&2
    exit 1
fi
recorded=$(grep -c "^session #" "$log")
if [ "$recorded" -lt "$total" ]; then
    echo "FAIL: daemon recorded $recorded/$total session outcomes" >&2
    exit 1
fi

echo "reload smoke: $recorded live sessions across v1 -> v2 -> rejected reload, clean shutdown"
