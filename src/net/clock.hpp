// Virtual time.
//
// Every latency in the reproduction -- network propagation, legacy-stack
// processing windows, SLP's multi-second accumulation behaviour -- advances a
// virtual clock instead of sleeping. Benchmarks therefore report
// paper-comparable millisecond figures while running in microseconds of wall
// time, and test runs are fully deterministic (DESIGN.md section 5).
#pragma once

#include <chrono>
#include <cstdint>

namespace starlink::net {

using Duration = std::chrono::microseconds;
using TimePoint = std::chrono::time_point<std::chrono::steady_clock, Duration>;

inline Duration ms(std::int64_t v) { return std::chrono::duration_cast<Duration>(std::chrono::milliseconds(v)); }
inline Duration us(std::int64_t v) { return Duration(v); }

/// Monotonic simulated clock, starting at t=0. Only the EventScheduler
/// advances it.
class VirtualClock {
public:
    TimePoint now() const { return now_; }

    /// Advances monotonically; going backwards is a logic error and is ignored.
    void advanceTo(TimePoint t) {
        if (t > now_) now_ = t;
    }

private:
    TimePoint now_{};
};

}  // namespace starlink::net
