// In-memory simulated IP network.
//
// This is the substitution for the paper's real LAN (DESIGN.md section 1):
// it provides exactly the transport semantics that k-colored automata
// reference -- UDP unicast, UDP multicast groups, and TCP-like ordered
// streams -- plus configurable latency, jitter and loss for fault-injection
// tests. All activity is event-driven on an EventScheduler over virtual time.
//
// SimNetwork is one backend of the net::Network interface (network.hpp); the
// OS-socket backend lives in src/core/net/. Chaos knobs (FaultSchedule,
// latency models, partitions, reseeding) are sim-only by design -- they are
// what make this backend the deterministic substrate for tests and benches.
//
// Simplifications relative to a real stack (none affect the reproduced
// behaviour):
//  - datagrams are never fragmented and have no size limit;
//  - TCP is modelled as an ordered reliable message stream (chunks arrive in
//    send() units) without handshake/window dynamics -- connection setup
//    costs one latency sample, as does each chunk;
//  - multicast delivery loops back to other sockets on the same host but not
//    to the sending socket itself.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "net/scheduler.hpp"

namespace starlink::net {

/// Latency distribution for one hop: base + uniform jitter, plus a loss
/// probability applied per datagram (TCP chunks are never lost -- the real
/// protocol retransmits; we model the resulting delay as jitter instead).
struct LatencyModel {
    Duration base = us(200);
    Duration jitter = us(100);
    double lossProbability = 0.0;
};

/// One time-windowed fault over virtual time. Episodes compose with the
/// steady-state LatencyModel: a loss burst raises the effective loss
/// probability, a latency spike adds to every sampled latency, a partition
/// cuts the host exactly like partitionHost() for the window, and a connect
/// blackhole refuses every tcp connect touching the host.
struct FaultEpisode {
    enum class Kind { LossBurst, LatencySpike, Partition, ConnectBlackhole };

    Kind kind = Kind::LossBurst;
    TimePoint start{};
    Duration length = us(0);
    /// Affected host; empty string = every host.
    std::string host;
    /// LossBurst only: loss probability applied while the episode is active
    /// (composed with the steady-state model by taking the maximum).
    double lossProbability = 1.0;
    /// LatencySpike only: added to each latency sample touching `host`.
    Duration extraLatency = us(0);

    bool activeAt(TimePoint now) const { return now >= start && now < start + length; }
    bool covers(const std::string& h) const { return host.empty() || host == h; }
};

/// A declarative chaos plan: a set of fault episodes applied over virtual
/// time. Combined with the seeded Rng of the network and the scheduler's
/// deterministic ordering, an identical (seed, schedule) pair reproduces an
/// identical run, event for event.
class FaultSchedule {
public:
    FaultSchedule& add(FaultEpisode episode) {
        episodes_.push_back(std::move(episode));
        return *this;
    }
    FaultSchedule& lossBurst(TimePoint start, Duration length, double probability,
                             std::string host = "");
    FaultSchedule& latencySpike(TimePoint start, Duration length, Duration extra,
                                std::string host = "");
    FaultSchedule& partition(TimePoint start, Duration length, std::string host);
    FaultSchedule& blackhole(TimePoint start, Duration length, std::string host);

    const std::vector<FaultEpisode>& episodes() const { return episodes_; }
    bool empty() const { return episodes_.empty(); }

    /// Generates a random chaos plan over [0, horizon): loss bursts, latency
    /// spikes, partition flaps and connect blackholes against the given
    /// hosts. Fully determined by the seed.
    static FaultSchedule chaos(std::uint64_t seed, Duration horizon,
                               const std::vector<std::string>& hosts);

    /// A copy with every episode's start moved `offset` later. The sharded
    /// driver anchors a per-session chaos plan (generated over [0, horizon))
    /// at the pooled island's CURRENT virtual time, so a session's faults are
    /// a pure function of its seed no matter how much virtual time earlier
    /// sessions consumed.
    FaultSchedule shiftedBy(Duration offset) const;

private:
    std::vector<FaultEpisode> episodes_;
};

class SimNetwork;

/// The sim backend's UDP socket.
class SimUdpSocket final : public UdpSocket {
public:
    ~SimUdpSocket() override;

    const Address& localAddress() const override { return local_; }
    void joinGroup(const Address& group) override;
    void leaveGroup(const Address& group) override;
    void sendTo(const Address& dest, const Bytes& payload) override;

private:
    friend class SimNetwork;
    SimUdpSocket(SimNetwork& net, Address local) : net_(net), local_(std::move(local)) {}

    void deliver(const Bytes& payload, const Address& from);

    SimNetwork& net_;
    Address local_;
    std::set<Address> groups_;
};

/// One side of a simulated TCP-like connection.
class SimTcpConnection final : public TcpConnection {
public:
    void send(const Bytes& payload) override;
    void close() override;
    bool isOpen() const override { return open_; }
    const Address& localAddress() const override { return local_; }
    const Address& remoteAddress() const override { return remote_; }

private:
    friend class SimNetwork;
    SimTcpConnection(SimNetwork& net, Address local, Address remote)
        : net_(net), local_(std::move(local)), remote_(std::move(remote)) {}

    SimNetwork& net_;
    Address local_;
    Address remote_;
    std::weak_ptr<SimTcpConnection> peer_;
    bool open_ = true;
    /// TCP is FIFO: no chunk may overtake an earlier one even when its
    /// latency sample is smaller.
    TimePoint earliestDelivery_{};
};

/// The sim backend's TCP listener.
class SimTcpListener final : public TcpListener {
public:
    ~SimTcpListener() override;

    const Address& localAddress() const override { return local_; }

private:
    friend class SimNetwork;
    SimTcpListener(SimNetwork& net, Address local) : net_(net), local_(std::move(local)) {}

    SimNetwork& net_;
    Address local_;
};

/// The network fabric. Owns no sockets (they are RAII handles referencing it)
/// but tracks all bindings, multicast membership and host partitions.
class SimNetwork final : public Network {
public:
    SimNetwork(EventScheduler& scheduler, std::uint64_t seed = 42)
        : scheduler_(scheduler), rng_(seed) {}

    /// Tears down connections still open when the fabric dies: marks them
    /// closed (so late close() calls on user-held handles are no-ops) and
    /// drops their handlers, which commonly capture shared_ptrs back to the
    /// connection and would otherwise keep the pair alive as a cycle.
    ~SimNetwork() override;

    /// Covariant: sim-aware callers keep the full EventScheduler (runFor,
    /// runUntilIdle); interface callers see TaskScheduler.
    EventScheduler& scheduler() override { return scheduler_; }
    TimePoint now() const override { return scheduler_.clock().now(); }
    const char* backendName() const override { return "sim"; }

    /// Rewinds the fabric's random stream to a fresh seed. Called between
    /// pooled sessions by the sharded driver: combined with a seed-derived
    /// fault schedule it makes every latency/loss draw of the next session a
    /// function of that session's seed alone, which is what keeps an N-shard
    /// run bit-identical to a 1-shard run of the same jobs.
    void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

    /// Binds a UDP socket. port==0 picks an ephemeral port. Throws NetError
    /// if (host, port) is already bound.
    std::unique_ptr<UdpSocket> openUdp(const std::string& host, std::uint16_t port = 0) override;

    /// Binds a TCP listener; same binding rules as openUdp.
    std::unique_ptr<TcpListener> listenTcp(const std::string& host, std::uint16_t port) override;

    /// Initiates a connection from `host` to `dest`. The callback receives
    /// the client-side connection on success or nullptr when nobody listens
    /// on `dest` (connection refused) or the path is partitioned; `onError`
    /// additionally observes the refusal code.
    void connectTcp(const std::string& host, const Address& dest, ConnectCallback onResult,
                    ConnectErrorCallback onError = nullptr) override;

    /// Steps virtual time event by event until `done()` holds, the fabric
    /// goes idle, or `timeout` of virtual time elapses.
    bool runUntil(std::function<bool()> done, Duration timeout) override;

    // -- behaviour knobs (sim-only; excluded from net::Network) --------------
    LatencyModel& latency() { return latency_; }

    /// Overrides the latency model for traffic between two specific hosts
    /// (both directions). Link overrides compose with partitions and loss as
    /// the default model does.
    void setLinkLatency(const std::string& hostA, const std::string& hostB,
                        const LatencyModel& model);
    void clearLinkLatency(const std::string& hostA, const std::string& hostB);

    /// Cuts all traffic to and from `host` until healed. In-flight events
    /// already scheduled are not recalled (as on a real network).
    void partitionHost(const std::string& host);
    void healHost(const std::string& host);
    bool isPartitioned(const std::string& host) const;

    /// Installs (replaces) the declarative fault schedule; episodes apply to
    /// traffic whose send/connect time falls inside their window.
    void setFaultSchedule(FaultSchedule schedule) { faults_ = std::move(schedule); }
    void clearFaultSchedule() { faults_ = FaultSchedule{}; }
    const FaultSchedule& faultSchedule() const { return faults_; }

    // -- introspection (tests) ----------------------------------------------
    std::size_t datagramsSent() const { return datagramsSent_; }
    /// All drops, whatever the cause (loss + partition/blackhole).
    std::size_t datagramsDropped() const { return lossDrops_ + partitionDrops_; }
    /// Drops from random loss (steady-state model or a loss-burst episode).
    std::size_t datagramsLost() const { return lossDrops_; }
    /// Drops because a partition (explicit or scheduled) cut the path.
    std::size_t partitionDrops() const { return partitionDrops_; }
    /// Tcp connects refused: nobody listening, partition, or blackhole.
    std::size_t connectsRefused() const { return connectsRefused_; }

private:
    friend class SimUdpSocket;
    friend class SimTcpConnection;
    friend class SimTcpListener;

    Duration sampleLatency();
    Duration sampleLatency(const std::string& from, const std::string& to);
    const LatencyModel& modelFor(const std::string& from, const std::string& to) const;
    bool pathUp(const std::string& a, const std::string& b) const;
    double effectiveLoss(const std::string& a, const std::string& b) const;
    Duration faultExtraLatency(const std::string& a, const std::string& b) const;
    bool faultBlackholed(const std::string& host) const;
    std::uint16_t ephemeralPort(const std::string& host);

    void udpUnbind(SimUdpSocket* socket);
    void udpSend(SimUdpSocket& from, const Address& dest, const Bytes& payload);
    void joinGroup(SimUdpSocket* socket, const Address& group);
    void leaveGroup(SimUdpSocket* socket, const Address& group);
    void tcpUnbind(SimTcpListener* listener);
    void tcpSend(SimTcpConnection& from, const Bytes& payload);
    void tcpClose(SimTcpConnection& from);

    EventScheduler& scheduler_;
    Rng rng_;
    LatencyModel latency_;
    std::map<std::pair<std::string, std::string>, LatencyModel> linkLatency_;

    std::map<Address, SimUdpSocket*> udpBindings_;
    std::map<Address, std::set<SimUdpSocket*>> groups_;  // (group ip, port) -> members
    std::map<Address, SimTcpListener*> tcpBindings_;
    // Open connections stay alive even when user code drops its handles --
    // like real sockets, they exist until closed (or the network dies).
    std::set<std::shared_ptr<SimTcpConnection>> aliveTcp_;
    std::map<std::string, std::uint16_t> nextEphemeral_;
    std::set<std::string> partitioned_;
    FaultSchedule faults_;

    std::size_t datagramsSent_ = 0;
    std::size_t lossDrops_ = 0;
    std::size_t partitionDrops_ = 0;
    std::size_t connectsRefused_ = 0;
};

}  // namespace starlink::net
