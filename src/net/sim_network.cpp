#include "net/sim_network.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/telemetry/metrics.hpp"

namespace starlink::net {

namespace {

// Process-wide wire/fault counters, mirroring the per-instance tallies so an
// exported Prometheus snapshot can attribute drops to their injected cause.
// Resolved lazily on first (telemetry-enabled) use.
struct WireCounters {
    telemetry::Counter* datagramsSent;
    telemetry::Counter* lossDrops;
    telemetry::Counter* partitionDrops;
    telemetry::Counter* latencySpikes;
    telemetry::Counter* connectsRefused;
    telemetry::Counter* blackholes;
};

const WireCounters& wireCounters() {
    static const WireCounters counters = [] {
        auto& r = telemetry::MetricsRegistry::global();
        const auto fault = [&r](const char* kind) {
            return &r.counter(
                telemetry::labeled("starlink_net_fault_injections_total", {{"kind", kind}}));
        };
        return WireCounters{&r.counter("starlink_net_datagrams_sent_total"),
                            fault("loss"),
                            fault("partition"),
                            fault("latency-spike"),
                            &r.counter("starlink_net_connects_refused_total"),
                            fault("blackhole")};
    }();
    return counters;
}

}  // namespace

// ---------------------------------------------------------------------------
// SimUdpSocket

SimUdpSocket::~SimUdpSocket() {
    for (const Address& group : std::set<Address>(groups_)) {
        net_.leaveGroup(this, group);
    }
    net_.udpUnbind(this);
}

void SimUdpSocket::joinGroup(const Address& group) {
    if (!group.isMulticast()) {
        throw NetError(errc::ErrorCode::NetMisuse,
                       "joinGroup: " + group.toString() + " is not a multicast address");
    }
    net_.joinGroup(this, group);
    groups_.insert(group);
}

void SimUdpSocket::leaveGroup(const Address& group) {
    net_.leaveGroup(this, group);
    groups_.erase(group);
}

void SimUdpSocket::sendTo(const Address& dest, const Bytes& payload) {
    net_.udpSend(*this, dest, payload);
}

void SimUdpSocket::deliver(const Bytes& payload, const Address& from) {
    if (handler_) handler_(payload, from);
}

// ---------------------------------------------------------------------------
// SimTcpConnection

void SimTcpConnection::send(const Bytes& payload) {
    if (!open_) {
        throw NetError(errc::ErrorCode::NetClosedSend,
                       "send on closed connection to " + remote_.toString());
    }
    net_.tcpSend(*this, payload);
}

void SimTcpConnection::close() {
    if (!open_) return;
    open_ = false;
    net_.tcpClose(*this);
    // Handlers commonly capture a shared_ptr to this connection; a closed
    // connection never fires them again, so drop them to break the cycle.
    // (Invocation sites call through a copy, so a handler that closes its
    // own connection never destroys the closure it is executing.)
    dataHandler_ = nullptr;
    closeHandler_ = nullptr;
}

// ---------------------------------------------------------------------------
// SimTcpListener

SimTcpListener::~SimTcpListener() { net_.tcpUnbind(this); }

// ---------------------------------------------------------------------------
// SimNetwork

namespace {
std::pair<std::string, std::string> linkKey(const std::string& a, const std::string& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

// ---------------------------------------------------------------------------
// FaultSchedule

FaultSchedule& FaultSchedule::lossBurst(TimePoint start, Duration length, double probability,
                                        std::string host) {
    FaultEpisode episode;
    episode.kind = FaultEpisode::Kind::LossBurst;
    episode.start = start;
    episode.length = length;
    episode.lossProbability = probability;
    episode.host = std::move(host);
    return add(std::move(episode));
}

FaultSchedule& FaultSchedule::latencySpike(TimePoint start, Duration length, Duration extra,
                                           std::string host) {
    FaultEpisode episode;
    episode.kind = FaultEpisode::Kind::LatencySpike;
    episode.start = start;
    episode.length = length;
    episode.extraLatency = extra;
    episode.host = std::move(host);
    return add(std::move(episode));
}

FaultSchedule& FaultSchedule::partition(TimePoint start, Duration length, std::string host) {
    FaultEpisode episode;
    episode.kind = FaultEpisode::Kind::Partition;
    episode.start = start;
    episode.length = length;
    episode.host = std::move(host);
    return add(std::move(episode));
}

FaultSchedule& FaultSchedule::blackhole(TimePoint start, Duration length, std::string host) {
    FaultEpisode episode;
    episode.kind = FaultEpisode::Kind::ConnectBlackhole;
    episode.start = start;
    episode.length = length;
    episode.host = std::move(host);
    return add(std::move(episode));
}

FaultSchedule FaultSchedule::shiftedBy(Duration offset) const {
    FaultSchedule out;
    for (FaultEpisode episode : episodes_) {
        episode.start += offset;
        out.add(std::move(episode));
    }
    return out;
}

FaultSchedule FaultSchedule::chaos(std::uint64_t seed, Duration horizon,
                                   const std::vector<std::string>& hosts) {
    Rng rng(seed);
    FaultSchedule out;
    const std::int64_t horizonUs = horizon.count();
    if (horizonUs <= 0) return out;
    const int episodes = static_cast<int>(6 + rng.range(0, 6));
    for (int i = 0; i < episodes; ++i) {
        const TimePoint start = TimePoint{} + us(rng.range(0, horizonUs));
        const Duration length = us(rng.range(horizonUs / 100 + 1, horizonUs / 10 + 1));
        const std::string host =
            hosts.empty() ? std::string{}
                          : hosts[static_cast<std::size_t>(
                                rng.range(0, static_cast<std::int64_t>(hosts.size()) - 1))];
        switch (rng.range(0, 3)) {
            case 0:
                out.lossBurst(start, length, 0.5 + rng.uniform() * 0.5, host);
                break;
            case 1:
                out.latencySpike(start, length, ms(rng.range(50, 500)), host);
                break;
            case 2:
                out.partition(start, length, host);
                break;
            default:
                out.blackhole(start, length, host);
                break;
        }
    }
    return out;
}

void SimNetwork::setLinkLatency(const std::string& hostA, const std::string& hostB,
                                const LatencyModel& model) {
    linkLatency_[linkKey(hostA, hostB)] = model;
}

void SimNetwork::clearLinkLatency(const std::string& hostA, const std::string& hostB) {
    linkLatency_.erase(linkKey(hostA, hostB));
}

const LatencyModel& SimNetwork::modelFor(const std::string& from, const std::string& to) const {
    const auto it = linkLatency_.find(linkKey(from, to));
    return it == linkLatency_.end() ? latency_ : it->second;
}

Duration SimNetwork::sampleLatency() {
    const auto jitterUs = latency_.jitter.count();
    const Duration jitter = jitterUs > 0 ? us(rng_.range(0, jitterUs)) : us(0);
    return latency_.base + jitter;
}

Duration SimNetwork::sampleLatency(const std::string& from, const std::string& to) {
    const LatencyModel& model = modelFor(from, to);
    const auto jitterUs = model.jitter.count();
    const Duration jitter = jitterUs > 0 ? us(rng_.range(0, jitterUs)) : us(0);
    const Duration extra = faultExtraLatency(from, to);
    if (extra.count() > 0 && telemetry::enabled()) wireCounters().latencySpikes->add();
    return model.base + jitter + extra;
}

bool SimNetwork::pathUp(const std::string& a, const std::string& b) const {
    if (partitioned_.contains(a) || partitioned_.contains(b)) return false;
    const TimePoint t = now();
    for (const FaultEpisode& episode : faults_.episodes()) {
        if (episode.kind != FaultEpisode::Kind::Partition || !episode.activeAt(t)) continue;
        if (episode.covers(a) || episode.covers(b)) return false;
    }
    return true;
}

double SimNetwork::effectiveLoss(const std::string& a, const std::string& b) const {
    double loss = modelFor(a, b).lossProbability;
    const TimePoint t = now();
    for (const FaultEpisode& episode : faults_.episodes()) {
        if (episode.kind != FaultEpisode::Kind::LossBurst || !episode.activeAt(t)) continue;
        if (episode.covers(a) || episode.covers(b)) loss = std::max(loss, episode.lossProbability);
    }
    return loss;
}

Duration SimNetwork::faultExtraLatency(const std::string& a, const std::string& b) const {
    Duration extra = us(0);
    const TimePoint t = now();
    for (const FaultEpisode& episode : faults_.episodes()) {
        if (episode.kind != FaultEpisode::Kind::LatencySpike || !episode.activeAt(t)) continue;
        if (episode.covers(a) || episode.covers(b)) extra += episode.extraLatency;
    }
    return extra;
}

bool SimNetwork::faultBlackholed(const std::string& host) const {
    const TimePoint t = now();
    for (const FaultEpisode& episode : faults_.episodes()) {
        if (episode.kind != FaultEpisode::Kind::ConnectBlackhole || !episode.activeAt(t)) continue;
        if (episode.covers(host)) return true;
    }
    return false;
}

std::uint16_t SimNetwork::ephemeralPort(const std::string& host) {
    std::uint16_t& next = nextEphemeral_[host];
    if (next < 49152) next = 49152;
    // Skip ports that are already bound (either protocol) on this host.
    for (int attempts = 0; attempts < 16384; ++attempts) {
        const std::uint16_t candidate = next++;
        const Address addr{host, candidate};
        if (!udpBindings_.contains(addr) && !tcpBindings_.contains(addr)) return candidate;
    }
    throw NetError(errc::ErrorCode::NetBindConflict,
                   "ephemeral port space exhausted on " + host);
}

std::unique_ptr<UdpSocket> SimNetwork::openUdp(const std::string& host, std::uint16_t port) {
    if (port == 0) port = ephemeralPort(host);
    const Address local{host, port};
    if (udpBindings_.contains(local)) {
        throw NetError(errc::ErrorCode::NetBindConflict,
                       "udp bind: " + local.toString() + " already in use");
    }
    auto socket = std::unique_ptr<SimUdpSocket>(new SimUdpSocket(*this, local));
    udpBindings_[local] = socket.get();
    return socket;
}

void SimNetwork::udpUnbind(SimUdpSocket* socket) { udpBindings_.erase(socket->localAddress()); }

void SimNetwork::joinGroup(SimUdpSocket* socket, const Address& group) {
    groups_[group].insert(socket);
}

void SimNetwork::leaveGroup(SimUdpSocket* socket, const Address& group) {
    const auto it = groups_.find(group);
    if (it == groups_.end()) return;
    it->second.erase(socket);
    if (it->second.empty()) groups_.erase(it);
}

void SimNetwork::udpSend(SimUdpSocket& from, const Address& dest, const Bytes& payload) {
    ++datagramsSent_;
    if (telemetry::enabled()) wireCounters().datagramsSent->add();
    const Address source = from.localAddress();

    // Determine recipients now (membership at send time), deliver later.
    std::vector<SimUdpSocket*> recipients;
    if (dest.isMulticast()) {
        const auto it = groups_.find(dest);
        if (it != groups_.end()) {
            for (SimUdpSocket* member : it->second) {
                if (member != &from) recipients.push_back(member);
            }
        }
    } else {
        const auto it = udpBindings_.find(dest);
        if (it != udpBindings_.end()) recipients.push_back(it->second);
    }

    for (SimUdpSocket* recipient : recipients) {
        if (!pathUp(source.host, recipient->localAddress().host)) {
            ++partitionDrops_;
            if (telemetry::enabled()) wireCounters().partitionDrops->add();
            continue;
        }
        const double loss = effectiveLoss(source.host, recipient->localAddress().host);
        if (loss > 0.0 && rng_.chance(loss)) {
            ++lossDrops_;
            if (telemetry::enabled()) wireCounters().lossDrops->add();
            continue;
        }
        const Address target = recipient->localAddress();
        scheduler_.schedule(sampleLatency(source.host, target.host),
                            [this, target, payload, source] {
            // Re-resolve: the socket may have been closed in flight.
            const auto it = udpBindings_.find(target);
            if (it != udpBindings_.end()) it->second->deliver(payload, source);
        });
    }
}

std::unique_ptr<TcpListener> SimNetwork::listenTcp(const std::string& host, std::uint16_t port) {
    const Address local{host, port};
    if (tcpBindings_.contains(local)) {
        throw NetError(errc::ErrorCode::NetBindConflict,
                       "tcp bind: " + local.toString() + " already in use");
    }
    auto listener = std::unique_ptr<SimTcpListener>(new SimTcpListener(*this, local));
    tcpBindings_[local] = listener.get();
    return listener;
}

void SimNetwork::tcpUnbind(SimTcpListener* listener) { tcpBindings_.erase(listener->localAddress()); }

void SimNetwork::connectTcp(const std::string& host, const Address& dest,
                            ConnectCallback onResult, ConnectErrorCallback onError) {
    scheduler_.schedule(sampleLatency(host, dest.host),
                        [this, host, dest, onResult = std::move(onResult),
                         onError = std::move(onError)] {
        const auto it = tcpBindings_.find(dest);
        const bool blackholed = faultBlackholed(host) || faultBlackholed(dest.host);
        if (it == tcpBindings_.end() || !pathUp(host, dest.host) || blackholed) {
            ++connectsRefused_;
            if (telemetry::enabled()) {
                wireCounters().connectsRefused->add();
                if (blackholed) wireCounters().blackholes->add();
            }
            if (onError) {
                onError(errc::ErrorCode::NetConnectRefused,
                        blackholed ? "connect to " + dest.toString() + " blackholed"
                                   : "connect to " + dest.toString() + " refused");
            }
            onResult(nullptr);
            return;
        }
        const Address clientAddr{host, ephemeralPort(host)};
        auto client =
            std::shared_ptr<SimTcpConnection>(new SimTcpConnection(*this, clientAddr, dest));
        auto server =
            std::shared_ptr<SimTcpConnection>(new SimTcpConnection(*this, dest, clientAddr));
        client->peer_ = server;
        server->peer_ = client;
        aliveTcp_.insert(client);
        aliveTcp_.insert(server);
        if (it->second->handler_) it->second->handler_(server);
        onResult(client);
    });
}

bool SimNetwork::runUntil(std::function<bool()> done, Duration timeout) {
    const TimePoint deadline = now() + timeout;
    while (!done()) {
        if (now() >= deadline) break;
        if (!scheduler_.runOneBefore(deadline)) break;  // idle: clock is at deadline
    }
    return done();
}

void SimNetwork::tcpSend(SimTcpConnection& from, const Bytes& payload) {
    auto peer = from.peer_.lock();
    if (!peer || !peer->open_) return;  // peer already gone; data vanishes as on RST
    if (!pathUp(from.local_.host, peer->local_.host)) return;
    TimePoint deliverAt =
        scheduler_.clock().now() + sampleLatency(from.local_.host, peer->local_.host);
    if (deliverAt < peer->earliestDelivery_) deliverAt = peer->earliestDelivery_;
    peer->earliestDelivery_ = deliverAt;  // ties keep insertion order in the scheduler
    scheduler_.scheduleAt(deliverAt, [peer, payload] {
        if (!peer->open_) return;
        const auto handler = peer->dataHandler_;  // copy: handler may close() the connection
        if (handler) handler(payload);
    });
}

void SimNetwork::tcpClose(SimTcpConnection& from) {
    auto peer = from.peer_.lock();
    aliveTcp_.erase(std::static_pointer_cast<SimTcpConnection>(from.shared_from_this()));
    if (!peer) return;
    if (!peer->open_) {
        aliveTcp_.erase(peer);
        return;
    }
    // A close is a FIN: it must not overtake data already in flight on the
    // same connection.
    TimePoint deliverAt =
        scheduler_.clock().now() + sampleLatency(from.local_.host, peer->local_.host);
    if (deliverAt < peer->earliestDelivery_) deliverAt = peer->earliestDelivery_;
    peer->earliestDelivery_ = deliverAt;
    scheduler_.scheduleAt(deliverAt, [this, peer] {
        aliveTcp_.erase(peer);
        if (!peer->open_) return;
        peer->open_ = false;
        const auto handler = peer->closeHandler_;
        peer->dataHandler_ = nullptr;  // break handler -> shared_ptr -> connection cycles
        peer->closeHandler_ = nullptr;
        if (handler) handler();
    });
}

SimNetwork::~SimNetwork() {
    for (const auto& connection : aliveTcp_) {
        connection->open_ = false;
        connection->dataHandler_ = nullptr;
        connection->closeHandler_ = nullptr;
    }
}

void SimNetwork::partitionHost(const std::string& host) { partitioned_.insert(host); }
void SimNetwork::healHost(const std::string& host) { partitioned_.erase(host); }
bool SimNetwork::isPartitioned(const std::string& host) const { return partitioned_.contains(host); }

}  // namespace starlink::net
