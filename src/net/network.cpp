#include "net/network.hpp"

#include "common/strings.hpp"

namespace starlink::net {

bool Address::isMulticast() const {
    // 224.0.0.0/4: first octet 224..239.
    const auto dot = host.find('.');
    if (dot == std::string::npos) return false;
    const auto octet = parseInt(std::string_view(host).substr(0, dot));
    return octet.has_value() && *octet >= 224 && *octet <= 239;
}

}  // namespace starlink::net
