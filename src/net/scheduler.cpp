#include "net/scheduler.hpp"

namespace starlink::net {

EventId EventScheduler::schedule(Duration delay, std::function<void()> fn) {
    return scheduleAt(clock_.now() + delay, std::move(fn));
}

EventId EventScheduler::scheduleAt(TimePoint when, std::function<void()> fn) {
    if (when < clock_.now()) when = clock_.now();
    const Key key{when, nextSeq_++};
    queue_.emplace(key, std::move(fn));
    index_.emplace(key.seq, key);
    return key.seq;
}

bool EventScheduler::cancel(EventId id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    queue_.erase(it->second);
    index_.erase(it);
    return true;
}

void EventScheduler::runUntilIdle(std::size_t maxEvents) {
    std::size_t executed = 0;
    while (!queue_.empty() && executed < maxEvents) {
        auto it = queue_.begin();
        const Key key = it->first;
        auto fn = std::move(it->second);
        queue_.erase(it);
        index_.erase(key.seq);
        clock_.advanceTo(key.when);
        fn();
        ++executed;
    }
}

bool EventScheduler::runOneBefore(TimePoint limit) {
    if (queue_.empty() || queue_.begin()->first.when > limit) {
        clock_.advanceTo(limit);
        return false;
    }
    auto it = queue_.begin();
    const Key key = it->first;
    auto fn = std::move(it->second);
    queue_.erase(it);
    index_.erase(key.seq);
    clock_.advanceTo(key.when);
    fn();
    return true;
}

void EventScheduler::runFor(Duration window) {
    const TimePoint deadline = clock_.now() + window;
    while (!queue_.empty() && queue_.begin()->first.when <= deadline) {
        auto it = queue_.begin();
        const Key key = it->first;
        auto fn = std::move(it->second);
        queue_.erase(it);
        index_.erase(key.seq);
        clock_.advanceTo(key.when);
        fn();
    }
    clock_.advanceTo(deadline);
}

}  // namespace starlink::net
