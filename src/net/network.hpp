// The transport abstraction every engine layer programs against.
//
// Two backends implement it (DESIGN.md section 5j, docs/TRANSPORT.md):
//  - net::SimNetwork  -- the in-memory discrete-event fabric over virtual
//    time; deterministic, supports chaos injection, drives all benches.
//  - net::OsNetwork   -- real non-blocking UDP/TCP sockets on an epoll event
//    loop over the wall clock (src/core/net/), used by the live daemon.
//
// The interface is deliberately the *intersection* the engines need: socket
// factories, a clock, and deferred-task scheduling. Backend-specific powers
// (fault schedules, latency knobs, reseeding on the sim side; bind addresses
// and port bases on the OS side) stay on the concrete classes -- code that
// needs them must name the backend, which keeps the determinism contract
// auditable: anything typed `Network&` runs identically on both.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "core/error/error_code.hpp"
#include "net/clock.hpp"

namespace starlink::net {

/// An (ip, port) endpoint. Multicast groups are addresses in 224.0.0.0/4.
/// On the sim backend hosts are free-form labels ("10.0.0.9"); on the OS
/// backend such logical hosts are mapped onto loopback endpoints, while
/// literal loopback addresses pass through untouched.
struct Address {
    std::string host;
    std::uint16_t port = 0;

    bool operator==(const Address&) const = default;
    bool operator<(const Address& other) const {
        return host != other.host ? host < other.host : port < other.port;
    }
    std::string toString() const { return host + ":" + std::to_string(port); }

    /// True for 224.0.0.0 - 239.255.255.255.
    bool isMulticast() const;
};

using EventId = std::uint64_t;

/// Deferred-task scheduling, over whichever clock the backend runs on.
/// EventScheduler (virtual time) and the OS backend's timer wheel (wall
/// clock) both implement it, so protocol agents and engines schedule
/// timeouts without knowing which world they live in.
class TaskScheduler {
public:
    virtual ~TaskScheduler() = default;

    /// Schedules `fn` to run `delay` after the current backend time.
    virtual EventId schedule(Duration delay, std::function<void()> fn) = 0;

    /// Cancels a pending task; returns false if it already ran or is unknown.
    virtual bool cancel(EventId id) = 0;
};

/// A bound UDP socket. Obtained from Network::openUdp(); closing happens via
/// RAII. Handler storage lives here so every backend shares the registration
/// semantics (replacing any previous handler).
class UdpSocket {
public:
    using DatagramHandler = std::function<void(const Bytes&, const Address& from)>;

    virtual ~UdpSocket() = default;
    UdpSocket(const UdpSocket&) = delete;
    UdpSocket& operator=(const UdpSocket&) = delete;

    virtual const Address& localAddress() const = 0;

    /// Registers the receive callback (replaces any previous one).
    void onDatagram(DatagramHandler handler) { handler_ = std::move(handler); }

    /// Joins a multicast group; datagrams sent to (group, this socket's port)
    /// will be delivered here. Never to the sending socket itself, on either
    /// backend.
    virtual void joinGroup(const Address& group) = 0;
    virtual void leaveGroup(const Address& group) = 0;

    /// Sends a datagram to a unicast or multicast destination.
    virtual void sendTo(const Address& dest, const Bytes& payload) = 0;

protected:
    UdpSocket() = default;
    DatagramHandler handler_;
};

/// One side of an established TCP connection. Both backends deliver data as
/// ordered message chunks: the sim models one chunk per send(), the OS
/// backend length-prefixes frames on the wire to preserve the same boundary
/// semantics (docs/TRANSPORT.md).
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
public:
    using DataHandler = std::function<void(const Bytes&)>;
    using CloseHandler = std::function<void()>;

    virtual ~TcpConnection() = default;

    /// Sends one ordered chunk to the peer. Throws NetError if closed.
    virtual void send(const Bytes& payload) = 0;

    void onData(DataHandler handler) { dataHandler_ = std::move(handler); }
    void onClose(CloseHandler handler) { closeHandler_ = std::move(handler); }

    /// Closes both directions; the peer's onClose fires asynchronously.
    virtual void close() = 0;

    virtual bool isOpen() const = 0;
    virtual const Address& localAddress() const = 0;
    virtual const Address& remoteAddress() const = 0;

protected:
    TcpConnection() = default;
    DataHandler dataHandler_;
    CloseHandler closeHandler_;
};

/// A TCP listener bound to an (ip, port).
class TcpListener {
public:
    using AcceptHandler = std::function<void(std::shared_ptr<TcpConnection>)>;

    virtual ~TcpListener() = default;
    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    virtual const Address& localAddress() const = 0;
    void onAccept(AcceptHandler handler) { handler_ = std::move(handler); }

protected:
    TcpListener() = default;
    AcceptHandler handler_;
};

/// The transport backend: socket factory + clock + scheduler + event pump.
class Network {
public:
    using ConnectCallback = std::function<void(std::shared_ptr<TcpConnection>)>;
    /// Optional observer for coded connect failures (net.* block). The
    /// primary callback still receives nullptr on failure, so call sites
    /// that only care about success/failure need not register one.
    using ConnectErrorCallback = std::function<void(errc::ErrorCode, const std::string&)>;

    virtual ~Network() = default;

    /// Deferred tasks over this backend's clock.
    virtual TaskScheduler& scheduler() = 0;

    /// Current backend time: virtual for the sim, monotonic wall clock
    /// (relative to backend construction) for the OS backend, so telemetry
    /// stamps mean the same thing in both worlds.
    virtual TimePoint now() const = 0;

    /// Binds a UDP socket. port==0 picks an ephemeral port. Throws NetError
    /// (net.bind-conflict / net.bind-failed / net.fd-exhausted) on failure.
    virtual std::unique_ptr<UdpSocket> openUdp(const std::string& host,
                                               std::uint16_t port = 0) = 0;

    /// Binds a TCP listener; same binding rules and error codes as openUdp.
    virtual std::unique_ptr<TcpListener> listenTcp(const std::string& host,
                                                   std::uint16_t port) = 0;

    /// Initiates a connection from `host` to `dest`. `onResult` receives the
    /// client-side connection on success or nullptr on refusal; `onError`,
    /// when given, additionally receives the taxonomy code of the failure.
    virtual void connectTcp(const std::string& host, const Address& dest,
                            ConnectCallback onResult,
                            ConnectErrorCallback onError = nullptr) = 0;

    /// Pumps the backend until `done()` holds, the backend goes idle (sim) or
    /// `timeout` of backend time elapses. Returns done()'s final value. This
    /// is how tests and tools drive either backend generically.
    virtual bool runUntil(std::function<bool()> done, Duration timeout) = 0;

    /// "sim" or "os" -- for logs, test names and the conformance matrix.
    virtual const char* backendName() const = 0;
};

}  // namespace starlink::net
