// Discrete-event scheduler driving the simulated network.
//
// All network deliveries, protocol timers and legacy-stack processing delays
// are events. Execution is single-threaded: callbacks run inside run*() in
// strict (time, insertion) order, which makes every interleaving
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "net/clock.hpp"

namespace starlink::net {

using EventId = std::uint64_t;

class EventScheduler {
public:
    explicit EventScheduler(VirtualClock& clock) : clock_(clock) {}

    /// Schedules `fn` to run `delay` after the current virtual time.
    EventId schedule(Duration delay, std::function<void()> fn);

    /// Schedules at an absolute virtual time (clamped to now if in the past).
    EventId scheduleAt(TimePoint when, std::function<void()> fn);

    /// Cancels a pending event; returns false if it already ran or is unknown.
    bool cancel(EventId id);

    /// Runs events until the queue drains. `maxEvents` guards against
    /// accidental infinite event loops in tests.
    void runUntilIdle(std::size_t maxEvents = 1'000'000);

    /// Runs all events with time <= now + window, then advances the clock to
    /// exactly now + window (even if idle earlier).
    void runFor(Duration window);

    std::size_t pendingEvents() const { return queue_.size(); }
    VirtualClock& clock() { return clock_; }

private:
    struct Key {
        TimePoint when;
        std::uint64_t seq;
        bool operator<(const Key& other) const {
            return when != other.when ? when < other.when : seq < other.seq;
        }
    };

    VirtualClock& clock_;
    std::map<Key, std::function<void()>> queue_;
    std::map<EventId, Key> index_;
    std::uint64_t nextSeq_ = 1;
};

}  // namespace starlink::net
