// Discrete-event scheduler driving the simulated network.
//
// All network deliveries, protocol timers and legacy-stack processing delays
// are events. Execution is single-threaded: callbacks run inside run*() in
// strict (time, insertion) order, which makes every interleaving
// reproducible. Implements net::TaskScheduler so engines and agents can
// schedule deferred work without naming the backend (the OS backend supplies
// a wall-clock implementation of the same interface).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "net/clock.hpp"
#include "net/network.hpp"

namespace starlink::net {

class EventScheduler final : public TaskScheduler {
public:
    explicit EventScheduler(VirtualClock& clock) : clock_(clock) {}

    /// Schedules `fn` to run `delay` after the current virtual time.
    EventId schedule(Duration delay, std::function<void()> fn) override;

    /// Schedules at an absolute virtual time (clamped to now if in the past).
    EventId scheduleAt(TimePoint when, std::function<void()> fn);

    /// Cancels a pending event; returns false if it already ran or is unknown.
    bool cancel(EventId id) override;

    /// Runs events until the queue drains. `maxEvents` guards against
    /// accidental infinite event loops in tests.
    void runUntilIdle(std::size_t maxEvents = 1'000'000);

    /// Runs all events with time <= now + window, then advances the clock to
    /// exactly now + window (even if idle earlier).
    void runFor(Duration window);

    /// Runs the single earliest pending event if it is due at or before
    /// `limit`. Returns true if one ran; otherwise (idle, or the next event
    /// lies beyond the limit) advances the clock to `limit` and returns
    /// false. This is the stepping primitive behind SimNetwork::runUntil.
    bool runOneBefore(TimePoint limit);

    std::size_t pendingEvents() const { return queue_.size(); }
    VirtualClock& clock() { return clock_; }

private:
    struct Key {
        TimePoint when;
        std::uint64_t seq;
        bool operator<(const Key& other) const {
            return when != other.when ? when < other.when : seq < other.seq;
        }
    };

    VirtualClock& clock_;
    std::map<Key, std::function<void()>> queue_;
    std::map<EventId, Key> index_;
    std::uint64_t nextSeq_ = 1;
};

}  // namespace starlink::net
