// MessageCodec: the runtime-specialised parser/composer pair of Fig 6.
//
// A codec owns one MDL document and dispatches to the matching dialect
// interpreter. This is the component the Starlink framework instantiates per
// protocol when a bridge is deployed: "An SLP MDL would specialise a message
// composer and parser component".
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/mdl/binary_codec.hpp"
#include "core/mdl/spec.hpp"
#include "core/mdl/text_codec.hpp"
#include "core/mdl/xml_codec.hpp"
#include "core/message/abstract_message.hpp"
#include "core/telemetry/metrics.hpp"

namespace starlink::mdl {

class MessageCodec {
public:
    /// Builds a codec from MDL XML. The registry defaults to the built-in
    /// marshallers; pass a custom one to extend the type system at runtime.
    static std::shared_ptr<MessageCodec> fromXml(
        const std::string& mdlXml,
        std::shared_ptr<MarshallerRegistry> registry = MarshallerRegistry::withDefaults());

    static std::shared_ptr<MessageCodec> fromDocument(
        MdlDocument doc,
        std::shared_ptr<MarshallerRegistry> registry = MarshallerRegistry::withDefaults());

    /// Network bytes -> abstract message; nullopt when they do not conform.
    std::optional<AbstractMessage> parse(const Bytes& data, std::string* error = nullptr) const {
        return parse(data, nullptr, error);
    }

    /// Zero-copy parse: with an arena, String/Bytes field values borrow from
    /// a single copy of the datagram stored there (valid until the arena
    /// resets -- the engine resets at session boundaries). nullptr arena
    /// keeps the fully-owning behaviour; both paths accept/reject and parse
    /// identically (content-wise), which the differential fuzzer enforces.
    std::optional<AbstractMessage> parse(const Bytes& data, RxArena* arena,
                                         std::string* error) const;

    /// Abstract message -> network bytes; throws on spec violations.
    Bytes compose(const AbstractMessage& message) const;

    /// compose() into a caller-owned buffer (cleared first); lets a session
    /// reuse one allocation across messages.
    void composeInto(const AbstractMessage& message, Bytes& out) const;

    /// The pre-plan interpreter paths, re-deriving everything from the
    /// document per message. Reference semantics for tests and benchmarks.
    std::optional<AbstractMessage> parseInterpreted(const Bytes& data,
                                                    std::string* error = nullptr) const;
    Bytes composeInterpreted(const AbstractMessage& message) const;

    /// The codec plan compiled at load time for the active dialect.
    const CodecPlan& plan() const;

    const MdlDocument& document() const { return doc_; }
    const std::string& protocol() const { return doc_.protocol(); }

private:
    MessageCodec(MdlDocument doc, std::shared_ptr<MarshallerRegistry> registry);

    /// Per-path telemetry hooks, resolved once at load time (alongside the
    /// CodecPlan) so the parse/compose hot paths record through cached
    /// pointers. Recording is skipped entirely -- one relaxed flag load --
    /// unless telemetry::setEnabled(true) was called.
    struct PathMetrics {
        telemetry::Histogram* ns = nullptr;       // per-op wall nanoseconds
        telemetry::Counter* bytes = nullptr;      // wire bytes through the path
        telemetry::Counter* ops = nullptr;        // operations attempted
        telemetry::Counter* errors = nullptr;     // parse rejections / throws
    };
    PathMetrics registerPath(const char* op, const char* path) const;

    MdlDocument doc_;
    std::shared_ptr<MarshallerRegistry> registry_;
    std::unique_ptr<BinaryCodec> binary_;
    std::unique_ptr<TextCodec> text_;
    std::unique_ptr<XmlCodec> xml_;
    PathMetrics parsePlan_, parseInterp_, composePlan_, composeInterp_;
};

}  // namespace starlink::mdl
