// Generic XML message parser/composer -- the third MDL dialect the paper
// names ("specialised languages for binary messages, text messages and XML
// messages can be plugged into the framework", section IV-A).
//
// An xml-dialect MDL maps field labels to element paths below the document
// root; parsing lifts each addressed element's text into a primitive field
// (typed through <Types> like the text dialect), composing builds the
// document back, materialising missing elements along each path. Messages
// are selected by the usual <Rule> over parsed header fields -- for SOAP-
// style protocols that is typically the Action header.
//
// The hot path executes a CodecPlan compiled at construction (element paths
// pre-split, type names and ValueTypes resolved); the pre-plan interpreter
// is retained as parseInterpreted/composeInterpreted for differential
// testing and as the benchmark baseline.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/mdl/marshaller.hpp"
#include "core/mdl/plan.hpp"
#include "core/mdl/spec.hpp"
#include "core/message/abstract_message.hpp"

namespace starlink::mdl {

class RxArena;

class XmlCodec {
public:
    XmlCodec(const MdlDocument& doc, std::shared_ptr<MarshallerRegistry> registry);

    std::optional<AbstractMessage> parse(const Bytes& data, std::string* error = nullptr) const {
        return parse(data, nullptr, error);
    }

    /// Zero-copy-ish parse: with an arena, untyped element text is interned
    /// into it and String field values become views -- valid until the arena
    /// resets. (The DOM itself still owns entity-decoded text; the arena
    /// saves the per-field value allocation.) nullptr arena keeps the
    /// fully-owning behaviour.
    std::optional<AbstractMessage> parse(const Bytes& data, RxArena* arena,
                                         std::string* error) const;

    Bytes compose(const AbstractMessage& message) const;

    /// compose() into a caller-owned buffer (cleared first); lets a session
    /// reuse one allocation across messages.
    void composeInto(const AbstractMessage& message, Bytes& out) const;

    /// The pre-plan interpreter, re-deriving everything from the document
    /// per message. Reference semantics for tests and benchmarks.
    std::optional<AbstractMessage> parseInterpreted(const Bytes& data,
                                                    std::string* error = nullptr) const;
    Bytes composeInterpreted(const AbstractMessage& message) const;

    const CodecPlan& plan() const { return plan_; }

private:
    const MdlDocument& doc_;
    std::shared_ptr<MarshallerRegistry> registry_;
    CodecPlan plan_;
};

}  // namespace starlink::mdl
