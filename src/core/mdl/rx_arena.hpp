// Session-scoped receive arena for the zero-copy parse path.
//
// PR 2 pooled the COMPOSE side (`composeScratch_` reuses one growing buffer
// across sessions); this pools the PARSE side. The engine copies each
// incoming datagram into the arena once, and the compiled codec plans parse
// field content as string_views over that stable copy instead of
// heap-allocating a std::string per field. The arena is a chunked bump
// allocator: reset() rewinds the cursor but keeps the chunks, so a
// long-running bridge reaches a steady state with zero parse-path
// allocations per session.
//
// Lifetime contract: views handed out by store()/intern() stay valid until
// reset(). The engine resets only at session boundaries (after the merged
// automaton dropped its stored messages), and anything that outlives a
// session -- trace rings, session histories -- materializes its values
// first (Value::materialize()).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace starlink::mdl {

class RxArena {
public:
    static constexpr std::size_t kDefaultChunkBytes = 16 * 1024;

    explicit RxArena(std::size_t chunkBytes = kDefaultChunkBytes)
        : chunkBytes_(chunkBytes ? chunkBytes : kDefaultChunkBytes) {}

    RxArena(const RxArena&) = delete;
    RxArena& operator=(const RxArena&) = delete;

    /// Copies `data` into the arena and returns a stable view of the copy.
    /// This is the per-datagram entry point: one copy, then every parsed
    /// field borrows from it.
    std::string_view store(const Bytes& data) {
        return intern(std::string_view(reinterpret_cast<const char*>(data.data()), data.size()));
    }

    /// Copies `text` into the arena; the returned view outlives the source.
    std::string_view intern(std::string_view text) {
        if (text.empty()) return std::string_view(reinterpret_cast<const char*>(this), 0);
        char* dst = allocate(text.size());
        std::memcpy(dst, text.data(), text.size());
        return std::string_view(dst, text.size());
    }

    /// Rewinds to empty, keeping every chunk allocation for reuse.
    void reset() {
        chunkIndex_ = 0;
        used_ = 0;
        totalUsed_ = 0;
    }

    /// Bytes handed out since the last reset().
    std::size_t bytesUsed() const { return totalUsed_; }

    /// Total capacity retained across resets.
    std::size_t bytesReserved() const {
        std::size_t total = 0;
        for (const auto& chunk : chunks_) total += chunk.size;
        return total;
    }

    std::size_t chunkCount() const { return chunks_.size(); }

private:
    struct Chunk {
        std::unique_ptr<char[]> data;
        std::size_t size = 0;
    };

    char* allocate(std::size_t bytes) {
        while (chunkIndex_ < chunks_.size() && used_ + bytes > chunks_[chunkIndex_].size) {
            ++chunkIndex_;
            used_ = 0;
        }
        if (chunkIndex_ == chunks_.size()) {
            // Geometric growth: each new chunk at least doubles the largest
            // so pathological inputs settle after O(log n) allocations.
            std::size_t size = chunkBytes_;
            if (!chunks_.empty()) size = chunks_.back().size * 2;
            if (size < bytes) size = bytes;
            chunks_.push_back(Chunk{std::make_unique<char[]>(size), size});
            used_ = 0;
        }
        char* out = chunks_[chunkIndex_].data.get() + used_;
        used_ += bytes;
        totalUsed_ += bytes;
        return out;
    }

    std::size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    std::size_t chunkIndex_ = 0;  // chunk currently being filled
    std::size_t used_ = 0;        // bytes used inside chunks_[chunkIndex_]
    std::size_t totalUsed_ = 0;   // bytes handed out since reset()
};

}  // namespace starlink::mdl
