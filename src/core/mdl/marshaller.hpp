// Pluggable per-type marshallers/unmarshallers (paper section IV-A).
//
// "To underpin the reading and writing of data from messages, Starlink
//  employs pluggable marshallers and unmarshallers for each of the types...
//  This mechanism allows the language to be dynamically extended to
//  incorporate complex types (with no need to re-implement a compiler)."
//
// A marshaller converts between wire bits and a Value. Types come in two
// shapes:
//  - length-directed: the MDL supplies the field length (Integer, String,
//    Bytes, Bool);
//  - self-delimiting: the encoding carries its own terminator, declared in
//    the MDL with length "auto" (e.g. FQDN, the DNS label encoding the paper
//    uses as its extension example).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/mdl/bitio.hpp"
#include "core/message/value.hpp"

namespace starlink::mdl {

/// How a marshaller's byte-aligned, length-directed encoding relates to the
/// wire bytes. Text/Raw marshallers copy the wire bytes verbatim, so the
/// zero-copy parse path can substitute a borrowed view over the rx arena
/// for the marshaller's owning read.
enum class RawKind { None, Text, Raw };

class Marshaller {
public:
    virtual ~Marshaller() = default;

    /// Reads one value. `lengthBits` is nullopt for self-delimiting types.
    /// nullopt result == the bytes do not decode (a normal runtime event).
    virtual std::optional<Value> read(BitReader& in, std::optional<int> lengthBits) const = 0;

    /// Writes one value. Throws ProtocolError when the value cannot be
    /// encoded in the given length.
    virtual void write(BitWriter& out, const Value& value,
                       std::optional<int> lengthBits) const = 0;

    /// Size of the encoding of `value`, in bits -- what the f-length field
    /// function reports. For length-directed types with an explicit length
    /// this is simply that length.
    virtual int encodedBits(const Value& value, std::optional<int> lengthBits) const = 0;

    /// True when the type can be used with length "auto".
    virtual bool selfDelimiting() const { return false; }

    /// Non-None when a whole-byte read of this type is a verbatim copy of
    /// the wire bytes (String -> Text, Bytes -> Raw). The compiled plans use
    /// this to parse such fields as views instead of copies.
    virtual RawKind rawKind() const { return RawKind::None; }
};

/// Big-endian unsigned integer of the specified bit width (1..63).
class IntegerMarshaller : public Marshaller {
public:
    std::optional<Value> read(BitReader& in, std::optional<int> lengthBits) const override;
    void write(BitWriter& out, const Value& value, std::optional<int> lengthBits) const override;
    int encodedBits(const Value& value, std::optional<int> lengthBits) const override;
};

/// Raw text of the specified length (must be a whole number of bytes).
class StringMarshaller : public Marshaller {
public:
    std::optional<Value> read(BitReader& in, std::optional<int> lengthBits) const override;
    void write(BitWriter& out, const Value& value, std::optional<int> lengthBits) const override;
    int encodedBits(const Value& value, std::optional<int> lengthBits) const override;
    RawKind rawKind() const override { return RawKind::Text; }
};

/// Raw bytes of the specified length.
class BytesMarshaller : public Marshaller {
public:
    std::optional<Value> read(BitReader& in, std::optional<int> lengthBits) const override;
    void write(BitWriter& out, const Value& value, std::optional<int> lengthBits) const override;
    int encodedBits(const Value& value, std::optional<int> lengthBits) const override;
    RawKind rawKind() const override { return RawKind::Raw; }
};

/// Boolean in `lengthBits` bits (non-zero == true).
class BoolMarshaller : public Marshaller {
public:
    std::optional<Value> read(BitReader& in, std::optional<int> lengthBits) const override;
    void write(BitWriter& out, const Value& value, std::optional<int> lengthBits) const override;
    int encodedBits(const Value& value, std::optional<int> lengthBits) const override;
};

/// Fully-qualified domain name in DNS label encoding: length-prefixed labels
/// terminated by a zero byte; self-delimiting. This is the paper's worked
/// example of extending the MDL with a plug-in type.
class FqdnMarshaller : public Marshaller {
public:
    std::optional<Value> read(BitReader& in, std::optional<int> lengthBits) const override;
    void write(BitWriter& out, const Value& value, std::optional<int> lengthBits) const override;
    int encodedBits(const Value& value, std::optional<int> lengthBits) const override;
    bool selfDelimiting() const override { return true; }
};

/// Name -> marshaller table. A registry is shared by all codecs built from
/// it, so registering a new type at runtime immediately extends every MDL
/// that names it.
class MarshallerRegistry {
public:
    /// A registry pre-populated with Integer, String, Bytes, Bool and FQDN
    /// (plus the aliases Int / Text / Boolean).
    static std::shared_ptr<MarshallerRegistry> withDefaults();

    void add(const std::string& name, std::shared_ptr<Marshaller> marshaller);
    const Marshaller* find(const std::string& name) const;

private:
    std::map<std::string, std::shared_ptr<Marshaller>> table_;
};

}  // namespace starlink::mdl
