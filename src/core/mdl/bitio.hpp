// Bit-granular readers/writers for the binary MDL interpreter.
//
// MDL field lengths are expressed in bits (paper Fig 7: an SLP header mixes
// 8-, 16- and 24-bit fields), so the generic parser/composer must address
// sub-byte positions. Bit order is MSB-first within each byte, matching
// network wire formats.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace starlink::mdl {

class BitReader {
public:
    explicit BitReader(const Bytes& data) : data_(data) {}

    /// Bits remaining from the cursor to the end of the buffer.
    std::size_t remainingBits() const { return data_.size() * 8 - position_; }
    std::size_t positionBits() const { return position_; }
    bool atEnd() const { return remainingBits() == 0; }

    /// Reads `count` bits (1..64) as a big-endian unsigned integer.
    /// nullopt when fewer than `count` bits remain (cursor unchanged).
    std::optional<std::uint64_t> readBits(int count);

    /// Reads `count` whole bytes. Works at any bit offset.
    std::optional<Bytes> readBytes(std::size_t count);

    /// Peeks one byte at a byte-aligned cursor without consuming.
    std::optional<std::uint8_t> peekByte() const;

    /// Zero-copy read: when the cursor sits on a byte boundary and `count`
    /// whole bytes remain, returns their starting byte offset and advances
    /// past them; nullopt otherwise (cursor unchanged). The caller turns the
    /// offset into a view over its own stable copy of the input.
    std::optional<std::size_t> takeByteSpan(std::size_t count) {
        if (position_ % 8 != 0) return std::nullopt;
        if (remainingBits() < count * 8) return std::nullopt;
        const std::size_t offset = position_ / 8;
        position_ += count * 8;
        return offset;
    }

private:
    const Bytes& data_;
    std::size_t position_ = 0;  // in bits
};

class BitWriter {
public:
    BitWriter() = default;

    /// Adopts `reuse`'s allocation (content cleared, capacity kept) so a
    /// session can compose into one growing buffer instead of reallocating
    /// per message. Pair with take() to hand the allocation back.
    explicit BitWriter(Bytes&& reuse) : buffer_(std::move(reuse)) { buffer_.clear(); }

    /// Appends `count` bits (1..64) of `value`, MSB first.
    void writeBits(std::uint64_t value, int count);

    void writeBytes(const Bytes& bytes);
    void writeByte(std::uint8_t byte);

    /// Current length in bits.
    std::size_t positionBits() const { return bitCount_; }

    /// Overwrites `count` bits starting at absolute bit offset `offset` with
    /// `value`. The region must already have been written (used by the
    /// composer to backpatch f-msglength fields).
    void patchBits(std::size_t offset, std::uint64_t value, int count);

    /// Finalises to a byte buffer; a trailing partial byte is zero-padded.
    Bytes take();

    const Bytes& buffer() const { return buffer_; }

private:
    Bytes buffer_;
    std::size_t bitCount_ = 0;
};

}  // namespace starlink::mdl
