#include "core/mdl/codec.hpp"

namespace starlink::mdl {

MessageCodec::MessageCodec(MdlDocument doc, std::shared_ptr<MarshallerRegistry> registry)
    : doc_(std::move(doc)), registry_(std::move(registry)) {
    switch (doc_.kind()) {
        case MdlKind::Binary:
            binary_ = std::make_unique<BinaryCodec>(doc_, registry_);
            break;
        case MdlKind::Text:
            text_ = std::make_unique<TextCodec>(doc_, registry_);
            break;
        case MdlKind::Xml:
            xml_ = std::make_unique<XmlCodec>(doc_, registry_);
            break;
    }
}

std::shared_ptr<MessageCodec> MessageCodec::fromXml(const std::string& mdlXml,
                                                    std::shared_ptr<MarshallerRegistry> registry) {
    return fromDocument(MdlDocument::fromXml(mdlXml), std::move(registry));
}

std::shared_ptr<MessageCodec> MessageCodec::fromDocument(
    MdlDocument doc, std::shared_ptr<MarshallerRegistry> registry) {
    return std::shared_ptr<MessageCodec>(new MessageCodec(std::move(doc), std::move(registry)));
}

std::optional<AbstractMessage> MessageCodec::parse(const Bytes& data, std::string* error) const {
    if (binary_) return binary_->parse(data, error);
    if (text_) return text_->parse(data, error);
    return xml_->parse(data, error);
}

Bytes MessageCodec::compose(const AbstractMessage& message) const {
    if (binary_) return binary_->compose(message);
    if (text_) return text_->compose(message);
    return xml_->compose(message);
}

void MessageCodec::composeInto(const AbstractMessage& message, Bytes& out) const {
    if (binary_) return binary_->composeInto(message, out);
    if (text_) return text_->composeInto(message, out);
    return xml_->composeInto(message, out);
}

std::optional<AbstractMessage> MessageCodec::parseInterpreted(const Bytes& data,
                                                              std::string* error) const {
    if (binary_) return binary_->parseInterpreted(data, error);
    if (text_) return text_->parseInterpreted(data, error);
    return xml_->parseInterpreted(data, error);
}

Bytes MessageCodec::composeInterpreted(const AbstractMessage& message) const {
    if (binary_) return binary_->composeInterpreted(message);
    if (text_) return text_->composeInterpreted(message);
    return xml_->composeInterpreted(message);
}

const CodecPlan& MessageCodec::plan() const {
    if (binary_) return binary_->plan();
    if (text_) return text_->plan();
    return xml_->plan();
}

}  // namespace starlink::mdl
