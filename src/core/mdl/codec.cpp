#include "core/mdl/codec.hpp"

namespace starlink::mdl {

namespace {
const char* dialectName(MdlKind kind) {
    switch (kind) {
        case MdlKind::Binary: return "binary";
        case MdlKind::Text: return "text";
        case MdlKind::Xml: return "xml";
    }
    return "?";
}
}  // namespace

MessageCodec::PathMetrics MessageCodec::registerPath(const char* op, const char* path) const {
    auto& registry = telemetry::MetricsRegistry::global();
    const auto labels = [&](std::string_view name) {
        return telemetry::labeled(name, {{"protocol", doc_.protocol()},
                                         {"dialect", dialectName(doc_.kind())},
                                         {"path", path}});
    };
    // Wall-nanosecond buckets spanning sub-microsecond field reads up to a
    // pathological millisecond-class message.
    static const std::vector<double> kNsBounds = {250,    500,     1000,    2000,   4000,
                                                  8000,   16000,   32000,   64000,  128000,
                                                  256000, 1000000, 4000000, 16000000};
    PathMetrics out;
    const std::string base = std::string("starlink_codec_") + op;
    out.ns = &registry.histogram(labels(base + "_ns"), kNsBounds);
    out.bytes = &registry.counter(labels(base + "_bytes_total"));
    out.ops = &registry.counter(labels(base + "_ops_total"));
    out.errors = &registry.counter(labels(base + "_errors_total"));
    return out;
}

MessageCodec::MessageCodec(MdlDocument doc, std::shared_ptr<MarshallerRegistry> registry)
    : doc_(std::move(doc)), registry_(std::move(registry)) {
    switch (doc_.kind()) {
        case MdlKind::Binary:
            binary_ = std::make_unique<BinaryCodec>(doc_, registry_);
            break;
        case MdlKind::Text:
            text_ = std::make_unique<TextCodec>(doc_, registry_);
            break;
        case MdlKind::Xml:
            xml_ = std::make_unique<XmlCodec>(doc_, registry_);
            break;
    }
    parsePlan_ = registerPath("parse", "plan");
    parseInterp_ = registerPath("parse", "interp");
    composePlan_ = registerPath("compose", "plan");
    composeInterp_ = registerPath("compose", "interp");
}

std::shared_ptr<MessageCodec> MessageCodec::fromXml(const std::string& mdlXml,
                                                    std::shared_ptr<MarshallerRegistry> registry) {
    return fromDocument(MdlDocument::fromXml(mdlXml), std::move(registry));
}

std::shared_ptr<MessageCodec> MessageCodec::fromDocument(
    MdlDocument doc, std::shared_ptr<MarshallerRegistry> registry) {
    return std::shared_ptr<MessageCodec>(new MessageCodec(std::move(doc), std::move(registry)));
}

std::optional<AbstractMessage> MessageCodec::parse(const Bytes& data, RxArena* arena,
                                                   std::string* error) const {
    if (!telemetry::enabled()) {
        if (binary_) return binary_->parse(data, arena, error);
        if (text_) return text_->parse(data, arena, error);
        return xml_->parse(data, arena, error);
    }
    const std::uint64_t wall0 = telemetry::wallNowNs();
    std::optional<AbstractMessage> result;
    if (binary_) result = binary_->parse(data, arena, error);
    else if (text_) result = text_->parse(data, arena, error);
    else result = xml_->parse(data, arena, error);
    parsePlan_.ns->observe(static_cast<double>(telemetry::wallSinceNs(wall0)));
    parsePlan_.ops->add();
    parsePlan_.bytes->add(data.size());
    if (!result) parsePlan_.errors->add();
    return result;
}

Bytes MessageCodec::compose(const AbstractMessage& message) const {
    Bytes out;
    composeInto(message, out);
    return out;
}

void MessageCodec::composeInto(const AbstractMessage& message, Bytes& out) const {
    if (!telemetry::enabled()) {
        if (binary_) return binary_->composeInto(message, out);
        if (text_) return text_->composeInto(message, out);
        return xml_->composeInto(message, out);
    }
    const std::uint64_t wall0 = telemetry::wallNowNs();
    composePlan_.ops->add();
    try {
        if (binary_) binary_->composeInto(message, out);
        else if (text_) text_->composeInto(message, out);
        else xml_->composeInto(message, out);
    } catch (...) {
        composePlan_.errors->add();
        throw;
    }
    composePlan_.ns->observe(static_cast<double>(telemetry::wallSinceNs(wall0)));
    composePlan_.bytes->add(out.size());
}

std::optional<AbstractMessage> MessageCodec::parseInterpreted(const Bytes& data,
                                                              std::string* error) const {
    if (!telemetry::enabled()) {
        if (binary_) return binary_->parseInterpreted(data, error);
        if (text_) return text_->parseInterpreted(data, error);
        return xml_->parseInterpreted(data, error);
    }
    const std::uint64_t wall0 = telemetry::wallNowNs();
    std::optional<AbstractMessage> result;
    if (binary_) result = binary_->parseInterpreted(data, error);
    else if (text_) result = text_->parseInterpreted(data, error);
    else result = xml_->parseInterpreted(data, error);
    parseInterp_.ns->observe(static_cast<double>(telemetry::wallSinceNs(wall0)));
    parseInterp_.ops->add();
    parseInterp_.bytes->add(data.size());
    if (!result) parseInterp_.errors->add();
    return result;
}

Bytes MessageCodec::composeInterpreted(const AbstractMessage& message) const {
    if (!telemetry::enabled()) {
        if (binary_) return binary_->composeInterpreted(message);
        if (text_) return text_->composeInterpreted(message);
        return xml_->composeInterpreted(message);
    }
    const std::uint64_t wall0 = telemetry::wallNowNs();
    composeInterp_.ops->add();
    Bytes out;
    try {
        if (binary_) out = binary_->composeInterpreted(message);
        else if (text_) out = text_->composeInterpreted(message);
        else out = xml_->composeInterpreted(message);
    } catch (...) {
        composeInterp_.errors->add();
        throw;
    }
    composeInterp_.ns->observe(static_cast<double>(telemetry::wallSinceNs(wall0)));
    composeInterp_.bytes->add(out.size());
    return out;
}

const CodecPlan& MessageCodec::plan() const {
    if (binary_) return binary_->plan();
    if (text_) return text_->plan();
    return xml_->plan();
}

}  // namespace starlink::mdl
