#include "core/mdl/text_codec.hpp"

#include <set>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/mdl/rx_arena.hpp"

namespace starlink::mdl {

namespace {

/// Cursor over the raw bytes; tokens are cut at delimiter byte sequences.
/// Used only by the pre-plan interpreter (the plan path runs prebuilt
/// searchers over an offset instead).
class TextCursor {
public:
    explicit TextCursor(const Bytes& data) : data_(data) {}

    bool atEnd() const { return pos_ >= data_.size(); }

    /// Reads up to (and consuming) `delimiter`. nullopt when the delimiter
    /// never occurs.
    std::optional<std::string> readToken(const Bytes& delimiter) {
        const auto found = find(delimiter, pos_);
        if (!found) return std::nullopt;
        std::string token(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                          data_.begin() + static_cast<std::ptrdiff_t>(*found));
        pos_ = *found + delimiter.size();
        return token;
    }

    /// Everything left.
    std::string rest() {
        std::string out(data_.begin() + static_cast<std::ptrdiff_t>(pos_), data_.end());
        pos_ = data_.size();
        return out;
    }

private:
    std::optional<std::size_t> find(const Bytes& needle, std::size_t from) const {
        if (needle.empty() || data_.size() < needle.size()) return std::nullopt;
        for (std::size_t i = from; i + needle.size() <= data_.size(); ++i) {
            bool match = true;
            for (std::size_t j = 0; j < needle.size(); ++j) {
                if (data_[i + j] != needle[j]) {
                    match = false;
                    break;
                }
            }
            if (match) return i;
        }
        return std::nullopt;
    }

    const Bytes& data_;
    std::size_t pos_ = 0;
};

/// The Value type a text field should carry, from its declared MDL type.
/// Interpreter path; the plan caches this per label.
ValueType valueTypeOf(const MdlDocument& doc, const std::string& label) {
    const TypeDef* def = doc.type(label);
    if (def == nullptr) return ValueType::String;
    if (def->marshaller == "Integer" || def->marshaller == "Int") return ValueType::Int;
    if (def->marshaller == "Bool" || def->marshaller == "Boolean") return ValueType::Bool;
    return ValueType::String;
}

/// trim() without the std::string round-trip; the plan path works on views
/// into the receive buffer and only materialises the final Value.
std::string_view trimView(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

}  // namespace

TextCodec::TextCodec(const MdlDocument& doc, std::shared_ptr<MarshallerRegistry> registry)
    : doc_(doc), registry_(std::move(registry)) {
    if (doc_.kind() != MdlKind::Text) {
        throw SpecError(errc::ErrorCode::MdlInvalid,
                        "TextCodec: MDL document '" + doc_.protocol() + "' is not text");
    }
    plan_ = CodecPlan::compile(doc_, *registry_);
}

// ---------------------------------------------------------------------------
// Plan path: flat execution of the compiled plan.

std::optional<AbstractMessage> TextCodec::parse(const Bytes& data, RxArena* arena,
                                                std::string* error) const {
    auto fail = [error](const std::string& why) -> std::optional<AbstractMessage> {
        if (error != nullptr) *error = why;
        return std::nullopt;
    };

    // With an arena: one copy of the datagram, then every String value is a
    // view into it. Delimiter searches still run over `data`; offsets are
    // identical in both buffers.
    const char* base = reinterpret_cast<const char*>(data.data());
    if (arena != nullptr) base = arena->store(data).data();

    std::size_t pos = 0;
    std::vector<Field> fields;
    fields.reserve(plan_.header().size() + 8);

    // A malformed typed header line degrades to text rather than killing
    // the whole message -- matching how lenient real stacks are.
    auto typedValue = [this, arena](const std::string& label, std::string_view text) -> Value {
        const std::string_view trimmed = trimView(text);
        const ValueType type = plan_.valueTypeOfLabel(label);
        if (type != ValueType::String) {
            if (auto parsed = Value::fromText(type, trimmed)) return *parsed;
        }
        if (arena != nullptr) return Value::ofView(trimmed);
        return Value::ofString(std::string(trimmed));
    };

    for (const PlanField& pf : plan_.header()) {
        const FieldSpec& spec = *pf.spec;
        switch (spec.length) {
            case FieldSpec::Length::Delimiter: {
                const std::size_t found = plan_.searcher(pf.searcherIndex).find(data, pos);
                if (found == DelimiterSearcher::npos) {
                    return fail("token '" + spec.label + "' not terminated");
                }
                const std::string_view token(base + pos, found - pos);
                pos = found + spec.delimiter.size();
                fields.push_back(
                    Field::primitive(spec.label, "String", typedValue(spec.label, token)));
                break;
            }
            case FieldSpec::Length::FieldsBlock: {
                const DelimiterSearcher& searcher = plan_.searcher(pf.searcherIndex);
                const char innerSplit = static_cast<char>(spec.innerSplit);
                while (true) {
                    const std::size_t found = searcher.find(data, pos);
                    if (found == DelimiterSearcher::npos) {
                        // No terminating blank line: tolerate EOF-terminated
                        // final line like real text stacks do.
                        break;
                    }
                    const std::string_view line(base + pos, found - pos);
                    pos = found + spec.delimiter.size();
                    if (trimView(line).empty()) break;  // blank line ends the block
                    const std::size_t split = line.find(innerSplit);
                    if (split == std::string_view::npos) {
                        return fail("header line without '" + std::string(1, innerSplit) +
                                    "' split: " + std::string(line));
                    }
                    const std::string label(trimView(line.substr(0, split)));
                    if (label.empty()) return fail("header line with empty label");
                    fields.push_back(Field::primitive(
                        label, "String", typedValue(label, line.substr(split + 1))));
                }
                break;
            }
            case FieldSpec::Length::Body: {
                const std::string_view rest(base + pos, data.size() - pos);
                fields.push_back(Field::primitive(
                    spec.label, "String",
                    arena != nullptr ? Value::ofView(rest)
                                     : Value::ofString(std::string(rest))));
                pos = data.size();
                break;
            }
            default:
                return fail("binary-dialect length in text MDL");
        }
    }

    const int selected =
        plan_.selectMessage([&fields](int, const std::string& label) -> std::optional<std::string> {
            for (const Field& f : fields) {
                if (f.label() == label) return f.value().toText();
            }
            return std::nullopt;
        });
    if (selected < 0) return fail("no message rule matches");

    AbstractMessage message(plan_.messages()[static_cast<std::size_t>(selected)].spec->type);
    // Adopt the already-reserved vector wholesale; per-field push_back would
    // re-pay the doubling growth inside the message.
    message.fields() = std::move(fields);
    return message;
}

Bytes TextCodec::compose(const AbstractMessage& message) const {
    Bytes out;
    composeInto(message, out);
    return out;
}

void TextCodec::composeInto(const AbstractMessage& message, Bytes& out) const {
    out.clear();
    const MessagePlan* mp = plan_.planFor(message.type());
    if (mp == nullptr) {
        throw SpecError(errc::ErrorCode::CodecMessageUnknown,
                        "TextCodec: MDL '" + doc_.protocol() + "' does not define message '" +
                        message.type() + "'");
    }
    for (const std::string& label : mp->mandatory) {
        if (!message.value(label)) {
            throw SpecError(errc::ErrorCode::CodecMandatoryMissing,
                        "TextCodec: mandatory field '" + label + "' of message '" +
                            message.type() + "' has no value");
        }
    }

    auto append = [&out](std::string_view s) { out.insert(out.end(), s.begin(), s.end()); };
    auto appendBytes = [&out](const Bytes& b) { out.insert(out.end(), b.begin(), b.end()); };

    for (const TextPositional& positional : mp->positionals) {
        const FieldSpec& spec =
            *plan_.header()[static_cast<std::size_t>(positional.headerIndex)].spec;
        if (positional.ruleValue != nullptr) {
            append(*positional.ruleValue);
        } else if (const auto value = message.value(spec.label)) {
            append(value->toText());
        } else if (positional.fallback != nullptr) {
            append(*positional.fallback);
        } else {
            throw SpecError(errc::ErrorCode::CodecCompose,
                        "TextCodec: positional field '" + spec.label + "' of message '" +
                            message.type() + "' has no value and no default");
        }
        appendBytes(spec.delimiter);
    }

    const FieldSpec* fieldsBlock =
        plan_.textFieldsBlockIndex() >= 0
            ? plan_.header()[static_cast<std::size_t>(plan_.textFieldsBlockIndex())].spec
            : nullptr;
    const FieldSpec* bodySpec =
        plan_.textBodyIndex() >= 0
            ? plan_.header()[static_cast<std::size_t>(plan_.textBodyIndex())].spec
            : nullptr;

    auto isPositionalLabel = [&](std::string_view label) {
        for (const TextPositional& positional : mp->positionals) {
            if (plan_.header()[static_cast<std::size_t>(positional.headerIndex)].spec->label ==
                label) {
                return true;
            }
        }
        return false;
    };

    if (fieldsBlock != nullptr) {
        const std::string body =
            bodySpec != nullptr ? message.value(bodySpec->label).value_or(Value()).toText() : "";
        const char innerSplit = static_cast<char>(fieldsBlock->innerSplit);
        bool emittedContentLength = false;

        auto emitLine = [&](std::string_view label, std::string_view value) {
            append(label);
            out.push_back(static_cast<std::uint8_t>(innerSplit));
            out.push_back(' ');
            append(value);
            appendBytes(fieldsBlock->delimiter);
        };

        for (const Field& field : message.fields()) {
            if (!field.isPrimitive() || isPositionalLabel(field.label())) continue;
            if (bodySpec != nullptr && field.label() == bodySpec->label) continue;
            std::string value = field.value().toText();
            // Keep Content-Length honest whenever a body is declared.
            if (bodySpec != nullptr && iequals(field.label(), "Content-Length")) {
                value = std::to_string(body.size());
                emittedContentLength = true;
            }
            emitLine(field.label(), value);
        }
        // Meta defaults for declared lines the message does not carry
        // (pre-filtered at plan-compile time for positional/body labels).
        for (const FieldSpec* meta : mp->metaDefaults) {
            if (message.value(meta->label)) continue;  // emitted from the message above
            emitLine(meta->label, *meta->defaultValue);
        }
        // A declared body always travels with an accurate Content-Length so
        // receivers can delimit it.
        if (bodySpec != nullptr && !body.empty() && !emittedContentLength) {
            emitLine("Content-Length", std::to_string(body.size()));
        }
        // Blank line terminating the block.
        appendBytes(fieldsBlock->delimiter);
    }

    if (bodySpec != nullptr) {
        const std::string body = message.value(bodySpec->label).value_or(Value()).toText();
        append(body);
    }
}

// ---------------------------------------------------------------------------
// Pre-plan interpreter: re-derives field order, delimiters and types from
// the document per message. Kept verbatim as the reference implementation
// the compiled plan must match byte-for-byte.

std::optional<AbstractMessage> TextCodec::parseInterpreted(const Bytes& data,
                                                           std::string* error) const {
    auto fail = [error](const std::string& why) -> std::optional<AbstractMessage> {
        if (error != nullptr) *error = why;
        return std::nullopt;
    };

    TextCursor cursor(data);
    std::vector<Field> fields;
    auto valueFor = [this](const std::string& label, const std::string& text) -> Value {
        const ValueType type = valueTypeOf(doc_, label);
        const auto parsed = Value::fromText(type, trim(text));
        // A malformed typed header line degrades to text rather than killing
        // the whole message -- matching how lenient real stacks are.
        return parsed ? *parsed : Value::ofString(trim(text));
    };

    for (const FieldSpec& spec : doc_.header().fields) {
        switch (spec.length) {
            case FieldSpec::Length::Delimiter: {
                const auto token = cursor.readToken(spec.delimiter);
                if (!token) return fail("token '" + spec.label + "' not terminated");
                fields.push_back(Field::primitive(spec.label, "String",
                                                  valueFor(spec.label, *token)));
                break;
            }
            case FieldSpec::Length::FieldsBlock: {
                while (true) {
                    const auto line = cursor.readToken(spec.delimiter);
                    if (!line) {
                        // No terminating blank line: tolerate EOF-terminated
                        // final line like real text stacks do.
                        break;
                    }
                    if (trim(*line).empty()) break;  // blank line ends the block
                    const auto halves = splitFirst(*line, static_cast<char>(spec.innerSplit));
                    if (!halves) {
                        return fail("header line without '" +
                                    std::string(1, static_cast<char>(spec.innerSplit)) +
                                    "' split: " + *line);
                    }
                    const std::string label = trim(halves->first);
                    if (label.empty()) return fail("header line with empty label");
                    fields.push_back(
                        Field::primitive(label, "String", valueFor(label, halves->second)));
                }
                break;
            }
            case FieldSpec::Length::Body: {
                fields.push_back(
                    Field::primitive(spec.label, "String", Value::ofString(cursor.rest())));
                break;
            }
            default:
                return fail("binary-dialect length in text MDL");
        }
    }

    // Rule evaluation on parsed fields.
    const MessageSpec* selected = nullptr;
    auto lookup = [&fields](const std::string& label) -> const Field* {
        for (const Field& f : fields) {
            if (f.label() == label) return &f;
        }
        return nullptr;
    };
    for (const MessageSpec& candidate : doc_.messages()) {
        if (!candidate.rule) {
            if (selected == nullptr) selected = &candidate;
            continue;
        }
        const Field* field = lookup(candidate.rule->field);
        if (field != nullptr && field->value().toText() == candidate.rule->value) {
            selected = &candidate;
            break;
        }
    }
    if (selected == nullptr) return fail("no message rule matches");

    AbstractMessage message(selected->type);
    for (Field& f : fields) message.addField(std::move(f));
    return message;
}

Bytes TextCodec::composeInterpreted(const AbstractMessage& message) const {
    const MessageSpec* spec = doc_.message(message.type());
    if (spec == nullptr) {
        throw SpecError(errc::ErrorCode::CodecMessageUnknown,
                        "TextCodec: MDL '" + doc_.protocol() + "' does not define message '" +
                        message.type() + "'");
    }

    for (const std::string& label : doc_.mandatoryFields(message.type())) {
        if (!message.value(label)) {
            throw SpecError(errc::ErrorCode::CodecMandatoryMissing,
                        "TextCodec: mandatory field '" + label + "' of message '" +
                            message.type() + "' has no value");
        }
    }

    Bytes out;
    std::set<std::string> consumed;
    const FieldSpec* fieldsBlock = nullptr;
    const FieldSpec* bodySpec = nullptr;

    // Per-message Meta specs: defaults (which override header defaults) and
    // extra lines to emit when the message does not carry the field.
    auto metaSpec = [spec](const std::string& label) -> const FieldSpec* {
        for (const FieldSpec& f : spec->fields) {
            if (f.label == label && f.length == FieldSpec::Length::Meta) return &f;
        }
        return nullptr;
    };

    auto positionalValue = [&](const FieldSpec& fieldSpec) -> std::string {
        if (spec->rule && spec->rule->field == fieldSpec.label) return spec->rule->value;
        if (const auto v = message.value(fieldSpec.label)) return v->toText();
        if (const FieldSpec* meta = metaSpec(fieldSpec.label); meta && meta->defaultValue) {
            return *meta->defaultValue;
        }
        if (fieldSpec.defaultValue) return *fieldSpec.defaultValue;
        throw SpecError(errc::ErrorCode::CodecCompose,
                        "TextCodec: positional field '" + fieldSpec.label + "' of message '" +
                        message.type() + "' has no value and no default");
    };

    for (const FieldSpec& fieldSpec : doc_.header().fields) {
        switch (fieldSpec.length) {
            case FieldSpec::Length::Delimiter: {
                const std::string token = positionalValue(fieldSpec);
                out.insert(out.end(), token.begin(), token.end());
                out.insert(out.end(), fieldSpec.delimiter.begin(), fieldSpec.delimiter.end());
                consumed.insert(fieldSpec.label);
                break;
            }
            case FieldSpec::Length::FieldsBlock:
                fieldsBlock = &fieldSpec;  // emitted below, needs full consumed set
                break;
            case FieldSpec::Length::Body:
                bodySpec = &fieldSpec;
                break;
            default:
                throw SpecError(errc::ErrorCode::CodecCompose,
                        "TextCodec: binary-dialect field '" + fieldSpec.label +
                                "' in text compose");
        }
    }

    if (fieldsBlock != nullptr) {
        const std::string body =
            bodySpec != nullptr ? message.value(bodySpec->label).value_or(Value()).toText() : "";
        bool emittedContentLength = false;

        for (const Field& field : message.fields()) {
            if (!field.isPrimitive() || consumed.contains(field.label())) continue;
            if (bodySpec != nullptr && field.label() == bodySpec->label) continue;
            std::string value = field.value().toText();
            // Keep Content-Length honest whenever a body is declared.
            if (bodySpec != nullptr && iequals(field.label(), "Content-Length")) {
                value = std::to_string(body.size());
                emittedContentLength = true;
            }
            const std::string line = field.label() +
                                     std::string(1, static_cast<char>(fieldsBlock->innerSplit)) +
                                     " " + value;
            out.insert(out.end(), line.begin(), line.end());
            out.insert(out.end(), fieldsBlock->delimiter.begin(), fieldsBlock->delimiter.end());
        }
        // Meta defaults for declared lines the message does not carry.
        for (const FieldSpec& meta : spec->fields) {
            if (meta.length != FieldSpec::Length::Meta || !meta.defaultValue) continue;
            if (consumed.contains(meta.label)) continue;  // positional, already emitted
            if (message.value(meta.label)) continue;      // emitted from the message above
            if (bodySpec != nullptr && meta.label == bodySpec->label) continue;
            const std::string line = meta.label +
                                     std::string(1, static_cast<char>(fieldsBlock->innerSplit)) +
                                     " " + *meta.defaultValue;
            out.insert(out.end(), line.begin(), line.end());
            out.insert(out.end(), fieldsBlock->delimiter.begin(), fieldsBlock->delimiter.end());
        }
        // A declared body always travels with an accurate Content-Length so
        // receivers can delimit it.
        if (bodySpec != nullptr && !body.empty() && !emittedContentLength) {
            const std::string line = "Content-Length" +
                                     std::string(1, static_cast<char>(fieldsBlock->innerSplit)) +
                                     " " + std::to_string(body.size());
            out.insert(out.end(), line.begin(), line.end());
            out.insert(out.end(), fieldsBlock->delimiter.begin(), fieldsBlock->delimiter.end());
        }
        // Blank line terminating the block.
        out.insert(out.end(), fieldsBlock->delimiter.begin(), fieldsBlock->delimiter.end());
    }

    if (bodySpec != nullptr) {
        const std::string body = message.value(bodySpec->label).value_or(Value()).toText();
        out.insert(out.end(), body.begin(), body.end());
    }
    return out;
}

}  // namespace starlink::mdl
