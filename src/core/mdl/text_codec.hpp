// Generic text message parser/composer, specialised at runtime by a
// text-dialect MDL document (paper section IV-A, Fig 11).
//
// Text protocols (SSDP, HTTP) have "no fixed layout or ordering of fields",
// so the MDL identifies boundaries instead of lengths:
//  - positional tokens terminated by a delimiter byte sequence (the request
//    line: <Method>32</Method> <URI>32</URI> <Version>13,10</Version>);
//  - a <Fields>13,10:58</Fields> block of repeated "Label: value" lines,
//    terminated by an empty line, each split at the first inner-split byte;
//  - an optional <Body/> capturing everything after the blank line.
//
// Parsing produces one primitive String/typed field per token and per line
// label. Composing emits positional tokens, then every remaining top-level
// primitive field of the message as a "Label: value" line, then the blank
// line and the body. When a <Body/> is declared and the message carries a
// Content-Length field, the composer recomputes it from the body so the two
// can never disagree.
//
// The hot path executes a CodecPlan compiled at construction (pre-bound
// delimiter searchers, rule dispatch, per-message compose metadata); the
// pre-plan interpreter is retained as parseInterpreted/composeInterpreted
// for differential testing and as the benchmark baseline.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/mdl/marshaller.hpp"
#include "core/mdl/plan.hpp"
#include "core/mdl/spec.hpp"
#include "core/message/abstract_message.hpp"

namespace starlink::mdl {

class RxArena;

class TextCodec {
public:
    TextCodec(const MdlDocument& doc, std::shared_ptr<MarshallerRegistry> registry);

    std::optional<AbstractMessage> parse(const Bytes& data, std::string* error = nullptr) const {
        return parse(data, nullptr, error);
    }

    /// Zero-copy parse: with an arena, the datagram is copied into it once
    /// and String field values (tokens, header lines, the body) are views
    /// over that copy -- valid until the arena resets. nullptr arena keeps
    /// the fully-owning behaviour.
    std::optional<AbstractMessage> parse(const Bytes& data, RxArena* arena,
                                         std::string* error) const;

    Bytes compose(const AbstractMessage& message) const;

    /// Plan-free compose into a caller-owned buffer (cleared first); lets a
    /// session reuse one allocation across messages.
    void composeInto(const AbstractMessage& message, Bytes& out) const;

    /// The pre-plan interpreter, re-deriving everything from the document
    /// per message. Reference semantics for tests and benchmarks.
    std::optional<AbstractMessage> parseInterpreted(const Bytes& data,
                                                    std::string* error = nullptr) const;
    Bytes composeInterpreted(const AbstractMessage& message) const;

    const CodecPlan& plan() const { return plan_; }

private:
    const MdlDocument& doc_;
    std::shared_ptr<MarshallerRegistry> registry_;
    CodecPlan plan_;
};

}  // namespace starlink::mdl
