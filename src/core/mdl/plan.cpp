#include "core/mdl/plan.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace starlink::mdl {

DelimiterSearcher::DelimiterSearcher(const Bytes* delimiter) : delimiter_(delimiter) {
    if (delimiter_->size() > 1) bmh_.emplace(delimiter_->begin(), delimiter_->end());
}

std::size_t DelimiterSearcher::find(const Bytes& data, std::size_t from) const {
    if (delimiter_ == nullptr || delimiter_->empty()) return npos;
    if (data.size() < delimiter_->size() || from + delimiter_->size() > data.size()) return npos;
    if (delimiter_->size() == 1) {
        const void* hit = std::memchr(data.data() + from, (*delimiter_)[0], data.size() - from);
        if (hit == nullptr) return npos;
        return static_cast<std::size_t>(static_cast<const std::uint8_t*>(hit) - data.data());
    }
    const auto it =
        std::search(data.begin() + static_cast<std::ptrdiff_t>(from), data.end(), *bmh_);
    return it == data.end() ? npos : static_cast<std::size_t>(it - data.begin());
}

namespace {

ValueType valueTypeOfMarshallerName(const std::string& name) {
    if (name == "Integer" || name == "Int") return ValueType::Int;
    if (name == "Bool" || name == "Boolean") return ValueType::Bool;
    return ValueType::String;
}

Value emptyFillFor(const std::string& marshallerName) {
    return marshallerName == "Integer" || marshallerName == "Int" ||
                   marshallerName == "Bool" || marshallerName == "Boolean"
               ? Value::ofInt(0)
               : Value::ofString("");
}

}  // namespace

const MessagePlan* CodecPlan::planFor(std::string_view type) const {
    const auto it = byType_.find(std::string(type));
    return it == byType_.end() ? nullptr : &messages_[static_cast<std::size_t>(it->second)];
}

CodecPlan CodecPlan::compile(const MdlDocument& doc, const MarshallerRegistry& registry) {
    CodecPlan plan;
    const MdlKind kind = doc.kind();

    // <Types>: label -> ValueType, for the typed lift of text line values.
    for (const auto& [name, def] : doc.types()) {
        plan.labelTypes_.emplace(name, valueTypeOfMarshallerName(def.marshaller));
    }

    // Flat field indices: header fields first, then (per message) body fields.
    std::unordered_map<std::string, int> headerIndexOf;

    auto compileField = [&](const FieldSpec& spec, const std::string& where,
                            const std::unordered_map<std::string, int>& scope) -> PlanField {
        PlanField pf;
        pf.spec = &spec;
        pf.marshallerName = doc.marshallerFor(spec);
        pf.marshaller = registry.find(pf.marshallerName);
        pf.valueType = kind == MdlKind::Text
                           ? plan.valueTypeOfLabel(spec.label)
                           : valueTypeOfMarshallerName(pf.marshallerName);
        if (spec.defaultValue) pf.defaultValue = Value::ofString(*spec.defaultValue);
        pf.emptyFill = emptyFillFor(pf.marshallerName);

        if (kind == MdlKind::Binary) {
            // Same eager contract the interpreter enforced at construction:
            // a typo in <Types> fails at load time, not mid-parse.
            if (pf.marshaller == nullptr) {
                throw SpecError(errc::ErrorCode::MdlMarshallerUnknown,
                        "BinaryCodec " + where + ": no marshaller registered for type '" +
                                pf.marshallerName + "' (field '" + spec.label + "')");
            }
            if (spec.length == FieldSpec::Length::Auto && !pf.marshaller->selfDelimiting()) {
                throw SpecError(errc::ErrorCode::MdlPlan,
                        "BinaryCodec " + where + ": field '" + spec.label +
                                "' declares length auto but type '" + pf.marshallerName +
                                "' is not self-delimiting");
            }
            if (spec.length == FieldSpec::Length::FieldRef) {
                const auto it = scope.find(spec.ref);
                if (it == scope.end()) {
                    throw SpecError(errc::ErrorCode::MdlPlan,
                        "codec plan " + where + ": field '" + spec.label +
                                    "' takes its length from unknown field '" + spec.ref + "'");
                }
                pf.refIndex = it->second;
            }
            const TypeDef* def = doc.type(spec.type.empty() ? spec.label : spec.type);
            pf.isMsgLength = def != nullptr && def->function == "f-msglength";
            pf.rawKind = pf.marshaller->rawKind();
        }
        if (kind == MdlKind::Xml && spec.length == FieldSpec::Length::XmlPath) {
            pf.pathSteps = split(spec.ref, '/');
        }
        if (kind == MdlKind::Text && (spec.length == FieldSpec::Length::Delimiter ||
                                      spec.length == FieldSpec::Length::FieldsBlock)) {
            pf.searcherIndex = static_cast<int>(plan.searchers_.size());
            plan.searchers_.emplace_back(&spec.delimiter);
        }
        return pf;
    };

    // Header.
    {
        int index = 0;
        for (const FieldSpec& field : doc.header().fields) {
            plan.header_.push_back(compileField(field, "header", headerIndexOf));
            headerIndexOf[field.label] = index;
            if (kind == MdlKind::Text) {
                if (field.length == FieldSpec::Length::FieldsBlock) {
                    plan.textFieldsBlockIndex_ = index;
                }
                if (field.length == FieldSpec::Length::Body) plan.textBodyIndex_ = index;
            }
            ++index;
        }
    }

    auto ruleLabelId = [&plan, &headerIndexOf](const std::string& label) -> int {
        for (std::size_t i = 0; i < plan.ruleLabels_.size(); ++i) {
            if (plan.ruleLabels_[i] == label) return static_cast<int>(i);
        }
        plan.ruleLabels_.push_back(label);
        const auto it = headerIndexOf.find(label);
        plan.ruleLabelHeaderIndex_.push_back(it == headerIndexOf.end() ? -1 : it->second);
        return static_cast<int>(plan.ruleLabels_.size()) - 1;
    };

    const std::size_t headerCount = plan.header_.size();
    int messageIndex = 0;
    for (const MessageSpec& message : doc.messages()) {
        MessagePlan mp;
        mp.spec = &message;
        plan.byType_.emplace(message.type, messageIndex);

        DispatchEntry entry;
        entry.messageIndex = messageIndex;
        if (message.rule) {
            entry.labelId = ruleLabelId(message.rule->field);
            entry.value = message.rule->value;
            const auto it = headerIndexOf.find(message.rule->field);
            if (it != headerIndexOf.end()) mp.ruleFlatIndex = it->second;
            mp.ruleValue = Value::ofString(message.rule->value);
        }
        plan.dispatch_.push_back(std::move(entry));

        std::unordered_map<std::string, int> scope = headerIndexOf;
        for (const FieldSpec& field : message.fields) {
            const PlanField pf =
                compileField(field, "message '" + message.type + "'", scope);
            scope[field.label] = static_cast<int>(headerCount + mp.body.size());
            mp.body.push_back(pf);
        }

        mp.mandatory = doc.mandatoryFields(message.type);

        if (kind == MdlKind::Binary) {
            const std::size_t total = headerCount + mp.body.size();
            mp.fLengthTarget.assign(total, -1);
            mp.lengthFor.assign(total, -1);
            auto flatField = [&](std::size_t i) -> const PlanField& {
                return i < headerCount ? plan.header_[i] : mp.body[i - headerCount];
            };
            for (std::size_t i = 0; i < total; ++i) {
                const FieldSpec& spec = *flatField(i).spec;
                const TypeDef* def = doc.type(spec.type.empty() ? spec.label : spec.type);
                if (def != nullptr && def->function == "f-length") {
                    const auto it = scope.find(def->functionArg);
                    if (it == scope.end()) {
                        throw SpecError(errc::ErrorCode::MdlPlan,
                        "BinaryCodec: f-length target '" + def->functionArg +
                                        "' is not a field of message '" + message.type + "'");
                    }
                    mp.fLengthTarget[i] = it->second;
                }
                if (spec.length == FieldSpec::Length::FieldRef) {
                    // The length-source field carries the byte length of the
                    // LAST field referencing it, matching the interpreter.
                    mp.lengthFor[static_cast<std::size_t>(flatField(i).refIndex)] =
                        static_cast<int>(i);
                }
            }
            mp.mandatoryFlat.reserve(mp.mandatory.size());
            for (const std::string& label : mp.mandatory) {
                const auto it = scope.find(label);
                mp.mandatoryFlat.push_back(it == scope.end() ? -1 : it->second);
            }
        }

        if (kind == MdlKind::Text) {
            auto metaSpecOf = [&message](const std::string& label) -> const FieldSpec* {
                for (const FieldSpec& f : message.fields) {
                    if (f.label == label && f.length == FieldSpec::Length::Meta) return &f;
                }
                return nullptr;
            };
            std::vector<std::string> positionalLabels;
            for (std::size_t i = 0; i < plan.header_.size(); ++i) {
                const FieldSpec& headerField = *plan.header_[i].spec;
                if (headerField.length != FieldSpec::Length::Delimiter) continue;
                TextPositional positional;
                positional.headerIndex = static_cast<int>(i);
                if (message.rule && message.rule->field == headerField.label) {
                    positional.ruleValue = &message.rule->value;
                }
                if (const FieldSpec* meta = metaSpecOf(headerField.label);
                    meta != nullptr && meta->defaultValue) {
                    positional.fallback = &*meta->defaultValue;
                } else if (headerField.defaultValue) {
                    positional.fallback = &*headerField.defaultValue;
                }
                mp.positionals.push_back(positional);
                positionalLabels.push_back(headerField.label);
            }
            const FieldSpec* bodySpec =
                plan.textBodyIndex_ >= 0
                    ? plan.header_[static_cast<std::size_t>(plan.textBodyIndex_)].spec
                    : nullptr;
            for (const FieldSpec& f : message.fields) {
                if (f.length != FieldSpec::Length::Meta || !f.defaultValue) continue;
                if (std::find(positionalLabels.begin(), positionalLabels.end(), f.label) !=
                    positionalLabels.end()) {
                    continue;  // positional, already emitted
                }
                if (bodySpec != nullptr && f.label == bodySpec->label) continue;
                mp.metaDefaults.push_back(&f);
            }
        }

        plan.messages_.push_back(std::move(mp));
        ++messageIndex;
    }

    return plan;
}

}  // namespace starlink::mdl
