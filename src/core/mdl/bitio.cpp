#include "core/mdl/bitio.hpp"

#include "common/error.hpp"

namespace starlink::mdl {

std::optional<std::uint64_t> BitReader::readBits(int count) {
    if (count < 1 || count > 64) throw SpecError(errc::ErrorCode::CodecBitRange,
                        "BitReader: bit count out of range");
    if (remainingBits() < static_cast<std::size_t>(count)) return std::nullopt;
    std::uint64_t value = 0;
    for (int i = 0; i < count; ++i) {
        const std::size_t byteIndex = position_ >> 3;
        const int bitIndex = 7 - static_cast<int>(position_ & 7);
        value = value << 1 | ((data_[byteIndex] >> bitIndex) & 1u);
        ++position_;
    }
    return value;
}

std::optional<Bytes> BitReader::readBytes(std::size_t count) {
    if (remainingBits() < count * 8) return std::nullopt;
    Bytes out;
    out.reserve(count);
    if ((position_ & 7) == 0) {
        const std::size_t start = position_ >> 3;
        out.assign(data_.begin() + static_cast<std::ptrdiff_t>(start),
                   data_.begin() + static_cast<std::ptrdiff_t>(start + count));
        position_ += count * 8;
    } else {
        for (std::size_t i = 0; i < count; ++i) {
            out.push_back(static_cast<std::uint8_t>(*readBits(8)));
        }
    }
    return out;
}

std::optional<std::uint8_t> BitReader::peekByte() const {
    if ((position_ & 7) != 0 || remainingBits() < 8) return std::nullopt;
    return data_[position_ >> 3];
}

void BitWriter::writeBits(std::uint64_t value, int count) {
    if (count < 1 || count > 64) throw SpecError(errc::ErrorCode::CodecBitRange,
                        "BitWriter: bit count out of range");
    for (int i = count - 1; i >= 0; --i) {
        const int bit = static_cast<int>(value >> i & 1u);
        if ((bitCount_ & 7) == 0) buffer_.push_back(0);
        const std::size_t byteIndex = bitCount_ >> 3;
        const int bitIndex = 7 - static_cast<int>(bitCount_ & 7);
        if (bit != 0) buffer_[byteIndex] = static_cast<std::uint8_t>(buffer_[byteIndex] | 1u << bitIndex);
        ++bitCount_;
    }
}

void BitWriter::writeBytes(const Bytes& bytes) {
    if ((bitCount_ & 7) == 0) {
        buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
        bitCount_ += bytes.size() * 8;
    } else {
        for (std::uint8_t b : bytes) writeBits(b, 8);
    }
}

void BitWriter::writeByte(std::uint8_t byte) { writeBits(byte, 8); }

void BitWriter::patchBits(std::size_t offset, std::uint64_t value, int count) {
    if (offset + static_cast<std::size_t>(count) > bitCount_) {
        throw SpecError(errc::ErrorCode::CodecBitRange,
                        "BitWriter::patchBits: region not yet written");
    }
    for (int i = 0; i < count; ++i) {
        const std::size_t pos = offset + static_cast<std::size_t>(i);
        const std::size_t byteIndex = pos >> 3;
        const int bitIndex = 7 - static_cast<int>(pos & 7);
        const int bit = static_cast<int>(value >> (count - 1 - i) & 1u);
        if (bit != 0) {
            buffer_[byteIndex] = static_cast<std::uint8_t>(buffer_[byteIndex] | 1u << bitIndex);
        } else {
            buffer_[byteIndex] = static_cast<std::uint8_t>(buffer_[byteIndex] & ~(1u << bitIndex));
        }
    }
}

Bytes BitWriter::take() { return std::move(buffer_); }

}  // namespace starlink::mdl
