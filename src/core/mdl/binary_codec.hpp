// Generic binary message parser/composer, specialised at runtime by a
// binary-dialect MDL document (paper section IV-A, Fig 7).
//
// Parsing walks the header field specs in order, resolving each field's
// length (literal bits, value of an earlier length field, or self-delimiting
// marshaller), then selects the message body whose <Rule> matches the parsed
// header, and walks its field specs the same way. The result is a flat
// AbstractMessage carrying every header and body field.
//
// Composing is the inverse, with three classes of field the composer fills
// in itself (any caller-supplied value is overridden, which is what makes
// parse(compose(m)) == m hold):
//   - fields whose type declares f-length(X): byte length of X's encoding;
//   - fields whose type declares f-msglength(): total message byte length,
//     backpatched after the body is written;
//   - fields referenced as the length source of a later field: byte length
//     of that field's encoding;
//   - the header field named by the selected message's <Rule>: the rule value.
//
// The hot path executes a CodecPlan compiled at construction (marshallers,
// field-length references, f-length/f-msglength links and mandatory sets all
// resolved to flat field indices); the pre-plan interpreter is retained as
// parseInterpreted/composeInterpreted for differential testing and as the
// benchmark baseline.
#pragma once

#include <optional>
#include <string>

#include "core/mdl/marshaller.hpp"
#include "core/mdl/plan.hpp"
#include "core/mdl/spec.hpp"
#include "core/message/abstract_message.hpp"

namespace starlink::mdl {

class RxArena;

class BinaryCodec {
public:
    BinaryCodec(const MdlDocument& doc, std::shared_ptr<MarshallerRegistry> registry);

    /// Lifts wire bytes into an abstract message. nullopt on any mismatch
    /// (truncation, no rule matches, undecodable field); when `error` is
    /// non-null it receives a diagnostic.
    std::optional<AbstractMessage> parse(const Bytes& data, std::string* error = nullptr) const {
        return parse(data, nullptr, error);
    }

    /// Zero-copy parse: with an arena, the datagram is copied into it once
    /// and byte-aligned String/Bytes fields become views over that copy --
    /// valid until the arena resets. nullptr arena keeps the fully-owning
    /// behaviour.
    std::optional<AbstractMessage> parse(const Bytes& data, RxArena* arena,
                                         std::string* error) const;

    /// Lowers an abstract message to wire bytes. Throws SpecError when the
    /// message type is unknown to the MDL or a mandatory field is absent,
    /// ProtocolError when a value cannot be encoded.
    Bytes compose(const AbstractMessage& message) const;

    /// compose() into a caller-owned buffer (cleared first); lets a session
    /// reuse one allocation across messages.
    void composeInto(const AbstractMessage& message, Bytes& out) const;

    /// The pre-plan interpreter, re-deriving everything from the document
    /// per message. Reference semantics for tests and benchmarks.
    std::optional<AbstractMessage> parseInterpreted(const Bytes& data,
                                                    std::string* error = nullptr) const;
    Bytes composeInterpreted(const AbstractMessage& message) const;

    const CodecPlan& plan() const { return plan_; }

private:
    const MdlDocument& doc_;
    std::shared_ptr<MarshallerRegistry> registry_;
    CodecPlan plan_;
};

}  // namespace starlink::mdl
