#include "core/mdl/marshaller.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace starlink::mdl {

namespace {

[[noreturn]] void badLength(const char* type) {
    throw ProtocolError(errc::ErrorCode::CodecCompose,
                        std::string(type) + " marshaller: invalid length specification");
}

}  // namespace

// ---------------------------------------------------------------------------
// IntegerMarshaller

std::optional<Value> IntegerMarshaller::read(BitReader& in, std::optional<int> lengthBits) const {
    if (!lengthBits || *lengthBits < 1 || *lengthBits > 63) return std::nullopt;
    const auto raw = in.readBits(*lengthBits);
    if (!raw) return std::nullopt;
    return Value::ofInt(static_cast<std::int64_t>(*raw));
}

void IntegerMarshaller::write(BitWriter& out, const Value& value,
                              std::optional<int> lengthBits) const {
    if (!lengthBits || *lengthBits < 1 || *lengthBits > 63) badLength("Integer");
    const auto coerced = value.coerceTo(ValueType::Int);
    if (!coerced) throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "Integer marshaller: value is not an integer");
    const std::int64_t v = *coerced->asInt();
    if (v < 0 || (*lengthBits < 63 && v >= (std::int64_t{1} << *lengthBits))) {
        throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "Integer marshaller: " + std::to_string(v) + " does not fit in " +
                            std::to_string(*lengthBits) + " bits");
    }
    out.writeBits(static_cast<std::uint64_t>(v), *lengthBits);
}

int IntegerMarshaller::encodedBits(const Value&, std::optional<int> lengthBits) const {
    if (!lengthBits) badLength("Integer");
    return *lengthBits;
}

// ---------------------------------------------------------------------------
// StringMarshaller

std::optional<Value> StringMarshaller::read(BitReader& in, std::optional<int> lengthBits) const {
    if (!lengthBits || *lengthBits < 0 || *lengthBits % 8 != 0) return std::nullopt;
    if (*lengthBits == 0) return Value::ofString("");
    const auto raw = in.readBytes(static_cast<std::size_t>(*lengthBits / 8));
    if (!raw) return std::nullopt;
    return Value::ofString(toString(*raw));
}

void StringMarshaller::write(BitWriter& out, const Value& value,
                             std::optional<int> lengthBits) const {
    const auto coerced = value.coerceTo(ValueType::String);
    if (!coerced) throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "String marshaller: value is not text");
    const std::string text = *coerced->asString();
    if (!lengthBits) badLength("String");
    if (*lengthBits % 8 != 0) badLength("String");
    const std::size_t expected = static_cast<std::size_t>(*lengthBits) / 8;
    if (text.size() != expected) {
        throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "String marshaller: value of " + std::to_string(text.size()) +
                            " bytes does not fill a " + std::to_string(expected) + "-byte field");
    }
    out.writeBytes(toBytes(text));
}

int StringMarshaller::encodedBits(const Value& value, std::optional<int> lengthBits) const {
    if (lengthBits) return *lengthBits;
    const auto coerced = value.coerceTo(ValueType::String);
    if (!coerced) throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "String marshaller: value is not text");
    return static_cast<int>(coerced->asString()->size() * 8);
}

// ---------------------------------------------------------------------------
// BytesMarshaller

std::optional<Value> BytesMarshaller::read(BitReader& in, std::optional<int> lengthBits) const {
    if (!lengthBits || *lengthBits < 0 || *lengthBits % 8 != 0) return std::nullopt;
    if (*lengthBits == 0) return Value::ofBytes({});
    const auto raw = in.readBytes(static_cast<std::size_t>(*lengthBits / 8));
    if (!raw) return std::nullopt;
    return Value::ofBytes(*raw);
}

void BytesMarshaller::write(BitWriter& out, const Value& value,
                            std::optional<int> lengthBits) const {
    const auto coerced = value.coerceTo(ValueType::Bytes);
    if (!coerced) throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "Bytes marshaller: value is not a byte buffer");
    const Bytes data = *coerced->asBytes();
    if (!lengthBits || *lengthBits % 8 != 0) badLength("Bytes");
    if (data.size() != static_cast<std::size_t>(*lengthBits) / 8) {
        throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "Bytes marshaller: buffer does not fill the field");
    }
    out.writeBytes(data);
}

int BytesMarshaller::encodedBits(const Value& value, std::optional<int> lengthBits) const {
    if (lengthBits) return *lengthBits;
    const auto coerced = value.coerceTo(ValueType::Bytes);
    if (!coerced) throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "Bytes marshaller: value is not a byte buffer");
    return static_cast<int>(coerced->asBytes()->size() * 8);
}

// ---------------------------------------------------------------------------
// BoolMarshaller

std::optional<Value> BoolMarshaller::read(BitReader& in, std::optional<int> lengthBits) const {
    if (!lengthBits || *lengthBits < 1 || *lengthBits > 63) return std::nullopt;
    const auto raw = in.readBits(*lengthBits);
    if (!raw) return std::nullopt;
    return Value::ofBool(*raw != 0);
}

void BoolMarshaller::write(BitWriter& out, const Value& value,
                           std::optional<int> lengthBits) const {
    if (!lengthBits || *lengthBits < 1 || *lengthBits > 63) badLength("Bool");
    const auto coerced = value.coerceTo(ValueType::Bool);
    if (!coerced) throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "Bool marshaller: value is not boolean");
    out.writeBits(*coerced->asBool() ? 1 : 0, *lengthBits);
}

int BoolMarshaller::encodedBits(const Value&, std::optional<int> lengthBits) const {
    if (!lengthBits) badLength("Bool");
    return *lengthBits;
}

// ---------------------------------------------------------------------------
// FqdnMarshaller

std::optional<Value> FqdnMarshaller::read(BitReader& in, std::optional<int>) const {
    std::vector<std::string> labels;
    while (true) {
        const auto lengthByte = in.readBits(8);
        if (!lengthByte) return std::nullopt;
        if (*lengthByte == 0) break;  // root label
        if (*lengthByte > 63) return std::nullopt;  // compression pointers unsupported
        const auto raw = in.readBytes(static_cast<std::size_t>(*lengthByte));
        if (!raw) return std::nullopt;
        labels.push_back(toString(*raw));
    }
    return Value::ofString(join(labels, "."));
}

void FqdnMarshaller::write(BitWriter& out, const Value& value, std::optional<int>) const {
    const auto coerced = value.coerceTo(ValueType::String);
    if (!coerced) throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "FQDN marshaller: value is not text");
    const std::string name = *coerced->asString();
    if (!name.empty()) {
        for (const std::string& label : split(name, '.')) {
            if (label.empty() || label.size() > 63) {
                throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "FQDN marshaller: bad label in '" + name + "'");
            }
            out.writeByte(static_cast<std::uint8_t>(label.size()));
            out.writeBytes(toBytes(label));
        }
    }
    out.writeByte(0);
}

int FqdnMarshaller::encodedBits(const Value& value, std::optional<int>) const {
    const auto coerced = value.coerceTo(ValueType::String);
    if (!coerced) throw ProtocolError(errc::ErrorCode::CodecCompose,
                        "FQDN marshaller: value is not text");
    const std::string name = *coerced->asString();
    std::size_t bytes = 1;  // terminating root label
    if (!name.empty()) {
        for (const std::string& label : split(name, '.')) {
            bytes += 1 + label.size();
        }
    }
    return static_cast<int>(bytes * 8);
}

// ---------------------------------------------------------------------------
// MarshallerRegistry

std::shared_ptr<MarshallerRegistry> MarshallerRegistry::withDefaults() {
    auto registry = std::make_shared<MarshallerRegistry>();
    const auto integer = std::make_shared<IntegerMarshaller>();
    const auto text = std::make_shared<StringMarshaller>();
    const auto bytes = std::make_shared<BytesMarshaller>();
    const auto boolean = std::make_shared<BoolMarshaller>();
    const auto fqdn = std::make_shared<FqdnMarshaller>();
    registry->add("Integer", integer);
    registry->add("Int", integer);
    registry->add("String", text);
    registry->add("Text", text);
    registry->add("Bytes", bytes);
    registry->add("Bool", boolean);
    registry->add("Boolean", boolean);
    registry->add("FQDN", fqdn);
    return registry;
}

void MarshallerRegistry::add(const std::string& name, std::shared_ptr<Marshaller> marshaller) {
    table_[name] = std::move(marshaller);
}

const Marshaller* MarshallerRegistry::find(const std::string& name) const {
    const auto it = table_.find(name);
    return it == table_.end() ? nullptr : it->second.get();
}

}  // namespace starlink::mdl
