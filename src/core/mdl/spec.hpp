// The Message Description Language document model (paper section IV-A,
// Figs 7 and 11) and its XML loader.
//
// An MDL document describes one protocol's messages. Two dialects share the
// model:
//
//  - kind="binary" (Fig 7): field content is `<Label>length</Label>` where
//    length is a bit count, the name of an earlier field whose VALUE is the
//    length in BYTES, or "auto" for self-delimiting types (e.g. FQDN).
//
//  - kind="text" (Fig 11): field content is a delimiter spec -- a comma-
//    separated list of ASCII codes terminating the token ("13,10" = CRLF,
//    "32" = space). Two special labels exist: <Fields>sep:inner</Fields>
//    declares a repeated label/value block (lines split from values at the
//    `inner` code), and <Body/> captures everything after the blank line.
//
//  - kind="xml" (the third dialect the paper names): field content is an
//    ELEMENT PATH below the document root ("Header/Action"); the field's
//    value is that element's text. The <Header> element's `root` attribute
//    names the required document root.
//
// Shared constructs:
//    <Types>   <Label>Marshaller[f-func(arg)]</Label> ... </Types>
//    <Header type="P"> field specs... </Header>
//    <Message type="T"> <Rule>Field=Value</Rule> field specs... </Message>
//
// Attributes accepted on field-spec elements:
//    mandatory="true"   -- the field participates in the semantic-
//                          equivalence check (Mfields, paper eqn 1)
//    default="text"     -- composer fallback when the abstract message does
//                          not carry the field
//
// Note: the paper prints `<Header type=SLP>`; we require well-formed XML, so
// attribute values are quoted.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "xml/dom.hpp"

namespace starlink::mdl {

/// A type declaration from <Types>: which marshaller encodes it, plus an
/// optional field function computed by the composer (paper: "[f-method()]").
struct TypeDef {
    std::string name;
    std::string marshaller;   // registry key, e.g. "Integer", "FQDN"
    std::string function;     // "f-length", "f-msglength" or empty
    std::string functionArg;  // field label argument, may be empty
};

/// One field of a header or message body.
struct FieldSpec {
    enum class Length {
        Bits,        // binary: literal bit count in `bits`
        FieldRef,    // binary: byte count taken from the value of field `ref`
        Auto,        // binary: self-delimiting marshaller
        Delimiter,   // text: token ends at `delimiter`
        FieldsBlock, // text: repeated label/value lines (sep=`delimiter`, split=`innerSplit`)
        Body,        // text: remainder of the message
        Meta,        // text message body: no wire presence of its own (the
                     // line lives in the header's Fields block); carries the
                     // per-message mandatory flag and default value, and may
                     // override the default of a positional header field
        XmlPath      // xml: the field lives at the element path `ref`
                     // (slash-separated child names below the document root)
    };

    std::string label;
    std::string type;  // key into MdlDocument::types; "" = dialect default
    Length length = Length::Bits;
    int bits = 0;
    std::string ref;
    Bytes delimiter;
    std::uint8_t innerSplit = 0;
    bool mandatory = false;
    std::optional<std::string> defaultValue;
};

/// The <Rule> selecting a message body from parsed header fields.
struct Rule {
    std::string field;
    std::string value;
};

struct MessageSpec {
    std::string type;  // abstract message type label, e.g. "SLPSrvRequest"
    std::optional<Rule> rule;
    std::vector<FieldSpec> fields;
};

struct HeaderSpec {
    std::string type;
    std::string xmlRoot;  // xml dialect: required document root element name
    std::vector<FieldSpec> fields;
};

enum class MdlKind { Binary, Text, Xml };

/// A parsed, validated MDL document.
class MdlDocument {
public:
    /// Parses MDL XML; throws SpecError on any malformation (unknown type
    /// reference, duplicate labels, missing Header, rule on unknown field...).
    static MdlDocument fromXml(const std::string& xmlText);
    static MdlDocument fromXml(const xml::Node& root);

    const std::string& protocol() const { return protocol_; }
    MdlKind kind() const { return kind_; }
    const HeaderSpec& header() const { return header_; }
    const std::vector<MessageSpec>& messages() const { return messages_; }

    const MessageSpec* message(const std::string& type) const;
    const TypeDef* type(const std::string& name) const;
    const std::map<std::string, TypeDef>& types() const { return types_; }

    /// Marshaller name for a field; defaults to String when undeclared.
    std::string marshallerFor(const FieldSpec& field) const;

    /// Labels of mandatory fields (header + body) for a message type --
    /// Mfields(n) in the paper's eqn (1).
    std::vector<std::string> mandatoryFields(const std::string& messageType) const;

    /// All message type labels this document can parse/compose.
    std::vector<std::string> messageTypes() const;

private:
    std::string protocol_;
    MdlKind kind_ = MdlKind::Binary;
    std::map<std::string, TypeDef> types_;
    HeaderSpec header_;
    std::vector<MessageSpec> messages_;
};

}  // namespace starlink::mdl
