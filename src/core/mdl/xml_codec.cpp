#include "core/mdl/xml_codec.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/mdl/rx_arena.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace starlink::mdl {

namespace {

/// Resolves a slash-separated element path below `root`; nullptr when any
/// step is missing.
const xml::Node* resolve(const xml::Node& root, const std::string& path) {
    const xml::Node* current = &root;
    for (const std::string& step : split(path, '/')) {
        if (step.empty()) return nullptr;
        current = current->child(step);
        if (current == nullptr) return nullptr;
    }
    return current;
}

/// Plan path: same walk over pre-split steps, no per-message splitting.
const xml::Node* resolveSteps(const xml::Node& root, const std::vector<std::string>& steps) {
    const xml::Node* current = &root;
    for (const std::string& step : steps) {
        if (step.empty()) return nullptr;
        current = current->child(step);
        if (current == nullptr) return nullptr;
    }
    return current;
}

/// Resolves the path, creating missing elements.
xml::Node* resolveOrCreate(xml::Node& root, const std::string& path) {
    xml::Node* current = &root;
    for (const std::string& step : split(path, '/')) {
        if (step.empty()) return nullptr;
        xml::Node* next = current->child(step);
        current = next != nullptr ? next : &current->appendChild(step);
    }
    return current;
}

xml::Node* resolveOrCreateSteps(xml::Node& root, const std::vector<std::string>& steps) {
    xml::Node* current = &root;
    for (const std::string& step : steps) {
        if (step.empty()) return nullptr;
        xml::Node* next = current->child(step);
        current = next != nullptr ? next : &current->appendChild(step);
    }
    return current;
}

ValueType valueTypeOf(const MdlDocument& doc, const FieldSpec& field) {
    const TypeDef* def = doc.type(field.type.empty() ? field.label : field.type);
    if (def == nullptr) return ValueType::String;
    if (def->marshaller == "Integer" || def->marshaller == "Int") return ValueType::Int;
    if (def->marshaller == "Bool" || def->marshaller == "Boolean") return ValueType::Bool;
    return ValueType::String;
}

}  // namespace

XmlCodec::XmlCodec(const MdlDocument& doc, std::shared_ptr<MarshallerRegistry> registry)
    : doc_(doc), registry_(std::move(registry)) {
    if (doc_.kind() != MdlKind::Xml) {
        throw SpecError(errc::ErrorCode::MdlInvalid,
                        "XmlCodec: MDL document '" + doc_.protocol() + "' is not xml");
    }
    auto check = [](const FieldSpec& field, const std::string& where) {
        if (field.length != FieldSpec::Length::XmlPath &&
            field.length != FieldSpec::Length::Meta) {
            throw SpecError(errc::ErrorCode::MdlInvalid,
                        "XmlCodec " + where + ": field '" + field.label +
                            "' is not an element path");
        }
    };
    for (const FieldSpec& f : doc_.header().fields) check(f, "header");
    for (const MessageSpec& m : doc_.messages()) {
        for (const FieldSpec& f : m.fields) check(f, "message '" + m.type + "'");
    }
    plan_ = CodecPlan::compile(doc_, *registry_);
}

// ---------------------------------------------------------------------------
// Plan path: flat execution of the compiled plan.

std::optional<AbstractMessage> XmlCodec::parse(const Bytes& data, RxArena* arena,
                                               std::string* error) const {
    auto fail = [error](const std::string& why) -> std::optional<AbstractMessage> {
        if (error != nullptr) *error = why;
        return std::nullopt;
    };

    std::unique_ptr<xml::Node> root;
    try {
        root = xml::parse(toString(data));
    } catch (const SpecError& e) {
        return fail(std::string("not well-formed xml: ") + e.what());
    }
    if (root->name() != doc_.header().xmlRoot) {
        return fail("document root <" + root->name() + "> is not <" + doc_.header().xmlRoot +
                    ">");
    }

    std::vector<Field> fields;
    auto parseFields = [&](const std::vector<PlanField>& planFields, bool mandatoryEnforced,
                           std::string& why) -> bool {
        for (const PlanField& pf : planFields) {
            const FieldSpec& spec = *pf.spec;
            if (spec.length != FieldSpec::Length::XmlPath) continue;  // Meta: no wire presence
            const xml::Node* node = resolveSteps(*root, pf.pathSteps);
            if (node == nullptr) {
                if (mandatoryEnforced && spec.mandatory) {
                    why = "mandatory element '" + spec.ref + "' missing";
                    return false;
                }
                continue;
            }
            const std::string text = trim(node->text());
            std::optional<Value> value;
            if (pf.valueType != ValueType::String) value = Value::fromText(pf.valueType, text);
            if (!value) {
                // Untyped (or unparsable-as-typed) text: intern into the
                // arena so the Value borrows instead of owning.
                value = arena != nullptr ? Value::ofView(arena->intern(text))
                                         : Value::ofString(text);
            }
            fields.push_back(Field::primitive(spec.label, pf.marshallerName, std::move(*value)));
        }
        return true;
    };

    std::string why;
    parseFields(plan_.header(), /*mandatoryEnforced=*/false, why);

    const int selectedIndex =
        plan_.selectMessage([&fields](int, const std::string& label) -> std::optional<std::string> {
            for (const Field& f : fields) {
                if (f.label() == label) return f.value().toText();
            }
            return std::nullopt;
        });
    if (selectedIndex < 0) return fail("no message rule matches");
    const MessagePlan& mp = plan_.messages()[static_cast<std::size_t>(selectedIndex)];
    if (!parseFields(mp.body, /*mandatoryEnforced=*/true, why)) {
        return fail("message '" + mp.spec->type + "': " + why);
    }

    AbstractMessage message(mp.spec->type);
    message.fields() = std::move(fields);
    return message;
}

Bytes XmlCodec::compose(const AbstractMessage& message) const {
    Bytes out;
    composeInto(message, out);
    return out;
}

void XmlCodec::composeInto(const AbstractMessage& message, Bytes& out) const {
    out.clear();
    const MessagePlan* mp = plan_.planFor(message.type());
    if (mp == nullptr) {
        throw SpecError(errc::ErrorCode::CodecMessageUnknown,
                        "XmlCodec: MDL '" + doc_.protocol() + "' does not define message '" +
                        message.type() + "'");
    }
    for (const std::string& label : mp->mandatory) {
        if (!message.value(label)) {
            throw SpecError(errc::ErrorCode::CodecMandatoryMissing,
                        "XmlCodec: mandatory field '" + label + "' of message '" +
                            message.type() + "' has no value");
        }
    }

    const MessageSpec* spec = mp->spec;
    xml::Node root(doc_.header().xmlRoot);
    auto emit = [&](const std::vector<PlanField>& planFields) {
        for (const PlanField& pf : planFields) {
            const FieldSpec& fieldSpec = *pf.spec;
            if (fieldSpec.length != FieldSpec::Length::XmlPath) continue;
            std::string text;
            if (spec->rule && spec->rule->field == fieldSpec.label) {
                text = spec->rule->value;
            } else if (const auto value = message.value(fieldSpec.label)) {
                text = value->toText();
            } else if (fieldSpec.defaultValue) {
                text = *fieldSpec.defaultValue;
            } else {
                continue;  // optional field the message does not carry
            }
            resolveOrCreateSteps(root, pf.pathSteps)->setText(text);
        }
    };
    emit(plan_.header());
    emit(mp->body);
    const std::string doc = xml::write(root);
    out.assign(doc.begin(), doc.end());
}

// ---------------------------------------------------------------------------
// Pre-plan interpreter: re-derives paths, types and rule dispatch from the
// document per message. Kept verbatim as the reference implementation the
// compiled plan must match byte-for-byte.

std::optional<AbstractMessage> XmlCodec::parseInterpreted(const Bytes& data,
                                                          std::string* error) const {
    auto fail = [error](const std::string& why) -> std::optional<AbstractMessage> {
        if (error != nullptr) *error = why;
        return std::nullopt;
    };

    std::unique_ptr<xml::Node> root;
    try {
        root = xml::parse(toString(data));
    } catch (const SpecError& e) {
        return fail(std::string("not well-formed xml: ") + e.what());
    }
    if (root->name() != doc_.header().xmlRoot) {
        return fail("document root <" + root->name() + "> is not <" + doc_.header().xmlRoot +
                    ">");
    }

    std::vector<Field> fields;
    auto parseFields = [&](const std::vector<FieldSpec>& specs, bool mandatoryEnforced,
                           std::string& why) -> bool {
        for (const FieldSpec& spec : specs) {
            if (spec.length != FieldSpec::Length::XmlPath) continue;  // Meta: no wire presence
            const xml::Node* node = resolve(*root, spec.ref);
            if (node == nullptr) {
                if (mandatoryEnforced && spec.mandatory) {
                    why = "mandatory element '" + spec.ref + "' missing";
                    return false;
                }
                continue;
            }
            const std::string text = trim(node->text());
            const ValueType type = valueTypeOf(doc_, spec);
            const auto value = Value::fromText(type, text);
            fields.push_back(Field::primitive(spec.label, doc_.marshallerFor(spec),
                                              value ? *value : Value::ofString(text)));
        }
        return true;
    };

    std::string why;
    parseFields(doc_.header().fields, /*mandatoryEnforced=*/false, why);

    const MessageSpec* selected = nullptr;
    auto lookup = [&fields](const std::string& label) -> const Field* {
        for (const Field& f : fields) {
            if (f.label() == label) return &f;
        }
        return nullptr;
    };
    for (const MessageSpec& candidate : doc_.messages()) {
        if (!candidate.rule) {
            if (selected == nullptr) selected = &candidate;
            continue;
        }
        const Field* field = lookup(candidate.rule->field);
        if (field != nullptr && field->value().toText() == candidate.rule->value) {
            selected = &candidate;
            break;
        }
    }
    if (selected == nullptr) return fail("no message rule matches");
    if (!parseFields(selected->fields, /*mandatoryEnforced=*/true, why)) {
        return fail("message '" + selected->type + "': " + why);
    }

    AbstractMessage message(selected->type);
    for (Field& f : fields) message.addField(std::move(f));
    return message;
}

Bytes XmlCodec::composeInterpreted(const AbstractMessage& message) const {
    const MessageSpec* spec = doc_.message(message.type());
    if (spec == nullptr) {
        throw SpecError(errc::ErrorCode::CodecMessageUnknown,
                        "XmlCodec: MDL '" + doc_.protocol() + "' does not define message '" +
                        message.type() + "'");
    }
    for (const std::string& label : doc_.mandatoryFields(message.type())) {
        if (!message.value(label)) {
            throw SpecError(errc::ErrorCode::CodecMandatoryMissing,
                        "XmlCodec: mandatory field '" + label + "' of message '" +
                            message.type() + "' has no value");
        }
    }

    xml::Node root(doc_.header().xmlRoot);
    auto emit = [&](const std::vector<FieldSpec>& specs) {
        for (const FieldSpec& fieldSpec : specs) {
            if (fieldSpec.length != FieldSpec::Length::XmlPath) continue;
            std::string text;
            if (spec->rule && spec->rule->field == fieldSpec.label) {
                text = spec->rule->value;
            } else if (const auto value = message.value(fieldSpec.label)) {
                text = value->toText();
            } else if (fieldSpec.defaultValue) {
                text = *fieldSpec.defaultValue;
            } else {
                continue;  // optional field the message does not carry
            }
            resolveOrCreate(root, fieldSpec.ref)->setText(text);
        }
    };
    emit(doc_.header().fields);
    emit(spec->fields);
    return toBytes(xml::write(root));
}

}  // namespace starlink::mdl
