// Compiled codec plans: load-time specialisation of MDL interpretation.
//
// The paper's cost argument (section VI, Fig 12) is that interpreting MDL
// models at runtime is cheap enough to bridge live protocols. The generic
// interpreters nevertheless re-derive per message everything the model
// already fixes at load time: marshaller lookups by name, ValueType
// classification of <Types>, delimiter scans, slash-splitting of element
// paths, and linear rule evaluation. A CodecPlan performs that derivation
// ONCE, when the MdlDocument is loaded, and the dialect codecs then execute
// the flat plan per message:
//
//  - every field spec carries its resolved Marshaller*, type name and
//    ValueType;
//  - binary field-length references are resolved to flat field indices;
//  - xml element paths are pre-split into step vectors;
//  - text delimiters get a prebuilt Boyer-Moore-Horspool searcher;
//  - <Rule> dispatch becomes an indexed probe over pre-extracted rule
//    labels instead of a per-candidate scan of the parsed field list;
//  - per-message compose metadata (mandatory labels, meta/default
//    overrides, f-length / length-source links, rule constants) is staged
//    in vectors indexed by flat field position.
//
// A plan borrows from the MdlDocument and MarshallerRegistry it was
// compiled from; both must outlive it (the owning codec holds both).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "core/mdl/marshaller.hpp"
#include "core/mdl/spec.hpp"
#include "core/message/value.hpp"

namespace starlink::mdl {

/// Prebuilt substring search for one delimiter byte sequence. Single-byte
/// delimiters use memchr; longer ones a Boyer-Moore-Horspool searcher built
/// once at plan-compile time.
class DelimiterSearcher {
public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    DelimiterSearcher() = default;
    explicit DelimiterSearcher(const Bytes* delimiter);

    /// Offset of the first occurrence of the delimiter at or after `from`;
    /// npos when it never occurs.
    std::size_t find(const Bytes& data, std::size_t from) const;

    const Bytes& delimiter() const { return *delimiter_; }

private:
    const Bytes* delimiter_ = nullptr;  // owned by the FieldSpec in the MDL
    std::optional<std::boyer_moore_horspool_searcher<Bytes::const_iterator>> bmh_;
};

/// One field spec with everything the interpreter would re-derive per
/// message resolved at load time.
struct PlanField {
    const FieldSpec* spec = nullptr;
    const Marshaller* marshaller = nullptr;  // resolved registry entry (may be null for text)
    std::string marshallerName;              // type name stamped on parsed fields
    ValueType valueType = ValueType::String; // typed lift for text/xml token values
    std::vector<std::string> pathSteps;      // xml dialect: pre-split element path
    int refIndex = -1;                       // binary FieldRef: flat index of the length source
    int searcherIndex = -1;                  // text dialect: index into CodecPlan searchers
    bool isMsgLength = false;                // binary: type declares f-msglength()
    RawKind rawKind = RawKind::None;         // binary: view-eligible verbatim byte copy
    std::optional<Value> defaultValue;       // spec default, lifted to a Value once
    Value emptyFill;                         // binary compose fill for unsupplied optionals
};

/// A positional (delimiter-terminated) text header field as one message
/// type composes it: rule constants and meta-default overrides resolved.
struct TextPositional {
    int headerIndex = -1;                   // index into CodecPlan::header()
    const std::string* ruleValue = nullptr; // forced by the message <Rule>
    const std::string* fallback = nullptr;  // meta default, else header default
};

/// Per-message-type compiled compose/parse metadata.
struct MessagePlan {
    const MessageSpec* spec = nullptr;
    std::vector<PlanField> body;  // compiled body field specs

    // Binary dialect, indexed by flat position (header fields first, then
    // body fields):
    std::vector<int> fLengthTarget;  // flat index of the f-length target, -1
    std::vector<int> lengthFor;      // flat index of the later field sized by this one, -1
    int ruleFlatIndex = -1;          // header field forced to the rule value
    std::optional<Value> ruleValue;  // that value, lifted once

    // Shared:
    std::vector<std::string> mandatory;  // Mfields(n), precomputed
    std::vector<int> mandatoryFlat;      // binary: flat index of each mandatory label

    // Text dialect:
    std::vector<TextPositional> positionals;        // positional emission order
    std::vector<const FieldSpec*> metaDefaults;     // Meta lines to default-emit
};

/// The compiled plan for one MdlDocument.
class CodecPlan {
public:
    /// Compiles the document against a registry. Throws SpecError when a
    /// field names an unregistered marshaller (same contract the binary
    /// interpreter enforced at construction).
    static CodecPlan compile(const MdlDocument& doc, const MarshallerRegistry& registry);

    const std::vector<PlanField>& header() const { return header_; }
    const std::vector<MessagePlan>& messages() const { return messages_; }
    const MessagePlan* planFor(std::string_view type) const;

    /// Text dialect: header indices of the <Fields> block and <Body>, -1
    /// when the header does not declare them.
    int textFieldsBlockIndex() const { return textFieldsBlockIndex_; }
    int textBodyIndex() const { return textBodyIndex_; }

    /// ValueType a text line label should carry, from <Types>; String when
    /// undeclared.
    ValueType valueTypeOfLabel(const std::string& label) const {
        const auto it = labelTypes_.find(label);
        return it == labelTypes_.end() ? ValueType::String : it->second;
    }

    const DelimiterSearcher& searcher(int index) const { return searchers_[index]; }

    /// Flat header index of rule label `id` (rules are validated to
    /// reference header fields).
    int ruleLabelHeaderIndex(int id) const { return ruleLabelHeaderIndex_[id]; }
    const std::string& ruleLabel(int id) const { return ruleLabels_[id]; }

    /// Message selection (the <Rule> dispatch of every dialect): walks the
    /// candidates in document order, returning the first ruled message whose
    /// label value matches, else the first unruled one; -1 when nothing
    /// matches. `valueOf(labelId, label)` resolves a rule label to the
    /// parsed text value (nullopt when the field was not parsed) and is
    /// called at most once per distinct label.
    template <typename ValueOf>
    int selectMessage(ValueOf&& valueOf) const {
        // Typically one distinct rule label; avoid heap traffic for that case.
        std::optional<std::string> inlineCache;
        bool inlineResolved = false;
        std::vector<std::pair<bool, std::optional<std::string>>> cache;
        if (ruleLabels_.size() > 1) cache.resize(ruleLabels_.size());
        int fallback = -1;
        for (const DispatchEntry& entry : dispatch_) {
            if (entry.labelId < 0) {
                if (fallback < 0) fallback = entry.messageIndex;
                continue;
            }
            const std::optional<std::string>* resolved = nullptr;
            if (ruleLabels_.size() == 1) {
                if (!inlineResolved) {
                    inlineCache = valueOf(entry.labelId, ruleLabels_[0]);
                    inlineResolved = true;
                }
                resolved = &inlineCache;
            } else {
                auto& slot = cache[static_cast<std::size_t>(entry.labelId)];
                if (!slot.first) {
                    slot.second = valueOf(entry.labelId,
                                          ruleLabels_[static_cast<std::size_t>(entry.labelId)]);
                    slot.first = true;
                }
                resolved = &slot.second;
            }
            if (resolved->has_value() && **resolved == entry.value) return entry.messageIndex;
        }
        return fallback;
    }

private:
    struct DispatchEntry {
        int messageIndex = -1;
        int labelId = -1;   // index into ruleLabels_, -1 for unruled fallback
        std::string value;  // rule constant
    };

    std::vector<PlanField> header_;
    std::vector<MessagePlan> messages_;
    std::unordered_map<std::string, int> byType_;
    std::vector<DelimiterSearcher> searchers_;
    std::unordered_map<std::string, ValueType> labelTypes_;
    std::vector<std::string> ruleLabels_;
    std::vector<int> ruleLabelHeaderIndex_;
    std::vector<DispatchEntry> dispatch_;
    int textFieldsBlockIndex_ = -1;
    int textBodyIndex_ = -1;
};

}  // namespace starlink::mdl
