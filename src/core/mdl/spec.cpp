#include "core/mdl/spec.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "xml/parser.hpp"

namespace starlink::mdl {

namespace {

// Parses "Integer[f-length(URLEntry)]" into a TypeDef.
TypeDef parseTypeDef(const std::string& name, const std::string& body) {
    TypeDef def;
    def.name = name;
    const std::string text = trim(body);
    const std::size_t bracket = text.find('[');
    if (bracket == std::string::npos) {
        def.marshaller = text;
        return def;
    }
    def.marshaller = trim(text.substr(0, bracket));
    if (text.back() != ']') {
        throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL type '" + name + "': unterminated function bracket");
    }
    const std::string call = trim(text.substr(bracket + 1, text.size() - bracket - 2));
    const std::size_t paren = call.find('(');
    if (paren == std::string::npos || call.back() != ')') {
        throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL type '" + name + "': malformed function '" + call + "'");
    }
    def.function = trim(call.substr(0, paren));
    def.functionArg = trim(call.substr(paren + 1, call.size() - paren - 2));
    if (def.function != "f-length" && def.function != "f-msglength") {
        throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL type '" + name + "': unknown function '" + def.function + "'");
    }
    if (def.function == "f-length" && def.functionArg.empty()) {
        throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL type '" + name + "': f-length requires a field argument");
    }
    return def;
}

// Parses a comma-separated list of ASCII codes: "13,10" -> {0x0d, 0x0a}.
Bytes parseDelimiter(const std::string& text, const std::string& context) {
    Bytes out;
    for (const std::string& piece : split(text, ',')) {
        const auto code = parseInt(trim(piece));
        if (!code || *code < 0 || *code > 255) {
            throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL " + context + ": bad delimiter code '" + piece + "'");
        }
        out.push_back(static_cast<std::uint8_t>(*code));
    }
    if (out.empty()) throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL " + context + ": empty delimiter");
    return out;
}

FieldSpec parseFieldSpec(const xml::Node& node, MdlKind kind, bool inMessageBody = false) {
    FieldSpec field;
    field.label = node.name();
    if (const auto type = node.attribute("type")) field.type = *type;
    if (const auto mandatory = node.attribute("mandatory")) {
        field.mandatory = *mandatory == "true" || *mandatory == "1";
    }
    if (const auto defaultValue = node.attribute("default")) field.defaultValue = *defaultValue;

    const std::string content = trim(node.text());

    if (kind == MdlKind::Xml) {
        if (content.empty()) {
            field.length = FieldSpec::Length::Meta;
        } else {
            field.length = FieldSpec::Length::XmlPath;
            field.ref = content;
        }
        return field;
    }

    if (kind == MdlKind::Binary) {
        if (content == "auto") {
            field.length = FieldSpec::Length::Auto;
        } else if (const auto bits = parseInt(content)) {
            if (*bits <= 0) {
                throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL field '" + field.label + "': non-positive bit length");
            }
            field.length = FieldSpec::Length::Bits;
            field.bits = static_cast<int>(*bits);
        } else if (!content.empty()) {
            field.length = FieldSpec::Length::FieldRef;
            field.ref = content;
        } else {
            throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL field '" + field.label + "': missing length specification");
        }
        return field;
    }

    // Text dialect. In the HEADER, <Body/> is positional (remainder
    // capture) even with no content; inside a <Message>, every empty element
    // -- including <Body mandatory="true"/> -- is a Meta spec carrying only
    // mandatory/default metadata.
    if (field.label == "Body" && !inMessageBody) {
        field.length = FieldSpec::Length::Body;
        return field;
    }
    if (content.empty()) {
        field.length = FieldSpec::Length::Meta;
        return field;
    }
    if (field.label == "Fields") {
        const auto halves = splitFirst(content, ':');
        if (!halves) {
            throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL <Fields>: expected 'sepCodes:innerCode', got '" + content + "'");
        }
        field.length = FieldSpec::Length::FieldsBlock;
        field.delimiter = parseDelimiter(halves->first, "<Fields>");
        const Bytes inner = parseDelimiter(halves->second, "<Fields> inner split");
        if (inner.size() != 1) {
            throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL <Fields>: inner split must be a single character");
        }
        field.innerSplit = inner[0];
        return field;
    }
    if (field.label == "Body") {
        field.length = FieldSpec::Length::Body;
        return field;
    }
    field.length = FieldSpec::Length::Delimiter;
    field.delimiter = parseDelimiter(content, "field '" + field.label + "'");
    return field;
}

Rule parseRule(const std::string& text) {
    const auto halves = splitFirst(text, '=');
    if (!halves || trim(halves->first).empty()) {
        throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL <Rule>: expected 'Field=Value', got '" + text + "'");
    }
    return Rule{trim(halves->first), trim(halves->second)};
}

}  // namespace

MdlDocument MdlDocument::fromXml(const std::string& xmlText) {
    const auto root = xml::parse(xmlText);
    return fromXml(*root);
}

MdlDocument MdlDocument::fromXml(const xml::Node& root) {
    if (root.name() != "Mdl") {
        throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL: root element must be <Mdl>, got <" + root.name() + ">");
    }
    MdlDocument doc;
    doc.protocol_ = root.attribute("protocol").value_or("");
    const std::string kind = root.attribute("kind").value_or("binary");
    if (kind == "binary") {
        doc.kind_ = MdlKind::Binary;
    } else if (kind == "text") {
        doc.kind_ = MdlKind::Text;
    } else if (kind == "xml") {
        doc.kind_ = MdlKind::Xml;
    } else {
        throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL: unknown kind '" + kind + "'");
    }

    const xml::Node* typesNode = root.child("Types");
    if (typesNode != nullptr) {
        for (const auto& typeNode : typesNode->children()) {
            const TypeDef def = parseTypeDef(typeNode->name(), typeNode->text());
            if (!doc.types_.emplace(def.name, def).second) {
                throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL: duplicate type '" + def.name + "'");
            }
        }
    }

    const xml::Node* headerNode = root.child("Header");
    if (headerNode == nullptr) throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL: missing <Header>");
    doc.header_.type = headerNode->attribute("type").value_or(doc.protocol_);
    if (doc.kind_ == MdlKind::Xml) {
        doc.header_.xmlRoot = headerNode->attribute("root").value_or("");
        if (doc.header_.xmlRoot.empty()) {
            throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL: xml dialect requires <Header root=\"...\">");
        }
    }
    std::set<std::string> headerLabels;
    for (const auto& fieldNode : headerNode->children()) {
        FieldSpec field = parseFieldSpec(*fieldNode, doc.kind_);
        if (!headerLabels.insert(field.label).second) {
            throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL header: duplicate field '" + field.label + "'");
        }
        doc.header_.fields.push_back(std::move(field));
    }

    for (const xml::Node* messageNode : root.childrenNamed("Message")) {
        MessageSpec message;
        message.type = messageNode->attribute("type").value_or("");
        if (message.type.empty()) throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL: <Message> without type attribute");
        std::set<std::string> bodyLabels;
        for (const auto& fieldNode : messageNode->children()) {
            if (fieldNode->name() == "Rule") {
                if (message.rule) {
                    throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL message '" + message.type + "': multiple rules");
                }
                message.rule = parseRule(fieldNode->text());
                continue;
            }
            FieldSpec field = parseFieldSpec(*fieldNode, doc.kind_, /*inMessageBody=*/true);
            // Meta specs may shadow a header field (they override its
            // default per message); anything else must be unique.
            const bool shadowsHeader = headerLabels.contains(field.label) &&
                                       field.length != FieldSpec::Length::Meta;
            if (!bodyLabels.insert(field.label).second || shadowsHeader) {
                throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL message '" + message.type + "': duplicate field '" +
                                field.label + "'");
            }
            message.fields.push_back(std::move(field));
        }
        for (const MessageSpec& existing : doc.messages_) {
            if (existing.type == message.type) {
                throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL: duplicate message type '" + message.type + "'");
            }
        }
        doc.messages_.push_back(std::move(message));
    }
    if (doc.messages_.empty()) throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL: no <Message> definitions");

    // Validation: rules must reference header fields; field refs must point
    // to an earlier field in scope; types must resolve.
    auto checkType = [&doc](const FieldSpec& field, const std::string& where) {
        if (!field.type.empty() && doc.types_.find(field.type) == doc.types_.end()) {
            throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL " + where + ": field '" + field.label +
                            "' references undeclared type '" + field.type + "'");
        }
        if (field.type.empty() && doc.types_.contains(field.label)) {
            // Implicit: a field named like a declared type uses that type.
            return;
        }
    };
    for (const FieldSpec& field : doc.header_.fields) checkType(field, "header");

    for (const MessageSpec& message : doc.messages_) {
        if (message.rule) {
            const bool known =
                std::any_of(doc.header_.fields.begin(), doc.header_.fields.end(),
                            [&](const FieldSpec& f) { return f.label == message.rule->field; });
            if (!known) {
                throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL message '" + message.type + "': rule references unknown "
                                "header field '" + message.rule->field + "'");
            }
        }
        std::set<std::string> inScope;
        for (const FieldSpec& f : doc.header_.fields) inScope.insert(f.label);
        for (const FieldSpec& field : message.fields) {
            checkType(field, "message '" + message.type + "'");
            if (field.length == FieldSpec::Length::FieldRef && !inScope.contains(field.ref)) {
                throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL message '" + message.type + "': field '" + field.label +
                                "' takes its length from unknown field '" + field.ref + "'");
            }
            inScope.insert(field.label);
        }
    }
    // Header field refs must be backward references within the header.
    {
        std::set<std::string> seen;
        for (const FieldSpec& field : doc.header_.fields) {
            if (field.length == FieldSpec::Length::FieldRef && !seen.contains(field.ref)) {
                throw SpecError(errc::ErrorCode::MdlInvalid,
                        "MDL header: field '" + field.label +
                                "' takes its length from unknown field '" + field.ref + "'");
            }
            seen.insert(field.label);
        }
    }
    return doc;
}

const MessageSpec* MdlDocument::message(const std::string& type) const {
    for (const MessageSpec& m : messages_) {
        if (m.type == type) return &m;
    }
    return nullptr;
}

const TypeDef* MdlDocument::type(const std::string& name) const {
    const auto it = types_.find(name);
    return it == types_.end() ? nullptr : &it->second;
}

std::string MdlDocument::marshallerFor(const FieldSpec& field) const {
    const std::string& typeName = field.type.empty() ? field.label : field.type;
    if (const TypeDef* def = type(typeName)) return def->marshaller;
    // Undeclared: dialect defaults -- binary integer fields are by far the
    // common case for literal bit lengths; everything else is text.
    if (kind_ == MdlKind::Binary && field.length == FieldSpec::Length::Bits) return "Integer";
    return "String";
}

std::vector<std::string> MdlDocument::mandatoryFields(const std::string& messageType) const {
    std::vector<std::string> out;
    const MessageSpec* spec = message(messageType);
    if (spec == nullptr) return out;
    for (const FieldSpec& f : header_.fields) {
        if (f.mandatory) out.push_back(f.label);
    }
    for (const FieldSpec& f : spec->fields) {
        if (f.mandatory) out.push_back(f.label);
    }
    return out;
}

std::vector<std::string> MdlDocument::messageTypes() const {
    std::vector<std::string> out;
    out.reserve(messages_.size());
    for (const MessageSpec& m : messages_) out.push_back(m.type);
    return out;
}

}  // namespace starlink::mdl
