#include "core/mdl/binary_codec.hpp"

#include <cstdint>
#include <map>

#include "common/error.hpp"
#include "core/mdl/rx_arena.hpp"

namespace starlink::mdl {

namespace {

// Hard caps against hostile wire input. A datagram larger than any legitimate
// protocol message, a parse yielding absurdly many fields, or a length field
// implying a gigantic body is rejected up front -- before unbounded work, and
// before the `* 8` below can overflow int64 (undefined behaviour). The caps
// are identical in the plan and interpreter paths so the differential fuzzer
// sees byte-identical accept/reject decisions.
constexpr std::size_t kMaxMessageBytes = 1 << 20;   // 1 MiB of wire input
constexpr std::int64_t kMaxFieldBytes = 1 << 20;    // per length-field value
constexpr std::size_t kMaxParsedFields = 4096;

struct ParsedField {
    std::string label;
    Value value;
    std::optional<int> lengthBits;
};

/// Plan path: one parsed slot per flat field position (header first, then
/// the selected message's body).
struct PlanSlot {
    const PlanField* field = nullptr;
    Value value;
    std::optional<int> lengthBits;
};

}  // namespace

BinaryCodec::BinaryCodec(const MdlDocument& doc, std::shared_ptr<MarshallerRegistry> registry)
    : doc_(doc), registry_(std::move(registry)) {
    if (doc_.kind() != MdlKind::Binary) {
        throw SpecError(errc::ErrorCode::MdlInvalid,
                        "BinaryCodec: MDL document '" + doc_.protocol() + "' is not binary");
    }
    // Compiling the plan resolves every marshaller eagerly, so a typo in
    // <Types> fails at load time, not mid-parse (same contract as before).
    plan_ = CodecPlan::compile(doc_, *registry_);
}

// ---------------------------------------------------------------------------
// Plan path: flat execution of the compiled plan.

std::optional<AbstractMessage> BinaryCodec::parse(const Bytes& data, RxArena* arena,
                                                  std::string* error) const {
    auto fail = [error](const std::string& why) -> std::optional<AbstractMessage> {
        if (error != nullptr) *error = why;
        return std::nullopt;
    };

    if (data.size() > kMaxMessageBytes) {
        return fail("[codec.message-too-large] " + std::to_string(data.size()) +
                    " bytes exceed the " + std::to_string(kMaxMessageBytes) +
                    "-byte message cap");
    }

    // With an arena: one copy of the datagram, then byte-aligned raw reads
    // (String/Bytes marshallers) become views into it. The bit reader still
    // walks `data`; byte offsets are identical in both buffers.
    const char* viewBase = nullptr;
    if (arena != nullptr) viewBase = arena->store(data).data();

    BitReader reader(data);
    std::vector<PlanSlot> parsed;
    parsed.reserve(plan_.header().size() + 8);

    auto parseFields = [&](const std::vector<PlanField>& fields, std::string& why) -> bool {
        for (const PlanField& pf : fields) {
            const FieldSpec& spec = *pf.spec;
            std::optional<int> lengthBits;
            switch (spec.length) {
                case FieldSpec::Length::Bits:
                    lengthBits = spec.bits;
                    break;
                case FieldSpec::Length::FieldRef: {
                    // Backward reference, resolved to a flat index at compile.
                    const auto bytes =
                        parsed[static_cast<std::size_t>(pf.refIndex)].value.coerceTo(
                            ValueType::Int);
                    if (!bytes) {
                        why = "length field '" + spec.ref + "' is not numeric";
                        return false;
                    }
                    const std::int64_t lengthBytes = *bytes->asInt();
                    if (lengthBytes < 0 || lengthBytes > kMaxFieldBytes) {
                        why = "[codec.length-overflow] length field '" + spec.ref +
                              "' implies " + std::to_string(lengthBytes) +
                              " bytes, beyond the " + std::to_string(kMaxFieldBytes) +
                              "-byte field cap";
                        return false;
                    }
                    lengthBits = static_cast<int>(lengthBytes * 8);
                    break;
                }
                case FieldSpec::Length::Auto:
                    lengthBits = std::nullopt;
                    break;
                default:
                    why = "text-dialect length in binary MDL";
                    return false;
            }
            std::optional<Value> value;
            if (lengthBits && *lengthBits == 0) {
                // Zero-length field (e.g. empty string with zero length prefix).
                value = Value::ofString("");
            } else if (viewBase != nullptr && pf.rawKind != RawKind::None && lengthBits &&
                       *lengthBits % 8 == 0) {
                // Verbatim byte copy: borrow from the arena instead of
                // allocating. Falls back to the marshaller when the cursor is
                // not byte-aligned (same accept/reject verdict either way).
                const std::size_t count = static_cast<std::size_t>(*lengthBits / 8);
                if (const auto offset = reader.takeByteSpan(count)) {
                    value = pf.rawKind == RawKind::Text
                                ? Value::ofView(std::string_view(viewBase + *offset, count))
                                : Value::ofByteView(ByteView{
                                      reinterpret_cast<const std::uint8_t*>(viewBase) + *offset,
                                      count});
                } else if (reader.positionBits() % 8 != 0) {
                    value = pf.marshaller->read(reader, lengthBits);
                }
            } else {
                value = pf.marshaller->read(reader, lengthBits);
            }
            if (!value) {
                why = "field '" + spec.label + "' does not decode";
                return false;
            }
            parsed.push_back({&pf, std::move(*value), lengthBits});
            if (parsed.size() > kMaxParsedFields) {
                why = "[codec.field-limit] more than " +
                      std::to_string(kMaxParsedFields) + " parsed fields";
                return false;
            }
        }
        return true;
    };

    std::string why;
    if (!parseFields(plan_.header(), why)) return fail("header: " + why);

    // Rule evaluation selects the message body. Rule labels are pre-resolved
    // to header indices, so the probe is a direct slot read.
    const int selectedIndex = plan_.selectMessage(
        [&parsed, this](int id, const std::string&) -> std::optional<std::string> {
            const int headerIndex = plan_.ruleLabelHeaderIndex(id);
            if (headerIndex < 0) return std::nullopt;
            return parsed[static_cast<std::size_t>(headerIndex)].value.toText();
        });
    if (selectedIndex < 0) return fail("no message rule matches the parsed header");
    const MessagePlan& mp = plan_.messages()[static_cast<std::size_t>(selectedIndex)];

    if (!parseFields(mp.body, why)) {
        return fail("message '" + mp.spec->type + "': " + why);
    }
    if (reader.remainingBits() >= 8) {
        return fail("message '" + mp.spec->type + "': " +
                    std::to_string(reader.remainingBits()) + " trailing bits");
    }

    AbstractMessage message(mp.spec->type);
    message.fields().reserve(parsed.size());
    for (PlanSlot& slot : parsed) {
        message.addField(Field::primitive(slot.field->spec->label, slot.field->marshallerName,
                                          std::move(slot.value), slot.lengthBits));
    }
    return message;
}

Bytes BinaryCodec::compose(const AbstractMessage& message) const {
    Bytes out;
    composeInto(message, out);
    return out;
}

void BinaryCodec::composeInto(const AbstractMessage& message, Bytes& out) const {
    const MessagePlan* mp = plan_.planFor(message.type());
    if (mp == nullptr) {
        out.clear();
        throw SpecError(errc::ErrorCode::CodecMessageUnknown,
                        "BinaryCodec: MDL '" + doc_.protocol() + "' does not define message '" +
                        message.type() + "'");
    }

    const std::vector<PlanField>& header = plan_.header();
    const std::size_t headerCount = header.size();
    const std::size_t total = headerCount + mp->body.size();
    auto flatField = [&](std::size_t i) -> const PlanField& {
        return i < headerCount ? header[i] : mp->body[i - headerCount];
    };

    // Pass 1: decide every field's value, into slots indexed by flat
    // position instead of a label-keyed map.
    std::vector<Value> values(total);
    std::vector<bool> has(total, false);

    // First, materialise all plain values so length derivations can see them.
    for (std::size_t i = 0; i < total; ++i) {
        const PlanField& pf = flatField(i);
        if (const auto provided = message.value(pf.spec->label)) {
            values[i] = *provided;
            has[i] = true;
        } else if (pf.defaultValue) {
            values[i] = *pf.defaultValue;
            has[i] = true;
        }
    }
    // Rule fields are forced to the rule value.
    if (mp->ruleFlatIndex >= 0) {
        values[static_cast<std::size_t>(mp->ruleFlatIndex)] = *mp->ruleValue;
        has[static_cast<std::size_t>(mp->ruleFlatIndex)] = true;
    }
    // Derived lengths override anything supplied.
    for (std::size_t i = 0; i < total; ++i) {
        if (const int target = mp->fLengthTarget[i]; target >= 0) {
            const PlanField& tf = flatField(static_cast<std::size_t>(target));
            const Value targetValue = has[static_cast<std::size_t>(target)]
                                          ? values[static_cast<std::size_t>(target)]
                                          : Value::ofString("");
            values[i] = Value::ofInt(tf.marshaller->encodedBits(targetValue, std::nullopt) / 8);
            has[i] = true;
        }
        if (const int sized = mp->lengthFor[i]; sized >= 0) {
            const PlanField& sf = flatField(static_cast<std::size_t>(sized));
            const Value sizedValue = has[static_cast<std::size_t>(sized)]
                                         ? values[static_cast<std::size_t>(sized)]
                                         : Value::ofString("");
            values[i] = Value::ofInt(sf.marshaller->encodedBits(sizedValue, std::nullopt) / 8);
            has[i] = true;
        }
    }

    // Mandatory-field enforcement: a bridge that fails to fill a mandatory
    // field has a broken translation spec.
    for (std::size_t m = 0; m < mp->mandatory.size(); ++m) {
        const int idx = mp->mandatoryFlat[m];
        if (idx < 0 || !has[static_cast<std::size_t>(idx)]) {
            out.clear();
            throw SpecError(errc::ErrorCode::CodecMandatoryMissing,
                        "BinaryCodec: mandatory field '" + mp->mandatory[m] +
                            "' of message '" + message.type() + "' has no value");
        }
    }

    // Pass 2: write.
    BitWriter writer(std::move(out));
    std::optional<std::pair<std::size_t, int>> msgLengthPatch;  // bit offset, bit count
    for (std::size_t i = 0; i < total; ++i) {
        const PlanField& pf = flatField(i);
        const FieldSpec& spec = *pf.spec;

        std::optional<int> lengthBits;
        switch (spec.length) {
            case FieldSpec::Length::Bits:
                lengthBits = spec.bits;
                break;
            case FieldSpec::Length::FieldRef: {
                const auto bytes =
                    values[static_cast<std::size_t>(pf.refIndex)].coerceTo(ValueType::Int);
                const std::int64_t lengthBytes = bytes ? *bytes->asInt() : -1;
                if (lengthBytes < 0 || lengthBytes > kMaxFieldBytes) {
                    throw SpecError(errc::ErrorCode::CodecLengthOverflow,
                                    "BinaryCodec: length field '" + spec.ref +
                                        "' implies " + std::to_string(lengthBytes) +
                                        " bytes in compose of '" + message.type() + "'");
                }
                lengthBits = static_cast<int>(lengthBytes * 8);
                break;
            }
            case FieldSpec::Length::Auto:
                lengthBits = std::nullopt;
                break;
            default:
                throw SpecError(errc::ErrorCode::CodecCompose,
                        "BinaryCodec: text-dialect field '" + spec.label +
                                "' in binary compose");
        }

        if (pf.isMsgLength) {
            // Write a placeholder and remember where to backpatch.
            if (!lengthBits) {
                throw SpecError(errc::ErrorCode::CodecCompose,
                        "BinaryCodec: f-msglength field '" + spec.label +
                                "' must have a literal bit length");
            }
            msgLengthPatch = {writer.positionBits(), *lengthBits};
            writer.writeBits(0, *lengthBits);
            continue;
        }

        Value value = has[i] ? values[i] : Value();
        if (value.isEmpty()) {
            // Unsupplied optional field: zero integer / empty string.
            value = pf.emptyFill;
        }
        if (lengthBits && *lengthBits == 0) continue;  // zero-length field: nothing on the wire
        pf.marshaller->write(writer, value, lengthBits);
    }

    if (msgLengthPatch) {
        const std::size_t totalBytes = (writer.positionBits() + 7) / 8;
        writer.patchBits(msgLengthPatch->first, totalBytes, msgLengthPatch->second);
    }
    out = writer.take();
}

// ---------------------------------------------------------------------------
// Pre-plan interpreter: re-derives lengths, marshallers and rule dispatch
// from the document per message. Kept verbatim as the reference
// implementation the compiled plan must match bit-for-bit.

std::optional<AbstractMessage> BinaryCodec::parseInterpreted(const Bytes& data,
                                                             std::string* error) const {
    auto fail = [error](const std::string& why) -> std::optional<AbstractMessage> {
        if (error != nullptr) *error = why;
        return std::nullopt;
    };

    if (data.size() > kMaxMessageBytes) {
        return fail("[codec.message-too-large] " + std::to_string(data.size()) +
                    " bytes exceed the " + std::to_string(kMaxMessageBytes) +
                    "-byte message cap");
    }

    BitReader reader(data);
    std::vector<ParsedField> parsed;
    auto lookup = [&parsed](const std::string& label) -> const ParsedField* {
        for (const ParsedField& f : parsed) {
            if (f.label == label) return &f;
        }
        return nullptr;
    };

    auto parseFields = [&](const std::vector<FieldSpec>& specs,
                           std::string& why) -> bool {
        for (const FieldSpec& spec : specs) {
            std::optional<int> lengthBits;
            switch (spec.length) {
                case FieldSpec::Length::Bits:
                    lengthBits = spec.bits;
                    break;
                case FieldSpec::Length::FieldRef: {
                    const ParsedField* source = lookup(spec.ref);
                    if (source == nullptr) {
                        why = "length field '" + spec.ref + "' not parsed before '" +
                              spec.label + "'";
                        return false;
                    }
                    const auto bytes = source->value.coerceTo(ValueType::Int);
                    if (!bytes) {
                        why = "length field '" + spec.ref + "' is not numeric";
                        return false;
                    }
                    const std::int64_t lengthBytes = *bytes->asInt();
                    if (lengthBytes < 0 || lengthBytes > kMaxFieldBytes) {
                        why = "[codec.length-overflow] length field '" + spec.ref +
                              "' implies " + std::to_string(lengthBytes) +
                              " bytes, beyond the " + std::to_string(kMaxFieldBytes) +
                              "-byte field cap";
                        return false;
                    }
                    lengthBits = static_cast<int>(lengthBytes * 8);
                    break;
                }
                case FieldSpec::Length::Auto:
                    lengthBits = std::nullopt;
                    break;
                default:
                    why = "text-dialect length in binary MDL";
                    return false;
            }
            const Marshaller* marshaller = registry_->find(doc_.marshallerFor(spec));
            std::optional<Value> value;
            if (lengthBits && *lengthBits == 0) {
                // Zero-length field (e.g. empty string with zero length prefix).
                value = Value::ofString("");
            } else {
                value = marshaller->read(reader, lengthBits);
            }
            if (!value) {
                why = "field '" + spec.label + "' does not decode";
                return false;
            }
            parsed.push_back({spec.label, std::move(*value), lengthBits});
            if (parsed.size() > kMaxParsedFields) {
                why = "[codec.field-limit] more than " +
                      std::to_string(kMaxParsedFields) + " parsed fields";
                return false;
            }
        }
        return true;
    };

    std::string why;
    if (!parseFields(doc_.header().fields, why)) return fail("header: " + why);

    // Rule evaluation selects the message body.
    const MessageSpec* selected = nullptr;
    for (const MessageSpec& candidate : doc_.messages()) {
        if (!candidate.rule) {
            if (selected == nullptr) selected = &candidate;  // unruled fallback
            continue;
        }
        const ParsedField* field = lookup(candidate.rule->field);
        if (field != nullptr && field->value.toText() == candidate.rule->value) {
            selected = &candidate;
            break;
        }
    }
    if (selected == nullptr) return fail("no message rule matches the parsed header");

    if (!parseFields(selected->fields, why)) {
        return fail("message '" + selected->type + "': " + why);
    }
    if (reader.remainingBits() >= 8) {
        return fail("message '" + selected->type + "': " +
                    std::to_string(reader.remainingBits()) + " trailing bits");
    }

    AbstractMessage message(selected->type);
    for (ParsedField& f : parsed) {
        const FieldSpec* spec = nullptr;
        for (const FieldSpec& s : doc_.header().fields) {
            if (s.label == f.label) spec = &s;
        }
        for (const FieldSpec& s : selected->fields) {
            if (s.label == f.label) spec = &s;
        }
        const std::string typeName =
            spec != nullptr ? doc_.marshallerFor(*spec) : std::string("String");
        message.addField(Field::primitive(f.label, typeName, std::move(f.value), f.lengthBits));
    }
    return message;
}

Bytes BinaryCodec::composeInterpreted(const AbstractMessage& message) const {
    const MessageSpec* spec = doc_.message(message.type());
    if (spec == nullptr) {
        throw SpecError(errc::ErrorCode::CodecMessageUnknown,
                        "BinaryCodec: MDL '" + doc_.protocol() + "' does not define message '" +
                        message.type() + "'");
    }

    // Assemble the full field list: header then body.
    std::vector<const FieldSpec*> order;
    for (const FieldSpec& f : doc_.header().fields) order.push_back(&f);
    for (const FieldSpec& f : spec->fields) order.push_back(&f);

    // Which fields serve as the length source of a later field?
    std::map<std::string, const FieldSpec*> lengthSourceOf;  // source label -> sized field
    for (const FieldSpec* f : order) {
        if (f->length == FieldSpec::Length::FieldRef) lengthSourceOf[f->ref] = f;
    }

    // Pass 1: decide every field's value.
    std::map<std::string, Value> values;
    auto typeDefOf = [this](const FieldSpec& f) -> const TypeDef* {
        return doc_.type(f.type.empty() ? f.label : f.type);
    };

    // First, materialise all plain values so length derivations can see them.
    for (const FieldSpec* f : order) {
        const auto provided = message.value(f->label);
        if (provided) {
            values[f->label] = *provided;
        } else if (f->defaultValue) {
            values[f->label] = Value::ofString(*f->defaultValue);
        }
    }
    // Rule fields are forced to the rule value.
    if (spec->rule) {
        values[spec->rule->field] = Value::ofString(spec->rule->value);
    }
    // Derived lengths override anything supplied.
    for (const FieldSpec* f : order) {
        const TypeDef* def = typeDefOf(*f);
        if (def != nullptr && def->function == "f-length") {
            const FieldSpec* target = nullptr;
            for (const FieldSpec* candidate : order) {
                if (candidate->label == def->functionArg) target = candidate;
            }
            if (target == nullptr) {
                throw SpecError(errc::ErrorCode::CodecCompose,
                        "BinaryCodec: f-length target '" + def->functionArg +
                                "' is not a field of message '" + message.type() + "'");
            }
            const Marshaller* m = registry_->find(doc_.marshallerFor(*target));
            const auto it = values.find(target->label);
            const Value targetValue = it == values.end() ? Value::ofString("") : it->second;
            values[f->label] =
                Value::ofInt(m->encodedBits(targetValue, std::nullopt) / 8);
        }
        if (const FieldSpec* sized = lengthSourceOf[f->label]; sized != nullptr) {
            const Marshaller* m = registry_->find(doc_.marshallerFor(*sized));
            const auto it = values.find(sized->label);
            const Value sizedValue = it == values.end() ? Value::ofString("") : it->second;
            values[f->label] = Value::ofInt(m->encodedBits(sizedValue, std::nullopt) / 8);
        }
    }

    // Mandatory-field enforcement: a bridge that fails to fill a mandatory
    // field has a broken translation spec.
    for (const std::string& label : doc_.mandatoryFields(message.type())) {
        if (!values.contains(label)) {
            throw SpecError(errc::ErrorCode::CodecMandatoryMissing,
                        "BinaryCodec: mandatory field '" + label + "' of message '" +
                            message.type() + "' has no value");
        }
    }

    // Pass 2: write.
    BitWriter writer;
    std::optional<std::pair<std::size_t, int>> msgLengthPatch;  // bit offset, bit count
    for (const FieldSpec* f : order) {
        const Marshaller* marshaller = registry_->find(doc_.marshallerFor(*f));
        const TypeDef* def = typeDefOf(*f);

        std::optional<int> lengthBits;
        switch (f->length) {
            case FieldSpec::Length::Bits:
                lengthBits = f->bits;
                break;
            case FieldSpec::Length::FieldRef: {
                const auto it = values.find(f->ref);
                const auto bytes =
                    it != values.end() ? it->second.coerceTo(ValueType::Int) : std::nullopt;
                const std::int64_t lengthBytes = bytes ? *bytes->asInt() : -1;
                if (lengthBytes < 0 || lengthBytes > kMaxFieldBytes) {
                    throw SpecError(errc::ErrorCode::CodecLengthOverflow,
                                    "BinaryCodec: length field '" + f->ref +
                                        "' implies " + std::to_string(lengthBytes) +
                                        " bytes in compose of '" + message.type() + "'");
                }
                lengthBits = static_cast<int>(lengthBytes * 8);
                break;
            }
            case FieldSpec::Length::Auto:
                lengthBits = std::nullopt;
                break;
            default:
                throw SpecError(errc::ErrorCode::CodecCompose,
                        "BinaryCodec: text-dialect field '" + f->label +
                                "' in binary compose");
        }

        if (def != nullptr && def->function == "f-msglength") {
            // Write a placeholder and remember where to backpatch.
            if (!lengthBits) {
                throw SpecError(errc::ErrorCode::CodecCompose,
                        "BinaryCodec: f-msglength field '" + f->label +
                                "' must have a literal bit length");
            }
            msgLengthPatch = {writer.positionBits(), *lengthBits};
            writer.writeBits(0, *lengthBits);
            continue;
        }

        auto it = values.find(f->label);
        Value value = it != values.end() ? it->second : Value();
        if (value.isEmpty()) {
            // Unsupplied optional field: zero integer / empty string.
            const std::string marshallerName = doc_.marshallerFor(*f);
            value = marshallerName == "Integer" || marshallerName == "Int" ||
                            marshallerName == "Bool" || marshallerName == "Boolean"
                        ? Value::ofInt(0)
                        : Value::ofString("");
        }
        if (lengthBits && *lengthBits == 0) continue;  // zero-length field: nothing on the wire
        marshaller->write(writer, value, lengthBits);
    }

    if (msgLengthPatch) {
        const std::size_t totalBytes = (writer.positionBits() + 7) / 8;
        writer.patchBits(msgLengthPatch->first, totalBytes, msgLengthPatch->second);
    }
    return writer.take();
}

}  // namespace starlink::mdl
