#include "core/mdl/binary_codec.hpp"

#include <map>

#include "common/error.hpp"

namespace starlink::mdl {

namespace {

struct ParsedField {
    std::string label;
    Value value;
    std::optional<int> lengthBits;
};

}  // namespace

BinaryCodec::BinaryCodec(const MdlDocument& doc, std::shared_ptr<MarshallerRegistry> registry)
    : doc_(doc), registry_(std::move(registry)) {
    if (doc_.kind() != MdlKind::Binary) {
        throw SpecError("BinaryCodec: MDL document '" + doc_.protocol() + "' is not binary");
    }
    // Resolve every marshaller eagerly so a typo in <Types> fails at load
    // time, not mid-parse.
    auto check = [this](const FieldSpec& field, const std::string& where) {
        const std::string name = doc_.marshallerFor(field);
        const Marshaller* m = registry_->find(name);
        if (m == nullptr) {
            throw SpecError("BinaryCodec " + where + ": no marshaller registered for type '" +
                            name + "' (field '" + field.label + "')");
        }
        if (field.length == FieldSpec::Length::Auto && !m->selfDelimiting()) {
            throw SpecError("BinaryCodec " + where + ": field '" + field.label +
                            "' declares length auto but type '" + name +
                            "' is not self-delimiting");
        }
    };
    for (const FieldSpec& f : doc_.header().fields) check(f, "header");
    for (const MessageSpec& m : doc_.messages()) {
        for (const FieldSpec& f : m.fields) check(f, "message '" + m.type + "'");
    }
}

std::optional<AbstractMessage> BinaryCodec::parse(const Bytes& data, std::string* error) const {
    auto fail = [error](const std::string& why) -> std::optional<AbstractMessage> {
        if (error != nullptr) *error = why;
        return std::nullopt;
    };

    BitReader reader(data);
    std::vector<ParsedField> parsed;
    auto lookup = [&parsed](const std::string& label) -> const ParsedField* {
        for (const ParsedField& f : parsed) {
            if (f.label == label) return &f;
        }
        return nullptr;
    };

    auto parseFields = [&](const std::vector<FieldSpec>& specs,
                           std::string& why) -> bool {
        for (const FieldSpec& spec : specs) {
            std::optional<int> lengthBits;
            switch (spec.length) {
                case FieldSpec::Length::Bits:
                    lengthBits = spec.bits;
                    break;
                case FieldSpec::Length::FieldRef: {
                    const ParsedField* source = lookup(spec.ref);
                    if (source == nullptr) {
                        why = "length field '" + spec.ref + "' not parsed before '" +
                              spec.label + "'";
                        return false;
                    }
                    const auto bytes = source->value.coerceTo(ValueType::Int);
                    if (!bytes) {
                        why = "length field '" + spec.ref + "' is not numeric";
                        return false;
                    }
                    lengthBits = static_cast<int>(*bytes->asInt() * 8);
                    break;
                }
                case FieldSpec::Length::Auto:
                    lengthBits = std::nullopt;
                    break;
                default:
                    why = "text-dialect length in binary MDL";
                    return false;
            }
            const Marshaller* marshaller = registry_->find(doc_.marshallerFor(spec));
            std::optional<Value> value;
            if (lengthBits && *lengthBits == 0) {
                // Zero-length field (e.g. empty string with zero length prefix).
                value = Value::ofString("");
            } else {
                value = marshaller->read(reader, lengthBits);
            }
            if (!value) {
                why = "field '" + spec.label + "' does not decode";
                return false;
            }
            parsed.push_back({spec.label, std::move(*value), lengthBits});
        }
        return true;
    };

    std::string why;
    if (!parseFields(doc_.header().fields, why)) return fail("header: " + why);

    // Rule evaluation selects the message body.
    const MessageSpec* selected = nullptr;
    for (const MessageSpec& candidate : doc_.messages()) {
        if (!candidate.rule) {
            if (selected == nullptr) selected = &candidate;  // unruled fallback
            continue;
        }
        const ParsedField* field = lookup(candidate.rule->field);
        if (field != nullptr && field->value.toText() == candidate.rule->value) {
            selected = &candidate;
            break;
        }
    }
    if (selected == nullptr) return fail("no message rule matches the parsed header");

    if (!parseFields(selected->fields, why)) {
        return fail("message '" + selected->type + "': " + why);
    }
    if (reader.remainingBits() >= 8) {
        return fail("message '" + selected->type + "': " +
                    std::to_string(reader.remainingBits()) + " trailing bits");
    }

    AbstractMessage message(selected->type);
    for (ParsedField& f : parsed) {
        const FieldSpec* spec = nullptr;
        for (const FieldSpec& s : doc_.header().fields) {
            if (s.label == f.label) spec = &s;
        }
        for (const FieldSpec& s : selected->fields) {
            if (s.label == f.label) spec = &s;
        }
        const std::string typeName =
            spec != nullptr ? doc_.marshallerFor(*spec) : std::string("String");
        message.addField(Field::primitive(f.label, typeName, std::move(f.value), f.lengthBits));
    }
    return message;
}

Bytes BinaryCodec::compose(const AbstractMessage& message) const {
    const MessageSpec* spec = doc_.message(message.type());
    if (spec == nullptr) {
        throw SpecError("BinaryCodec: MDL '" + doc_.protocol() + "' does not define message '" +
                        message.type() + "'");
    }

    // Assemble the full field list: header then body.
    std::vector<const FieldSpec*> order;
    for (const FieldSpec& f : doc_.header().fields) order.push_back(&f);
    for (const FieldSpec& f : spec->fields) order.push_back(&f);

    // Which fields serve as the length source of a later field?
    std::map<std::string, const FieldSpec*> lengthSourceOf;  // source label -> sized field
    for (const FieldSpec* f : order) {
        if (f->length == FieldSpec::Length::FieldRef) lengthSourceOf[f->ref] = f;
    }

    // Pass 1: decide every field's value.
    std::map<std::string, Value> values;
    auto typeDefOf = [this](const FieldSpec& f) -> const TypeDef* {
        return doc_.type(f.type.empty() ? f.label : f.type);
    };

    // First, materialise all plain values so length derivations can see them.
    for (const FieldSpec* f : order) {
        const auto provided = message.value(f->label);
        if (provided) {
            values[f->label] = *provided;
        } else if (f->defaultValue) {
            values[f->label] = Value::ofString(*f->defaultValue);
        }
    }
    // Rule fields are forced to the rule value.
    if (spec->rule) {
        values[spec->rule->field] = Value::ofString(spec->rule->value);
    }
    // Derived lengths override anything supplied.
    for (const FieldSpec* f : order) {
        const TypeDef* def = typeDefOf(*f);
        if (def != nullptr && def->function == "f-length") {
            const FieldSpec* target = nullptr;
            for (const FieldSpec* candidate : order) {
                if (candidate->label == def->functionArg) target = candidate;
            }
            if (target == nullptr) {
                throw SpecError("BinaryCodec: f-length target '" + def->functionArg +
                                "' is not a field of message '" + message.type() + "'");
            }
            const Marshaller* m = registry_->find(doc_.marshallerFor(*target));
            const auto it = values.find(target->label);
            const Value targetValue = it == values.end() ? Value::ofString("") : it->second;
            values[f->label] =
                Value::ofInt(m->encodedBits(targetValue, std::nullopt) / 8);
        }
        if (const FieldSpec* sized = lengthSourceOf[f->label]; sized != nullptr) {
            const Marshaller* m = registry_->find(doc_.marshallerFor(*sized));
            const auto it = values.find(sized->label);
            const Value sizedValue = it == values.end() ? Value::ofString("") : it->second;
            values[f->label] = Value::ofInt(m->encodedBits(sizedValue, std::nullopt) / 8);
        }
    }

    // Mandatory-field enforcement: a bridge that fails to fill a mandatory
    // field has a broken translation spec.
    for (const std::string& label : doc_.mandatoryFields(message.type())) {
        if (!values.contains(label)) {
            throw SpecError("BinaryCodec: mandatory field '" + label + "' of message '" +
                            message.type() + "' has no value");
        }
    }

    // Pass 2: write.
    BitWriter writer;
    std::optional<std::pair<std::size_t, int>> msgLengthPatch;  // bit offset, bit count
    for (const FieldSpec* f : order) {
        const Marshaller* marshaller = registry_->find(doc_.marshallerFor(*f));
        const TypeDef* def = typeDefOf(*f);

        std::optional<int> lengthBits;
        switch (f->length) {
            case FieldSpec::Length::Bits:
                lengthBits = f->bits;
                break;
            case FieldSpec::Length::FieldRef: {
                const auto it = values.find(f->ref);
                const auto bytes = it->second.coerceTo(ValueType::Int);
                lengthBits = static_cast<int>(*bytes->asInt() * 8);
                break;
            }
            case FieldSpec::Length::Auto:
                lengthBits = std::nullopt;
                break;
            default:
                throw SpecError("BinaryCodec: text-dialect field '" + f->label +
                                "' in binary compose");
        }

        if (def != nullptr && def->function == "f-msglength") {
            // Write a placeholder and remember where to backpatch.
            if (!lengthBits) {
                throw SpecError("BinaryCodec: f-msglength field '" + f->label +
                                "' must have a literal bit length");
            }
            msgLengthPatch = {writer.positionBits(), *lengthBits};
            writer.writeBits(0, *lengthBits);
            continue;
        }

        auto it = values.find(f->label);
        Value value = it != values.end() ? it->second : Value();
        if (value.isEmpty()) {
            // Unsupplied optional field: zero integer / empty string.
            const std::string marshallerName = doc_.marshallerFor(*f);
            value = marshallerName == "Integer" || marshallerName == "Int" ||
                            marshallerName == "Bool" || marshallerName == "Boolean"
                        ? Value::ofInt(0)
                        : Value::ofString("");
        }
        if (lengthBits && *lengthBits == 0) continue;  // zero-length field: nothing on the wire
        marshaller->write(writer, value, lengthBits);
    }

    if (msgLengthPatch) {
        const std::size_t totalBytes = (writer.positionBits() + 7) / 8;
        writer.patchBits(msgLengthPatch->first, totalBytes, msgLengthPatch->second);
    }
    return writer.take();
}

}  // namespace starlink::mdl
