// Real-socket backend of net::Network: non-blocking UDP (unicast + loopback
// multicast) and TCP on an epoll-driven event loop over the wall clock.
//
// The engines were grown on SimNetwork's logical topology ("10.0.0.9:427");
// this backend maps that topology onto loopback endpoints so the same bridge
// models serve real traffic (docs/TRANSPORT.md):
//
//  - Logical hosts collapse onto `Options::bindAddress` (default 127.0.0.1).
//    A logical bind (host, port != 0) gets a real port: `portBase + port`
//    when a port base is configured (deterministic, shared across processes,
//    which is what the daemon + scripted clients use), otherwise a
//    kernel-assigned port recorded in an in-process map (collision-free,
//    parallel-ctest-safe). Literal loopback hosts ("127.x", "localhost", or
//    the bind address itself) pass through untranslated, so replying to a
//    datagram's real source address just works.
//  - Multicast groups are joined on the loopback interface through one
//    shared membership socket per (group, port) bound to the group address
//    itself (so it never collides with unicast binds on the same port) with
//    SO_REUSEADDR; received group datagrams fan out to every in-process
//    member except the sender (matching the sim's no-self-delivery rule),
//    while the send itself goes out the member's own unicast socket with
//    IP_MULTICAST_IF=loopback + IP_MULTICAST_LOOP so *other processes*
//    receive it too -- real cross-process interop.
//  - TCP preserves the message-boundary contract the engines rely on by
//    length-prefix framing each send() (4-byte big-endian). Raw byte-stream
//    listeners (listenTcpRaw) exist for plain-text endpoints such as the
//    daemon's /metrics HTTP port.
//
// Failures carry net.* taxonomy codes: EADDRINUSE -> net.bind-conflict,
// other bind/listen errors -> net.bind-failed, EMFILE/ENFILE or the soft
// socket cap -> net.fd-exhausted, refused/timed-out connects ->
// net.connect-refused, anything else -> net.io.
//
// Single-threaded like the sim: all callbacks fire inside runUntil()/poll().
// Chaos (FaultSchedule, latency models, partitions) is sim-only by design.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "net/network.hpp"

namespace starlink::net {

class OsNetwork;
class OsUdpSocket;
class OsTcpConnection;
class OsTcpListener;

/// The OS backend's UDP socket: a non-blocking AF_INET datagram socket.
class OsUdpSocket final : public UdpSocket {
public:
    ~OsUdpSocket() override;

    /// The logical address this socket was opened with (sim-compatible);
    /// see realAddress() for the wire endpoint.
    const Address& localAddress() const override { return logical_; }
    const Address& realAddress() const { return real_; }

    void joinGroup(const Address& group) override;
    void leaveGroup(const Address& group) override;
    void sendTo(const Address& dest, const Bytes& payload) override;

private:
    friend class OsNetwork;
    OsUdpSocket(OsNetwork* net, int fd, Address logical, Address real)
        : net_(net), fd_(fd), logical_(std::move(logical)), real_(std::move(real)) {}

    void deliver(const Bytes& payload, const Address& from);
    void configureMulticastEgress();

    OsNetwork* net_;  // nulled if the network dies first
    int fd_ = -1;
    Address logical_;
    Address real_;
    std::set<Address> groups_;
    bool mcastEgressConfigured_ = false;
};

/// One side of a real TCP connection (framed or raw; see header comment).
class OsTcpConnection final : public TcpConnection {
public:
    ~OsTcpConnection() override;

    void send(const Bytes& payload) override;
    void close() override;
    bool isOpen() const override { return open_; }
    const Address& localAddress() const override { return local_; }
    const Address& remoteAddress() const override { return remote_; }

private:
    friend class OsNetwork;
    OsTcpConnection(OsNetwork* net, int fd, Address local, Address remote, bool framed)
        : net_(net), fd_(fd), local_(std::move(local)), remote_(std::move(remote)),
          framed_(framed) {}

    OsNetwork* net_;
    int fd_ = -1;
    Address local_;
    Address remote_;
    bool framed_ = true;
    bool open_ = true;
    Bytes rxBuffer_;
    Bytes txBuffer_;  // bytes the kernel would not take yet
};

/// The OS backend's TCP listener.
class OsTcpListener final : public TcpListener {
public:
    ~OsTcpListener() override;

    const Address& localAddress() const override { return logical_; }
    const Address& realAddress() const { return real_; }

private:
    friend class OsNetwork;
    OsTcpListener(OsNetwork* net, int fd, Address logical, Address real, bool framed)
        : net_(net), fd_(fd), logical_(std::move(logical)), real_(std::move(real)),
          framed_(framed) {}

    OsNetwork* net_;
    int fd_ = -1;
    Address logical_;
    Address real_;
    bool framed_ = true;
};

/// The epoll event loop + socket factory.
class OsNetwork final : public Network {
public:
    struct Options {
        /// Loopback address every logical host collapses onto.
        std::string bindAddress = "127.0.0.1";
        /// When non-zero, logical port P binds (and resolves) to real port
        /// portBase + P in every process sharing the base; when zero, real
        /// ports are kernel-assigned and resolved through an in-process map.
        std::uint16_t portBase = 0;
        /// Soft cap on sockets this backend may hold open (0 = unlimited).
        /// Exceeding it surfaces net.fd-exhausted exactly like EMFILE.
        std::size_t maxOpenSockets = 0;
        /// Wall-clock budget for a TCP connect before it reports refused.
        Duration connectTimeout = ms(3000);
    };

    OsNetwork();  // default Options
    explicit OsNetwork(Options options);
    ~OsNetwork() override;

    // -- net::Network --------------------------------------------------------
    TaskScheduler& scheduler() override;
    TimePoint now() const override;
    std::unique_ptr<UdpSocket> openUdp(const std::string& host, std::uint16_t port = 0) override;
    std::unique_ptr<TcpListener> listenTcp(const std::string& host, std::uint16_t port) override;
    void connectTcp(const std::string& host, const Address& dest, ConnectCallback onResult,
                    ConnectErrorCallback onError = nullptr) override;
    bool runUntil(std::function<bool()> done, Duration timeout) override;
    const char* backendName() const override { return "os"; }

    // -- backend-specific ----------------------------------------------------
    /// A listener whose accepted connections deliver raw recv() chunks
    /// instead of length-prefixed frames (for plain-text protocols, e.g. the
    /// daemon's /metrics HTTP endpoint).
    std::unique_ptr<TcpListener> listenTcpRaw(const std::string& host, std::uint16_t port);

    /// Runs one event-loop iteration: waits up to `maxWait` for I/O or a due
    /// timer and dispatches everything ready. Returns true if anything ran.
    bool poll(Duration maxWait);

    /// Makes runUntil() return at the next loop iteration. Safe to pair with
    /// wakeFromSignal() from a signal handler.
    void requestStop() { stopRequested_ = true; }
    bool stopRequested() const { return stopRequested_; }

    /// Async-signal-safe nudge: wakes a blocked poll()/runUntil() so a
    /// signal handler can request a clean shutdown without races.
    void wakeFromSignal();

    /// The real wire endpoint a logical (host, port) currently resolves to,
    /// if any -- what the daemon prints so clients know where to aim.
    std::optional<Address> realEndpoint(const std::string& host, std::uint16_t port) const;

    /// True when the kernel delivers multicast on the loopback interface
    /// (probed once with a throwaway group); conformance tests skip the OS
    /// rows in sandboxes where this fails.
    static bool loopbackMulticastUsable();

    const Options& options() const { return options_; }
    std::size_t openSockets() const { return openFds_; }
    /// Datagrams dropped because their logical destination had no binding
    /// (the sim silently drops these too) or the kernel rejected the send.
    std::size_t datagramsUnrouted() const { return unrouted_; }

private:
    friend class OsUdpSocket;
    friend class OsTcpConnection;
    friend class OsTcpListener;

    struct FdEntry {
        std::uint64_t generation = 0;
        std::function<void(std::uint32_t events)> onEvents;
    };

    /// Shared per-(group, logical port) membership socket: bound to the
    /// group address itself (so it never collides with unicast binds on the
    /// same port) with SO_REUSEADDR + IP_ADD_MEMBERSHIP on loopback; fans
    /// received datagrams out to in-process members.
    struct Membership {
        int fd = -1;
        std::uint16_t realPort = 0;
        std::vector<OsUdpSocket*> members;
    };

    /// Wall-clock deferred tasks, same (time, insertion) ordering contract
    /// as EventScheduler but against OsNetwork::now().
    class TimerQueue final : public TaskScheduler {
    public:
        explicit TimerQueue(OsNetwork& net) : net_(net) {}
        EventId schedule(Duration delay, std::function<void()> fn) override;
        bool cancel(EventId id) override;

        /// Wall-clock delay until the earliest timer (nullopt when empty).
        std::optional<Duration> nextDelay() const;
        /// Runs every timer due at `now`; returns how many ran.
        std::size_t runDue();

    private:
        struct Key {
            TimePoint when;
            std::uint64_t seq;
            bool operator<(const Key& other) const {
                return when != other.when ? when < other.when : seq < other.seq;
            }
        };
        OsNetwork& net_;
        std::map<Key, std::function<void()>> queue_;
        std::map<EventId, Key> index_;
        std::uint64_t nextSeq_ = 1;
    };

    // fd bookkeeping
    int makeSocket(int type, const char* what);
    void registerFd(int fd, std::function<void(std::uint32_t)> onEvents);
    void updateFd(int fd, std::uint32_t events);
    void unregisterFd(int fd);
    void closeFd(int fd);
    void reserveFd(const char* what);  // soft-cap guard; throws net.fd-exhausted

    // address mapping
    bool isLiteralHost(const std::string& host) const;
    Address bindUdp(int fd, const std::string& host, std::uint16_t port);
    std::optional<Address> resolveSendTarget(const Address& dest);
    std::uint16_t realPortFor(std::uint16_t logicalPort) const;  // portBase mode

    // multicast
    Membership& ensureMembership(const Address& group);
    void dropMember(OsUdpSocket* socket, const Address& group);
    void onMembershipReadable(const Address& group);

    // udp / tcp plumbing
    void onUdpReadable(OsUdpSocket* socket);
    void udpSend(OsUdpSocket& from, const Address& dest, const Bytes& payload);
    std::unique_ptr<TcpListener> listenTcpInternal(const std::string& host, std::uint16_t port,
                                                   bool framed);
    void onListenerReadable(OsTcpListener* listener);
    void adoptConnection(const std::shared_ptr<OsTcpConnection>& conn);
    void onTcpEvents(OsTcpConnection* conn, std::uint32_t events);
    void tcpQueueSend(OsTcpConnection& conn, const Bytes& payload);
    void tcpFlush(OsTcpConnection& conn);
    void tcpDeliver(OsTcpConnection& conn);
    void tcpPeerClosed(OsTcpConnection& conn);
    void tcpTeardown(OsTcpConnection& conn);

    Options options_;
    int epollFd_ = -1;
    int wakeFd_ = -1;  // eventfd written by wakeFromSignal()
    TimePoint start_{};
    TimerQueue timers_;
    std::uint64_t nextGeneration_ = 1;
    std::map<int, FdEntry> fds_;
    std::size_t openFds_ = 0;
    std::size_t unrouted_ = 0;
    volatile bool stopRequested_ = false;

    std::map<Address, OsUdpSocket*> udpBindings_;     // logical addr -> socket
    std::map<Address, OsTcpListener*> tcpBindings_;   // logical addr -> listener
    std::map<Address, Membership> memberships_;       // (group ip, logical port)
    std::map<Address, std::uint16_t> groupPorts_;     // group addr -> real port
    std::set<std::shared_ptr<OsTcpConnection>> aliveTcp_;
    std::set<OsUdpSocket*> udpSockets_;
    std::set<OsTcpListener*> listeners_;
};

}  // namespace starlink::net
