#include "core/net/os_network.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "common/log.hpp"

namespace starlink::net {

namespace {

constexpr std::uint32_t kReadEvents = EPOLLIN;
constexpr std::uint32_t kReadWriteEvents = EPOLLIN | EPOLLOUT;

std::string errnoText(int err) { return std::string(std::strerror(err)); }

errc::ErrorCode bindErrorCode(int err) {
    if (err == EADDRINUSE) return errc::ErrorCode::NetBindConflict;
    if (err == EMFILE || err == ENFILE) return errc::ErrorCode::NetFdExhausted;
    return errc::ErrorCode::NetBindFailed;
}

bool toSockaddr(const std::string& host, std::uint16_t port, sockaddr_in& out) {
    std::memset(&out, 0, sizeof out);
    out.sin_family = AF_INET;
    out.sin_port = htons(port);
    const char* ip = host == "localhost" ? "127.0.0.1" : host.c_str();
    return ::inet_pton(AF_INET, ip, &out.sin_addr) == 1;
}

Address fromSockaddr(const sockaddr_in& sa) {
    char ip[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &sa.sin_addr, ip, sizeof ip);
    return Address{ip, ntohs(sa.sin_port)};
}

void appendFrameHeader(Bytes& out, std::size_t length) {
    out.push_back(static_cast<std::uint8_t>((length >> 24) & 0xff));
    out.push_back(static_cast<std::uint8_t>((length >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((length >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>(length & 0xff));
}

}  // namespace

// ---------------------------------------------------------------------------
// TimerQueue

EventId OsNetwork::TimerQueue::schedule(Duration delay, std::function<void()> fn) {
    if (delay.count() < 0) delay = us(0);
    const Key key{net_.now() + delay, nextSeq_++};
    queue_.emplace(key, std::move(fn));
    index_.emplace(key.seq, key);
    return key.seq;
}

bool OsNetwork::TimerQueue::cancel(EventId id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    queue_.erase(it->second);
    index_.erase(it);
    return true;
}

std::optional<Duration> OsNetwork::TimerQueue::nextDelay() const {
    if (queue_.empty()) return std::nullopt;
    const Duration delay = queue_.begin()->first.when - net_.now();
    return delay.count() < 0 ? us(0) : delay;
}

std::size_t OsNetwork::TimerQueue::runDue() {
    std::size_t ran = 0;
    while (!queue_.empty() && queue_.begin()->first.when <= net_.now()) {
        auto it = queue_.begin();
        const Key key = it->first;
        auto fn = std::move(it->second);
        queue_.erase(it);
        index_.erase(key.seq);
        fn();
        ++ran;
    }
    return ran;
}

// ---------------------------------------------------------------------------
// OsNetwork lifecycle

OsNetwork::OsNetwork() : OsNetwork(Options{}) {}

OsNetwork::OsNetwork(Options options) : options_(std::move(options)), timers_(*this) {
    start_ = std::chrono::time_point_cast<Duration>(std::chrono::steady_clock::now());
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0) {
        throw NetError(errc::ErrorCode::NetIo, "epoll_create1: " + errnoText(errno));
    }
    wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakeFd_ < 0) {
        ::close(epollFd_);
        throw NetError(errc::ErrorCode::NetIo, "eventfd: " + errnoText(errno));
    }
    registerFd(wakeFd_, [this](std::uint32_t) {
        std::uint64_t drained = 0;
        while (::read(wakeFd_, &drained, sizeof drained) > 0) {
        }
    });
}

OsNetwork::~OsNetwork() {
    // Mirror ~SimNetwork: mark surviving connections closed and drop their
    // handlers so user-held shared_ptrs do not keep cycles (or dead fds).
    for (const auto& conn : aliveTcp_) {
        conn->open_ = false;
        conn->dataHandler_ = nullptr;
        conn->closeHandler_ = nullptr;
        if (conn->fd_ >= 0) ::close(conn->fd_);
        conn->fd_ = -1;
        conn->net_ = nullptr;
    }
    aliveTcp_.clear();
    for (OsUdpSocket* socket : udpSockets_) {
        if (socket->fd_ >= 0) ::close(socket->fd_);
        socket->fd_ = -1;
        socket->net_ = nullptr;
    }
    for (OsTcpListener* listener : listeners_) {
        if (listener->fd_ >= 0) ::close(listener->fd_);
        listener->fd_ = -1;
        listener->net_ = nullptr;
    }
    for (auto& [group, membership] : memberships_) {
        if (membership.fd >= 0) ::close(membership.fd);
    }
    ::close(wakeFd_);
    ::close(epollFd_);
}

TaskScheduler& OsNetwork::scheduler() { return timers_; }

TimePoint OsNetwork::now() const {
    const auto elapsed = std::chrono::time_point_cast<Duration>(std::chrono::steady_clock::now()) -
                         start_;
    return TimePoint{} + elapsed;
}

// ---------------------------------------------------------------------------
// fd bookkeeping

void OsNetwork::reserveFd(const char* what) {
    if (options_.maxOpenSockets != 0 && openFds_ >= options_.maxOpenSockets) {
        throw NetError(errc::ErrorCode::NetFdExhausted,
                       std::string(what) + ": socket budget exhausted (" +
                           std::to_string(options_.maxOpenSockets) + " open)");
    }
}

int OsNetwork::makeSocket(int type, const char* what) {
    reserveFd(what);
    const int fd = ::socket(AF_INET, type | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        const int err = errno;
        if (err == EMFILE || err == ENFILE) {
            throw NetError(errc::ErrorCode::NetFdExhausted,
                           std::string(what) + ": " + errnoText(err));
        }
        throw NetError(errc::ErrorCode::NetIo, std::string(what) + ": " + errnoText(err));
    }
    ++openFds_;
    return fd;
}

void OsNetwork::registerFd(int fd, std::function<void(std::uint32_t)> onEvents) {
    FdEntry entry;
    entry.generation = nextGeneration_++;
    entry.onEvents = std::move(onEvents);
    epoll_event ev{};
    ev.events = kReadEvents;
    ev.data.u64 = (entry.generation << 32) | static_cast<std::uint32_t>(fd);
    fds_[fd] = std::move(entry);
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
}

void OsNetwork::updateFd(int fd, std::uint32_t events) {
    const auto it = fds_.find(fd);
    if (it == fds_.end()) return;
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = (it->second.generation << 32) | static_cast<std::uint32_t>(fd);
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev);
}

void OsNetwork::unregisterFd(int fd) {
    if (fds_.erase(fd) > 0) ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
}

void OsNetwork::closeFd(int fd) {
    if (fd < 0) return;
    unregisterFd(fd);
    ::close(fd);
    if (openFds_ > 0) --openFds_;
}

// ---------------------------------------------------------------------------
// event loop

bool OsNetwork::poll(Duration maxWait) {
    Duration wait = maxWait;
    if (const auto next = timers_.nextDelay()) wait = std::min(wait, *next);
    if (wait.count() < 0) wait = us(0);
    const int timeoutMs = static_cast<int>(
        std::min<std::int64_t>((wait.count() + 999) / 1000, 60'000));

    epoll_event events[64];
    const int n = ::epoll_wait(epollFd_, events, 64, timeoutMs);
    bool ran = false;
    for (int i = 0; i < n; ++i) {
        const int fd = static_cast<int>(events[i].data.u64 & 0xffffffffu);
        const std::uint64_t generation = events[i].data.u64 >> 32;
        const auto it = fds_.find(fd);
        if (it == fds_.end() || it->second.generation != generation) continue;
        const auto handler = it->second.onEvents;  // copy: may unregister itself
        handler(events[i].events);
        ran = true;
    }
    if (timers_.runDue() > 0) ran = true;
    return ran;
}

bool OsNetwork::runUntil(std::function<bool()> done, Duration timeout) {
    const TimePoint deadline = now() + timeout;
    while (!stopRequested_ && !done()) {
        const Duration remain = deadline - now();
        if (remain.count() <= 0) break;
        poll(std::min(remain, ms(500)));
    }
    return done();
}

void OsNetwork::wakeFromSignal() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto written = ::write(wakeFd_, &one, sizeof one);
}

// ---------------------------------------------------------------------------
// address mapping

bool OsNetwork::isLiteralHost(const std::string& host) const {
    return host == options_.bindAddress || host == "localhost" || host.rfind("127.", 0) == 0;
}

std::uint16_t OsNetwork::realPortFor(std::uint16_t logicalPort) const {
    const std::uint32_t real = static_cast<std::uint32_t>(options_.portBase) + logicalPort;
    if (real > 65535) {
        throw NetError(errc::ErrorCode::NetBindFailed,
                       "port base " + std::to_string(options_.portBase) + " + port " +
                           std::to_string(logicalPort) + " exceeds 65535");
    }
    return static_cast<std::uint16_t>(real);
}

Address OsNetwork::bindUdp(int fd, const std::string& host, std::uint16_t port) {
    const std::string bindHost = isLiteralHost(host) ? host : options_.bindAddress;
    std::uint16_t bindPort = 0;
    if (port != 0) {
        bindPort = isLiteralHost(host) ? port
                   : options_.portBase != 0 ? realPortFor(port)
                                            : 0;  // kernel-assigned, recorded below
    }
    if (bindPort != 0 && !isLiteralHost(host) && options_.portBase != 0) {
        // Distinct logical hosts may share a logical port -- the sim allows
        // it (e.g. the bridge's SSDP color and a co-hosted ssdp::Device both
        // bind 1900), but they collapse onto one real port here. The first
        // binder owns the deterministic base+port endpoint (what other
        // processes aim at); later in-process binders take a kernel-assigned
        // port, which in-process sends still find via udpBindings_. A port
        // held by another PROCESS stays a coded net.bind-conflict.
        for (const auto& [addr, socket] : udpBindings_) {
            if (socket->realAddress().port == bindPort) {
                bindPort = 0;
                break;
            }
        }
    }
    sockaddr_in sa{};
    if (!toSockaddr(bindHost, bindPort, sa)) {
        throw NetError(errc::ErrorCode::NetUrlInvalid, "bad bind address " + bindHost);
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
        const int err = errno;
        throw NetError(bindErrorCode(err), "bind " + bindHost + ":" + std::to_string(bindPort) +
                                               ": " + errnoText(err));
    }
    socklen_t len = sizeof sa;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
    return fromSockaddr(sa);
}

std::optional<Address> OsNetwork::resolveSendTarget(const Address& dest) {
    if (isLiteralHost(dest.host)) return dest;
    const auto it = udpBindings_.find(dest);
    if (it != udpBindings_.end()) return it->second->realAddress();
    if (options_.portBase != 0) return Address{options_.bindAddress, realPortFor(dest.port)};
    return std::nullopt;
}

std::optional<Address> OsNetwork::realEndpoint(const std::string& host,
                                               std::uint16_t port) const {
    const Address logical{host, port};
    if (const auto udp = udpBindings_.find(logical); udp != udpBindings_.end()) {
        return udp->second->realAddress();
    }
    if (const auto tcp = tcpBindings_.find(logical); tcp != tcpBindings_.end()) {
        return tcp->second->realAddress();
    }
    if (const auto member = memberships_.find(logical); member != memberships_.end()) {
        return Address{host, member->second.realPort};
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------------
// UDP

std::unique_ptr<UdpSocket> OsNetwork::openUdp(const std::string& host, std::uint16_t port) {
    if (port != 0) {
        const Address logical{host, port};
        if (udpBindings_.contains(logical)) {
            throw NetError(errc::ErrorCode::NetBindConflict,
                           "udp bind: " + logical.toString() + " already in use");
        }
    }
    const int fd = makeSocket(SOCK_DGRAM, "openUdp");
    Address real;
    try {
        real = bindUdp(fd, host, port);
    } catch (...) {
        ::close(fd);
        --openFds_;
        throw;
    }
    // Ephemeral logical binds adopt the kernel port as their logical port,
    // exactly as the sim adopts its ephemeral allocation.
    const Address logical{host, port != 0 ? port : real.port};
    auto socket = std::unique_ptr<OsUdpSocket>(new OsUdpSocket(this, fd, logical, real));
    udpBindings_[logical] = socket.get();
    udpSockets_.insert(socket.get());
    registerFd(fd, [this, raw = socket.get()](std::uint32_t events) {
        if (events & EPOLLIN) onUdpReadable(raw);
    });
    return socket;
}

void OsNetwork::onUdpReadable(OsUdpSocket* socket) {
    std::vector<std::uint8_t> buffer(65536);
    while (udpSockets_.contains(socket)) {
        sockaddr_in src{};
        socklen_t len = sizeof src;
        const ssize_t n = ::recvfrom(socket->fd_, buffer.data(), buffer.size(), 0,
                                     reinterpret_cast<sockaddr*>(&src), &len);
        if (n < 0) break;  // EAGAIN (or transient error): wait for next wakeup
        socket->deliver(Bytes(buffer.data(), buffer.data() + n), fromSockaddr(src));
    }
}

void OsUdpSocket::deliver(const Bytes& payload, const Address& from) {
    if (handler_) handler_(payload, from);
}

void OsUdpSocket::sendTo(const Address& dest, const Bytes& payload) {
    if (net_ == nullptr) return;  // network torn down; match sim's dead-fabric no-op
    net_->udpSend(*this, dest, payload);
}

void OsNetwork::udpSend(OsUdpSocket& from, const Address& dest, const Bytes& payload) {
    sockaddr_in target{};
    if (dest.isMulticast()) {
        from.configureMulticastEgress();
        std::uint16_t realGroupPort = 0;
        if (options_.portBase != 0) {
            realGroupPort = realPortFor(dest.port);
        } else if (const auto it = groupPorts_.find(dest); it != groupPorts_.end()) {
            realGroupPort = it->second;
        } else {
            ++unrouted_;  // no membership anywhere we can reach: drop, like the sim
            return;
        }
        toSockaddr(dest.host, realGroupPort, target);
    } else {
        const auto resolved = resolveSendTarget(dest);
        if (!resolved) {
            ++unrouted_;
            return;
        }
        if (!toSockaddr(resolved->host, resolved->port, target)) {
            ++unrouted_;
            return;
        }
    }
    ssize_t sent = ::sendto(from.fd_, payload.data(), payload.size(), MSG_NOSIGNAL,
                            reinterpret_cast<sockaddr*>(&target), sizeof target);
    if (sent < 0 && errno == ECONNREFUSED) {
        // A previous datagram to a dead port left an ICMP error on the socket;
        // clear it with one retry (standard unconnected-UDP Linux behaviour).
        sent = ::sendto(from.fd_, payload.data(), payload.size(), MSG_NOSIGNAL,
                        reinterpret_cast<sockaddr*>(&target), sizeof target);
    }
    if (sent < 0) ++unrouted_;
}

void OsUdpSocket::joinGroup(const Address& group) {
    if (!group.isMulticast()) {
        throw NetError(errc::ErrorCode::NetMisuse,
                       "joinGroup: " + group.toString() + " is not a multicast address");
    }
    if (net_ == nullptr) return;
    auto& membership = net_->ensureMembership(group);
    if (std::find(membership.members.begin(), membership.members.end(), this) ==
        membership.members.end()) {
        membership.members.push_back(this);
    }
    groups_.insert(group);
    configureMulticastEgress();
}

// Group egress goes out this socket's own fd so replies reach us and the
// datagram is attributable to this member (self-exclusion keys on our real
// source port). Pinned to loopback explicitly: without IP_MULTICAST_IF the
// kernel routes group traffic out the default multicast interface, which on
// a CI runner is NOT lo.
void OsUdpSocket::configureMulticastEgress() {
    if (mcastEgressConfigured_) return;
    mcastEgressConfigured_ = true;
    in_addr ifaddr{};
    ::inet_pton(AF_INET, "127.0.0.1", &ifaddr);
    ::setsockopt(fd_, IPPROTO_IP, IP_MULTICAST_IF, &ifaddr, sizeof ifaddr);
    const unsigned char loop = 1;
    const unsigned char ttl = 1;
    ::setsockopt(fd_, IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof loop);
    ::setsockopt(fd_, IPPROTO_IP, IP_MULTICAST_TTL, &ttl, sizeof ttl);
}

void OsUdpSocket::leaveGroup(const Address& group) {
    if (net_ != nullptr) net_->dropMember(this, group);
    groups_.erase(group);
}

OsUdpSocket::~OsUdpSocket() {
    if (net_ == nullptr) {
        if (fd_ >= 0) ::close(fd_);
        return;
    }
    for (const Address& group : std::set<Address>(groups_)) net_->dropMember(this, group);
    net_->udpBindings_.erase(logical_);
    net_->udpSockets_.erase(this);
    net_->closeFd(fd_);
}

OsNetwork::Membership& OsNetwork::ensureMembership(const Address& group) {
    const auto existing = memberships_.find(group);
    if (existing != memberships_.end()) return existing->second;

    const int fd = makeSocket(SOCK_DGRAM, "joinGroup");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    // Bind to the group address itself: no overlap with unicast binds on the
    // same port, and other processes sharing the port base can bind the same
    // (group, port) pair thanks to SO_REUSEADDR.
    std::uint16_t realPort = 0;
    if (options_.portBase != 0) {
        realPort = realPortFor(group.port);
    } else if (const auto it = groupPorts_.find(group); it != groupPorts_.end()) {
        realPort = it->second;
    }
    sockaddr_in sa{};
    toSockaddr(group.host, realPort, sa);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
        const int err = errno;
        ::close(fd);
        --openFds_;
        throw NetError(bindErrorCode(err),
                       "multicast bind " + group.toString() + ": " + errnoText(err));
    }
    socklen_t len = sizeof sa;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
    realPort = ntohs(sa.sin_port);

    ip_mreq mreq{};
    ::inet_pton(AF_INET, group.host.c_str(), &mreq.imr_multiaddr);
    ::inet_pton(AF_INET, "127.0.0.1", &mreq.imr_interface);
    if (::setsockopt(fd, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq, sizeof mreq) != 0) {
        const int err = errno;
        ::close(fd);
        --openFds_;
        throw NetError(errc::ErrorCode::NetBindFailed,
                       "IP_ADD_MEMBERSHIP " + group.toString() + ": " + errnoText(err));
    }

    groupPorts_[group] = realPort;
    Membership& membership = memberships_[group];
    membership.fd = fd;
    membership.realPort = realPort;
    registerFd(fd, [this, group](std::uint32_t events) {
        if (events & EPOLLIN) onMembershipReadable(group);
    });
    return membership;
}

void OsNetwork::dropMember(OsUdpSocket* socket, const Address& group) {
    const auto it = memberships_.find(group);
    if (it == memberships_.end()) return;
    auto& members = it->second.members;
    members.erase(std::remove(members.begin(), members.end(), socket), members.end());
    if (members.empty()) {
        closeFd(it->second.fd);
        memberships_.erase(it);
    }
}

void OsNetwork::onMembershipReadable(const Address& group) {
    std::vector<std::uint8_t> buffer(65536);
    for (;;) {
        const auto it = memberships_.find(group);
        if (it == memberships_.end()) return;
        sockaddr_in src{};
        socklen_t len = sizeof src;
        const ssize_t n = ::recvfrom(it->second.fd, buffer.data(), buffer.size(), 0,
                                     reinterpret_cast<sockaddr*>(&src), &len);
        if (n < 0) break;
        const Address from = fromSockaddr(src);
        const Bytes payload(buffer.data(), buffer.data() + n);
        // Snapshot membership: handlers may join/leave while we deliver.
        const std::vector<OsUdpSocket*> members = it->second.members;
        for (OsUdpSocket* member : members) {
            if (!udpSockets_.contains(member)) continue;
            if (member->realAddress().port == from.port) continue;  // never the sender
            member->deliver(payload, from);
        }
    }
}

// ---------------------------------------------------------------------------
// TCP

std::unique_ptr<TcpListener> OsNetwork::listenTcp(const std::string& host, std::uint16_t port) {
    return listenTcpInternal(host, port, /*framed=*/true);
}

std::unique_ptr<TcpListener> OsNetwork::listenTcpRaw(const std::string& host,
                                                     std::uint16_t port) {
    return listenTcpInternal(host, port, /*framed=*/false);
}

std::unique_ptr<TcpListener> OsNetwork::listenTcpInternal(const std::string& host,
                                                          std::uint16_t port, bool framed) {
    const Address logical{host, port};
    if (port != 0 && tcpBindings_.contains(logical)) {
        throw NetError(errc::ErrorCode::NetBindConflict,
                       "tcp bind: " + logical.toString() + " already in use");
    }
    const int fd = makeSocket(SOCK_STREAM, "listenTcp");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    const std::string bindHost = isLiteralHost(host) ? host : options_.bindAddress;
    std::uint16_t bindPort = 0;
    if (port != 0) {
        bindPort = isLiteralHost(host)         ? port
                   : options_.portBase != 0 ? realPortFor(port)
                                               : 0;
    }
    if (bindPort != 0 && !isLiteralHost(host) && options_.portBase != 0) {
        // Same logical-port-sharing rule as bindUdp: a later in-process
        // listener on an already-claimed base+port falls back to a
        // kernel-assigned port that connectTcp resolves via tcpBindings_.
        for (const auto& [addr, listener] : tcpBindings_) {
            if (listener->realAddress().port == bindPort) {
                bindPort = 0;
                break;
            }
        }
    }
    sockaddr_in sa{};
    if (!toSockaddr(bindHost, bindPort, sa)) {
        ::close(fd);
        --openFds_;
        throw NetError(errc::ErrorCode::NetUrlInvalid, "bad bind address " + bindHost);
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 || ::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        --openFds_;
        throw NetError(bindErrorCode(err), "tcp listen " + bindHost + ":" +
                                               std::to_string(bindPort) + ": " + errnoText(err));
    }
    socklen_t len = sizeof sa;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
    const Address real = fromSockaddr(sa);
    const Address effectiveLogical{host, port != 0 ? port : real.port};

    auto listener = std::unique_ptr<OsTcpListener>(
        new OsTcpListener(this, fd, effectiveLogical, real, framed));
    tcpBindings_[effectiveLogical] = listener.get();
    listeners_.insert(listener.get());
    registerFd(fd, [this, raw = listener.get()](std::uint32_t events) {
        if (events & EPOLLIN) onListenerReadable(raw);
    });
    return listener;
}

OsTcpListener::~OsTcpListener() {
    if (net_ == nullptr) {
        if (fd_ >= 0) ::close(fd_);
        return;
    }
    net_->tcpBindings_.erase(logical_);
    net_->listeners_.erase(this);
    net_->closeFd(fd_);
}

void OsNetwork::onListenerReadable(OsTcpListener* listener) {
    while (listeners_.contains(listener)) {
        sockaddr_in peer{};
        socklen_t len = sizeof peer;
        const int fd = ::accept4(listener->fd_, reinterpret_cast<sockaddr*>(&peer), &len,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EMFILE || errno == ENFILE) {
                STARLINK_LOG(Warn, "os-net")
                    << "accept on " << listener->localAddress().toString()
                    << " dropped a connection: " << errnoText(errno);
            }
            break;
        }
        if (options_.maxOpenSockets != 0 && openFds_ >= options_.maxOpenSockets) {
            STARLINK_LOG(Warn, "os-net")
                << "accept on " << listener->localAddress().toString()
                << " dropped a connection: socket budget exhausted";
            ::close(fd);
            continue;
        }
        ++openFds_;
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto conn = std::shared_ptr<OsTcpConnection>(new OsTcpConnection(
            this, fd, listener->localAddress(), fromSockaddr(peer), listener->framed_));
        adoptConnection(conn);
        const auto handler = listener->handler_;  // copy: may destroy the listener
        if (handler) handler(conn);
    }
}

void OsNetwork::adoptConnection(const std::shared_ptr<OsTcpConnection>& conn) {
    aliveTcp_.insert(conn);
    registerFd(conn->fd_, [this, raw = conn.get()](std::uint32_t events) {
        onTcpEvents(raw, events);
    });
}

void OsNetwork::connectTcp(const std::string& /*host*/, const Address& dest,
                           ConnectCallback onResult, ConnectErrorCallback onError) {
    const auto fail = [this, onResult, onError](errc::ErrorCode code, const std::string& what) {
        // Deliver asynchronously so the caller observes the same
        // callback-later contract as the sim backend.
        timers_.schedule(us(0), [onResult, onError, code, what] {
            if (onError) onError(code, what);
            onResult(nullptr);
        });
    };

    Address target;
    if (isLiteralHost(dest.host)) {
        target = dest;
    } else if (const auto it = tcpBindings_.find(dest); it != tcpBindings_.end()) {
        target = it->second->realAddress();
    } else if (options_.portBase != 0) {
        target = Address{options_.bindAddress, realPortFor(dest.port)};
    } else {
        fail(errc::ErrorCode::NetConnectRefused,
             "connect to " + dest.toString() + " refused: no listener bound");
        return;
    }

    if (options_.maxOpenSockets != 0 && openFds_ >= options_.maxOpenSockets) {
        fail(errc::ErrorCode::NetFdExhausted, "connect to " + dest.toString() +
                                                  ": socket budget exhausted");
        return;
    }
    int fd = -1;
    try {
        fd = makeSocket(SOCK_STREAM, "connectTcp");
    } catch (const NetError& error) {
        fail(error.code(), error.what());
        return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    sockaddr_in sa{};
    if (!toSockaddr(target.host, target.port, sa)) {
        closeFd(fd);
        fail(errc::ErrorCode::NetUrlInvalid, "bad connect address " + target.toString());
        return;
    }
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa);
    if (rc != 0 && errno != EINPROGRESS) {
        const int err = errno;
        closeFd(fd);
        fail(err == ECONNREFUSED ? errc::ErrorCode::NetConnectRefused
                                 : errc::ErrorCode::NetIo,
             "connect to " + dest.toString() + ": " + errnoText(err));
        return;
    }

    struct Pending {
        ConnectCallback onResult;
        ConnectErrorCallback onError;
        Address logicalDest;
        EventId timer = 0;
        bool settled = false;
    };
    auto pending = std::make_shared<Pending>();
    pending->onResult = std::move(onResult);
    pending->onError = std::move(onError);
    pending->logicalDest = dest;

    const auto settle = [this, fd, pending](int socketError) {
        if (pending->settled) return;
        pending->settled = true;
        timers_.cancel(pending->timer);
        unregisterFd(fd);
        if (socketError != 0) {
            ::close(fd);
            if (openFds_ > 0) --openFds_;
            if (pending->onError) {
                // A timed-out or refused connect is "refused" to the engine
                // (its bounded retry loop handles both identically).
                const bool refused = socketError == ECONNREFUSED || socketError == ETIMEDOUT;
                pending->onError(refused ? errc::ErrorCode::NetConnectRefused
                                         : errc::ErrorCode::NetIo,
                                 "connect to " + pending->logicalDest.toString() + ": " +
                                     errnoText(socketError));
            }
            pending->onResult(nullptr);
            return;
        }
        sockaddr_in local{};
        socklen_t len = sizeof local;
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&local), &len);
        auto conn = std::shared_ptr<OsTcpConnection>(new OsTcpConnection(
            this, fd, fromSockaddr(local), pending->logicalDest, /*framed=*/true));
        adoptConnection(conn);
        pending->onResult(conn);
    };

    registerFd(fd, [fd, settle](std::uint32_t) {
        int socketError = 0;
        socklen_t len = sizeof socketError;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &socketError, &len);
        settle(socketError);
    });
    updateFd(fd, kReadWriteEvents);
    pending->timer = timers_.schedule(options_.connectTimeout,
                                      [settle] { settle(ETIMEDOUT); });
}

void OsTcpConnection::send(const Bytes& payload) {
    if (!open_) {
        throw NetError(errc::ErrorCode::NetClosedSend,
                       "send on closed connection to " + remote_.toString());
    }
    if (net_ == nullptr) return;
    net_->tcpQueueSend(*this, payload);
}

void OsNetwork::tcpQueueSend(OsTcpConnection& conn, const Bytes& payload) {
    Bytes& tx = conn.txBuffer_;
    if (conn.framed_) appendFrameHeader(tx, payload.size());
    tx.insert(tx.end(), payload.begin(), payload.end());
    tcpFlush(conn);
}

void OsNetwork::tcpFlush(OsTcpConnection& conn) {
    Bytes& tx = conn.txBuffer_;
    while (!tx.empty()) {
        const ssize_t n = ::send(conn.fd_, tx.data(), tx.size(), MSG_NOSIGNAL);
        if (n > 0) {
            tx.erase(tx.begin(), tx.begin() + n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            updateFd(conn.fd_, kReadWriteEvents);
            return;
        }
        // EPIPE / ECONNRESET: the peer is gone; surface it as a close.
        tcpPeerClosed(conn);
        return;
    }
    updateFd(conn.fd_, kReadEvents);
    if (!conn.open_) tcpTeardown(conn);  // close() was waiting for the drain
}

void OsNetwork::onTcpEvents(OsTcpConnection* conn, std::uint32_t events) {
    // Hold the connection alive across handler invocations.
    std::shared_ptr<OsTcpConnection> guard;
    const auto it = std::find_if(aliveTcp_.begin(), aliveTcp_.end(),
                                 [conn](const auto& c) { return c.get() == conn; });
    if (it == aliveTcp_.end()) return;
    guard = *it;

    if (events & EPOLLIN) {
        std::vector<std::uint8_t> buffer(65536);
        for (;;) {
            const ssize_t n = ::recv(conn->fd_, buffer.data(), buffer.size(), 0);
            if (n > 0) {
                conn->rxBuffer_.insert(conn->rxBuffer_.end(), buffer.data(), buffer.data() + n);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            // n == 0 (orderly FIN) or a hard error: deliver what we have,
            // then report the close.
            tcpDeliver(*conn);
            if (conn->open_) tcpPeerClosed(*conn);
            return;
        }
        tcpDeliver(*conn);
        if (!conn->open_) return;  // a data handler closed us
    }
    if (events & EPOLLOUT) tcpFlush(*conn);
    if ((events & (EPOLLERR | EPOLLHUP)) && conn->open_) tcpPeerClosed(*conn);
}

void OsNetwork::tcpDeliver(OsTcpConnection& conn) {
    if (conn.framed_) {
        while (conn.open_) {
            Bytes& rx = conn.rxBuffer_;
            if (rx.size() < 4) return;
            const std::size_t length = (static_cast<std::size_t>(rx[0]) << 24) |
                                       (static_cast<std::size_t>(rx[1]) << 16) |
                                       (static_cast<std::size_t>(rx[2]) << 8) |
                                       static_cast<std::size_t>(rx[3]);
            if (rx.size() < 4 + length) return;
            const Bytes frame(rx.begin() + 4, rx.begin() + 4 + static_cast<long>(length));
            rx.erase(rx.begin(), rx.begin() + 4 + static_cast<long>(length));
            const auto handler = conn.dataHandler_;  // copy: handler may close()
            if (handler) handler(frame);
        }
    } else if (conn.open_ && !conn.rxBuffer_.empty()) {
        Bytes chunk;
        chunk.swap(conn.rxBuffer_);
        const auto handler = conn.dataHandler_;
        if (handler) handler(chunk);
    }
}

void OsNetwork::tcpPeerClosed(OsTcpConnection& conn) {
    const auto self = std::static_pointer_cast<OsTcpConnection>(conn.shared_from_this());
    conn.open_ = false;
    const auto handler = conn.closeHandler_;
    conn.dataHandler_ = nullptr;
    conn.closeHandler_ = nullptr;
    tcpTeardown(conn);
    if (handler) handler();
}

void OsNetwork::tcpTeardown(OsTcpConnection& conn) {
    const auto self = std::static_pointer_cast<OsTcpConnection>(conn.shared_from_this());
    if (conn.fd_ >= 0) {
        closeFd(conn.fd_);
        conn.fd_ = -1;
    }
    aliveTcp_.erase(self);
}

void OsTcpConnection::close() {
    if (!open_) return;
    open_ = false;
    dataHandler_ = nullptr;
    closeHandler_ = nullptr;
    if (net_ == nullptr) return;
    if (!txBuffer_.empty()) return;  // tcpFlush tears down once drained
    net_->tcpTeardown(*this);
}

OsTcpConnection::~OsTcpConnection() {
    if (net_ == nullptr && fd_ >= 0) ::close(fd_);
}

// ---------------------------------------------------------------------------
// capability probe

bool OsNetwork::loopbackMulticastUsable() {
    static const bool usable = [] {
        const int rx = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        const int tx = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
        if (rx < 0 || tx < 0) {
            if (rx >= 0) ::close(rx);
            if (tx >= 0) ::close(tx);
            return false;
        }
        bool delivered = false;
        const char* group = "239.255.42.42";
        sockaddr_in sa{};
        do {
            const int one = 1;
            ::setsockopt(rx, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
            if (!toSockaddr(group, 0, sa)) break;
            if (::bind(rx, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) break;
            socklen_t len = sizeof sa;
            ::getsockname(rx, reinterpret_cast<sockaddr*>(&sa), &len);
            const std::uint16_t port = ntohs(sa.sin_port);
            ip_mreq mreq{};
            ::inet_pton(AF_INET, group, &mreq.imr_multiaddr);
            ::inet_pton(AF_INET, "127.0.0.1", &mreq.imr_interface);
            if (::setsockopt(rx, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq, sizeof mreq) != 0) break;
            in_addr ifaddr{};
            ::inet_pton(AF_INET, "127.0.0.1", &ifaddr);
            ::setsockopt(tx, IPPROTO_IP, IP_MULTICAST_IF, &ifaddr, sizeof ifaddr);
            const unsigned char loop = 1;
            ::setsockopt(tx, IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof loop);
            sockaddr_in dest{};
            toSockaddr(group, port, dest);
            if (::sendto(tx, "probe", 5, 0, reinterpret_cast<sockaddr*>(&dest), sizeof dest) !=
                5) {
                break;
            }
            // Poll for up to ~200ms.
            for (int i = 0; i < 40 && !delivered; ++i) {
                char buf[16];
                if (::recv(rx, buf, sizeof buf, 0) > 0) {
                    delivered = true;
                    break;
                }
                ::usleep(5000);
            }
        } while (false);
        ::close(rx);
        ::close(tx);
        return delivered;
    }();
    return usable;
}

}  // namespace starlink::net
