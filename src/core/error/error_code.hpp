// Unified error taxonomy: one numbered code space across every layer.
//
// Before this header existed, failures were reported through four unrelated
// vocabularies -- SpecError/ProtocolError/NetError subclasses, the engine's
// FailureCause enum, lint Diagnostic rule ids, and free-text parse rejects --
// with no shared numbering. A fuzz finding or a production abort could not be
// attributed to a stable machine-readable code. This enum fixes the space:
//
//   0            Ok
//   -1  .. -99   common    (unclassified / cross-cutting)
//   -100 .. -199 xml       (document parser)
//   -200 .. -299 mdl       (MDL documents, codec plans, dialect codecs)
//   -300 .. -399 automata  (colored automata definitions)
//   -400 .. -499 merge     (translation registry, synthesis)
//   -500 .. -599 bridge    (bridge specs, deploy-time validation)
//   -600 .. -699 engine    (runtime session aborts)
//   -700 .. -799 net       (simulated network misuse and faults)
//   -800 .. -899 lint      (lint-only findings; most lint rules alias the
//                           code of the layer whose defect they detect)
//
// Codes are negative integers (pacs_bridge convention): the sign separates
// them from legacy positive exit codes, and each module owns a closed range
// so a bare number is attributable to a layer without a lookup table.
// Stable names ("engine.decode") are the human/metrics-facing aliases; both
// are frozen once shipped -- add new codes, never renumber.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace starlink::errc {

enum class Layer { Common, Xml, Mdl, Automata, Merge, Bridge, Engine, Net, Lint };

enum class ErrorCode : int {
    Ok = 0,

    // -- common: -1 .. -99 --------------------------------------------------
    Unclassified = -1,     ///< an exception that carries no taxonomy code
    SpecViolation = -10,   ///< a model/spec defect not yet given a finer code
    ProtocolEncode = -20,  ///< legacy stack asked to encode an impossible message
    Internal = -30,        ///< invariant violation inside the framework

    // -- xml: -100 .. -199 --------------------------------------------------
    XmlParse = -100,           ///< document does not parse (generic)
    XmlEntity = -101,          ///< malformed or unknown entity reference
    XmlDepthLimit = -102,      ///< element nesting exceeds the hard cap
    XmlExpansionLimit = -103,  ///< entity expansion output exceeds the hard cap
    XmlMismatchedTag = -104,   ///< close tag does not match the open element
    XmlTrailingContent = -105, ///< content after the root element

    // -- mdl / codec: -200 .. -299 -------------------------------------------
    MdlInvalid = -200,           ///< malformed MDL document
    MdlMarshallerUnknown = -201, ///< <Types> names an unregistered marshaller
    MdlPlan = -202,              ///< codec plan compilation failed
    MdlRuleShadowed = -203,      ///< a <Rule> can never match (lint)
    CodecParse = -210,           ///< wire bytes rejected by the parser
    CodecCompose = -211,         ///< message cannot be composed to wire bytes
    CodecMessageUnknown = -212,  ///< message type not defined by the MDL
    CodecMandatoryMissing = -213,///< mandatory field has no value
    CodecBitRange = -214,        ///< BitReader/BitWriter driven out of range
    CodecMessageTooLarge = -215, ///< wire input exceeds the max-message-size cap
    CodecFieldLimit = -216,      ///< parse exceeds the max-field-count cap
    CodecLengthOverflow = -217,  ///< a length field implies an absurd field size

    // -- automata: -300 .. -399 ----------------------------------------------
    AutomatonInvalid = -300,          ///< malformed automaton definition
    AutomatonMessageUnknown = -301,   ///< transition names a message no MDL defines
    AutomatonReceiveAmbiguous = -302, ///< two receive-transitions on one message
    AutomatonTransitionDead = -303,   ///< transition from an unreachable state
    AutomatonStateDeadEnd = -304,     ///< non-accepting state with no way out

    // -- merge: -400 .. -499 -------------------------------------------------
    MergeInvalid = -400,        ///< merged automaton fails validation
    TranslationUnknown = -401,  ///< transform name not in the registry
    TranslationRejected = -402, ///< transform refused the value at runtime
    SynthesisFailed = -403,     ///< bridge synthesis could not close the loop

    // -- bridge: -500 .. -599 ------------------------------------------------
    BridgeInvalid = -500,              ///< malformed bridge spec
    BridgeClosureMissing = -501,       ///< no path back to the initial state
    BridgeStateUnknown = -502,         ///< spec names a state no component has
    BridgeRefNotStored = -503,         ///< field ref reads a never-stored message
    BridgeMessageUnknown = -504,       ///< spec names an undefined message
    BridgeFieldUnknown = -505,         ///< field ref names an undeclared field
    BridgeTransformUnknown = -506,     ///< assignment names an unknown transform
    BridgeTransformMismatch = -507,    ///< transform type does not fit the field
    BridgeEquivalenceUnknown = -508,   ///< equivalence names an unknown message
    BridgeEquivalenceUncovered = -509, ///< equivalence member never exercised
    BridgeDeltaMissing = -510,         ///< bicolored node without a delta
    BridgeDeploy = -511,               ///< deploy-time validation failed
    BridgeDeployRejected = -512,       ///< registry lint gate rejected the candidate set
    BridgeIdentityMismatch = -513,     ///< model-set identity hash does not match
    BridgeVersionUnknown = -514,       ///< registry holds no set with this version/identity

    // -- engine: -600 .. -699 ------------------------------------------------
    EngineSessionTimeout = -600, ///< the session watchdog fired
    EngineRetryExhausted = -601, ///< retransmission budget ran dry awaiting a reply
    EngineConnectRefused = -602, ///< tcp connect stayed refused after retries
    EnginePeerClosed = -603,     ///< tcp peer vanished mid-session
    EngineDecode = -604,         ///< translation/compose/encode failed (generic)
    EngineAmbiguousSend = -605,  ///< several outgoing send-transitions
    EngineUnknownAction = -606,  ///< delta lambda names an unknown action
    EngineFieldUnresolved = -607,///< translation input field could not be read
    EngineNoCodec = -608,        ///< component deployed without a codec
    EngineColorUnknown = -609,   ///< component color missing from the registry
    EngineOverload = -610,       ///< admission control shed the session (queue full)
    EngineIdleTimeout = -611,    ///< idle deadline lapsed with no message activity
    EngineSpoolUnwritable = -612,///< postmortem spool directory cannot be written

    // -- net: -700 .. -799 ---------------------------------------------------
    NetMisuse = -700,         ///< simulated network misused (generic)
    NetConnectRefused = -701, ///< connect refused (no listener / blackholed)
    NetPeerClosed = -702,     ///< peer closed the connection
    NetBindConflict = -703,   ///< address already bound
    NetClosedSend = -704,     ///< send on a closed connection
    NetUrlInvalid = -705,     ///< URL does not parse / bad port
    NetBacklogOverflow = -706,///< tcp pre-connect backlog exceeded its byte cap
    NetBindFailed = -707,     ///< OS socket bind/listen failed (not an address conflict)
    NetFdExhausted = -708,    ///< file-descriptor budget exhausted (EMFILE/ENFILE or soft cap)
    NetIo = -709,             ///< unexpected OS socket I/O failure

    // -- lint: -800 .. -899 --------------------------------------------------
    LintUnknownKind = -800,   ///< model file is no recognised model kind
};

/// The numeric value (pacs_bridge-style `to_error_code`).
constexpr int to_error_code(ErrorCode code) { return static_cast<int>(code); }

/// Stable dotted name, e.g. "engine.decode". Never renamed once shipped.
const char* to_string(ErrorCode code);

/// Which layer owns the code's range.
Layer layerOf(ErrorCode code);
const char* layerName(Layer layer);

/// One-line operator guidance for docs/ERRORS.md and `starlinkd errors`.
const char* remediation(ErrorCode code);

/// Every defined code, ascending by numeric value (Ok first). The taxonomy
/// tests iterate this to prove names/ranges/round-trips stay consistent.
const std::vector<ErrorCode>& allCodes();

/// Numeric value -> code, nullopt for numbers outside the taxonomy.
std::optional<ErrorCode> fromInt(int value);

/// Stable name -> code, nullopt for unknown names.
std::optional<ErrorCode> fromName(const std::string& name);

// -- structured JSON envelope ------------------------------------------------
//
// The machine-readable rendering of a failure crossing a process boundary
// (starlinkd stderr, engine abort logs): code + layer + message + trace id.
// The trace id carries whatever identifies the failing unit of work -- the
// telemetry session ordinal for engine aborts, the subcommand for CLI errors.
struct Envelope {
    ErrorCode code = ErrorCode::Unclassified;
    std::string message;
    std::string traceId;
};

/// {"error":{"code":-604,"name":"engine.decode","layer":"engine",
///           "message":"...","trace_id":"..."}}
std::string toJson(const Envelope& envelope);

}  // namespace starlink::errc
