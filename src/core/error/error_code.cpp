#include "core/error/error_code.hpp"

#include <algorithm>
#include <array>

namespace starlink::errc {

namespace {

struct Entry {
    ErrorCode code;
    const char* name;
    const char* hint;
};

// One row per code. Order is ascending numeric (most negative first) except Ok,
// which allCodes() moves to the front. to_string/remediation/fromInt/fromName
// all read this single table so the taxonomy cannot drift apart.
constexpr std::array<Entry, 71> kEntries{{
    {ErrorCode::LintUnknownKind, "lint.unknown-kind",
     "rename the root element to a known model kind (MDL, Automaton, Bridge)"},
    {ErrorCode::NetIo, "net.io",
     "an OS socket call failed unexpectedly; check the errno detail in the message"},
    {ErrorCode::NetFdExhausted, "net.fd-exhausted",
     "the process hit its file-descriptor budget; raise ulimit -n or the socket cap"},
    {ErrorCode::NetBindFailed, "net.bind-failed",
     "the OS rejected the bind/listen; check the bind address and port range"},
    {ErrorCode::NetBacklogOverflow, "net.backlog-overflow",
     "the pre-connect backlog hit its byte cap; slow the sender or raise the cap"},
    {ErrorCode::NetUrlInvalid, "net.url-invalid",
     "check the URL scheme, host, and port syntax"},
    {ErrorCode::NetClosedSend, "net.closed-send",
     "the connection was already closed; stop writing after close()"},
    {ErrorCode::NetBindConflict, "net.bind-conflict",
     "another socket holds this address; pick a free port or close the holder"},
    {ErrorCode::NetPeerClosed, "net.peer-closed",
     "the remote endpoint closed the connection; expect partial sessions"},
    {ErrorCode::NetConnectRefused, "net.connect-refused",
     "no listener at the destination; verify the peer is deployed and reachable"},
    {ErrorCode::NetMisuse, "net.misuse",
     "the network API was called with invalid arguments; fix the caller"},
    {ErrorCode::EngineSpoolUnwritable, "engine.spool-unwritable",
     "the postmortem spool directory cannot be created or written; the message names the path"},
    {ErrorCode::EngineIdleTimeout, "engine.idle-timeout",
     "the session went silent past the idle deadline; raise idleTimeout or fix the peer"},
    {ErrorCode::EngineOverload, "engine.overload",
     "admission control shed the session; add shards or raise the pending-queue cap"},
    {ErrorCode::EngineColorUnknown, "engine.color-unknown",
     "register the component's color in the codec registry before deploying"},
    {ErrorCode::EngineNoCodec, "engine.no-codec",
     "attach a MessageCodec for every component color before deploying"},
    {ErrorCode::EngineFieldUnresolved, "engine.field-unresolved",
     "the referenced message/field was never stored; check bridge assignments"},
    {ErrorCode::EngineUnknownAction, "engine.unknown-action",
     "the delta names an action the engine does not implement"},
    {ErrorCode::EngineAmbiguousSend, "engine.ambiguous-send",
     "a state has several send-transitions; make the automaton deterministic"},
    {ErrorCode::EngineDecode, "engine.decode",
     "translation or re-encoding failed mid-session; inspect the abort span"},
    {ErrorCode::EnginePeerClosed, "engine.peer-closed",
     "the tcp peer vanished mid-session; the abort is recorded per-session"},
    {ErrorCode::EngineConnectRefused, "engine.connect-refused",
     "connect retries exhausted; verify the target service is listening"},
    {ErrorCode::EngineRetryExhausted, "engine.retry-exhausted",
     "the retransmission budget ran dry; raise retries or fix packet loss"},
    {ErrorCode::EngineSessionTimeout, "engine.session-timeout",
     "the watchdog fired; raise sessionTimeout or investigate the stall"},
    {ErrorCode::BridgeVersionUnknown, "bridge.version-unknown",
     "no registered model-set version matches; load the matching set before replaying"},
    {ErrorCode::BridgeIdentityMismatch, "bridge.identity-mismatch",
     "the bundle's model-set identity hash does not match the supplied models"},
    {ErrorCode::BridgeDeployRejected, "bridge.deploy-rejected",
     "the candidate model set failed the lint gate; fix the listed findings and redeploy"},
    {ErrorCode::BridgeDeploy, "bridge.deploy",
     "deploy-time validation failed; run `starlinkd lint` on the spec set"},
    {ErrorCode::BridgeDeltaMissing, "bridge.delta-missing",
     "every bicolored node needs a delta; add the missing assignment block"},
    {ErrorCode::BridgeEquivalenceUncovered, "bridge.equivalence.uncovered",
     "an equivalence member is never exercised by any transition"},
    {ErrorCode::BridgeEquivalenceUnknown, "bridge.equivalence.unknown",
     "the equivalence references a message no component defines"},
    {ErrorCode::BridgeTransformMismatch, "bridge.transform.mismatch",
     "the transform's value type does not match the target field"},
    {ErrorCode::BridgeTransformUnknown, "bridge.transform.unknown",
     "register the transform in the TranslationRegistry or fix the name"},
    {ErrorCode::BridgeFieldUnknown, "bridge.field.unknown",
     "the field ref names a field the message does not declare"},
    {ErrorCode::BridgeMessageUnknown, "bridge.message.unknown",
     "the bridge references a message absent from both MDLs"},
    {ErrorCode::BridgeRefNotStored, "bridge.ref.message-not-stored",
     "the referenced message is read before any transition stores it"},
    {ErrorCode::BridgeStateUnknown, "bridge.state.unknown",
     "the bridge names a state that no component automaton defines"},
    {ErrorCode::BridgeClosureMissing, "bridge.closure.missing",
     "the merged automaton cannot return to its initial state"},
    {ErrorCode::BridgeInvalid, "bridge.invalid",
     "the bridge spec is malformed; check required elements and attributes"},
    {ErrorCode::SynthesisFailed, "merge.synthesis-failed",
     "bridge synthesis could not close the session loop from the given automata"},
    {ErrorCode::TranslationRejected, "merge.translation-rejected",
     "the transform refused the runtime value; check value domains"},
    {ErrorCode::TranslationUnknown, "merge.translation-unknown",
     "the translation name is not registered; add it or fix the spec"},
    {ErrorCode::MergeInvalid, "merge.invalid",
     "the merged automaton failed validation; run the model linter"},
    {ErrorCode::AutomatonStateDeadEnd, "automaton.state.dead-end",
     "a non-accepting state has no outgoing transition; add one or mark accepting"},
    {ErrorCode::AutomatonTransitionDead, "automaton.transition.dead",
     "the transition starts from a state unreachable from the initial state"},
    {ErrorCode::AutomatonReceiveAmbiguous, "automaton.receive.ambiguous",
     "two receive-transitions match the same message in one state"},
    {ErrorCode::AutomatonMessageUnknown, "automaton.message.unknown",
     "the transition names a message the MDL does not define"},
    {ErrorCode::AutomatonInvalid, "automaton.invalid",
     "the automaton definition is malformed; check states and transitions"},
    {ErrorCode::CodecLengthOverflow, "codec.length-overflow",
     "a length field implies an absurd size; the input is rejected as hostile"},
    {ErrorCode::CodecFieldLimit, "codec.field-limit",
     "parse produced more fields than the hard cap; input rejected"},
    {ErrorCode::CodecMessageTooLarge, "codec.message-too-large",
     "wire input exceeds the maximum message size; input rejected"},
    {ErrorCode::CodecBitRange, "codec.bit-range",
     "a marshaller drove the bit reader/writer out of range; fix the MDL widths"},
    {ErrorCode::CodecMandatoryMissing, "codec.mandatory-missing",
     "compose was given a message missing a mandatory field"},
    {ErrorCode::CodecMessageUnknown, "codec.message-unknown",
     "the message type is not defined by this MDL"},
    {ErrorCode::CodecCompose, "codec.compose",
     "the message cannot be serialised; check field values against the MDL"},
    {ErrorCode::CodecParse, "codec.parse",
     "the wire bytes do not match any message rule of this MDL"},
    {ErrorCode::MdlRuleShadowed, "mdl.rule.shadowed",
     "an earlier rule always matches first; reorder or tighten the rules"},
    {ErrorCode::MdlPlan, "mdl.plan",
     "the codec plan could not be compiled from this MDL"},
    {ErrorCode::MdlMarshallerUnknown, "mdl.marshaller.unknown",
     "the <Types> section names an unregistered marshaller"},
    {ErrorCode::MdlInvalid, "mdl.invalid",
     "the MDL document is malformed; check fields, types, and rules"},
    {ErrorCode::XmlTrailingContent, "xml.trailing-content",
     "remove content after the closing root tag"},
    {ErrorCode::XmlMismatchedTag, "xml.mismatched-tag",
     "the close tag does not match the open element"},
    {ErrorCode::XmlExpansionLimit, "xml.expansion-limit",
     "entity expansion output exceeds the hard cap; the document is rejected"},
    {ErrorCode::XmlDepthLimit, "xml.depth-limit",
     "element nesting exceeds the hard cap; flatten the document"},
    {ErrorCode::XmlEntity, "xml.entity",
     "fix the malformed or unknown entity reference"},
    {ErrorCode::XmlParse, "xml.parse",
     "the document is not well-formed XML; the message cites line and column"},
    {ErrorCode::Internal, "common.internal",
     "framework invariant violated; please report with the trace id"},
    {ErrorCode::ProtocolEncode, "common.protocol-encode",
     "a legacy protocol stack was asked to encode an impossible message"},
    {ErrorCode::SpecViolation, "common.spec-violation",
     "a spec constraint was violated; the message names the offending element"},
    {ErrorCode::Unclassified, "common.unclassified",
     "an error escaped without a taxonomy code; file a bug to classify it"},
    {ErrorCode::Ok, "ok", "no error"},
}};

const Entry* find(ErrorCode code) {
    for (const auto& entry : kEntries) {
        if (entry.code == code) return &entry;
    }
    return nullptr;
}

}  // namespace

const char* to_string(ErrorCode code) {
    const Entry* entry = find(code);
    return entry ? entry->name : "common.unclassified";
}

const char* remediation(ErrorCode code) {
    const Entry* entry = find(code);
    return entry ? entry->hint : "unknown code";
}

Layer layerOf(ErrorCode code) {
    const int value = -to_error_code(code);
    if (value >= 800) return Layer::Lint;
    if (value >= 700) return Layer::Net;
    if (value >= 600) return Layer::Engine;
    if (value >= 500) return Layer::Bridge;
    if (value >= 400) return Layer::Merge;
    if (value >= 300) return Layer::Automata;
    if (value >= 200) return Layer::Mdl;
    if (value >= 100) return Layer::Xml;
    return Layer::Common;
}

const char* layerName(Layer layer) {
    switch (layer) {
        case Layer::Common: return "common";
        case Layer::Xml: return "xml";
        case Layer::Mdl: return "mdl";
        case Layer::Automata: return "automata";
        case Layer::Merge: return "merge";
        case Layer::Bridge: return "bridge";
        case Layer::Engine: return "engine";
        case Layer::Net: return "net";
        case Layer::Lint: return "lint";
    }
    return "common";
}

const std::vector<ErrorCode>& allCodes() {
    static const std::vector<ErrorCode> codes = [] {
        std::vector<ErrorCode> out;
        out.reserve(kEntries.size());
        out.push_back(ErrorCode::Ok);
        for (const auto& entry : kEntries) {
            if (entry.code != ErrorCode::Ok) out.push_back(entry.code);
        }
        // Ok first, then ascending numeric value (most negative last would be
        // descending; ascending means -800... up to -1).
        std::sort(out.begin() + 1, out.end(), [](ErrorCode a, ErrorCode b) {
            return to_error_code(a) < to_error_code(b);
        });
        return out;
    }();
    return codes;
}

std::optional<ErrorCode> fromInt(int value) {
    for (const auto& entry : kEntries) {
        if (to_error_code(entry.code) == value) return entry.code;
    }
    return std::nullopt;
}

std::optional<ErrorCode> fromName(const std::string& name) {
    for (const auto& entry : kEntries) {
        if (name == entry.name) return entry.code;
    }
    return std::nullopt;
}

namespace {

// Minimal JSON string escaper (mirrors the one in lint/diagnostic.cpp; the
// error lib sits below every other target so it cannot reuse it).
std::string jsonEscape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    constexpr const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out.push_back(hex[(c >> 4) & 0xF]);
                    out.push_back(hex[c & 0xF]);
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

}  // namespace

std::string toJson(const Envelope& envelope) {
    std::string out = "{\"error\":{\"code\":";
    out += std::to_string(to_error_code(envelope.code));
    out += ",\"name\":\"";
    out += to_string(envelope.code);
    out += "\",\"layer\":\"";
    out += layerName(layerOf(envelope.code));
    out += "\",\"message\":\"";
    out += jsonEscape(envelope.message);
    out += "\",\"trace_id\":\"";
    out += jsonEscape(envelope.traceId);
    out += "\"}}";
    return out;
}

}  // namespace starlink::errc
