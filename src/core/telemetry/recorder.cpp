#include "core/telemetry/recorder.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/telemetry/span.hpp"

namespace starlink::telemetry {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitive encoding. Strings carry a u16 length, blobs a u32;
// every event is framed by a u32 byte count so a reader can skip unknown
// kinds of a future version.

void putU8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void putU16(Bytes& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void putU32(Bytes& out, std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
        out.push_back(static_cast<std::uint8_t>(v >> shift));
    }
}

void putU64(Bytes& out, std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<std::uint8_t>(v >> shift));
    }
}

void putI32(Bytes& out, std::int32_t v) { putU32(out, static_cast<std::uint32_t>(v)); }
void putI64(Bytes& out, std::int64_t v) { putU64(out, static_cast<std::uint64_t>(v)); }

void putStr(Bytes& out, const std::string& s) {
    const std::size_t n = std::min<std::size_t>(s.size(), 0xffff);
    putU16(out, static_cast<std::uint16_t>(n));
    out.insert(out.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
}

void putBlob(Bytes& out, const Bytes& b) {
    putU32(out, static_cast<std::uint32_t>(b.size()));
    out.insert(out.end(), b.begin(), b.end());
}

/// Bounds-checked reader over an encoded buffer; every decode error is a
/// SpecViolation (the bundle/spec layer's "malformed input" code) so corrupt
/// files surface as coded errors, not UB.
class Reader {
public:
    Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

    std::uint8_t u8() {
        need(1);
        return data_[pos_++];
    }
    std::uint16_t u16() {
        need(2);
        std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] |
                                                     (std::uint16_t{data_[pos_ + 1]} << 8));
        pos_ += 2;
        return v;
    }
    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
        pos_ += 4;
        return v;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
        pos_ += 8;
        return v;
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    std::string str() {
        const std::uint16_t n = u16();
        need(n);
        std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
        pos_ += n;
        return s;
    }
    Bytes blob() {
        const std::uint32_t n = u32();
        need(n);
        Bytes b(data_ + pos_, data_ + pos_ + n);
        pos_ += n;
        return b;
    }

private:
    void need(std::size_t n) const {
        if (size_ - pos_ < n) {
            throw SpecError(errc::ErrorCode::SpecViolation,
                            "flight recorder: truncated encoding (wanted " +
                                std::to_string(n) + " bytes, " +
                                std::to_string(size_ - pos_) + " left)");
        }
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

void encodeEventBody(Bytes& out, const WireEvent& event) {
    putU8(out, static_cast<std::uint8_t>(event.kind));
    putI64(out, event.tsUs);
    switch (event.kind) {
        case WireEvent::Kind::Rx:
            putU64(out, event.color);
            putStr(out, event.from);
            putStr(out, event.to);
            putBlob(out, event.payload);
            break;
        case WireEvent::Kind::Tx:
            putU64(out, event.color);
            putBlob(out, event.payload);
            break;
        case WireEvent::Kind::TcpConnect:
            putU64(out, event.color);
            putStr(out, event.from);  // target address
            putU8(out, event.action);
            putI32(out, event.attempts);
            break;
        case WireEvent::Kind::Transition:
            putStr(out, event.component);
            putStr(out, event.state);
            putStr(out, event.stateTo);
            putU8(out, event.action);
            putStr(out, event.messageType);
            break;
        case WireEvent::Kind::Translate:
            putStr(out, event.state);
            putStr(out, event.messageType);
            break;
        case WireEvent::Kind::Fault:
            putU64(out, event.color);
            putU8(out, event.action);
            putStr(out, event.from);  // detail text
            break;
        case WireEvent::Kind::SessionEnd:
            putI32(out, event.code);
            putU8(out, event.cause);
            putU8(out, event.completed ? 1 : 0);
            putU32(out, event.messagesIn);
            putU32(out, event.messagesOut);
            putU32(out, event.retransmits);
            break;
    }
}

WireEvent decodeEventBody(Reader& in, std::size_t bodyEnd) {
    WireEvent event;
    const std::uint8_t kind = in.u8();
    if (kind < 1 || kind > 7) {
        throw SpecError(errc::ErrorCode::SpecViolation,
                        "flight recorder: unknown event kind " + std::to_string(kind));
    }
    event.kind = static_cast<WireEvent::Kind>(kind);
    event.tsUs = in.i64();
    switch (event.kind) {
        case WireEvent::Kind::Rx:
            event.color = in.u64();
            event.from = in.str();
            event.to = in.str();
            event.payload = in.blob();
            break;
        case WireEvent::Kind::Tx:
            event.color = in.u64();
            event.payload = in.blob();
            break;
        case WireEvent::Kind::TcpConnect:
            event.color = in.u64();
            event.from = in.str();
            event.action = in.u8();
            event.attempts = in.i32();
            break;
        case WireEvent::Kind::Transition:
            event.component = in.str();
            event.state = in.str();
            event.stateTo = in.str();
            event.action = in.u8();
            event.messageType = in.str();
            break;
        case WireEvent::Kind::Translate:
            event.state = in.str();
            event.messageType = in.str();
            break;
        case WireEvent::Kind::Fault:
            event.color = in.u64();
            event.action = in.u8();
            event.from = in.str();
            break;
        case WireEvent::Kind::SessionEnd:
            event.code = in.i32();
            event.cause = in.u8();
            event.completed = in.u8() != 0;
            event.messagesIn = in.u32();
            event.messagesOut = in.u32();
            event.retransmits = in.u32();
            break;
    }
    if (in.remaining() != bodyEnd) {
        throw SpecError(errc::ErrorCode::SpecViolation,
                        "flight recorder: event length does not match its body");
    }
    return event;
}

}  // namespace

std::vector<WireEvent> decodeEvents(const Bytes& encoded) {
    std::vector<WireEvent> events;
    Reader in(encoded.data(), encoded.size());
    while (!in.done()) {
        const std::uint32_t length = in.u32();
        if (length > in.remaining()) {
            throw SpecError(errc::ErrorCode::SpecViolation,
                            "flight recorder: event frame overruns the log");
        }
        events.push_back(decodeEventBody(in, in.remaining() - length));
    }
    return events;
}

// ---------------------------------------------------------------------------
// FlightRecorder

void FlightRecorder::beginSession(std::uint64_t ordinal, std::int64_t tsUs) {
    (void)tsUs;
    if (!enabled()) return;
    sessionOpen_ = true;
    ordinal_ = ordinal;
    used_ = 0;  // rewind; chunks stay allocated for the next session
    truncated_ = false;
    droppedEvents_ = 0;
}

void FlightRecorder::appendScratch() {
    if (cap_ != 0 && used_ + scratch_.size() > cap_) {
        truncated_ = true;
        ++droppedEvents_;
        return;
    }
    appendUnconditional();
}

void FlightRecorder::appendUnconditional() {
    const std::uint8_t* src = scratch_.data();
    std::size_t left = scratch_.size();
    while (left > 0) {
        const std::size_t chunkIndex = used_ / kChunkBytes;
        const std::size_t offset = used_ % kChunkBytes;
        if (chunkIndex == chunks_.size()) {
            chunks_.push_back(std::make_unique<std::uint8_t[]>(kChunkBytes));
        }
        const std::size_t n = std::min(left, kChunkBytes - offset);
        std::memcpy(chunks_[chunkIndex].get() + offset, src, n);
        src += n;
        left -= n;
        used_ += n;
    }
}

Bytes FlightRecorder::copyLog() const {
    Bytes out;
    out.reserve(used_);
    std::size_t left = used_;
    for (const auto& chunk : chunks_) {
        if (left == 0) break;
        const std::size_t n = std::min(left, kChunkBytes);
        out.insert(out.end(), chunk.get(), chunk.get() + n);
        left -= n;
    }
    return out;
}

#define STARLINK_RECORD_PROLOGUE()        \
    if (!enabled() || !sessionOpen_) return; \
    scratch_.clear()

void FlightRecorder::recordRx(std::int64_t tsUs, std::uint64_t color, const std::string& from,
                              const std::string& to, const Bytes& payload) {
    STARLINK_RECORD_PROLOGUE();
    WireEvent event;
    event.kind = WireEvent::Kind::Rx;
    event.tsUs = tsUs;
    event.color = color;
    event.from = from;
    event.to = to;
    event.payload = payload;
    // Encoded as length + body so future kinds stay skippable.
    Bytes body;
    encodeEventBody(body, event);
    putU32(scratch_, static_cast<std::uint32_t>(body.size()));
    scratch_.insert(scratch_.end(), body.begin(), body.end());
    appendScratch();
}

void FlightRecorder::recordTx(std::int64_t tsUs, std::uint64_t color, const Bytes& payload) {
    STARLINK_RECORD_PROLOGUE();
    Bytes body;
    WireEvent event;
    event.kind = WireEvent::Kind::Tx;
    event.tsUs = tsUs;
    event.color = color;
    event.payload = payload;
    encodeEventBody(body, event);
    putU32(scratch_, static_cast<std::uint32_t>(body.size()));
    scratch_.insert(scratch_.end(), body.begin(), body.end());
    appendScratch();
}

void FlightRecorder::recordConnect(std::int64_t tsUs, std::uint64_t color,
                                   const std::string& target, std::uint8_t outcome,
                                   std::int32_t attempts) {
    STARLINK_RECORD_PROLOGUE();
    Bytes body;
    WireEvent event;
    event.kind = WireEvent::Kind::TcpConnect;
    event.tsUs = tsUs;
    event.color = color;
    event.from = target;
    event.action = outcome;
    event.attempts = attempts;
    encodeEventBody(body, event);
    putU32(scratch_, static_cast<std::uint32_t>(body.size()));
    scratch_.insert(scratch_.end(), body.begin(), body.end());
    appendScratch();
}

void FlightRecorder::recordTransition(std::int64_t tsUs, const std::string& component,
                                      const std::string& from, const std::string& to,
                                      std::uint8_t action, const std::string& messageType) {
    STARLINK_RECORD_PROLOGUE();
    Bytes body;
    WireEvent event;
    event.kind = WireEvent::Kind::Transition;
    event.tsUs = tsUs;
    event.component = component;
    event.state = from;
    event.stateTo = to;
    event.action = action;
    event.messageType = messageType;
    encodeEventBody(body, event);
    putU32(scratch_, static_cast<std::uint32_t>(body.size()));
    scratch_.insert(scratch_.end(), body.begin(), body.end());
    appendScratch();
}

void FlightRecorder::recordTranslate(std::int64_t tsUs, const std::string& state,
                                     const std::string& messageType) {
    STARLINK_RECORD_PROLOGUE();
    Bytes body;
    WireEvent event;
    event.kind = WireEvent::Kind::Translate;
    event.tsUs = tsUs;
    event.state = state;
    event.messageType = messageType;
    encodeEventBody(body, event);
    putU32(scratch_, static_cast<std::uint32_t>(body.size()));
    scratch_.insert(scratch_.end(), body.begin(), body.end());
    appendScratch();
}

void FlightRecorder::recordFault(std::int64_t tsUs, std::uint64_t color, std::uint8_t fault,
                                 const std::string& detail) {
    STARLINK_RECORD_PROLOGUE();
    Bytes body;
    WireEvent event;
    event.kind = WireEvent::Kind::Fault;
    event.tsUs = tsUs;
    event.color = color;
    event.action = fault;
    event.from = detail;
    encodeEventBody(body, event);
    putU32(scratch_, static_cast<std::uint32_t>(body.size()));
    scratch_.insert(scratch_.end(), body.begin(), body.end());
    appendScratch();
}

#undef STARLINK_RECORD_PROLOGUE

void FlightRecorder::endSession(std::int64_t tsUs, std::int32_t code, std::uint8_t cause,
                                bool completed, std::uint32_t messagesIn,
                                std::uint32_t messagesOut, std::uint32_t retransmits) {
    if (!enabled() || !sessionOpen_) return;
    scratch_.clear();
    Bytes body;
    WireEvent event;
    event.kind = WireEvent::Kind::SessionEnd;
    event.tsUs = tsUs;
    event.code = code;
    event.cause = cause;
    event.completed = completed;
    event.messagesIn = messagesIn;
    event.messagesOut = messagesOut;
    event.retransmits = retransmits;
    encodeEventBody(body, event);
    putU32(scratch_, static_cast<std::uint32_t>(body.size()));
    scratch_.insert(scratch_.end(), body.begin(), body.end());
    // The terminal record always lands, cap or not: a log without its end
    // event would be ambiguous about how the session died.
    appendUnconditional();

    SessionLog log;
    log.ordinal = ordinal_;
    log.truncated = truncated_;
    log.droppedEvents = droppedEvents_;
    log.events = copyLog();
    recent_.push_back(std::move(log));
    while (recent_.size() > ringCapacity_) recent_.pop_front();
    sessionOpen_ = false;
    used_ = 0;
}

// ---------------------------------------------------------------------------
// PostmortemBundle

namespace {
constexpr std::uint32_t kBundleMagic = 0x52464C53;  // "SLFR"
constexpr std::uint16_t kBundleVersion = 1;

void putSpan(Bytes& out, const Span& span) {
    putU64(out, span.id);
    putU64(out, span.parent);
    putU64(out, span.session);
    putStr(out, span.name);
    putI64(out, span.start.time_since_epoch().count());
    putI64(out, span.end.time_since_epoch().count());
    putU64(out, span.wallNs);
    putU16(out, static_cast<std::uint16_t>(std::min<std::size_t>(span.attrs.size(), 0xffff)));
    for (const SpanAttr& attr : span.attrs) {
        putStr(out, attr.key);
        putStr(out, attr.value);
    }
}

Span getSpan(Reader& in) {
    Span span;
    span.id = in.u64();
    span.parent = in.u64();
    span.session = in.u64();
    span.name = in.str();
    span.start = net::TimePoint{net::Duration{in.i64()}};
    span.end = net::TimePoint{net::Duration{in.i64()}};
    span.wallNs = in.u64();
    const std::uint16_t attrs = in.u16();
    span.attrs.reserve(attrs);
    for (std::uint16_t i = 0; i < attrs; ++i) {
        SpanAttr attr;
        attr.key = in.str();
        attr.value = in.str();
        span.attrs.push_back(std::move(attr));
    }
    return span;
}

}  // namespace

Bytes encodeBundle(const PostmortemBundle& bundle) {
    Bytes out;
    out.reserve(256 + bundle.events.size());
    putU32(out, kBundleMagic);
    putU16(out, kBundleVersion);
    putStr(out, bundle.bridge);
    putStr(out, bundle.caseSlug);
    putStr(out, bundle.bridgeHost);
    putI32(out, bundle.shard);
    putU64(out, bundle.sessionOrdinal);
    putU64(out, bundle.sessionSeed);
    putU64(out, bundle.retrySeed);
    putU64(out, bundle.retryDraws);
    putU64(out, bundle.modelIdentity);
    putI32(out, bundle.abortCode);
    putU8(out, bundle.cause);
    putI64(out, bundle.processingDelayUs);
    putI64(out, bundle.sessionTimeoutUs);
    putI64(out, bundle.receiveTimeoutUs);
    putI64(out, bundle.retransmitJitterUs);
    putI64(out, bundle.idleTimeoutUs);
    putI64(out, bundle.tcpConnectRetryDelayUs);
    putI64(out, bundle.tcpConnectRetryMaxDelayUs);
    putI32(out, bundle.maxRetransmits);
    putI32(out, bundle.tcpConnectAttempts);
    putI64(out, bundle.retransmitBackoffMicros);
    putU64(out, bundle.tcpMaxBacklogBytes);
    putU8(out, bundle.truncated ? 1 : 0);
    putU64(out, bundle.droppedEvents);
    putBlob(out, bundle.events);
    putU32(out, static_cast<std::uint32_t>(bundle.spans.size()));
    for (const Span& span : bundle.spans) putSpan(out, span);
    return out;
}

PostmortemBundle decodeBundle(const Bytes& encoded) {
    Reader in(encoded.data(), encoded.size());
    if (in.remaining() < 6 || in.u32() != kBundleMagic) {
        throw SpecError(errc::ErrorCode::SpecViolation,
                        "postmortem bundle: bad magic (not a bundle file?)");
    }
    PostmortemBundle bundle;
    bundle.version = in.u16();
    if (bundle.version != kBundleVersion) {
        throw SpecError(errc::ErrorCode::SpecViolation,
                        "postmortem bundle: unsupported version " +
                            std::to_string(bundle.version));
    }
    bundle.bridge = in.str();
    bundle.caseSlug = in.str();
    bundle.bridgeHost = in.str();
    bundle.shard = in.i32();
    bundle.sessionOrdinal = in.u64();
    bundle.sessionSeed = in.u64();
    bundle.retrySeed = in.u64();
    bundle.retryDraws = in.u64();
    bundle.modelIdentity = in.u64();
    bundle.abortCode = in.i32();
    bundle.cause = in.u8();
    bundle.processingDelayUs = in.i64();
    bundle.sessionTimeoutUs = in.i64();
    bundle.receiveTimeoutUs = in.i64();
    bundle.retransmitJitterUs = in.i64();
    bundle.idleTimeoutUs = in.i64();
    bundle.tcpConnectRetryDelayUs = in.i64();
    bundle.tcpConnectRetryMaxDelayUs = in.i64();
    bundle.maxRetransmits = in.i32();
    bundle.tcpConnectAttempts = in.i32();
    bundle.retransmitBackoffMicros = in.i64();
    bundle.tcpMaxBacklogBytes = in.u64();
    bundle.truncated = in.u8() != 0;
    bundle.droppedEvents = in.u64();
    bundle.events = in.blob();
    const std::uint32_t spanCount = in.u32();
    bundle.spans.reserve(spanCount);
    for (std::uint32_t i = 0; i < spanCount; ++i) bundle.spans.push_back(getSpan(in));
    if (!in.done()) {
        throw SpecError(errc::ErrorCode::SpecViolation,
                        "postmortem bundle: trailing bytes after the span table");
    }
    return bundle;
}

// ---------------------------------------------------------------------------
// PostmortemSpool

PostmortemSpool::PostmortemSpool(Options options) : options_(std::move(options)) {}

std::string PostmortemSpool::write(const PostmortemBundle& bundle) {
    std::scoped_lock lock(mutex_);
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options_.directory, ec);
    if (ec) {
        STARLINK_LOG(Warn, "recorder") << "postmortem spool: cannot create '"
                                       << options_.directory << "': " << ec.message();
        return {};
    }
    // Stable, sortable, collision-free names: sequence + bridge + code.
    std::string bridge = bundle.bridge.empty() ? "bridge" : bundle.bridge;
    for (char& c : bridge) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_')) c = '_';
    }
    char seqText[16];
    std::snprintf(seqText, sizeof(seqText), "%06llu",
                  static_cast<unsigned long long>(++seq_));
    const fs::path path = fs::path(options_.directory) /
                          ("pm-" + std::string(seqText) + "-" + bridge + "-" +
                           std::to_string(bundle.abortCode) + ".slfr");
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) {
            STARLINK_LOG(Warn, "recorder") << "postmortem spool: cannot write "
                                           << path.string();
            --seq_;
            return {};
        }
        const Bytes encoded = encodeBundle(bundle);
        out.write(reinterpret_cast<const char*>(encoded.data()),
                  static_cast<std::streamsize>(encoded.size()));
    }
    files_.push_back(path.string());
    while (options_.maxBundles != 0 && files_.size() > options_.maxBundles) {
        fs::remove(files_.front(), ec);  // best-effort; the cap is advisory
        files_.pop_front();
    }
    return path.string();
}

std::uint64_t PostmortemSpool::written() const {
    std::scoped_lock lock(mutex_);
    return seq_;
}

std::vector<std::string> PostmortemSpool::files() const {
    std::scoped_lock lock(mutex_);
    return {files_.begin(), files_.end()};
}

}  // namespace starlink::telemetry
