// Structured spans: per-session trees over the bridge pipeline.
//
// Every bridged conversation becomes a span tree rooted at a "session" span,
// with child legs covering where its time goes: receive-wait (blocked on a
// peer), parse, translate (the virtual-time interpretation window, with
// translation-logic / compose / send children), retransmit, tcp-connect.
// Spans carry BOTH timebases the reproduction runs on:
//
//   start/end  -- virtual time. Session legs tile the translation window, so
//                 per-leg durations sum to SessionRecord::translationTime.
//   wallNs     -- real CPU nanoseconds of the leg body, for the legs that are
//                 instantaneous in virtual time (parse, compose). This is the
//                 cost the paper's Fig 12(b) attributes to runtime
//                 interpretation.
//
// Completed spans land in a bounded per-engine SpanBuffer (a ring: when full,
// the oldest span is evicted and counted in dropped()), so a long-running
// bridge keeps a sliding window of recent sessions without growing without
// bound. Everything here is single-threaded by design -- spans are recorded
// from inside the event loop that drives the engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/clock.hpp"

namespace starlink::telemetry {

using SpanId = std::uint64_t;

struct SpanAttr {
    std::string key;
    std::string value;
};

struct Span {
    SpanId id = 0;
    /// 0 = a root span (no parent in the buffer).
    SpanId parent = 0;
    /// 1-based session ordinal; aligns with AutomataEngine::sessions() index
    /// + 1. 0 for spans recorded outside any session.
    std::uint64_t session = 0;
    std::string name;
    net::TimePoint start{};
    net::TimePoint end{};
    /// Wall-clock cost of the leg body; 0 when not measured.
    std::uint64_t wallNs = 0;
    std::vector<SpanAttr> attrs;

    net::Duration duration() const {
        return std::chrono::duration_cast<net::Duration>(end - start);
    }
    const std::string* attr(const std::string& key) const {
        for (const auto& a : attrs) {
            if (a.key == key) return &a.value;
        }
        return nullptr;
    }
};

/// Bounded ring of completed spans, oldest-first iteration. capacity == 0
/// disables recording entirely (push becomes a drop).
class SpanBuffer {
public:
    explicit SpanBuffer(std::size_t capacity = 4096) : capacity_(capacity) {
        ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
    }

    void push(Span span);

    std::size_t size() const { return ring_.size(); }
    std::size_t capacity() const { return capacity_; }
    /// Spans evicted (ring full) or rejected (capacity 0) since construction.
    std::uint64_t dropped() const { return dropped_; }
    void clear();

    /// Copies the retained spans out in record order (oldest first).
    std::vector<Span> snapshot() const;

private:
    std::size_t capacity_;
    std::vector<Span> ring_;
    std::size_t head_ = 0;  // index of the oldest span once the ring wrapped
    std::uint64_t dropped_ = 0;
};

/// Builds one session's span tree and pushes completed spans into a
/// SpanBuffer. Open spans live here; a span reaches the buffer when ended.
/// begin() with parent 0 hangs the span off the session root (or records a
/// free-standing root when no session is open -- network-engine legs can
/// outlive the automata engine's notion of a session).
class SessionTracer {
public:
    explicit SessionTracer(SpanBuffer& buffer) : buffer_(&buffer) {}

    bool enabled() const { return buffer_->capacity() > 0; }
    bool inSession() const { return root_ != 0; }
    SpanId sessionSpan() const { return root_; }
    std::uint64_t sessionOrdinal() const { return session_; }

    /// Opens the session root span; returns its id (0 when disabled).
    SpanId beginSession(net::TimePoint now);
    /// Opens a leg. parent == 0 attaches to the session root.
    SpanId begin(std::string name, net::TimePoint now, SpanId parent = 0);
    /// Records a zero-virtual-duration leg (parse, retransmit, send bodies).
    SpanId instant(std::string name, net::TimePoint now, std::uint64_t wallNs = 0,
                   SpanId parent = 0);
    void attr(SpanId id, std::string key, std::string value);
    /// Ends a leg and commits it to the buffer. Unknown ids are ignored
    /// (the id may belong to a span force-closed at session end).
    void end(SpanId id, net::TimePoint now, std::uint64_t wallNs = 0);
    /// Ends the session root AND force-closes any legs still open (a wait
    /// interrupted by the watchdog, a tcp connect still in flight), clamping
    /// them to the session end time.
    void endSession(net::TimePoint now);

private:
    Span* find(SpanId id);
    void commit(Span span);

    SpanBuffer* buffer_;
    std::vector<Span> open_;
    SpanId nextId_ = 1;
    SpanId root_ = 0;
    std::uint64_t session_ = 0;
};

}  // namespace starlink::telemetry
