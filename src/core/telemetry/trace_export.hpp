// Exporters: Chrome trace_event JSON for a SpanBuffer.
//
// The produced JSON loads directly into chrome://tracing and Perfetto
// (https://ui.perfetto.dev). Mapping:
//
//   span virtual start  -> "ts"  (microseconds -- the virtual clock's native
//                                 resolution, so trace timestamps ARE virtual
//                                 time since the simulation epoch t=0)
//   span virtual length -> "dur" (complete event, ph "X")
//   session ordinal     -> "tid" (one track per bridged conversation)
//   attributes + wallNs -> "args" (wall-clock CPU cost appears as
//                                  args.wall_ns on legs that are
//                                  instantaneous in virtual time)
//
// The Prometheus exposition lives on MetricsRegistry::renderPrometheus().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/telemetry/span.hpp"

namespace starlink::telemetry {

/// Renders spans as one self-contained Chrome trace JSON document
/// ({"displayTimeUnit": "ms", "traceEvents": [...]}). The vector overload is
/// for spans merged from several engines (the shard driver, a postmortem
/// bundle); ids/session ordinals must already be unique across the input.
std::string toChromeTrace(const std::vector<Span>& spans,
                          const std::string& processName = "starlink-bridge");
std::string toChromeTrace(const SpanBuffer& spans,
                          const std::string& processName = "starlink-bridge");

void writeChromeTrace(const SpanBuffer& spans, std::ostream& out,
                      const std::string& processName = "starlink-bridge");

}  // namespace starlink::telemetry
