#include "core/telemetry/trace_export.hpp"

#include <cstdio>
#include <ostream>
#include <set>
#include <sstream>

namespace starlink::telemetry {

namespace {

void appendEscaped(std::string& out, const std::string& text) {
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

std::string quoted(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    appendEscaped(out, text);
    out += '"';
    return out;
}

}  // namespace

std::string toChromeTrace(const std::vector<Span>& snapshot, const std::string& processName) {
    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    auto comma = [&] {
        if (!first) out << ",\n";
        first = false;
    };

    comma();
    out << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":"
        << quoted(processName) << "}}";

    std::set<std::uint64_t> sessions;
    for (const auto& span : snapshot) sessions.insert(span.session);
    for (const std::uint64_t session : sessions) {
        comma();
        out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << session
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\"session " << session << "\"}}";
    }

    for (const auto& span : snapshot) {
        comma();
        const auto ts = span.start.time_since_epoch().count();   // virtual us
        const auto dur = (span.end - span.start).count();        // virtual us
        out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << span.session << ",\"name\":"
            << quoted(span.name) << ",\"cat\":\"bridge\",\"ts\":" << ts << ",\"dur\":" << dur
            << ",\"args\":{\"span_id\":" << span.id << ",\"parent_id\":" << span.parent;
        if (span.wallNs != 0) out << ",\"wall_ns\":" << span.wallNs;
        for (const auto& attr : span.attrs) {
            out << ',' << quoted(attr.key) << ':' << quoted(attr.value);
        }
        out << "}}";
    }
    out << "\n]}\n";
    return out.str();
}

std::string toChromeTrace(const SpanBuffer& spans, const std::string& processName) {
    return toChromeTrace(spans.snapshot(), processName);
}

void writeChromeTrace(const SpanBuffer& spans, std::ostream& out,
                      const std::string& processName) {
    out << toChromeTrace(spans, processName);
}

}  // namespace starlink::telemetry
