// Process-wide metrics registry: counters, gauges, fixed-bucket histograms.
//
// The paper's evaluation is one end-to-end timing claim (Fig 12); steering
// further performance work needs visibility INSIDE the parse -> translate ->
// compose -> network pipeline. This registry is the aggregation half of that
// measurement layer (the per-session half is span.hpp).
//
// Hot-path discipline: callers resolve a Counter*/Gauge*/Histogram* ONCE
// (registration takes a mutex, references stay stable for the registry's
// lifetime) and then record through relaxed atomics -- the record path is
// lock-free and allocation-free. Instrumentation woven into the codec hot
// paths is additionally gated by the single process-wide telemetry flag
// (enabled(), default off), so a build with telemetry compiled in costs one
// relaxed load and a predicted branch per operation when observability is
// not requested.
//
// Timebase: the registry itself never reads a clock. Callers observe
// durations in whatever timebase fits the metric -- virtual-time
// milliseconds for session legs, wall nanoseconds for parse/compose CPU
// cost -- and the Prometheus exposition can stamp the snapshot with the
// simulation's virtual time (renderPrometheus(virtualTimeUs)).
//
// Metric names follow Prometheus conventions; labels are baked into the
// registered name ("starlink_codec_parse_ns{protocol=\"slp\",path=\"plan\"}",
// see labeled()) so the hot path never formats strings.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace starlink::telemetry {

namespace detail {
extern std::atomic<bool> gEnabled;
}  // namespace detail

/// Process-wide switch for metric recording (spans are gated per engine via
/// EngineOptions::spanCapacity instead). Default off: benchmarks and tests
/// that do not ask for observability pay only the flag check, inlined here so
/// the disabled fast path is a single relaxed load -- no cross-TU call.
inline bool enabled() { return detail::gEnabled.load(std::memory_order_relaxed); }
void setEnabled(bool on);

/// Builds "name{k1=\"v1\",k2=\"v2\"}". Label values are escaped for the
/// Prometheus exposition (backslash, quote, newline).
std::string labeled(std::string_view name,
                    std::initializer_list<std::pair<std::string_view, std::string_view>> labels);

class Counter {
public:
    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

class Gauge {
public:
    void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: bucket i counts
/// observations <= bounds[i]; one implicit +Inf bucket catches the rest.
/// observe() is lock-free (one relaxed fetch_add per bucket/count, a CAS
/// loop for the double-valued sum).
class Histogram {
public:
    /// `bounds` must be non-empty and strictly increasing.
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    const std::vector<double>& bounds() const { return bounds_; }
    /// Per-bucket counts, bounds().size() + 1 entries (last is +Inf).
    std::vector<std::uint64_t> bucketCounts() const;

    /// Adds another histogram's observations into this one. Throws
    /// std::invalid_argument when the bucket bounds differ.
    void merge(const Histogram& other);

private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// Named metric store. Registration is mutex-guarded and idempotent (same
/// name returns the same instance); returned pointers stay valid for the
/// registry's lifetime, so callers cache them once and record lock-free.
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// The process-wide registry every subsystem records into.
    static MetricsRegistry& global();

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    /// Re-registering an existing histogram name with different bounds
    /// throws std::invalid_argument.
    Histogram& histogram(const std::string& name, std::vector<double> bounds);

    /// Prometheus text exposition (families grouped, histograms expanded to
    /// _bucket/_sum/_count). When `virtualTimeUs` is given the snapshot is
    /// stamped with the simulation clock as starlink_virtual_time_us.
    std::string renderPrometheus(std::optional<std::int64_t> virtualTimeUs = std::nullopt) const;

    /// Adds every metric of `other` into this registry, creating missing
    /// entries on the fly (histograms are created with the other's bounds;
    /// merging histograms registered under the same name with different
    /// bounds throws std::invalid_argument). This is the aggregation step of
    /// the sharded engine: each shard records into a private registry with no
    /// cross-thread traffic, and an exporter folds the shards together after
    /// (or during) the run. Safe against concurrent recording on either side;
    /// in-flight observations land in whichever snapshot comes next.
    void mergeFrom(const MetricsRegistry& other);

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// -- wall-clock helpers for nanosecond leg costs ----------------------------
//
// The virtual clock never advances during parse/translate/compose (they are
// instantaneous in simulation time); their real CPU cost is measured on the
// steady clock and reported in nanoseconds.

std::uint64_t wallNowNs();
inline std::uint64_t wallSinceNs(std::uint64_t startNs) { return wallNowNs() - startNs; }

}  // namespace starlink::telemetry
