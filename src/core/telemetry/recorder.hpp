// Flight recorder: wire-level capture of one bridge session at a time.
//
// Metrics aggregate and span trees summarize, but neither can REPRODUCE a
// failed translation: for that you need the exact datagrams, their arrival
// order in virtual time, and the automaton path the engine walked. The
// recorder captures every session's wire-level events -- rx/tx payloads with
// color and endpoints, tcp connect outcomes, transport faults, automaton
// transitions, translation steps and the terminal ErrorCode -- into a
// compact length-prefixed binary log.
//
// Cost model mirrors the span layer: default-off (EngineOptions::
// recorderSessionBytes == 0 records nothing), and when on, each event is one
// bounded encode into a reused scratch buffer plus an append into chunked
// storage whose chunks are retained across sessions (the RxArena idiom), so
// steady-state recording allocates nothing. A per-session byte cap bounds
// pathological sessions: past it, payload events are dropped and counted,
// and the log is marked truncated (a truncated bundle refuses replay).
//
// On session abort the engine wraps the log into a PostmortemBundle --
// events + span tree + seeds + model-set identity + shard id -- and hands it
// to a capped on-disk PostmortemSpool. `starlinkd postmortem` pretty-prints
// a bundle; `starlinkd replay` re-injects its datagrams into a fresh island
// and asserts bit-identical reproduction (core/bridge/replay.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace starlink::telemetry {

struct Span;

/// One recorded wire-level event, decoded form. Which fields are meaningful
/// depends on `kind` (unused ones stay defaulted).
struct WireEvent {
    enum class Kind : std::uint8_t {
        Rx = 1,          ///< datagram/chunk ACCEPTED by the engine (color, from, to, payload)
        Tx = 2,          ///< payload the engine put on the wire (color, payload)
        TcpConnect = 3,  ///< terminal connect outcome (color, target, outcome, attempts)
        Transition = 4,  ///< automaton step (component, from, to, action, messageType)
        Translate = 5,   ///< translation-logic step (state, messageType)
        Fault = 6,       ///< transport fault surfaced in-session (color, fault, detail)
        SessionEnd = 7,  ///< terminal record (code, cause, completed, counters)
    };
    /// Transition::action values.
    enum : std::uint8_t { kActionReceive = 0, kActionSend = 1, kActionDelta = 2 };
    /// TcpConnect::outcome values.
    enum : std::uint8_t { kConnectRefused = 0, kConnectConnected = 1 };
    /// Fault::fault values (mirrors engine::NetworkFault).
    enum : std::uint8_t { kFaultConnectRefused = 0, kFaultPeerClosed = 1 };

    Kind kind = Kind::Rx;
    std::int64_t tsUs = 0;  ///< virtual microseconds since the island epoch

    std::uint64_t color = 0;                     // Rx, Tx, TcpConnect, Fault
    std::string from;                            // Rx sender; TcpConnect target; Fault detail
    std::string to;                              // Rx local endpoint ("" for tcp client colors)
    Bytes payload;                               // Rx, Tx
    std::string component, state, messageType;   // Transition (component,from=state), Translate
    std::string stateTo;                         // Transition target state
    std::uint8_t action = 0;                     // Transition action / TcpConnect outcome / Fault kind
    std::int32_t attempts = 0;                   // TcpConnect

    std::int32_t code = 0;                       // SessionEnd: signed taxonomy code
    std::uint8_t cause = 0;                      // SessionEnd: FailureCause ordinal
    bool completed = false;                      // SessionEnd
    std::uint32_t messagesIn = 0, messagesOut = 0, retransmits = 0;  // SessionEnd
};

/// Decodes a length-prefixed event log (FlightRecorder::SessionLog::events).
/// Throws SpecError(SpecViolation) on any malformed input.
std::vector<WireEvent> decodeEvents(const Bytes& encoded);

class FlightRecorder {
public:
    /// One finished session's captured log, as kept in the recent-session
    /// ring. `events` is the encoded form; decodeEvents() inflates it.
    struct SessionLog {
        std::uint64_t ordinal = 0;
        bool truncated = false;
        std::uint64_t droppedEvents = 0;
        Bytes events;
    };

    /// sessionCapBytes == 0 disables the recorder entirely; every record*
    /// call is then a single branch.
    explicit FlightRecorder(std::size_t sessionCapBytes = 0,
                            std::size_t ringSessions = kDefaultRingSessions)
        : cap_(sessionCapBytes), ringCapacity_(ringSessions) {}

    bool enabled() const { return cap_ != 0; }
    bool inSession() const { return sessionOpen_; }
    std::size_t sessionCapBytes() const { return cap_; }

    void beginSession(std::uint64_t ordinal, std::int64_t tsUs);
    void recordRx(std::int64_t tsUs, std::uint64_t color, const std::string& from,
                  const std::string& to, const Bytes& payload);
    void recordTx(std::int64_t tsUs, std::uint64_t color, const Bytes& payload);
    void recordConnect(std::int64_t tsUs, std::uint64_t color, const std::string& target,
                       std::uint8_t outcome, std::int32_t attempts);
    void recordTransition(std::int64_t tsUs, const std::string& component,
                          const std::string& from, const std::string& to, std::uint8_t action,
                          const std::string& messageType);
    void recordTranslate(std::int64_t tsUs, const std::string& state,
                         const std::string& messageType);
    void recordFault(std::int64_t tsUs, std::uint64_t color, std::uint8_t fault,
                     const std::string& detail);
    /// Closes the session log (the SessionEnd event bypasses the byte cap so
    /// every log carries its terminal record) and rotates it into the ring.
    void endSession(std::int64_t tsUs, std::int32_t code, std::uint8_t cause, bool completed,
                    std::uint32_t messagesIn, std::uint32_t messagesOut,
                    std::uint32_t retransmits);

    /// Recently finished sessions, oldest first (bounded ring).
    const std::deque<SessionLog>& recent() const { return recent_; }
    /// The most recently finished session, nullptr before the first one ends.
    const SessionLog* last() const { return recent_.empty() ? nullptr : &recent_.back(); }

    /// Chunk memory currently held (retained across sessions, like RxArena).
    std::size_t bytesReserved() const { return chunks_.size() * kChunkBytes; }
    std::size_t chunkCount() const { return chunks_.size(); }

    static constexpr std::size_t kDefaultRingSessions = 4;

private:
    static constexpr std::size_t kChunkBytes = 16 * 1024;

    void appendScratch();      // scratch_ -> chunked log, cap-checked
    void appendUnconditional();  // scratch_ -> chunked log, no cap (SessionEnd)
    Bytes copyLog() const;

    std::size_t cap_;
    std::size_t ringCapacity_;

    // Chunked byte log of the CURRENT session. Chunks are retained across
    // sessions; used_ rewinds at each beginSession.
    std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
    std::size_t used_ = 0;

    Bytes scratch_;  // per-event encode buffer, reused
    bool sessionOpen_ = false;
    std::uint64_t ordinal_ = 0;
    bool truncated_ = false;
    std::uint64_t droppedEvents_ = 0;
    std::deque<SessionLog> recent_;
};

/// Everything needed to understand -- and deterministically re-run -- one
/// aborted session: the event log plus its provenance (seeds, model-set
/// identity, the engine options that shaped its timers) and span tree.
struct PostmortemBundle {
    std::uint16_t version = 1;
    std::string bridge;     ///< merged-automaton name (the `bridge` metric label)
    std::string caseSlug;   ///< models::caseSlug when deployed via forCase, else ""
    std::string bridgeHost; ///< host the bridge was deployed at
    std::int32_t shard = 0;
    std::uint64_t sessionOrdinal = 0;
    std::uint64_t sessionSeed = 0;  ///< driver-derived session seed (provenance)
    std::uint64_t retrySeed = 0;    ///< jitter rng seed in effect at session start
    std::uint64_t retryDraws = 0;   ///< jitter draws burned before session start
    std::uint64_t modelIdentity = 0;
    std::int32_t abortCode = 0;     ///< signed taxonomy code (never 0 in a bundle)
    std::uint8_t cause = 0;         ///< engine::FailureCause ordinal

    // The EngineOptions subset every session timer derives from.
    std::int64_t processingDelayUs = 0;
    std::int64_t sessionTimeoutUs = 0;
    std::int64_t receiveTimeoutUs = 0;
    std::int64_t retransmitJitterUs = 0;
    std::int64_t idleTimeoutUs = 0;
    std::int64_t tcpConnectRetryDelayUs = 0;
    std::int64_t tcpConnectRetryMaxDelayUs = 0;
    std::int32_t maxRetransmits = 0;
    std::int32_t tcpConnectAttempts = 0;
    /// Backoff multiplier in fixed-point millionths (doubles don't round-trip
    /// text; a micro-unit integer does, bit for bit).
    std::int64_t retransmitBackoffMicros = 0;
    std::uint64_t tcpMaxBacklogBytes = 0;

    bool truncated = false;
    std::uint64_t droppedEvents = 0;
    Bytes events;                         ///< encoded wire-event log
    std::vector<Span> spans;              ///< this session's span tree (may be empty)
};

Bytes encodeBundle(const PostmortemBundle& bundle);
/// Throws SpecError(SpecViolation) on bad magic/version/structure.
PostmortemBundle decodeBundle(const Bytes& encoded);

/// Capped on-disk spool of postmortem bundles. Shared across shards (writes
/// are mutex-guarded and happen only on session abort, off the hot path).
/// Past `maxBundles` the oldest file THIS spool wrote is deleted first.
class PostmortemSpool {
public:
    struct Options {
        std::string directory;
        std::size_t maxBundles = 64;
    };

    explicit PostmortemSpool(Options options);

    /// Writes one bundle; returns its path, or "" when the filesystem
    /// refused (a full disk must not take the bridge down with it).
    std::string write(const PostmortemBundle& bundle);

    std::uint64_t written() const;
    /// Paths currently on disk from this spool, oldest first.
    std::vector<std::string> files() const;
    const std::string& directory() const { return options_.directory; }

private:
    mutable std::mutex mutex_;
    Options options_;
    std::uint64_t seq_ = 0;
    std::deque<std::string> files_;
};

}  // namespace starlink::telemetry
