#include "core/telemetry/metrics.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>

namespace starlink::telemetry {

namespace detail {
std::atomic<bool> gEnabled{false};
}  // namespace detail

namespace {
/// Splits "family{labels}" into its parts; `labels` keeps the braces' inner
/// text ("" when the name carries none).
void splitName(const std::string& name, std::string& family, std::string& labels) {
    const auto brace = name.find('{');
    if (brace == std::string::npos) {
        family = name;
        labels.clear();
        return;
    }
    family = name.substr(0, brace);
    const auto close = name.rfind('}');
    labels = name.substr(brace + 1, close == std::string::npos ? std::string::npos
                                                               : close - brace - 1);
}

std::string formatDouble(double v) {
    std::ostringstream out;
    out << v;
    return out.str();
}
}  // namespace

void setEnabled(bool on) { detail::gEnabled.store(on, std::memory_order_relaxed); }

std::string labeled(std::string_view name,
                    std::initializer_list<std::pair<std::string_view, std::string_view>> labels) {
    std::string out(name);
    if (labels.size() == 0) return out;
    out += '{';
    bool first = true;
    for (const auto& [key, value] : labels) {
        if (!first) out += ',';
        first = false;
        out += key;
        out += "=\"";
        for (const char c : value) {
            switch (c) {
                case '\\': out += "\\\\"; break;
                case '"': out += "\\\""; break;
                case '\n': out += "\\n"; break;
                default: out += c;
            }
        }
        out += '"';
    }
    out += '}';
    return out;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
    if (bounds_.empty()) throw std::invalid_argument("histogram: no bucket bounds");
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        if (bounds_[i] <= bounds_[i - 1]) {
            throw std::invalid_argument("histogram: bounds must be strictly increasing");
        }
    }
}

void Histogram::observe(double v) {
    std::size_t bucket = bounds_.size();  // +Inf
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (v <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double current = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(current, current + v, std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
    std::vector<std::uint64_t> out(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
}

void Histogram::merge(const Histogram& other) {
    if (other.bounds_ != bounds_) {
        throw std::invalid_argument("histogram merge: bucket bounds differ");
    }
    const auto counts = other.bucketCounts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
        buckets_[i].fetch_add(counts[i], std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    const double add = other.sum();
    double current = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(current, current + add, std::memory_order_relaxed)) {
    }
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    std::lock_guard lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    std::lock_guard lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
    std::lock_guard lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<Histogram>(std::move(bounds));
    } else if (slot->bounds() != bounds) {
        throw std::invalid_argument("histogram '" + name + "' re-registered with different bounds");
    }
    return *slot;
}

void MetricsRegistry::mergeFrom(const MetricsRegistry& other) {
    if (&other == this) return;
    std::scoped_lock lock(mutex_, other.mutex_);
    for (const auto& [name, counter] : other.counters_) {
        auto& slot = counters_[name];
        if (!slot) slot = std::make_unique<Counter>();
        slot->add(counter->value());
    }
    for (const auto& [name, gauge] : other.gauges_) {
        auto& slot = gauges_[name];
        if (!slot) slot = std::make_unique<Gauge>();
        slot->add(gauge->value());
    }
    for (const auto& [name, histogram] : other.histograms_) {
        auto& slot = histograms_[name];
        if (!slot) slot = std::make_unique<Histogram>(histogram->bounds());
        slot->merge(*histogram);
    }
}

std::string MetricsRegistry::renderPrometheus(std::optional<std::int64_t> virtualTimeUs) const {
    std::lock_guard lock(mutex_);
    std::ostringstream out;
    if (virtualTimeUs) {
        out << "# TYPE starlink_virtual_time_us gauge\n"
            << "starlink_virtual_time_us " << *virtualTimeUs << "\n";
    }

    std::string family, labels, lastFamily;
    auto typeLine = [&](const std::string& name, const char* kind) {
        splitName(name, family, labels);
        if (family != lastFamily) {
            out << "# TYPE " << family << ' ' << kind << '\n';
            lastFamily = family;
        }
    };

    for (const auto& [name, counter] : counters_) {
        typeLine(name, "counter");
        out << name << ' ' << counter->value() << '\n';
    }
    for (const auto& [name, gauge] : gauges_) {
        typeLine(name, "gauge");
        out << name << ' ' << gauge->value() << '\n';
    }
    for (const auto& [name, histogram] : histograms_) {
        typeLine(name, "histogram");
        // `le` composes with any labels baked into the registered name.
        auto bucketLine = [&](const std::string& le, std::uint64_t cumulative) {
            out << family << "_bucket{";
            if (!labels.empty()) out << labels << ',';
            out << "le=\"" << le << "\"} " << cumulative << '\n';
        };
        const auto counts = histogram->bucketCounts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < histogram->bounds().size(); ++i) {
            cumulative += counts[i];
            bucketLine(formatDouble(histogram->bounds()[i]), cumulative);
        }
        cumulative += counts.back();
        bucketLine("+Inf", cumulative);
        out << family << "_sum" << (labels.empty() ? "" : "{" + labels + "}") << ' '
            << formatDouble(histogram->sum()) << '\n';
        out << family << "_count" << (labels.empty() ? "" : "{" + labels + "}") << ' '
            << histogram->count() << '\n';
    }
    return out.str();
}

std::uint64_t wallNowNs() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now().time_since_epoch())
                                          .count());
}

}  // namespace starlink::telemetry
