#include "core/telemetry/span.hpp"

#include <algorithm>

namespace starlink::telemetry {

void SpanBuffer::push(Span span) {
    if (capacity_ == 0) {
        ++dropped_;
        return;
    }
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(span));
        return;
    }
    // Full: overwrite the oldest.
    ring_[head_] = std::move(span);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
}

void SpanBuffer::clear() {
    ring_.clear();
    head_ = 0;
}

std::vector<Span> SpanBuffer::snapshot() const {
    std::vector<Span> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
}

SpanId SessionTracer::beginSession(net::TimePoint now) {
    if (!enabled()) return 0;
    ++session_;
    Span span;
    span.id = nextId_++;
    span.session = session_;
    span.name = "session";
    span.start = now;
    root_ = span.id;
    open_.push_back(std::move(span));
    return root_;
}

SpanId SessionTracer::begin(std::string name, net::TimePoint now, SpanId parent) {
    if (!enabled()) return 0;
    Span span;
    span.id = nextId_++;
    span.parent = parent != 0 ? parent : root_;
    span.session = session_;
    span.name = std::move(name);
    span.start = now;
    open_.push_back(std::move(span));
    return open_.back().id;
}

SpanId SessionTracer::instant(std::string name, net::TimePoint now, std::uint64_t wallNs,
                              SpanId parent) {
    if (!enabled()) return 0;
    Span span;
    span.id = nextId_++;
    span.parent = parent != 0 ? parent : root_;
    span.session = session_;
    span.name = std::move(name);
    span.start = now;
    span.end = now;
    span.wallNs = wallNs;
    const SpanId id = span.id;
    commit(std::move(span));
    return id;
}

Span* SessionTracer::find(SpanId id) {
    for (auto& span : open_) {
        if (span.id == id) return &span;
    }
    return nullptr;
}

void SessionTracer::attr(SpanId id, std::string key, std::string value) {
    if (Span* span = find(id)) {
        span->attrs.push_back({std::move(key), std::move(value)});
    }
}

void SessionTracer::end(SpanId id, net::TimePoint now, std::uint64_t wallNs) {
    if (id == 0) return;
    const auto it = std::find_if(open_.begin(), open_.end(),
                                 [id](const Span& span) { return span.id == id; });
    if (it == open_.end()) return;
    Span span = std::move(*it);
    open_.erase(it);
    span.end = now;
    span.wallNs = wallNs;
    commit(std::move(span));
}

void SessionTracer::endSession(net::TimePoint now) {
    if (root_ == 0) return;
    // Commit stragglers first so the root lands last (exporters do not care,
    // but a truncated buffer then favours keeping the root).
    std::vector<Span> stragglers;
    stragglers.swap(open_);
    Span rootSpan;
    bool haveRoot = false;
    for (auto& span : stragglers) {
        span.end = now;
        if (span.id == root_) {
            rootSpan = std::move(span);
            haveRoot = true;
        } else {
            span.attrs.push_back({"truncated", "session-end"});
            commit(std::move(span));
        }
    }
    if (haveRoot) commit(std::move(rootSpan));
    root_ = 0;
}

void SessionTracer::commit(Span span) { buffer_->push(std::move(span)); }

}  // namespace starlink::telemetry
