#include "core/engine/shard_engine.hpp"

#include <optional>
#include <stdexcept>
#include <thread>

#include "common/log.hpp"
#include "core/bridge/registry.hpp"
#include "core/bridge/starlink.hpp"
#include "net/scheduler.hpp"
#include "net/sim_network.hpp"
#include "protocols/mdns/mdns_agents.hpp"
#include "protocols/slp/slp_agents.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"

namespace starlink::engine {

using bridge::models::Case;

namespace {

/// One private simulation island: clock, scheduler, network, framework and a
/// deployed bridge for one direction, plus the per-session legacy agents.
/// Everything in here is owned by exactly one shard thread; nothing escapes.
struct Island {
    net::VirtualClock clock;
    net::EventScheduler scheduler{clock};
    std::unique_ptr<net::SimNetwork> network;
    std::unique_ptr<bridge::Starlink> starlink;
    bridge::DeployedBridge* bridge = nullptr;

    // Per-session agents; destroyed after every job so the next session
    // re-binds the same well-known ports from a clean slate.
    std::optional<slp::ServiceAgent> slpService;
    std::optional<mdns::Responder> mdnsService;
    std::optional<ssdp::Device> upnpService;
    std::optional<slp::UserAgent> slpClient;
    std::optional<mdns::Resolver> mdnsClient;
    std::optional<ssdp::ControlPoint> upnpClient;

    /// Monotone use stamp for the shard's island LRU (maxIslandsPerShard).
    std::uint64_t lastUsed = 0;
};

}  // namespace

/// Everything one worker thread owns. Jobs are placed here at submit() time
/// (before any thread exists); results/reports/spans are read by the
/// coordinator after join(). Thread creation and join order those accesses,
/// so the struct needs no locks.
struct ShardEngine::Shard {
    int index = 0;
    telemetry::MetricsRegistry registry;
    struct Pending {
        SessionJob job;
        std::size_t submitIndex = 0;
        /// The model-set generation pinned at submit() time (nullptr = no
        /// registry). The shared_ptr keeps the generation alive for the
        /// session even if the registry swaps or rolls back mid-run.
        std::shared_ptr<const bridge::ModelSet> pinned;
    };
    std::vector<Pending> queue;
    std::vector<std::pair<std::size_t, SessionResult>> results;
    std::vector<telemetry::Span> spans;
    ShardReport report;
    /// Pooled islands keyed by ((int)Case, model version): a swap deploys
    /// fresh islands for the new generation while sessions pinned to the old
    /// one keep their fully warmed islands -- per-shard swap, no pause.
    std::map<std::pair<int, std::uint64_t>, std::unique_ptr<Island>> islands;
    std::uint64_t useTick = 0;  // LRU clock for island eviction
    std::string error;  // first fatal error; empty == clean run
    // Island span snapshots are rebased into a shard-local id/session space
    // at harvest time (each island's tracer counts from 1), and shards are
    // rebased again into the global space at merge -- so the merged trace
    // has unique span ids and session ordinals, no dangling parents.
    std::uint64_t spanIdBase = 0;
    std::uint64_t sessionBase = 0;
};

ShardEngine::ShardEngine(ShardEngineOptions options) : options_(std::move(options)) {
    if (options_.shards < 1) throw std::invalid_argument("shard engine: shards must be >= 1");
    shards_.reserve(static_cast<std::size_t>(options_.shards));
    for (int i = 0; i < options_.shards; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->index = i;
        shard->report.shard = i;
        shards_.push_back(std::move(shard));
    }
}

ShardEngine::~ShardEngine() = default;

std::uint64_t ShardEngine::keyHash(const std::string& key) {
    std::uint64_t h = 14695981039346656037ULL;  // FNV-1a 64
    for (const unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t ShardEngine::deriveSeed(const std::string& key, std::uint64_t baseSeed) {
    // One SplitMix64 scramble so key hash and base seed mix into all bits.
    return Rng(keyHash(key) ^ (baseSeed * 0x9e3779b97f4a7c15ULL)).next();
}

int ShardEngine::shardFor(const std::string& key) const {
    return static_cast<int>(keyHash(key) % static_cast<std::uint64_t>(options_.shards));
}

bool ShardEngine::submit(SessionJob job) {
    if (ran_) throw std::logic_error("shard engine: submit after run");
    Shard& shard = *shards_[static_cast<std::size_t>(shardFor(job.key))];
    // Version pinning happens HERE, on the coordinator thread, before any
    // worker exists: the pinned generation is a pure function of the key and
    // the registry state at submit time, so an N-shard run pins exactly what
    // the 1-shard run pins (determinism contract).
    std::shared_ptr<const bridge::ModelSet> pinned;
    if (options_.registry != nullptr) pinned = options_.registry->pin(job.key);
    if (options_.maxPendingPerShard != 0 &&
        shard.queue.size() >= options_.maxPendingPerShard) {
        // Overload: refuse loudly with a coded result instead of queueing
        // without bound. Runs single-threaded (submit precedes run), so the
        // shard's registry and results slice are safe to touch here.
        ++shard.report.shed;
        shard.registry
            .counter(telemetry::labeled("starlink_engine_sessions_shed_total",
                                        {{"shard", std::to_string(shard.index)}}))
            .add();
        // Shed sessions never reach an engine, so account for them HERE the
        // way completeSession would have: a per-code abort count and (when
        // spans are on) a terminal session span -- 1-shard and N-shard runs
        // then report overload identically to sessions aborted in-engine.
        const char* slug = bridge::models::caseSlug(job.caseId);
        shard.registry
            .counter(telemetry::labeled(
                "starlink_engine_sessions_aborted_total",
                {{"bridge", slug},
                 {"code",
                  std::to_string(errc::to_error_code(errc::ErrorCode::EngineOverload))},
                 {"cause", errc::to_string(errc::ErrorCode::EngineOverload)}}))
            .add();
        if (options_.engine.spanCapacity > 0) {
            telemetry::Span span;
            span.id = 0;  // synthetic: a unique id is assigned at merge
            span.name = "session";
            span.attrs = {
                {"bridge", slug},
                {"result", "shed"},
                {"error_code",
                 std::to_string(errc::to_error_code(errc::ErrorCode::EngineOverload))},
                {"error_name", std::string(errc::to_string(errc::ErrorCode::EngineOverload))},
                {"messages_in", "0"},
                {"messages_out", "0"},
                {"retransmits", "0"},
                {"translation_us", "0"}};
            shard.spans.push_back(std::move(span));
        }
        SessionResult result;
        result.job = std::move(job);
        result.shard = shard.index;
        result.shed = true;
        result.error = errc::ErrorCode::EngineOverload;
        result.modelVersion = pinned ? pinned->version() : 0;
        shard.results.emplace_back(submitted_++, std::move(result));
        return false;
    }
    shard.queue.push_back({std::move(job), submitted_++, std::move(pinned)});
    return true;
}

const std::vector<SessionResult>& ShardEngine::run() {
    if (ran_) throw std::logic_error("shard engine: run called twice");
    ran_ = true;

    // One worker per shard. With a single shard, skip the thread and run
    // inline -- the sequential harnesses stay exactly that, and a debugger
    // sees one stack.
    if (options_.shards == 1) {
        runShard(*shards_[0]);
    } else {
        std::vector<std::thread> workers;
        workers.reserve(shards_.size());
        for (auto& shard : shards_) {
            workers.emplace_back([this, &shard] { runShard(*shard); });
        }
        for (std::thread& worker : workers) worker.join();
    }

    // Stitch per-shard slices back into submission order and surface the
    // merged artifacts. Single-threaded from here on. Span ids and session
    // ordinals -- already unique within a shard (harvest rebases per island)
    // -- are rebased once more into one global space, so the merged trace
    // never aliases two shards' sessions onto the same id.
    results_.resize(submitted_);
    std::uint64_t idBase = 0;
    std::uint64_t sessionBase = 0;
    std::vector<telemetry::Span> synthetic;
    for (auto& shard : shards_) {
        if (!shard->error.empty()) {
            throw std::runtime_error("shard " + std::to_string(shard->index) + ": " +
                                     shard->error);
        }
        for (auto& [submitIndex, result] : shard->results) {
            results_[submitIndex] = std::move(result);
        }
        reports_.push_back(shard->report);
        for (telemetry::Span& span : shard->spans) {
            if (span.id == 0) {  // synthetic shed span: numbered below
                synthetic.push_back(std::move(span));
                continue;
            }
            span.id += idBase;
            if (span.parent != 0) span.parent += idBase;
            if (span.session != 0) span.session += sessionBase;
            spans_.push_back(std::move(span));
        }
        idBase += shard->spanIdBase;
        sessionBase += shard->sessionBase;
        shard->spans.clear();
    }
    // Shed sessions' terminal spans (recorded with id 0 at submit time, no
    // engine behind them) get fresh ids and session ordinals past everything
    // real, so they show up as their own sessions in the merged trace.
    for (telemetry::Span& span : synthetic) {
        span.id = ++idBase;
        span.session = ++sessionBase;
        spans_.push_back(std::move(span));
    }
    return results_;
}

net::Duration ShardEngine::makespan() const {
    net::Duration worst = net::us(0);
    for (const ShardReport& report : reports_) worst = std::max(worst, report.busyVirtual);
    return worst;
}

double ShardEngine::virtualSessionsPerSecond() const {
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(makespan()).count();
    if (seconds <= 0) return 0;
    std::size_t completed = 0;
    for (const ShardReport& report : reports_) completed += report.completedSessions;
    return static_cast<double>(completed) / seconds;
}

void ShardEngine::mergeMetricsInto(telemetry::MetricsRegistry& target) const {
    for (const auto& shard : shards_) target.mergeFrom(shard->registry);
}

const telemetry::MetricsRegistry& ShardEngine::shardMetrics(int shard) const {
    return shards_.at(static_cast<std::size_t>(shard))->registry;
}

namespace {

void destroyAgents(Island& island) {
    island.slpClient.reset();
    island.mdnsClient.reset();
    island.upnpClient.reset();
    island.slpService.reset();
    island.mdnsService.reset();
    island.upnpService.reset();
}

}  // namespace

void ShardEngine::runShard(Shard& shard) {
    // Folds a retiring island's accounting into the shard report: virtual
    // time its clock consumed, and its engine's span snapshot. Used both by
    // the LRU eviction below and the end-of-run teardown.
    const auto harvest = [&shard](Island& island) {
        shard.report.busyVirtual += std::chrono::duration_cast<net::Duration>(
            island.clock.now() - net::TimePoint{});
        if (island.bridge != nullptr) {
            auto snapshot = island.bridge->engine().spans().snapshot();
            std::uint64_t maxId = 0;
            std::uint64_t maxSession = 0;
            for (telemetry::Span& span : snapshot) {
                maxId = std::max(maxId, span.id);
                maxSession = std::max(maxSession, span.session);
                span.id += shard.spanIdBase;
                if (span.parent != 0) span.parent += shard.spanIdBase;
                if (span.session != 0) span.session += shard.sessionBase;
            }
            shard.spanIdBase += maxId;
            shard.sessionBase += maxSession;
            shard.spans.insert(shard.spans.end(), snapshot.begin(), snapshot.end());
        }
    };

    try {
        for (const Shard::Pending& pending : shard.queue) {
            const SessionJob& job = pending.job;

            // Lazily deploy this direction's island. Deployment parses the
            // MDL/automata/bridge models and compiles codec plans once per
            // (shard, direction); sessions then reuse the island -- including
            // the engine's compose scratch buffer and codec plans -- until
            // the LRU cap (if any) retires it.
            const std::uint64_t pinnedVersion =
                pending.pinned ? pending.pinned->version() : 0;
            const std::pair<int, std::uint64_t> islandKey{static_cast<int>(job.caseId),
                                                          pinnedVersion};
            std::unique_ptr<Island>& slot = shard.islands[islandKey];
            if (!slot) {
                // Island LRU: past the cap, retire the stalest OTHER
                // (direction, version) pool (harvesting its accounting)
                // before deploying. Outcomes are island-history-independent,
                // so eviction is invisible to results -- and retired-version
                // islands age out of memory through exactly this path.
                if (options_.maxIslandsPerShard != 0 &&
                    shard.islands.size() > options_.maxIslandsPerShard) {
                    auto victim = shard.islands.end();
                    for (auto it = shard.islands.begin(); it != shard.islands.end(); ++it) {
                        if (it->second == nullptr || it->first == islandKey) continue;
                        if (victim == shard.islands.end() ||
                            it->second->lastUsed < victim->second->lastUsed) {
                            victim = it;
                        }
                    }
                    if (victim != shard.islands.end()) {
                        harvest(*victim->second);
                        shard.islands.erase(victim);
                        ++shard.report.islandsEvicted;
                    }
                }
                slot = std::make_unique<Island>();
                slot->network = std::make_unique<net::SimNetwork>(slot->scheduler);
                slot->starlink = std::make_unique<bridge::Starlink>(*slot->network);
                EngineOptions engineOptions = options_.engine;
                engineOptions.metrics = &shard.registry;
                engineOptions.shardId = shard.index;
                engineOptions.recorderCase = bridge::models::caseSlug(job.caseId);
                engineOptions.modelVersion = pinnedVersion;
                slot->bridge = &slot->starlink->deploy(
                    pending.pinned
                        ? pending.pinned->specFor(job.caseId)
                        : bridge::models::forCase(job.caseId, options_.bridgeHost),
                    options_.bridgeHost, engineOptions);
            }
            Island& island = *slot;
            island.lastUsed = ++shard.useTick;
            net::SimNetwork& network = *island.network;
            AutomataEngine& engine = island.bridge->engine();

            // Derandomise the island: every stochastic stream the session
            // touches is rewound to a value derived from the session seed
            // alone. Pool history cannot leak into this session's behaviour.
            const std::uint64_t seed =
                job.seed != 0 ? job.seed : deriveSeed(job.key, options_.baseSeed);
            Rng seeds(seed);
            network.reseed(seeds.next());
            engine.reseedRetry(seeds.next());
            engine.noteSessionSeed(seed);
            const std::uint64_t chaosSeed = seeds.next();
            const std::uint64_t serviceSeed = seeds.next();
            const std::uint64_t clientSeed = seeds.next();
            if (options_.chaos) {
                network.latency().lossProbability = options_.chaosLoss;
                // Episodes are generated over [0, horizon) and anchored at
                // the island's current virtual time.
                network.setFaultSchedule(
                    net::FaultSchedule::chaos(
                        chaosSeed, options_.chaosHorizon,
                        {options_.clientHost, options_.serviceHost, options_.bridgeHost})
                        .shiftedBy(network.now() - net::TimePoint{}));
            }

            // Freshly seeded legacy endpoints per session: agent-internal
            // state (rngs, xid counters, caches) never crosses sessions.
            destroyAgents(island);
            switch (job.caseId) {
                case Case::UpnpToSlp:
                case Case::BonjourToSlp: {
                    slp::ServiceAgent::Config config;
                    config.host = options_.serviceHost;
                    config.url = "service:printer://" + options_.serviceHost + ":515/queue1";
                    config.seed = serviceSeed;
                    island.slpService.emplace(network, config);
                    break;
                }
                case Case::SlpToBonjour:
                case Case::UpnpToBonjour: {
                    mdns::Responder::Config config;
                    config.host = options_.serviceHost;
                    config.url = "http://" + options_.serviceHost + ":631/ipp";
                    config.seed = serviceSeed;
                    island.mdnsService.emplace(network, config);
                    break;
                }
                case Case::SlpToUpnp:
                case Case::BonjourToUpnp: {
                    ssdp::Device::Config config;
                    config.host = options_.serviceHost;
                    config.serviceUrl = "http://" + options_.serviceHost + ":9090/print";
                    config.seed = serviceSeed;
                    island.upnpService.emplace(network, config);
                    break;
                }
            }

            // Collect outcomes through the completion callback: the engine's
            // history is a bounded ring now, so absolute indexing into
            // sessions() could miss records a busy island evicts.
            SessionResult result;
            result.job = job;
            result.job.seed = seed;
            result.shard = shard.index;
            result.modelVersion = pinnedVersion;
            engine.onSessionComplete = [&result, &shard](const SessionRecord& record) {
                SessionOutcome outcome;
                outcome.completed = record.completed;
                outcome.cause = record.cause;
                outcome.code = record.code;
                outcome.messagesIn = record.messagesIn;
                outcome.messagesOut = record.messagesOut;
                outcome.retransmits = record.retransmits;
                outcome.translationUs = record.translationTime().count();
                outcome.sessionUs = record.sessionTime().count();
                outcome.modelVersion = record.modelVersion;
                result.outcomes.push_back(outcome);
                ++shard.report.bridgeSessions;
                if (record.completed) ++shard.report.completedSessions;
            };
            bool discovered = false;
            switch (job.caseId) {
                case Case::SlpToUpnp:
                case Case::SlpToBonjour: {
                    slp::UserAgent::Config config;
                    config.host = options_.clientHost;
                    if (options_.chaos) {
                        config.timeout = options_.chaosClientTimeout;
                        config.retransmitInterval = options_.chaosClientRetransmit;
                    }
                    island.slpClient.emplace(network, config);
                    island.slpClient->lookup(
                        "service:printer", [&discovered](const slp::UserAgent::Result& r) {
                            discovered = !r.urls.empty();
                        });
                    break;
                }
                case Case::UpnpToSlp:
                case Case::UpnpToBonjour: {
                    ssdp::ControlPoint::Config config;
                    config.host = options_.clientHost;
                    config.seed = clientSeed;
                    if (options_.chaos) {
                        config.timeout = options_.chaosClientTimeout;
                        config.retransmitInterval = options_.chaosClientRetransmit;
                    }
                    island.upnpClient.emplace(network, config);
                    island.upnpClient->search(
                        "urn:schemas-upnp-org:service:printer:1",
                        [&discovered](const ssdp::ControlPoint::Result& r) {
                            discovered = !r.urls.empty();
                        });
                    break;
                }
                case Case::BonjourToUpnp:
                case Case::BonjourToSlp: {
                    mdns::Resolver::Config config;
                    config.host = options_.clientHost;
                    config.seed = clientSeed;
                    if (options_.chaos) {
                        config.timeout = options_.chaosClientTimeout;
                        config.retransmitInterval = options_.chaosClientRetransmit;
                    }
                    island.mdnsClient.emplace(network, config);
                    island.mdnsClient->browse("_printer._tcp.local",
                                              [&discovered](const mdns::Resolver::Result& r) {
                                                  discovered = !r.urls.empty();
                                              });
                    break;
                }
            }

            island.scheduler.runUntilIdle(options_.maxEventsPerSession);
            network.clearFaultSchedule();
            destroyAgents(island);
            engine.onSessionComplete = nullptr;

            // Feed the canary judge. noteSession is mutex-guarded; ordering
            // across shards is nondeterministic but irrelevant to THIS run's
            // outcomes (every pin already happened at submit time) -- only
            // future pins see a rollback/promotion.
            if (options_.registry != nullptr && pinnedVersion != 0) {
                for (const SessionOutcome& outcome : result.outcomes) {
                    options_.registry->noteSession(pinnedVersion, !outcome.completed,
                                                   outcome.code);
                }
            }

            result.discovered = discovered;
            if (discovered) ++shard.report.discovered;
            ++shard.report.jobs;
            shard.results.emplace_back(pending.submitIndex, std::move(result));
        }
    } catch (const std::exception& error) {
        shard.error = error.what();
    }

    // Post-run accounting, then island teardown ON THIS THREAD (each
    // framework uninstalls the thread-local log time source it installed).
    for (auto& [caseKey, island] : shard.islands) {
        if (island) harvest(*island);
    }
    shard.islands.clear();
}

}  // namespace starlink::engine
