#include "core/engine/network_engine.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace starlink::engine {

using automata::Color;

NetworkEngine::NetworkEngine(net::SimNetwork& network, std::string host)
    : network_(network), host_(std::move(host)) {}

void NetworkEngine::attach(std::uint64_t k, const Color& color, bool serverRole) {
    if (endpoints_.contains(k)) return;
    Endpoint endpoint;
    endpoint.color = color;
    endpoint.serverRole = serverRole;

    if (color.transport() == "tcp" && serverRole) {
        const auto port = color.port();
        if (!port) throw SpecError("network engine: tcp server color without a port");
        endpoint.listener = network_.listenTcp(host_, static_cast<std::uint16_t>(*port));
        endpoint.listener->onAccept([this, k](std::shared_ptr<net::TcpConnection> connection) {
            Endpoint& ep = endpoints_.at(k);
            ep.tcp = connection;  // reply path for this conversation
            const net::Address peer = connection->remoteAddress();
            connection->onData([this, k, peer](const Bytes& data) {
                if (handler_) handler_(k, data, peer);
            });
        });
    } else if (color.transport() == "udp") {
        const auto port = color.port();
        if (!port) throw SpecError("network engine: udp color without a port");
        endpoint.udp = network_.openUdp(host_, static_cast<std::uint16_t>(*port));
        if (color.isMulticast()) {
            endpoint.udp->joinGroup(
                net::Address{color.group(), static_cast<std::uint16_t>(*port)});
        }
        endpoint.udp->onDatagram([this, k](const Bytes& payload, const net::Address& from) {
            if (handler_) handler_(k, payload, from);
        });
    } else if (color.transport() != "tcp") {
        throw SpecError("network engine: unsupported transport '" + color.transport() + "'");
    }
    endpoints_.emplace(k, std::move(endpoint));
    STARLINK_LOG(Debug, "net-engine") << "attached color " << k << " ("
                                      << endpoints_.at(k).color.canonicalKey() << ")";
}

void NetworkEngine::send(std::uint64_t k, const Bytes& payload) {
    const auto it = endpoints_.find(k);
    if (it == endpoints_.end()) {
        throw SpecError("network engine: send on unattached color " + std::to_string(k));
    }
    Endpoint& endpoint = it->second;
    const Color& color = endpoint.color;

    if (color.transport() == "udp") {
        if (endpoint.lastPeer) {
            // We received earlier in this session: reply unicast.
            endpoint.udp->sendTo(*endpoint.lastPeer, payload);
        } else if (color.isMulticast()) {
            const auto port = color.port();
            endpoint.udp->sendTo(
                net::Address{color.group(), static_cast<std::uint16_t>(*port)}, payload);
        } else {
            const auto host = color.get(automata::keys::host);
            const auto port = color.port();
            if (!host || !port) {
                throw NetError("network engine: unicast udp color " + std::to_string(k) +
                               " has no target host/port");
            }
            endpoint.udp->sendTo(net::Address{*host, static_cast<std::uint16_t>(*port)},
                                 payload);
        }
        return;
    }

    // tcp: (re)use one connection per session towards the set_host target or
    // the color's static host/port.
    if (endpoint.tcp && endpoint.tcp->isOpen()) {
        endpoint.tcp->send(payload);
        return;
    }
    if (endpoint.serverRole) {
        throw NetError("network engine: tcp server color " + std::to_string(k) +
                       " has no accepted connection to reply on");
    }
    if (endpoint.tcpConnecting) {
        endpoint.tcpBacklog.push_back(payload);
        return;
    }
    net::Address target;
    if (endpoint.hostOverride) {
        target = *endpoint.hostOverride;
    } else {
        const auto host = color.get(automata::keys::host);
        const auto port = color.port();
        if (!host || !port) {
            throw NetError("network engine: tcp color " + std::to_string(k) +
                           " has no target; did the bridge spec forget set_host?");
        }
        target = net::Address{*host, static_cast<std::uint16_t>(*port)};
    }
    endpoint.tcpConnecting = true;
    endpoint.tcpBacklog.push_back(payload);
    network_.connectTcp(host_, target,
                        [this, k, target](std::shared_ptr<net::TcpConnection> connection) {
        const auto entry = endpoints_.find(k);
        if (entry == endpoints_.end()) return;
        Endpoint& ep = entry->second;
        ep.tcpConnecting = false;
        if (!connection) {
            STARLINK_LOG(Warn, "net-engine")
                << "tcp connect to " << target.toString() << " refused";
            ep.tcpBacklog.clear();
            return;
        }
        ep.tcp = connection;
        connection->onData([this, k, target](const Bytes& data) { tcpDeliver(k, data, target); });
        for (const Bytes& queued : ep.tcpBacklog) connection->send(queued);
        ep.tcpBacklog.clear();
    });
}

void NetworkEngine::tcpDeliver(std::uint64_t k, const Bytes& payload, const net::Address& from) {
    if (handler_) handler_(k, payload, from);
}

void NetworkEngine::notePeer(std::uint64_t k, const net::Address& peer) {
    const auto it = endpoints_.find(k);
    if (it == endpoints_.end()) {
        throw SpecError("network engine: notePeer on unattached color " + std::to_string(k));
    }
    it->second.lastPeer = peer;
}

void NetworkEngine::setHost(std::uint64_t k, const std::string& host, int port) {
    const auto it = endpoints_.find(k);
    if (it == endpoints_.end()) {
        throw SpecError("network engine: set_host on unattached color " + std::to_string(k));
    }
    it->second.hostOverride = net::Address{host, static_cast<std::uint16_t>(port)};
    STARLINK_LOG(Debug, "net-engine") << "set_host color " << k << " -> " << host << ":" << port;
}

void NetworkEngine::resetSession() {
    for (auto& [k, endpoint] : endpoints_) {
        endpoint.lastPeer.reset();
        endpoint.hostOverride.reset();
        endpoint.tcpBacklog.clear();
        endpoint.tcpConnecting = false;
        if (endpoint.tcp) {
            endpoint.tcp->close();
            endpoint.tcp.reset();
        }
    }
}

}  // namespace starlink::engine
