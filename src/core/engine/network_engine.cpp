#include "core/engine/network_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace starlink::engine {

using automata::Color;

NetworkEngine::NetworkEngine(net::Network& network, std::string host, Options options)
    : network_(network), host_(std::move(host)), options_(options) {
    auto& registry = options_.metrics != nullptr ? *options_.metrics
                                                 : telemetry::MetricsRegistry::global();
    connectAttempts_ = &registry.counter("starlink_net_connect_attempts_total");
    connectFailures_ = &registry.counter("starlink_net_connect_failures_total");
    backlogDroppedBytes_ = &registry.counter("starlink_net_backlog_dropped_bytes_total");
}

void NetworkEngine::noteReceived(std::uint64_t k, std::size_t bytes) {
    if (!telemetry::enabled()) return;
    const auto it = endpoints_.find(k);
    if (it == endpoints_.end()) return;
    it->second.messagesIn->add();
    it->second.bytesIn->add(bytes);
}

void NetworkEngine::noteSent(Endpoint& endpoint, std::size_t bytes) {
    if (!telemetry::enabled()) return;
    endpoint.messagesOut->add();
    endpoint.bytesOut->add(bytes);
}

void NetworkEngine::endConnectSpan(Endpoint& endpoint, const char* result, int attempts) {
    if (tracer_ == nullptr || endpoint.connectSpan == 0) return;
    tracer_->attr(endpoint.connectSpan, "result", result);
    tracer_->attr(endpoint.connectSpan, "attempts", std::to_string(attempts));
    tracer_->end(endpoint.connectSpan, network_.now());
    endpoint.connectSpan = 0;
}

void NetworkEngine::reportFault(std::uint64_t k, NetworkFault fault, const std::string& detail) {
    STARLINK_LOG(Warn, "net-engine") << "color " << k << " session fault: " << detail;
    if (recorder_ != nullptr && recorder_->inSession()) {
        recorder_->recordFault(network_.now().time_since_epoch().count(), k,
                               fault == NetworkFault::ConnectRefused
                                   ? telemetry::WireEvent::kFaultConnectRefused
                                   : telemetry::WireEvent::kFaultPeerClosed,
                               detail);
    }
    if (faultHandler_) faultHandler_(k, fault, detail);
}

std::string NetworkEngine::endpointAddress(std::uint64_t k) const {
    const auto it = endpoints_.find(k);
    if (it == endpoints_.end()) return {};
    if (it->second.udp) return it->second.udp->localAddress().toString();
    if (it->second.listener) return it->second.listener->localAddress().toString();
    return {};
}

/// Wires data/close callbacks on a live connection and makes it the
/// endpoint's reply path. The close callback only fires for PEER-initiated
/// closes (our own close() never calls back), and is identity-checked so a
/// late FIN from a previous session's connection cannot fault the current
/// one.
void NetworkEngine::adoptConnection(std::uint64_t k,
                                    std::shared_ptr<net::TcpConnection> connection,
                                    const net::Address& peer) {
    Endpoint& endpoint = endpoints_.at(k);
    endpoint.tcp = connection;
    endpoint.peerClosed = false;
    connection->onData([this, k, peer](const Bytes& data) { tcpDeliver(k, data, peer); });
    std::weak_ptr<net::TcpConnection> weak = connection;
    connection->onClose([this, k, weak, peer] {
        const auto it = endpoints_.find(k);
        if (it == endpoints_.end()) return;
        Endpoint& ep = it->second;
        if (ep.tcp != weak.lock()) return;  // stale: belongs to an earlier session
        ep.tcp.reset();
        ep.peerClosed = true;
        reportFault(k, NetworkFault::PeerClosed,
                    "tcp peer " + peer.toString() + " closed mid-session");
    });
}

void NetworkEngine::attach(std::uint64_t k, const Color& color, bool serverRole) {
    if (endpoints_.contains(k)) return;
    Endpoint endpoint;
    endpoint.color = color;
    endpoint.serverRole = serverRole;

    auto& registry = options_.metrics != nullptr ? *options_.metrics
                                                 : telemetry::MetricsRegistry::global();
    const auto traffic = [&](std::string_view name) {
        return &registry.counter(telemetry::labeled(
            name, {{"color", std::to_string(k)}, {"transport", color.transport()}}));
    };
    endpoint.bytesIn = traffic("starlink_net_bytes_in_total");
    endpoint.bytesOut = traffic("starlink_net_bytes_out_total");
    endpoint.messagesIn = traffic("starlink_net_messages_in_total");
    endpoint.messagesOut = traffic("starlink_net_messages_out_total");

    if (color.transport() == "tcp" && serverRole) {
        const auto port = color.port();
        if (!port) throw SpecError("network engine: tcp server color without a port");
        endpoint.listener = network_.listenTcp(host_, static_cast<std::uint16_t>(*port));
        endpoint.listener->onAccept([this, k](std::shared_ptr<net::TcpConnection> connection) {
            // Reply path for this conversation.
            const net::Address peer = connection->remoteAddress();
            adoptConnection(k, std::move(connection), peer);
        });
    } else if (color.transport() == "udp") {
        const auto port = color.port();
        if (!port) throw SpecError("network engine: udp color without a port");
        endpoint.udp = network_.openUdp(host_, static_cast<std::uint16_t>(*port));
        if (color.isMulticast()) {
            endpoint.udp->joinGroup(
                net::Address{color.group(), static_cast<std::uint16_t>(*port)});
        }
        endpoint.udp->onDatagram([this, k](const Bytes& payload, const net::Address& from) {
            noteReceived(k, payload.size());
            if (handler_) handler_(k, payload, from);
        });
    } else if (color.transport() != "tcp") {
        throw SpecError("network engine: unsupported transport '" + color.transport() + "'");
    }
    endpoints_.emplace(k, std::move(endpoint));
    STARLINK_LOG(Debug, "net-engine") << "attached color " << k << " ("
                                      << endpoints_.at(k).color.canonicalKey() << ")";
}

void NetworkEngine::send(std::uint64_t k, const Bytes& payload) {
    const auto it = endpoints_.find(k);
    if (it == endpoints_.end()) {
        throw SpecError("network engine: send on unattached color " + std::to_string(k));
    }
    Endpoint& endpoint = it->second;
    const Color& color = endpoint.color;

    if (color.transport() == "udp") {
        if (endpoint.lastPeer) {
            // We received earlier in this session: reply unicast.
            endpoint.udp->sendTo(*endpoint.lastPeer, payload);
        } else if (color.isMulticast()) {
            const auto port = color.port();
            endpoint.udp->sendTo(
                net::Address{color.group(), static_cast<std::uint16_t>(*port)}, payload);
        } else {
            const auto host = color.get(automata::keys::host);
            const auto port = color.port();
            if (!host || !port) {
                throw NetError("network engine: unicast udp color " + std::to_string(k) +
                               " has no target host/port");
            }
            endpoint.udp->sendTo(net::Address{*host, static_cast<std::uint16_t>(*port)},
                                 payload);
        }
        if (recorder_ != nullptr && recorder_->inSession()) {
            recorder_->recordTx(network_.now().time_since_epoch().count(), k, payload);
        }
        noteSent(endpoint, payload.size());
        return;
    }

    // tcp: (re)use one connection per session towards the set_host target or
    // the color's static host/port.
    if (endpoint.tcp && endpoint.tcp->isOpen()) {
        try {
            endpoint.tcp->send(payload);
            if (recorder_ != nullptr && recorder_->inSession()) {
                recorder_->recordTx(network_.now().time_since_epoch().count(), k, payload);
            }
            noteSent(endpoint, payload.size());
        } catch (const NetError& error) {
            // The connection raced a peer close; attribute it instead of
            // leaking a bare NetError through a scheduler callback.
            endpoint.tcp.reset();
            endpoint.peerClosed = true;
            throw PeerClosedError("network engine: tcp color " + std::to_string(k) +
                                  " lost its peer mid-session: " + error.what());
        }
        return;
    }
    if (endpoint.serverRole) {
        if (endpoint.peerClosed) {
            throw PeerClosedError("network engine: tcp server color " + std::to_string(k) +
                                  " cannot reply -- peer closed mid-session");
        }
        throw NetError("network engine: tcp server color " + std::to_string(k) +
                       " has no accepted connection to reply on");
    }
    // Bound the pre-connect queue by BYTES: a peer that never finishes its
    // connect must not let queued sends grow the heap without limit. Past
    // the cap the send is shed loudly with a coded error.
    if (options_.maxBacklogBytes != 0 &&
        endpoint.tcpBacklogBytes + payload.size() > options_.maxBacklogBytes) {
        if (telemetry::enabled()) backlogDroppedBytes_->add(payload.size());
        throw NetError(errc::ErrorCode::NetBacklogOverflow,
                       "network engine: tcp color " + std::to_string(k) +
                           " pre-connect backlog at " +
                           std::to_string(endpoint.tcpBacklogBytes) + "/" +
                           std::to_string(options_.maxBacklogBytes) +
                           " bytes; shedding " + std::to_string(payload.size()) +
                           "-byte send");
    }
    endpoint.tcpBacklog.push_back(payload);
    endpoint.tcpBacklogBytes += payload.size();
    if (endpoint.tcpConnecting) return;
    net::Address target;
    if (endpoint.hostOverride) {
        target = *endpoint.hostOverride;
    } else {
        const auto host = color.get(automata::keys::host);
        const auto port = color.port();
        if (!host || !port) {
            endpoint.tcpBacklog.pop_back();
            endpoint.tcpBacklogBytes -= payload.size();
            throw NetError("network engine: tcp color " + std::to_string(k) +
                           " has no target; did the bridge spec forget set_host?");
        }
        target = net::Address{*host, static_cast<std::uint16_t>(*port)};
    }
    endpoint.tcpConnecting = true;
    if (tracer_ != nullptr && tracer_->enabled() && endpoint.connectSpan == 0) {
        endpoint.connectSpan = tracer_->begin("tcp-connect", network_.now());
        tracer_->attr(endpoint.connectSpan, "target", target.toString());
        tracer_->attr(endpoint.connectSpan, "color", std::to_string(k));
    }
    startConnect(k, target, 1);
}

void NetworkEngine::startConnect(std::uint64_t k, const net::Address& target, int attempt) {
    if (telemetry::enabled()) connectAttempts_->add();
    network_.connectTcp(host_, target,
                        [this, k, target, attempt](std::shared_ptr<net::TcpConnection> connection) {
        const auto entry = endpoints_.find(k);
        if (entry == endpoints_.end()) return;
        Endpoint& ep = entry->second;
        if (!connection) {
            if (attempt < options_.connectAttempts) {
                // Retry with a doubling delay; the backlog stays queued. The
                // shift exponent is clamped (a large configured attempt
                // budget used to shift past 31 -- signed-overflow UB) and
                // the delay saturates at connectRetryMaxDelay.
                const int shift = std::min(attempt - 1, 20);
                net::Duration delay = options_.connectRetryDelay * (std::int64_t{1} << shift);
                if (options_.connectRetryMaxDelay.count() > 0) {
                    delay = std::min(delay, options_.connectRetryMaxDelay);
                }
                STARLINK_LOG(Debug, "net-engine")
                    << "tcp connect to " << target.toString() << " refused (attempt "
                    << attempt << "/" << options_.connectAttempts << "), retrying";
                network_.scheduler().schedule(delay, [this, k, target, attempt] {
                    const auto it = endpoints_.find(k);
                    if (it == endpoints_.end() || !it->second.tcpConnecting) return;
                    startConnect(k, target, attempt + 1);
                });
                return;
            }
            ep.tcpConnecting = false;
            if (telemetry::enabled() && ep.tcpBacklogBytes > 0) {
                backlogDroppedBytes_->add(ep.tcpBacklogBytes);
            }
            ep.tcpBacklog.clear();
            ep.tcpBacklogBytes = 0;
            if (telemetry::enabled()) connectFailures_->add();
            endConnectSpan(ep, "refused", attempt);
            if (recorder_ != nullptr && recorder_->inSession()) {
                recorder_->recordConnect(network_.now().time_since_epoch().count(), k,
                                         target.toString(),
                                         telemetry::WireEvent::kConnectRefused, attempt);
            }
            reportFault(k, NetworkFault::ConnectRefused,
                        "tcp connect to " + target.toString() + " refused after " +
                            std::to_string(attempt) + " attempts");
            return;
        }
        ep.tcpConnecting = false;
        adoptConnection(k, connection, target);
        endConnectSpan(ep, "connected", attempt);
        if (recorder_ != nullptr && recorder_->inSession()) {
            recorder_->recordConnect(network_.now().time_since_epoch().count(), k,
                                     target.toString(),
                                     telemetry::WireEvent::kConnectConnected, attempt);
        }
        std::vector<Bytes> backlog;
        backlog.swap(ep.tcpBacklog);
        ep.tcpBacklogBytes = 0;
        try {
            for (const Bytes& queued : backlog) {
                connection->send(queued);
                // Queued sends reach the wire only now: this is their tx
                // moment as far as the capture is concerned.
                if (recorder_ != nullptr && recorder_->inSession()) {
                    recorder_->recordTx(network_.now().time_since_epoch().count(), k, queued);
                }
                noteSent(ep, queued.size());
            }
        } catch (const NetError& error) {
            // Peer accepted then slammed the door before the backlog drained.
            ep.tcp.reset();
            ep.peerClosed = true;
            reportFault(k, NetworkFault::PeerClosed,
                        "tcp peer " + target.toString() +
                            " closed while flushing queued sends: " + error.what());
        }
    });
}

void NetworkEngine::tcpDeliver(std::uint64_t k, const Bytes& payload, const net::Address& from) {
    noteReceived(k, payload.size());
    if (handler_) handler_(k, payload, from);
}

void NetworkEngine::notePeer(std::uint64_t k, const net::Address& peer) {
    const auto it = endpoints_.find(k);
    if (it == endpoints_.end()) {
        throw SpecError("network engine: notePeer on unattached color " + std::to_string(k));
    }
    it->second.lastPeer = peer;
}

void NetworkEngine::setHost(std::uint64_t k, const std::string& host, int port) {
    const auto it = endpoints_.find(k);
    if (it == endpoints_.end()) {
        throw SpecError("network engine: set_host on unattached color " + std::to_string(k));
    }
    it->second.hostOverride = net::Address{host, static_cast<std::uint16_t>(port)};
    STARLINK_LOG(Debug, "net-engine") << "set_host color " << k << " -> " << host << ":" << port;
}

void NetworkEngine::resetSession() {
    for (auto& [k, endpoint] : endpoints_) {
        endpoint.lastPeer.reset();
        endpoint.hostOverride.reset();
        endpoint.tcpBacklog.clear();
        endpoint.tcpBacklogBytes = 0;
        endpoint.tcpConnecting = false;
        endpoint.peerClosed = false;
        // An in-flight connect span is force-closed by the session tracer at
        // session end; the handle just must not leak into the next session.
        endpoint.connectSpan = 0;
        if (endpoint.tcp) {
            endpoint.tcp->close();
            endpoint.tcp.reset();
        }
    }
}

}  // namespace starlink::engine
