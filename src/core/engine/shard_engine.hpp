// Sharded multi-threaded bridge driver.
//
// The paper evaluates one bridge session at a time; the production target is
// a mediator serving MANY concurrent conversations without perturbing the
// single-session numbers Fig 12(b) reproduces. The whole reproduction is
// built from single-threaded simulation islands -- a VirtualClock, an
// EventScheduler, a SimNetwork and the engines driving them share no state
// across islands -- so the scaling unit here is the SHARD: one OS thread
// owning a pool of private islands (one per bridge direction), serving every
// session whose key hashes to it.
//
// Shard-confinement rules (docs/CONCURRENCY.md has the full audit):
//   - dispatch is hash-by-session-key, decided at submit() time; there is no
//     work stealing, so a session's shard -- and therefore every object its
//     execution touches -- is fixed before any thread starts;
//   - each shard owns its islands, its metrics registry and its results
//     slice outright; worker threads communicate with the coordinating
//     thread only through thread creation/join (which order all accesses);
//   - process-global state is limited to the log level (atomic), the
//     telemetry enabled flag (atomic), and the global MetricsRegistry
//     (mutex-guarded registration, lock-free atomic recording);
//   - per-shard MetricsRegistry instances and per-island SpanBuffers are
//     merged AFTER the run (MetricsRegistry::mergeFrom, spans()), so the hot
//     path never takes a cross-thread lock.
//
// Determinism: a session's outcome is a pure function of (case, seed). Each
// session reseeds its island's network rng, anchors a seed-derived fault
// schedule at the island's current virtual time, reseeds the engine's
// retransmission jitter and gets freshly seeded legacy agents -- so pooled
// islands serve session k bit-identically whether 0 or 10'000 sessions ran
// before it, which is exactly why an 8-shard run reproduces a 1-shard run
// record for record (tests/test_shard_stress.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/bridge/models.hpp"
#include "core/engine/automata_engine.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/span.hpp"
#include "net/clock.hpp"

namespace starlink::bridge {
class ModelRegistry;
class ModelSet;
}  // namespace starlink::bridge

namespace starlink::engine {

/// One bridged conversation to serve: which of the six directions, under
/// which session key (the dispatch + determinism handle).
struct SessionJob {
    /// Dispatch key: fnv1a(key) % shards picks the serving shard, and the
    /// key is folded into the session seed, so equal keys mean equal
    /// behaviour at any shard count.
    std::string key;
    bridge::models::Case caseId = bridge::models::Case::SlpToUpnp;
    /// 0 = derive from (key, ShardEngineOptions::baseSeed).
    std::uint64_t seed = 0;
};

struct ShardEngineOptions {
    /// Number of worker threads / island pools. Sessions are partitioned by
    /// key hash; 1 reproduces the classic sequential harnesses.
    int shards = 1;
    /// Folded into every derived session seed (a different baseSeed replays
    /// the same workload under different randomness).
    std::uint64_t baseSeed = 0x5747524c494e4bULL;
    /// Applied to every deployed bridge. EngineOptions::metrics is
    /// overwritten per shard with the shard's private registry.
    EngineOptions engine;

    /// Chaos mode: every session runs under a seed-derived FaultSchedule
    /// (loss bursts, latency spikes, partition flaps, connect blackholes)
    /// plus this steady per-hop loss, and the legacy clients are configured
    /// to retransmit and eventually give up (like `starlinkd chaos`).
    bool chaos = false;
    double chaosLoss = 0.05;
    net::Duration chaosHorizon = net::ms(60000);
    net::Duration chaosClientTimeout = net::ms(120000);
    net::Duration chaosClientRetransmit = net::ms(8000);

    /// Event budget per session; a livelocked island fails loudly instead of
    /// hanging the shard.
    std::size_t maxEventsPerSession = 2'000'000;

    /// Admission control: cap on jobs queued per shard at submit() time
    /// (0 = unbounded). Past the cap submit() SHEDS the job -- it returns
    /// false and the job's SessionResult carries engine.overload -- instead
    /// of growing the pending queue without bound. NOTE the bound is per
    /// shard, so with a cap in force the shed SET depends on the shard
    /// count; the N-shard == 1-shard determinism contract is stated for
    /// unbounded admission (the default), and per-shard-count runs remain
    /// individually deterministic either way.
    std::size_t maxPendingPerShard = 0;
    /// Cap on pooled islands per shard (0 = unbounded). Past the cap the
    /// least-recently-used island is torn down before a new direction
    /// deploys, its virtual-time and span accounting harvested first. Only
    /// six directions exist, so caps >= 6 never evict; smaller caps bound
    /// island residency for memory-tight deployments. Session outcomes are
    /// island-history-independent (per-session reseeding), so eviction never
    /// changes results.
    std::size_t maxIslandsPerShard = 0;

    /// Simulated topology of every island (mirrors the demo harnesses).
    std::string clientHost = "10.0.0.1";
    std::string serviceHost = "10.0.0.3";
    std::string bridgeHost = "10.0.0.9";

    /// Hot-swap deployment: when set, every job pins a model-set generation
    /// AT SUBMIT TIME (registry->pin(job.key), canary cohort by key hash)
    /// and is served by an island deployed from that exact generation --
    /// islands are pooled per (direction, version), so a swap mid-workload
    /// never pauses a shard or disturbs sessions pinned to the old version.
    /// Terminal outcomes are fed back (noteSession) so canary regression
    /// rolls the candidate back automatically. The registry must outlive
    /// the engine and have an active set before the first submit. nullptr =
    /// the classic fixed models::forCase deployment.
    bridge::ModelRegistry* registry = nullptr;
};

/// The shard-invariant summary of one bridge SessionRecord: everything a
/// session "did", with absolute virtual timestamps reduced to durations so
/// records compare bit-for-bit across pooled islands whose clocks differ.
struct SessionOutcome {
    bool completed = false;
    FailureCause cause = FailureCause::None;
    /// Exact taxonomy code of the abort (Ok iff completed); lets sharded
    /// consumers rebuild the per-code abort histogram without the records.
    errc::ErrorCode code = errc::ErrorCode::Ok;
    std::size_t messagesIn = 0;
    std::size_t messagesOut = 0;
    std::size_t retransmits = 0;
    std::int64_t translationUs = 0;
    std::int64_t sessionUs = 0;
    /// Registry version the session was pinned to (0 = no registry). Part
    /// of the bit-identity contract: version assignment is a pure function
    /// of (key, canaryPercent, submit order), never of shard count.
    std::uint64_t modelVersion = 0;

    bool operator==(const SessionOutcome&) const = default;
};

/// What one submitted job produced. Under chaos a single lookup may open
/// zero bridge sessions (every datagram lost) or several (the client
/// re-asked after the bridge aborted), hence the vector.
struct SessionResult {
    SessionJob job;
    int shard = 0;
    /// The legacy client's callback reported at least one discovered URL.
    bool discovered = false;
    /// Admission control refused the job at submit() time: it never ran,
    /// outcomes is empty, and `error` is engine.overload.
    bool shed = false;
    errc::ErrorCode error = errc::ErrorCode::Ok;
    /// The generation pinned at submit time (0 = no registry in play).
    std::uint64_t modelVersion = 0;
    std::vector<SessionOutcome> outcomes;
};

/// Per-shard accounting, available after run().
struct ShardReport {
    int shard = 0;
    std::size_t jobs = 0;
    std::size_t bridgeSessions = 0;
    std::size_t completedSessions = 0;
    std::size_t discovered = 0;
    /// Jobs refused by admission control (ShardEngineOptions::
    /// maxPendingPerShard); also exported as
    /// starlink_engine_sessions_shed_total in the shard's registry.
    std::size_t shed = 0;
    /// Pooled islands evicted by the LRU cap (maxIslandsPerShard).
    std::size_t islandsEvicted = 0;
    /// Virtual time this shard's islands consumed, summed across its
    /// per-direction pools. The aggregate throughput denominator is the MAX
    /// over shards (the virtual makespan): shards are independent islands,
    /// so a real deployment runs them wall-parallel.
    net::Duration busyVirtual = net::us(0);
};

class ShardEngine {
public:
    explicit ShardEngine(ShardEngineOptions options = {});
    ~ShardEngine();

    ShardEngine(const ShardEngine&) = delete;
    ShardEngine& operator=(const ShardEngine&) = delete;

    /// FNV-1a 64 of the session key -- the dispatch hash. Stable across
    /// processes and shard counts (dispatch is hash % shards).
    static std::uint64_t keyHash(const std::string& key);
    /// The seed a job with this key gets when SessionJob::seed == 0.
    static std::uint64_t deriveSeed(const std::string& key, std::uint64_t baseSeed);

    const ShardEngineOptions& options() const { return options_; }
    int shardFor(const std::string& key) const;

    /// Queues a job on its hash-selected shard. Must be called before run().
    /// Returns false when admission control sheds the job (per-shard pending
    /// queue at maxPendingPerShard): the job still yields a SessionResult --
    /// shed=true, error=engine.overload, no outcomes -- so callers account
    /// for every submission either way.
    bool submit(SessionJob job);

    /// Serves every submitted job: one thread per shard, each draining its
    /// own queue in submission order against its private island pool.
    /// Blocking; callable once. Returns results in SUBMISSION order.
    const std::vector<SessionResult>& run();

    const std::vector<SessionResult>& results() const { return results_; }
    const std::vector<ShardReport>& reports() const { return reports_; }

    /// Max over shards of ShardReport::busyVirtual.
    net::Duration makespan() const;
    /// Completed bridge sessions per second of virtual makespan -- the
    /// deterministic aggregate-throughput figure bench/throughput_sweep
    /// gates on.
    double virtualSessionsPerSecond() const;

    /// Folds every shard's private registry into `target`
    /// (telemetry::MetricsRegistry::mergeFrom). Call after run().
    void mergeMetricsInto(telemetry::MetricsRegistry& target) const;
    /// Read-only view of one shard's registry (tests).
    const telemetry::MetricsRegistry& shardMetrics(int shard) const;

    /// Every island's span snapshot, concatenated shard-major (empty unless
    /// ShardEngineOptions::engine.spanCapacity > 0). Merged at export: span
    /// buffers stay single-threaded island property during the run.
    const std::vector<telemetry::Span>& spans() const { return spans_; }

private:
    struct Shard;

    void runShard(Shard& shard);

    ShardEngineOptions options_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<SessionResult> results_;
    std::vector<ShardReport> reports_;
    std::vector<telemetry::Span> spans_;
    std::size_t submitted_ = 0;
    bool ran_ = false;
};

}  // namespace starlink::engine
