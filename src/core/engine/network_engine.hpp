// The Network Engine (paper Fig 6, section IV-B).
//
// "The Network Engine receives messages from the network and sends messages
//  based upon the protocol properties provided by the Automata Engine."
//
// Each color k of the merged automaton is attached to one network endpoint
// whose behaviour follows the color's key-value descriptor:
//
//   transport_protocol=udp            -- a UDP socket on the bridge host;
//     multicast=yes, group, port      -- joined to (group, port); an
//                                        initiating send goes to the group,
//                                        a send after a receive replies
//                                        unicast to the requester
//   transport_protocol=tcp, mode=sync -- a connection per session to the
//                                        target set by the set_host lambda
//                                        action (or the color's host/port)
//
// The engine is deliberately role-free: whether the bridge acts as server
// (SLP side: receive first, reply later) or client (mDNS side: send first,
// await response) falls out of the order of sends and receives, exactly as
// the colored automaton prescribes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "core/automata/color.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/recorder.hpp"
#include "core/telemetry/span.hpp"
#include "net/network.hpp"

namespace starlink::engine {

/// Session-fatal transport events the network engine surfaces to the
/// automata engine (instead of stalling silently or leaking a NetError
/// through a scheduler callback).
enum class NetworkFault {
    ConnectRefused,  ///< tcp connect failed after the bounded retry budget
    PeerClosed,      ///< the tcp peer closed (or reset) mid-session
};

struct NetworkEngineOptions {
    /// Total tcp connect attempts before the failure is terminal.
    int connectAttempts = 3;
    /// Delay before the first reconnect attempt; doubles per attempt (capped
    /// by connectRetryMaxDelay).
    net::Duration connectRetryDelay = net::ms(50);
    /// Registry the per-color traffic counters land in; nullptr = the
    /// process-wide registry. The sharded driver passes each shard's private
    /// registry (see EngineOptions::metrics). Must outlive the engine.
    telemetry::MetricsRegistry* metrics = nullptr;
    /// Ceiling on the doubling reconnect backoff (0 = uncapped exponent
    /// growth, though the shift itself is always clamped to stay defined).
    /// Large connectAttempts used to left-shift past 31 -- signed-overflow
    /// UB; the delay now saturates here instead.
    net::Duration connectRetryMaxDelay = net::ms(5000);
    /// Byte cap on sends queued per tcp color while its connect is pending
    /// (0 = unbounded, the old behaviour). Past the cap send() sheds with
    /// net.backlog-overflow and counts the bytes in
    /// starlink_net_backlog_dropped_bytes_total.
    std::size_t maxBacklogBytes = 256 * 1024;
};

class NetworkEngine {
public:
    /// colorK, payload, sender address.
    using Handler = std::function<void(std::uint64_t, const Bytes&, const net::Address&)>;
    /// colorK, what happened, human-readable detail.
    using FaultHandler = std::function<void(std::uint64_t, NetworkFault, const std::string&)>;

    using Options = NetworkEngineOptions;

    NetworkEngine(net::Network& network, std::string host, Options options = {});

    const std::string& host() const { return host_; }
    net::Network& network() { return network_; }

    /// Creates the endpoint for color k. Idempotent per k. `serverRole` only
    /// matters for tcp colors: a server endpoint LISTENS on the color's port
    /// at the bridge host and replies on the accepted connection, a client
    /// endpoint CONNECTS to the set_host target. (The automata engine infers
    /// the role from whether the component automaton opens with a receive.)
    void attach(std::uint64_t k, const automata::Color& color, bool serverRole = false);

    /// Installs the single upcall for every attached color.
    void setHandler(Handler handler) { handler_ = std::move(handler); }

    /// Installs the upcall for session-fatal transport events (terminal
    /// connect failure, mid-session peer close). Without a handler the
    /// events are logged and dropped.
    void setFaultHandler(FaultHandler handler) { faultHandler_ = std::move(handler); }

    /// Sends one protocol message with color-k semantics. Throws SpecError
    /// when k is not attached, NetError when a tcp target is missing.
    void send(std::uint64_t k, const Bytes& payload);

    /// The set_host lambda action: directs color k's next tcp connection.
    void setHost(std::uint64_t k, const std::string& host, int port);

    /// Records the reply route for color k. Called by the automata engine
    /// when it ACCEPTS a received message -- datagrams the automaton rejects
    /// must not steal the session's reply address.
    void notePeer(std::uint64_t k, const net::Address& peer);

    /// Ends the current bridge session: forgets reply peers and set_host
    /// targets, closes tcp connections. Endpoints stay attached.
    void resetSession();

    /// Lends the automata engine's session tracer so tcp-connect legs land in
    /// the same span tree. The tracer must outlive the engine or be cleared
    /// (pass nullptr) before it dies.
    void setTracer(telemetry::SessionTracer* tracer) { tracer_ = tracer; }

    /// Lends the automata engine's flight recorder so wire-level tx/connect/
    /// fault events are captured at the moment they hit the (simulated)
    /// network. Same lifetime contract as setTracer.
    void setRecorder(telemetry::FlightRecorder* recorder) { recorder_ = recorder; }

    /// The local address color k receives on ("host:port"): the udp socket's
    /// or tcp listener's bound address, "" for client-mode tcp colors (their
    /// rx arrives on an outbound connection with no stable local name).
    std::string endpointAddress(std::uint64_t k) const;

private:
    struct Endpoint {
        automata::Color color;
        bool serverRole = false;
        std::unique_ptr<net::UdpSocket> udp;
        std::unique_ptr<net::TcpListener> listener;
        std::optional<net::Address> lastPeer;       // reply target after a receive
        std::optional<net::Address> hostOverride;   // from set_host
        std::shared_ptr<net::TcpConnection> tcp;
        std::vector<Bytes> tcpBacklog;              // sends queued while connecting
        std::size_t tcpBacklogBytes = 0;            // queued payload bytes (capped)
        bool tcpConnecting = false;
        bool peerClosed = false;                    // peer vanished this session
        // Per-color traffic counters, resolved once at attach (null until
        // then); recording is gated on telemetry::enabled().
        telemetry::Counter* bytesIn = nullptr;
        telemetry::Counter* bytesOut = nullptr;
        telemetry::Counter* messagesIn = nullptr;
        telemetry::Counter* messagesOut = nullptr;
        telemetry::SpanId connectSpan = 0;          // open tcp-connect leg
    };

    void tcpDeliver(std::uint64_t k, const Bytes& payload, const net::Address& from);
    void startConnect(std::uint64_t k, const net::Address& target, int attempt);
    void adoptConnection(std::uint64_t k, std::shared_ptr<net::TcpConnection> connection,
                         const net::Address& peer);
    void reportFault(std::uint64_t k, NetworkFault fault, const std::string& detail);
    void noteReceived(std::uint64_t k, std::size_t bytes);
    void noteSent(Endpoint& endpoint, std::size_t bytes);
    void endConnectSpan(Endpoint& endpoint, const char* result, int attempts);

    net::Network& network_;
    std::string host_;
    Options options_;
    Handler handler_;
    FaultHandler faultHandler_;
    std::map<std::uint64_t, Endpoint> endpoints_;
    telemetry::SessionTracer* tracer_ = nullptr;
    telemetry::FlightRecorder* recorder_ = nullptr;
    telemetry::Counter* connectAttempts_ = nullptr;
    telemetry::Counter* connectFailures_ = nullptr;
    /// Payload bytes shed from pre-connect backlogs (cap overflow or
    /// terminal connect failure).
    telemetry::Counter* backlogDroppedBytes_ = nullptr;
};

}  // namespace starlink::engine
