#include "core/engine/automata_engine.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace starlink::engine {

using automata::Action;
using automata::ColoredAutomaton;
using automata::State;
using automata::TraceEvent;
using automata::Transition;

AutomataEngine::AutomataEngine(std::shared_ptr<merge::MergedAutomaton> merged,
                               std::map<std::string, std::shared_ptr<mdl::MessageCodec>> codecs,
                               std::shared_ptr<merge::TranslationRegistry> translations,
                               NetworkEngine& network, automata::ColorRegistry& colors,
                               EngineOptions options)
    : merged_(std::move(merged)),
      codecs_(std::move(codecs)),
      translations_(std::move(translations)),
      network_(network),
      colors_(colors),
      options_(options),
      retryRng_(options.retrySeed),
      sessions_(options.sessionHistoryCapacity),
      trace_(options.traceCapacity),
      spans_(options.spanCapacity),
      tracer_(spans_),
      recorder_(options.recorderSessionBytes) {
    retrySeedInEffect_ = options_.retrySeed;
    for (const auto& component : merged_->components()) {
        if (!codecs_.contains(component->name())) {
            throw SpecError(errc::ErrorCode::EngineNoCodec,
                            "automata engine: no codec supplied for component '" +
                                component->name() + "'");
        }
    }

    // Resolve every engine metric once; hot-path sites record through these
    // pointers behind the telemetry::enabled() flag.
    registry_ = options_.metrics != nullptr ? options_.metrics
                                            : &telemetry::MetricsRegistry::global();
    auto& registry = *registry_;
    const auto named = [&](std::string_view name) {
        // Engines deployed through the model registry carry their version in
        // every metric, so canary and stable cohorts separate in /metrics.
        if (options_.modelVersion != 0) {
            return telemetry::labeled(
                name, {{"bridge", merged_->name()},
                       {"model_version", std::to_string(options_.modelVersion)}});
        }
        return telemetry::labeled(name, {{"bridge", merged_->name()}});
    };
    metrics_.sessionsCompleted =
        &registry.counter(named("starlink_engine_sessions_completed_total"));
    metrics_.messagesIn = &registry.counter(named("starlink_engine_messages_in_total"));
    metrics_.messagesOut = &registry.counter(named("starlink_engine_messages_out_total"));
    metrics_.retransmits = &registry.counter(named("starlink_engine_retransmits_total"));
    metrics_.translationMs = &registry.histogram(
        named("starlink_engine_translation_ms"),
        {50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600});
    // Bookkeeping previously invisible from the outside, refreshed at every
    // session boundary (gauges, not counters: they report current state).
    metrics_.spansDropped = &registry.gauge(named("starlink_telemetry_spans_dropped"));
    metrics_.historyEvicted =
        &registry.gauge(named("starlink_engine_session_history_evicted"));
    metrics_.arenaBytes = &registry.gauge(named("starlink_mdl_rx_arena_reserved_bytes"));
    metrics_.arenaChunks = &registry.gauge(named("starlink_mdl_rx_arena_chunks"));
    metrics_.recorderBytes =
        &registry.gauge(named("starlink_telemetry_recorder_reserved_bytes"));

    // Let the network engine hang its tcp-connect legs onto this engine's
    // session tree, and mirror its wire traffic into the flight recorder.
    network_.setTracer(&tracer_);
    network_.setRecorder(&recorder_);
}

AutomataEngine::~AutomataEngine() {
    network_.setTracer(nullptr);
    network_.setRecorder(nullptr);
}

telemetry::Counter* AutomataEngine::abortedCounter(errc::ErrorCode code) {
    const auto it = abortedByCode_.find(code);
    if (it != abortedByCode_.end()) return it->second;
    // The `code` label is the numeric taxonomy value, `cause` its stable
    // dotted name -- one counter per exact abort code, replacing the old
    // 5-bucket FailureCause array.
    const std::string codeValue = std::to_string(errc::to_error_code(code));
    const std::string name =
        options_.modelVersion != 0
            ? telemetry::labeled(
                  "starlink_engine_sessions_aborted_total",
                  {{"bridge", merged_->name()},
                   {"code", codeValue},
                   {"cause", errc::to_string(code)},
                   {"model_version", std::to_string(options_.modelVersion)}})
            : telemetry::labeled("starlink_engine_sessions_aborted_total",
                                 {{"bridge", merged_->name()},
                                  {"code", codeValue},
                                  {"cause", errc::to_string(code)}});
    telemetry::Counter* counter = &registry_->counter(name);
    abortedByCode_.emplace(code, counter);
    return counter;
}

telemetry::Histogram* AutomataEngine::dwellHistogram(const std::string& state) {
    const auto it = dwellByState_.find(state);
    if (it != dwellByState_.end()) return it->second;
    telemetry::Histogram* h = &registry_->histogram(
        telemetry::labeled("starlink_engine_state_dwell_ms",
                           {{"bridge", merged_->name()}, {"state", state}}),
        {1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000});
    dwellByState_.emplace(state, h);
    return h;
}

void AutomataEngine::enterState(const std::string& next) {
    if (telemetry::enabled() && sessionActive_) {
        const net::TimePoint now = network_.network().now();
        const auto dwell =
            std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
                now - stateEnteredAt_);
        dwellHistogram(current_)->observe(dwell.count());
        stateEnteredAt_ = now;
    }
    current_ = next;
}

const ColoredAutomaton* AutomataEngine::componentByColor(std::uint64_t k) const {
    for (const auto& component : merged_->components()) {
        if (component->color() == k) return component.get();
    }
    return nullptr;
}

std::shared_ptr<mdl::MessageCodec> AutomataEngine::codecFor(const ColoredAutomaton& a) const {
    return codecs_.at(a.name());
}

void AutomataEngine::start() {
    merged_->validate();
    for (const auto& component : merged_->components()) {
        const std::uint64_t k = component->color();
        const automata::Color* color = colors_.lookup(k);
        if (color == nullptr) {
            throw SpecError(errc::ErrorCode::EngineColorUnknown,
                            "automata engine: color " + std::to_string(k) +
                                " of component '" + component->name() +
                                "' is not in the color registry");
        }
        // Server role when the component's protocol conversation opens with
        // a receive (the bridge impersonates that protocol's service side).
        bool serverRole = false;
        for (const automata::Transition* t :
             component->transitionsFrom(component->initialState())) {
            if (t->action == Action::Receive) serverRole = true;
        }
        network_.attach(k, *color, serverRole);
    }
    network_.setHandler([this](std::uint64_t k, const Bytes& payload, const net::Address& from) {
        onNetworkMessage(k, payload, from);
    });
    network_.setFaultHandler([this](std::uint64_t k, NetworkFault fault,
                                    const std::string& detail) {
        onNetworkFault(k, fault, detail);
    });
    current_ = merged_->initialState();
    running_ = true;
    STARLINK_LOG(Info, "engine") << "bridge '" << merged_->name() << "' listening at "
                                 << current_;
}

void AutomataEngine::onNetworkMessage(std::uint64_t colorK, const Bytes& payload,
                                      const net::Address& from) {
    if (!running_) return;
    const ColoredAutomaton* component = componentByColor(colorK);
    if (component == nullptr) return;
    if (component->state(current_) == nullptr) {
        STARLINK_LOG(Debug, "engine") << "ignoring " << payload.size()
                                      << "-byte message from " << from.toString()
                                      << ": automaton '" << component->name()
                                      << "' is not active";
        return;
    }
    if (sendPending_) {
        STARLINK_LOG(Debug, "engine") << "ignoring message while a send is in progress";
        return;
    }

    std::string parseError;
    const std::uint64_t parseWall0 = tracer_.enabled() ? telemetry::wallNowNs() : 0;
    // Zero-copy path: field values borrow from the arena's datagram copy.
    // Everything parsed here either dies before the session boundary (stored
    // automaton instances, this frame) or is materialized (trace ring).
    const auto message = codecFor(*component)->parse(payload, &rxArena_, &parseError);
    const std::uint64_t parseWallNs =
        parseWall0 != 0 ? telemetry::wallSinceNs(parseWall0) : 0;
    if (!message) {
        STARLINK_LOG(Warn, "engine") << "unparseable " << component->name()
                                     << " message from " << from.toString() << ": "
                                     << parseError;
        // No live session, no surviving views: drop the junk datagram's arena
        // bytes so a pre-session flood cannot grow the arena without bound.
        if (!sessionActive_) rxArena_.reset();
        return;
    }

    const Transition* transition =
        component->transitionFor(current_, Action::Receive, message->type());
    if (transition == nullptr) {
        STARLINK_LOG(Debug, "engine") << "no receive-transition from " << current_ << " on ?"
                                      << message->type() << "; dropping";
        if (!sessionActive_) rxArena_.reset();
        return;
    }

    if (!sessionActive_) {
        sessionActive_ = true;
        liveSession_ = SessionRecord{};
        liveSession_.firstReceive = network_.network().now();
        stateEnteredAt_ = liveSession_.firstReceive;
        ++sessionOrdinal_;
        // The jitter generator's position at session start: a postmortem
        // bundle re-derives it as (seed, draws burned).
        sessionStartRetryDraws_ = retryDrawsSinceSeed_;
        recorder_.beginSession(sessionOrdinal_,
                               liveSession_.firstReceive.time_since_epoch().count());
        if (tracer_.enabled()) {
            const telemetry::SpanId root = tracer_.beginSession(liveSession_.firstReceive);
            tracer_.attr(root, "bridge", merged_->name());
        }
        if (options_.sessionTimeout.count() > 0) {
            timeoutEvent_ = network_.network().scheduler().schedule(
                options_.sessionTimeout, [this] {
                    timeoutEvent_.reset();
                    if (sessionActive_) {
                        STARLINK_LOG(Warn, "engine") << "session timed out in state " << current_;
                        completeSession(false, FailureCause::Timeout,
                                        errc::ErrorCode::EngineSessionTimeout);
                    }
                });
        }
    }
    ++liveSession_.messagesIn;
    if (telemetry::enabled()) metrics_.messagesIn->add();
    // The wait is over: an accepted message stands down the pending
    // retransmission deadline, and the idle deadline re-arms from now.
    cancelRetransmit();
    armIdleTimeout();
    if (tracer_.inSession()) {
        const net::TimePoint now = network_.network().now();
        if (waitSpan_ != 0) {
            tracer_.attr(waitSpan_, "message_type", message->type());
            tracer_.end(waitSpan_, now);
            waitSpan_ = 0;
        }
        const telemetry::SpanId parseSpan = tracer_.instant("parse", now, parseWallNs);
        tracer_.attr(parseSpan, "protocol", component->name());
        tracer_.attr(parseSpan, "message_type", message->type());
        tracer_.attr(parseSpan, "state", current_);
        tracer_.attr(parseSpan, "bytes", std::to_string(payload.size()));
    }
    // Only an accepted message establishes the reply route for its color.
    network_.notePeer(colorK, from);
    if (recorder_.inSession()) {
        const std::int64_t ts = network_.network().now().time_since_epoch().count();
        recorder_.recordRx(ts, colorK, from.toString(), network_.endpointAddress(colorK),
                           payload);
        recorder_.recordTransition(ts, component->name(), transition->from, transition->to,
                                   telemetry::WireEvent::kActionReceive, message->type());
    }

    // Store the instance at the entered state (see header note) and advance.
    // The stored copy may hold arena views -- legal, it dies at the session
    // boundary before the arena resets. The trace ring outlives sessions, so
    // its copy is deep-owned first.
    merged_->automatonOf(transition->to)->state(transition->to)->pushMessage(*message);
    if (trace_.capacity() > 0) {
        TraceEvent event{component->name(), transition->from, transition->to, Action::Receive,
                         *message};
        event.message.materializeValues();
        trace_.record(std::move(event));
    }
    enterState(transition->to);
    lastWasDelta_ = false;
    safeProceed();
}

FailureCause AutomataEngine::classify(const std::exception& error) {
    if (dynamic_cast<const ConnectRefusedError*>(&error) != nullptr) {
        return FailureCause::ConnectRefused;
    }
    if (dynamic_cast<const PeerClosedError*>(&error) != nullptr) {
        return FailureCause::PeerClosed;
    }
    return FailureCause::DecodeError;
}

void AutomataEngine::safeProceed() {
    // Translation failures at runtime (a peer's message lacking a field an
    // assignment needs, a value a T function rejects, an unencodable
    // compose) abort the CONVERSATION, never the connector: the bridge logs,
    // resets, and keeps serving.
    try {
        proceed();
    } catch (const std::exception& error) {
        STARLINK_LOG(Error, "engine") << "session aborted in state " << current_ << ": "
                                      << error.what();
        // Record the throwing layer's exact code (merge.translation-rejected,
        // codec.compose, ...); an uncoded exception records Unclassified,
        // which the fuzz harness counts as a taxonomy escape.
        if (sessionActive_) completeSession(false, classify(error), starlink::to_error_code(error));
    }
}

void AutomataEngine::onNetworkFault(std::uint64_t colorK, NetworkFault fault,
                                    const std::string& detail) {
    if (!running_ || !sessionActive_) return;
    // Only fatal when the session is currently engaged with the faulting
    // color: a peer closing a connection the conversation has moved past
    // (e.g. an HTTP client hanging up after its fetch) is routine.
    const ColoredAutomaton* component = componentByColor(colorK);
    if (component == nullptr || component->state(current_) == nullptr) {
        STARLINK_LOG(Debug, "engine") << "ignoring off-session network fault: " << detail;
        return;
    }
    STARLINK_LOG(Warn, "engine") << "session aborted by network fault in state " << current_
                                 << ": " << detail;
    completeSession(false, fault == NetworkFault::ConnectRefused ? FailureCause::ConnectRefused
                                                                 : FailureCause::PeerClosed);
}

void AutomataEngine::proceed() {
    while (running_ && sessionActive_) {
        const ColoredAutomaton* component = merged_->automatonOf(current_);

        // 1. Delta-transition, unless we just arrived through one.
        if (!lastWasDelta_) {
            if (const merge::DeltaTransition* delta = merged_->deltaFrom(current_)) {
                takeDelta(*delta);
                continue;
            }
        }

        // 2. Unique send-transition.
        const Transition* send = nullptr;
        bool hasReceive = false;
        for (const Transition* t : component->transitionsFrom(current_)) {
            if (t->action == Action::Send) {
                if (send != nullptr) {
                    throw SpecError(errc::ErrorCode::EngineAmbiguousSend,
                                    "automata engine: state '" + current_ +
                                        "' has several outgoing send-transitions; the merged "
                                        "automaton is ambiguous");
                }
                send = t;
            } else {
                hasReceive = true;
            }
        }
        if (send != nullptr) {
            scheduleSend(*send);
            return;
        }

        // 3. Wait or finish.
        lastWasDelta_ = false;
        const bool canMoveOn = hasReceive || merged_->deltaFrom(current_) != nullptr;
        if (!canMoveOn && merged_->acceptingStates().contains(current_)) {
            completeSession(true);
            return;
        }
        // Settling into a wait: give the silence a deadline so a lost
        // datagram (ours or the peer's reply) is re-solicited instead of
        // wedging the conversation.
        if (hasReceive && sessionActive_) {
            if (tracer_.inSession() && waitSpan_ == 0) {
                waitSpan_ = tracer_.begin("receive-wait", network_.network().now());
                tracer_.attr(waitSpan_, "state", current_);
            }
            armRetransmit();
        }
        return;
    }
}

void AutomataEngine::takeDelta(const merge::DeltaTransition& delta) {
    for (const merge::NetworkAction& action : delta.actions) {
        if (action.name == "set_host") {
            if (action.args.size() != 2) {
                throw SpecError(errc::ErrorCode::BridgeInvalid,
                                "automata engine: set_host expects (host, port) arguments");
            }
            const Value host = resolveRef(action.args[0].ref, action.args[0].transform);
            const Value port = resolveRef(action.args[1].ref, action.args[1].transform);
            const auto hostText = host.coerceTo(ValueType::String);
            const auto portInt = port.coerceTo(ValueType::Int);
            if (!hostText || !portInt) {
                throw SpecError(errc::ErrorCode::EngineFieldUnresolved,
                                "automata engine: set_host arguments do not resolve to "
                                "host text and numeric port");
            }
            const ColoredAutomaton* target = merged_->automatonOf(delta.to);
            network_.setHost(target->color(), *hostText->asString(),
                             static_cast<int>(*portInt->asInt()));
        } else {
            throw SpecError(errc::ErrorCode::EngineUnknownAction,
                            "automata engine: unknown lambda action '" + action.name + "'");
        }
    }
    trace_.record(TraceEvent{merged_->automatonOf(delta.from)->name(), delta.from, delta.to,
                             std::nullopt, AbstractMessage()});
    if (recorder_.inSession()) {
        recorder_.recordTransition(network_.network().now().time_since_epoch().count(),
                                   merged_->automatonOf(delta.from)->name(), delta.from,
                                   delta.to, telemetry::WireEvent::kActionDelta, "");
    }
    STARLINK_LOG(Debug, "engine") << "delta " << delta.from << " -> " << delta.to;
    enterState(delta.to);
    lastWasDelta_ = true;
}

void AutomataEngine::scheduleSend(const Transition& transition) {
    sendPending_ = true;
    // The translate leg opens NOW: its virtual extent is exactly the
    // processingDelay window the session is about to be charged.
    telemetry::SpanId translateSpan = 0;
    if (tracer_.inSession()) {
        translateSpan = tracer_.begin("translate", network_.network().now());
        tracer_.attr(translateSpan, "state", transition.from);
        tracer_.attr(translateSpan, "message_type", transition.messageType);
        tracer_.attr(translateSpan, "automaton",
                     merged_->automatonOf(transition.from)->name());
    }
    // The interpretation cost of translating + composing, charged in virtual
    // time so Fig 12(b)-style measures include it.
    // Copy the transition: the engine may outlive iterator stability games.
    network_.network().scheduler().schedule(options_.processingDelay,
                                            [this, transition = transition, translateSpan] {
        if (!running_ || !sessionActive_) return;
        try {
            performSend(transition, translateSpan);
        } catch (const std::exception& error) {
            STARLINK_LOG(Error, "engine") << "send of !" << transition.messageType
                                          << " failed, aborting session: " << error.what();
            completeSession(false, classify(error), starlink::to_error_code(error));
        }
    });
}

void AutomataEngine::performSend(const Transition& transition,
                                 telemetry::SpanId translateSpan) {
    ColoredAutomaton* component = merged_->automatonOf(transition.from);
    const bool tracing = tracer_.inSession() && translateSpan != 0;
    const net::TimePoint now = network_.network().now();
    if (recorder_.inSession()) {
        recorder_.recordTranslate(now.time_since_epoch().count(), transition.from,
                                  transition.messageType);
    }

    std::uint64_t wall0 = tracing ? telemetry::wallNowNs() : 0;
    AbstractMessage outgoing = buildOutgoing(transition.from, transition.messageType);
    if (tracing) {
        tracer_.instant("translation-logic", now, telemetry::wallSinceNs(wall0),
                        translateSpan);
        wall0 = telemetry::wallNowNs();
    }
    // Compose into the engine-lifetime scratch buffer: steady-state sessions
    // reuse one allocation instead of growing a fresh Bytes per message.
    codecFor(*component)->composeInto(outgoing, composeScratch_);
    if (tracing) {
        const telemetry::SpanId composeSpan =
            tracer_.instant("compose", now, telemetry::wallSinceNs(wall0), translateSpan);
        tracer_.attr(composeSpan, "protocol", component->name());
        tracer_.attr(composeSpan, "bytes", std::to_string(composeScratch_.size()));
        wall0 = telemetry::wallNowNs();
    }
    network_.send(component->color(), composeScratch_);
    if (recorder_.inSession()) {
        // The Tx event itself is recorded by the network engine at the
        // actual wire moment (live send vs backlog flush); here only the
        // automaton step.
        recorder_.recordTransition(now.time_since_epoch().count(), component->name(),
                                   transition.from, transition.to,
                                   telemetry::WireEvent::kActionSend, transition.messageType);
    }
    if (tracing) {
        const telemetry::SpanId sendSpan =
            tracer_.instant("send", now, telemetry::wallSinceNs(wall0), translateSpan);
        tracer_.attr(sendSpan, "bytes", std::to_string(composeScratch_.size()));
    }

    // Keep the encoded request: if the following wait's deadline lapses the
    // engine re-sends these exact bytes. A fresh send resets the per-wait
    // retry budget.
    lastSentColor_ = component->color();
    lastSentPayload_ = composeScratch_;
    retransmitsUsed_ = 0;

    component->state(transition.from)->pushMessage(outgoing);
    if (trace_.capacity() > 0) {
        // Translated values may still borrow from the rx arena (assignments
        // copy views verbatim); the ring outlives the session, so deep-own.
        outgoing.materializeValues();
        trace_.record(TraceEvent{component->name(), transition.from, transition.to,
                                 Action::Send, std::move(outgoing)});
    }
    liveSession_.lastSend = now;
    if (!liveSession_.clientReply &&
        component == merged_->automatonOf(merged_->initialState())) {
        liveSession_.clientReply = liveSession_.lastSend;
    }
    ++liveSession_.messagesOut;
    if (telemetry::enabled()) metrics_.messagesOut->add();
    armIdleTimeout();
    if (tracing) tracer_.end(translateSpan, now);
    STARLINK_LOG(Debug, "engine") << "sent !" << transition.messageType << " from "
                                  << transition.from;

    enterState(transition.to);
    lastWasDelta_ = false;
    sendPending_ = false;
    proceed();
}

AbstractMessage AutomataEngine::buildOutgoing(const std::string& stateId,
                                              const std::string& messageType) {
    AbstractMessage message(messageType);
    for (const merge::Assignment* assignment :
         merged_->assignmentsTargeting(stateId, messageType)) {
        Value value;
        if (assignment->source) {
            value = resolveRef(*assignment->source, assignment->transform);
        } else {
            value = Value::ofString(assignment->constant.value_or(""));
            if (!assignment->transform.empty()) {
                // Deploy validates transform names, so reaching an unknown
                // one here means the registry changed at runtime; keep the
                // error distinct from a function genuinely rejecting a value.
                if (!translations_->contains(assignment->transform)) {
                    throw SpecError(errc::ErrorCode::TranslationUnknown,
                                    "automata engine: unknown translation '" +
                                        assignment->transform +
                                        "' (removed from the registry after deploy?)");
                }
                const auto transformed = translations_->apply(assignment->transform, value);
                if (!transformed) {
                    throw SpecError(errc::ErrorCode::TranslationRejected,
                                    "automata engine: translation '" + assignment->transform +
                                        "' rejected constant '" +
                                        assignment->constant.value_or("") + "'");
                }
                value = *transformed;
            }
        }
        message.setValue(assignment->target.path, value,
                         std::string(valueTypeName(value.type())));
    }
    return message;
}

Value AutomataEngine::resolveRef(const merge::FieldRef& ref, const std::string& transform) const {
    const ColoredAutomaton* component = merged_->automatonOf(ref.state);
    if (component == nullptr) {
        throw SpecError(errc::ErrorCode::EngineFieldUnresolved,
                        "automata engine: field reference " + ref.toString() +
                            " names an unknown state");
    }
    const AbstractMessage* message = component->state(ref.state)->message(ref.messageType);
    if (message == nullptr) {
        throw SpecError(errc::ErrorCode::EngineFieldUnresolved,
                        "automata engine: no instance of " + ref.messageType +
                            " stored at state " + ref.state + " (needed by " + ref.toString() +
                            ")");
    }
    const auto value = message->value(ref.path);
    if (!value) {
        throw SpecError(errc::ErrorCode::EngineFieldUnresolved,
                        "automata engine: message " + ref.messageType + " at " + ref.state +
                            " has no field '" + ref.path + "'");
    }
    if (transform.empty()) return *value;
    if (!translations_->contains(transform)) {
        throw SpecError(errc::ErrorCode::TranslationUnknown,
                        "automata engine: unknown translation '" + transform +
                            "' (removed from the registry after deploy?)");
    }
    const auto transformed = translations_->apply(transform, *value);
    if (!transformed) {
        throw SpecError(errc::ErrorCode::TranslationRejected,
                        "automata engine: translation '" + transform + "' rejected value '" +
                            value->toText() + "' of " + ref.toString());
    }
    return *transformed;
}

net::Duration AutomataEngine::receiveDeadlineFor(const std::string& state) const {
    const auto it = options_.stateReceiveTimeouts.find(state);
    return it != options_.stateReceiveTimeouts.end() ? it->second : options_.receiveTimeout;
}

void AutomataEngine::cancelRetransmit() {
    if (retransmitEvent_) {
        network_.network().scheduler().cancel(*retransmitEvent_);
        retransmitEvent_.reset();
    }
}

void AutomataEngine::armRetransmit() {
    cancelRetransmit();
    if (options_.maxRetransmits <= 0 || !lastSentPayload_) return;
    const automata::Color* color = colors_.lookup(lastSentColor_);
    // Only datagram requests are worth re-sending: tcp delivers reliably, and
    // its genuine failures arrive as connect-refused/peer-closed faults.
    if (color == nullptr || color->transport() != "udp") return;
    const net::Duration deadline = receiveDeadlineFor(current_);
    if (deadline.count() <= 0) return;
    double scale = 1.0;
    for (int attempt = 0; attempt < retransmitsUsed_; ++attempt) {
        scale *= options_.retransmitBackoff;
    }
    net::Duration wait{static_cast<net::Duration::rep>(
        static_cast<double>(deadline.count()) * scale)};
    if (options_.retransmitJitter.count() > 0) {
        wait += net::Duration{retryRng_.range(0, options_.retransmitJitter.count())};
        ++retryDrawsSinceSeed_;  // range() consumes exactly one draw
    }
    retransmitEvent_ = network_.network().scheduler().schedule(wait, [this] {
        retransmitEvent_.reset();
        onReceiveDeadline();
    });
}

void AutomataEngine::onReceiveDeadline() {
    if (!running_ || !sessionActive_ || !lastSentPayload_) return;
    if (retransmitsUsed_ >= options_.maxRetransmits) {
        STARLINK_LOG(Warn, "engine") << "no reply in state " << current_ << " after "
                                     << retransmitsUsed_
                                     << " retransmissions; aborting session";
        // Coarse cause stays Timeout for compatibility; the code tells a
        // drained retry budget apart from the session watchdog.
        completeSession(false, FailureCause::Timeout, errc::ErrorCode::EngineRetryExhausted);
        return;
    }
    ++retransmitsUsed_;
    ++liveSession_.retransmits;
    if (telemetry::enabled()) metrics_.retransmits->add();
    STARLINK_LOG(Debug, "engine") << "reply deadline lapsed in state " << current_
                                  << "; retransmission " << retransmitsUsed_ << "/"
                                  << options_.maxRetransmits;
    try {
        network_.send(lastSentColor_, *lastSentPayload_);
    } catch (const std::exception& error) {
        STARLINK_LOG(Error, "engine") << "retransmission failed, aborting session: "
                                      << error.what();
        completeSession(false, classify(error), starlink::to_error_code(error));
        return;
    }
    // The re-sent request is a real datagram on the wire: count it, so the
    // session record agrees with the network engine's per-color counters.
    ++liveSession_.messagesOut;
    if (telemetry::enabled()) metrics_.messagesOut->add();
    if (tracer_.inSession()) {
        const telemetry::SpanId id = tracer_.instant(
            "retransmit", network_.network().now(), 0, waitSpan_);
        tracer_.attr(id, "state", current_);
        tracer_.attr(id, "attempt", std::to_string(retransmitsUsed_));
        tracer_.attr(id, "bytes", std::to_string(lastSentPayload_->size()));
    }
    armRetransmit();
}

void AutomataEngine::completeSession(bool completed, FailureCause cause, errc::ErrorCode code) {
    liveSession_.completed = completed;
    liveSession_.cause = completed ? FailureCause::None : cause;
    // Exact code when the abort path supplied one; otherwise the coarse
    // cause's floor code. Unclassified (an uncoded exception) is preserved,
    // not masked -- it is the taxonomy-escape signal the fuzzers hunt.
    liveSession_.code = completed ? errc::ErrorCode::Ok
                        : code != errc::ErrorCode::Ok ? code
                                                      : to_error_code(liveSession_.cause);
    liveSession_.modelVersion = options_.modelVersion;
    sessions_.record(liveSession_);
    if (telemetry::enabled()) {
        if (completed) {
            metrics_.sessionsCompleted->add();
        } else {
            abortedCounter(liveSession_.code)->add();
        }
        metrics_.translationMs->observe(
            std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
                liveSession_.translationTime())
                .count());
    }
    const std::uint64_t spanSession = tracer_.inSession() ? tracer_.sessionOrdinal() : 0;
    if (tracer_.inSession()) {
        const net::TimePoint now = network_.network().now();
        if (waitSpan_ != 0) {
            // The wait genuinely ends here (watchdog / budget exhaustion),
            // not as a truncation artifact.
            tracer_.end(waitSpan_, now);
        }
        const telemetry::SpanId root = tracer_.sessionSpan();
        tracer_.attr(root, "result",
                     completed ? "completed" : failureCauseName(liveSession_.cause));
        if (!completed) {
            tracer_.attr(root, "error_code",
                         std::to_string(errc::to_error_code(liveSession_.code)));
            tracer_.attr(root, "error_name", errc::to_string(liveSession_.code));
        }
        tracer_.attr(root, "messages_in", std::to_string(liveSession_.messagesIn));
        tracer_.attr(root, "messages_out", std::to_string(liveSession_.messagesOut));
        tracer_.attr(root, "retransmits", std::to_string(liveSession_.retransmits));
        tracer_.attr(root, "translation_us",
                     std::to_string(liveSession_.translationTime().count()));
        tracer_.endSession(now);
    }
    waitSpan_ = 0;
    if (recorder_.inSession()) {
        recorder_.endSession(network_.network().now().time_since_epoch().count(),
                             errc::to_error_code(liveSession_.code),
                             static_cast<std::uint8_t>(liveSession_.cause),
                             liveSession_.completed, liveSession_.messagesIn,
                             liveSession_.messagesOut, liveSession_.retransmits);
        // Any non-zero terminal code ships a postmortem bundle to the spool:
        // the captured events plus everything replay needs to re-run them.
        if (!liveSession_.completed && options_.postmortemSpool != nullptr &&
            recorder_.last() != nullptr) {
            const telemetry::FlightRecorder::SessionLog& log = *recorder_.last();
            telemetry::PostmortemBundle bundle;
            bundle.bridge = merged_->name();
            bundle.caseSlug = options_.recorderCase;
            bundle.bridgeHost = options_.bridgeHost;
            bundle.shard = options_.shardId;
            bundle.sessionOrdinal = sessionOrdinal_;
            bundle.sessionSeed = sessionSeed_;
            bundle.retrySeed = retrySeedInEffect_;
            bundle.retryDraws = sessionStartRetryDraws_;
            bundle.modelIdentity = options_.modelIdentity;
            bundle.abortCode = errc::to_error_code(liveSession_.code);
            bundle.cause = static_cast<std::uint8_t>(liveSession_.cause);
            bundle.processingDelayUs = options_.processingDelay.count();
            bundle.sessionTimeoutUs = options_.sessionTimeout.count();
            bundle.receiveTimeoutUs = options_.receiveTimeout.count();
            bundle.retransmitJitterUs = options_.retransmitJitter.count();
            bundle.idleTimeoutUs = options_.idleTimeout.count();
            bundle.tcpConnectRetryDelayUs = options_.tcpConnectRetryDelay.count();
            bundle.tcpConnectRetryMaxDelayUs = options_.tcpConnectRetryMaxDelay.count();
            bundle.maxRetransmits = options_.maxRetransmits;
            bundle.tcpConnectAttempts = options_.tcpConnectAttempts;
            bundle.retransmitBackoffMicros = static_cast<std::int64_t>(
                options_.retransmitBackoff * 1e6 + 0.5);
            bundle.tcpMaxBacklogBytes = options_.tcpMaxBacklogBytes;
            bundle.truncated = log.truncated;
            bundle.droppedEvents = log.droppedEvents;
            bundle.events = log.events;
            if (spanSession != 0) {
                for (telemetry::Span& span : spans_.snapshot()) {
                    if (span.session == spanSession) bundle.spans.push_back(std::move(span));
                }
            }
            options_.postmortemSpool->write(bundle);
        }
    }
    if (telemetry::enabled()) {
        metrics_.spansDropped->set(static_cast<std::int64_t>(spans_.dropped()));
        metrics_.historyEvicted->set(static_cast<std::int64_t>(sessions_.evicted()));
        metrics_.arenaBytes->set(static_cast<std::int64_t>(rxArena_.bytesReserved()));
        metrics_.arenaChunks->set(static_cast<std::int64_t>(rxArena_.chunkCount()));
        metrics_.recorderBytes->set(static_cast<std::int64_t>(recorder_.bytesReserved()));
    }
    if (timeoutEvent_) {
        network_.network().scheduler().cancel(*timeoutEvent_);
        timeoutEvent_.reset();
    }
    cancelIdleTimeout();
    cancelRetransmit();
    lastSentPayload_.reset();
    retransmitsUsed_ = 0;
    STARLINK_LOG(Info, "engine") << "session " << (completed ? "completed" : "aborted")
                                 << " after " << liveSession_.messagesIn << " in / "
                                 << liveSession_.messagesOut << " out"
                                 << (completed ? ""
                                               : std::string(" (cause: ") +
                                                     failureCauseName(liveSession_.cause) +
                                                     ", code: " +
                                                     errc::to_string(liveSession_.code) + ")");
    if (onSessionComplete) onSessionComplete(liveSession_);

    sessionActive_ = false;
    sendPending_ = false;
    lastWasDelta_ = false;
    merged_->reset();
    network_.resetSession();
    current_ = merged_->initialState();
    // Every holder of arena-backed views is gone (stored instances reset
    // above, trace copies materialized): rewind the arena, keeping its
    // chunks, so the next session parses into warm memory.
    rxArena_.reset();
}

void AutomataEngine::armIdleTimeout() {
    cancelIdleTimeout();
    if (!sessionActive_ || options_.idleTimeout.count() <= 0) return;
    idleEvent_ = network_.network().scheduler().schedule(options_.idleTimeout, [this] {
        idleEvent_.reset();
        if (!sessionActive_) return;
        STARLINK_LOG(Warn, "engine") << "session idle in state " << current_ << " for "
                                     << options_.idleTimeout.count() << "us; evicting";
        completeSession(false, FailureCause::Timeout, errc::ErrorCode::EngineIdleTimeout);
    });
}

void AutomataEngine::cancelIdleTimeout() {
    if (idleEvent_) {
        network_.network().scheduler().cancel(*idleEvent_);
        idleEvent_.reset();
    }
}

}  // namespace starlink::engine
