// Bounded session lifecycle records (ISSUE 7: million-session capacity).
//
// A long-running bridge serves conversations indefinitely; keeping every
// SessionRecord forever is the unbounded-residency bug this subsystem fixes.
// SessionHistory is a capped ring (deque, like automata::Trace) with
// AGGREGATE counters that survive eviction: total ended/completed/aborted,
// message and retransmit totals, and the per-taxonomy-code abort histogram.
// Evicting a record therefore loses only its per-session detail, never the
// bridge's lifetime accounting -- the soak suite asserts the aggregates stay
// exact across >=100k sessions while the ring stays at capacity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "common/error.hpp"
#include "net/clock.hpp"

namespace starlink::engine {

/// Why a session ended without completing.
enum class FailureCause {
    None,            ///< the session completed (or was aborted pre-classification)
    Timeout,         ///< watchdog fired, or the retransmission budget ran dry
    ConnectRefused,  ///< a tcp connect stayed refused after bounded retries
    PeerClosed,      ///< the tcp peer vanished mid-session
    DecodeError,     ///< translation/compose/encode failed at runtime
};

constexpr const char* failureCauseName(FailureCause cause) {
    switch (cause) {
        case FailureCause::None: return "none";
        case FailureCause::Timeout: return "timeout";
        case FailureCause::ConnectRefused: return "connect-refused";
        case FailureCause::PeerClosed: return "peer-closed";
        case FailureCause::DecodeError: return "decode-error";
    }
    return "unknown";
}

/// The coarse cause's taxonomy code. Abort paths that know more (watchdog vs
/// retry-budget, the exact exception) record a more precise code directly;
/// this mapping is the floor every abort is guaranteed to reach.
constexpr errc::ErrorCode to_error_code(FailureCause cause) {
    switch (cause) {
        case FailureCause::None: return errc::ErrorCode::Ok;
        case FailureCause::Timeout: return errc::ErrorCode::EngineSessionTimeout;
        case FailureCause::ConnectRefused: return errc::ErrorCode::EngineConnectRefused;
        case FailureCause::PeerClosed: return errc::ErrorCode::EnginePeerClosed;
        case FailureCause::DecodeError: return errc::ErrorCode::EngineDecode;
    }
    return errc::ErrorCode::Unclassified;
}

/// Outcome record for one bridged conversation.
struct SessionRecord {
    net::TimePoint firstReceive{};
    /// First send back on the INITIATING protocol -- "the translated output
    /// response" of the paper's Fig 12(b) measure. (A session may continue
    /// past it: in the UPnP-client cases the control point still fetches the
    /// device description over HTTP afterwards.)
    std::optional<net::TimePoint> clientReply;
    net::TimePoint lastSend{};
    std::size_t messagesIn = 0;
    /// Every protocol message the engine put on the wire, INCLUDING
    /// engine-initiated retransmissions of a lapsed request.
    std::size_t messagesOut = 0;
    /// Requests re-sent by the engine because a reply deadline lapsed.
    std::size_t retransmits = 0;
    bool completed = false;
    /// FailureCause::None iff completed.
    FailureCause cause = FailureCause::None;
    /// Exact taxonomy code of the abort (ErrorCode::Ok iff completed). Where
    /// `cause` says "Timeout", `code` distinguishes the watchdog
    /// (engine.session-timeout) from a drained retransmission budget
    /// (engine.retry-exhausted); where it says "DecodeError", `code` carries
    /// the precise failure of the throwing layer (e.g. merge.translation-
    /// rejected, engine.field-unresolved).
    errc::ErrorCode code = errc::ErrorCode::Ok;
    /// Registry version of the model set that served this session
    /// (EngineOptions::modelVersion; 0 = no registry in play). The terminal
    /// record carries it so a swap mid-run is auditable session by session.
    std::uint64_t modelVersion = 0;

    /// First message received by the framework until the translated
    /// response left on the output socket (paper section VI).
    net::Duration translationTime() const {
        const net::TimePoint end = clientReply.value_or(lastSend);
        return std::chrono::duration_cast<net::Duration>(end - firstReceive);
    }

    /// Whole conversation, including any post-reply legs.
    net::Duration sessionTime() const {
        return std::chrono::duration_cast<net::Duration>(lastSend - firstReceive);
    }
};

/// Capped ring of SessionRecords with eviction-proof aggregates. The read
/// side is vector-shaped (size/operator[]/front/back/begin/end) so existing
/// `engine.sessions()` consumers keep working unchanged; they now see a
/// sliding window of the most recent records plus exact lifetime totals.
class SessionHistory {
public:
    static constexpr std::size_t kDefaultCapacity = 4096;

    /// capacity 0 = unbounded (keep every record; the pre-fix behaviour,
    /// useful in tests that replay a known-small session count).
    explicit SessionHistory(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

    /// Appends one finished session, folding it into the aggregates first so
    /// an immediate eviction cannot lose it.
    void record(SessionRecord record) {
        ++totalEnded_;
        totalMessagesIn_ += record.messagesIn;
        totalMessagesOut_ += record.messagesOut;
        totalRetransmits_ += record.retransmits;
        if (record.completed) {
            ++totalCompleted_;
        } else {
            ++totalAborted_;
            ++abortsByCode_[record.code];
        }
        records_.push_back(std::move(record));
        while (capacity_ != 0 && records_.size() > capacity_) {
            records_.pop_front();
            ++evicted_;
        }
    }

    // -- vector-compatible window access ------------------------------------
    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    const SessionRecord& operator[](std::size_t i) const { return records_[i]; }
    const SessionRecord& front() const { return records_.front(); }
    const SessionRecord& back() const { return records_.back(); }
    std::deque<SessionRecord>::const_iterator begin() const { return records_.begin(); }
    std::deque<SessionRecord>::const_iterator end() const { return records_.end(); }

    // -- lifetime aggregates (exact; survive eviction) -----------------------
    std::uint64_t totalEnded() const { return totalEnded_; }
    std::uint64_t totalCompleted() const { return totalCompleted_; }
    std::uint64_t totalAborted() const { return totalAborted_; }
    std::uint64_t totalMessagesIn() const { return totalMessagesIn_; }
    std::uint64_t totalMessagesOut() const { return totalMessagesOut_; }
    std::uint64_t totalRetransmits() const { return totalRetransmits_; }
    /// Records dropped off the ring's old end since construction.
    std::uint64_t evicted() const { return evicted_; }
    /// Taxonomy-coded abort histogram: code -> count of aborted sessions.
    const std::map<errc::ErrorCode, std::uint64_t>& abortsByCode() const {
        return abortsByCode_;
    }

    std::size_t capacity() const { return capacity_; }

private:
    std::size_t capacity_ = kDefaultCapacity;
    std::deque<SessionRecord> records_;
    std::uint64_t totalEnded_ = 0;
    std::uint64_t totalCompleted_ = 0;
    std::uint64_t totalAborted_ = 0;
    std::uint64_t totalMessagesIn_ = 0;
    std::uint64_t totalMessagesOut_ = 0;
    std::uint64_t totalRetransmits_ = 0;
    std::uint64_t evicted_ = 0;
    std::map<errc::ErrorCode, std::uint64_t> abortsByCode_;
};

}  // namespace starlink::engine
