// The Automata Engine (paper section IV-B).
//
// Executes a merged automaton: listens at receiving states, applies
// translation logic and composes outgoing messages at sending states, and
// crosses delta-transitions (running their lambda network actions) at bridge
// states. One engine instance is one deployed interoperability bridge.
//
// Step discipline. After arriving in a state the engine:
//   1. takes the outgoing delta-transition, unless the state was just
//      entered through one (bicolored nodes such as Fig 4's node 1 carry
//      both the entering delta and the eventual reply send; the arrival
//      action disambiguates which applies);
//   2. otherwise takes the unique outgoing send-transition, composing the
//      message from the translation-logic assignments that target
//      (state, message type) -- the compose step is charged
//      options.processingDelay of virtual time, modelling the interpretation
//      cost the paper measures in Fig 12(b);
//   3. otherwise waits for a receive, or completes the session when the
//      state is accepting with no way out.
//
// Queue placement: a received message instance is stored at the TARGET state
// of its receive-transition. (The paper's prose stores it at the listening
// state, but its own translation specs -- Fig 5 line 4, Fig 10 -- address
// the instance at the entered state; we follow the specs. See DESIGN.md.)
// A sent instance is stored at the state it was composed in.
//
// Sessions: the engine serves request/response conversations repeatedly.
// A session opens at the first receive, closes when an accepting state of
// the merged automaton is reached with nothing left to do (or on timeout),
// and resets all queues and network-session state for the next client.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/automata/trace.hpp"
#include "core/engine/network_engine.hpp"
#include "core/engine/session_history.hpp"
#include "core/mdl/codec.hpp"
#include "core/mdl/rx_arena.hpp"
#include "core/merge/merged_automaton.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/recorder.hpp"
#include "core/telemetry/span.hpp"

namespace starlink::engine {

struct EngineOptions {
    /// Virtual-time cost charged per composed message (parse/translate/
    /// compose interpretation overhead). The default is calibrated so the
    /// Fig 12(b) medians land near the paper's (see EXPERIMENTS.md).
    net::Duration processingDelay = net::ms(12);
    /// Abort a session that has not completed within this window (0 = no
    /// timeout). The default watchdog comfortably exceeds the slowest healthy
    /// conversation (UPnP->SLP, ~6.5 s of virtual time) so it only fires on
    /// genuinely wedged sessions and leaves Fig 12(b) untouched.
    net::Duration sessionTimeout = net::ms(30000);
    /// Receive deadline while the session waits for the next inbound message
    /// (0 = never retransmit). The default clears the slowest healthy reply
    /// (the SLP service agent's ~6.1 s) so retransmission never fires on a
    /// loss-free network.
    net::Duration receiveTimeout = net::ms(8000);
    /// Per-state overrides of receiveTimeout, keyed by merged-automaton state
    /// id -- tighten the deadline at states whose peer answers fast.
    std::map<std::string, net::Duration> stateReceiveTimeouts;
    /// How often the last sent request may be re-sent before the wait is
    /// declared dead (FailureCause::Timeout). Applies per wait state; only
    /// datagram (udp) requests are ever re-sent -- tcp is reliable and its
    /// failures surface as connect-refused/peer-closed faults instead.
    int maxRetransmits = 2;
    /// Deadline multiplier applied per retransmission attempt.
    double retransmitBackoff = 2.0;
    /// Uniform random extra delay added to each retransmission deadline,
    /// drawn from an engine-local generator (seeded by retrySeed) so enabling
    /// jitter never perturbs the network's random sequence. 0 = none.
    net::Duration retransmitJitter = net::ms(0);
    std::uint64_t retrySeed = 0x5eedULL;
    /// Forwarded to the network engine: bounded tcp connect retry budget.
    int tcpConnectAttempts = 3;
    net::Duration tcpConnectRetryDelay = net::ms(50);
    /// Forwarded: saturation point of the doubling connect backoff.
    net::Duration tcpConnectRetryMaxDelay = net::ms(5000);
    /// Forwarded: byte cap on sends queued while a tcp connect is pending
    /// (0 = unbounded); overflow sheds with net.backlog-overflow.
    std::size_t tcpMaxBacklogBytes = 256 * 1024;
    /// Abort a live session when NO message moves in either direction for
    /// this long (0 = disabled). Unlike sessionTimeout -- a fixed window from
    /// the first receive -- this deadline re-arms on every message, so it
    /// evicts only genuinely silent sessions, bounding how long an idle
    /// conversation can pin engine/arena state.
    net::Duration idleTimeout = net::ms(0);
    /// Capacity of the completed-session history ring (0 = unbounded, the
    /// pre-capacity-fix behaviour). Aggregates -- including the taxonomy-
    /// coded abort histogram -- survive eviction; see session_history.hpp.
    std::size_t sessionHistoryCapacity = SessionHistory::kDefaultCapacity;
    /// Cap on the transition trace ring queried by the history operator.
    /// 0 disables transition recording entirely.
    std::size_t traceCapacity = automata::Trace::kDefaultCapacity;
    /// Capacity of the per-engine span buffer. 0 (the default) disables span
    /// collection, so a bridge that nobody is tracing records nothing.
    std::size_t spanCapacity = 0;
    /// Registry the engine's metrics land in. nullptr (the default) selects
    /// the process-wide MetricsRegistry::global(). The sharded driver hands
    /// every engine its shard's private registry so the hot path never shares
    /// a cache line across threads; shards are merged at export
    /// (MetricsRegistry::mergeFrom). The registry must outlive the engine.
    telemetry::MetricsRegistry* metrics = nullptr;
    /// Per-session byte cap of the flight recorder's wire-event log. 0 (the
    /// default) disables recording entirely -- same contract as spanCapacity.
    std::size_t recorderSessionBytes = 0;
    /// Where abort postmortem bundles go. nullptr = don't spool (the recorder
    /// ring is still queryable in-process). Must outlive the engine.
    telemetry::PostmortemSpool* postmortemSpool = nullptr;
    /// Provenance stamped into postmortem bundles: the models::caseSlug when
    /// deployed via forCase (else ""), the owning shard, and the model-set
    /// fingerprint (filled by Starlink::deploy when left 0).
    std::string recorderCase;
    std::int32_t shardId = 0;
    std::uint64_t modelIdentity = 0;
    /// Registry version of the model set this engine deploys (0 = no
    /// registry in play). Stamped into every SessionRecord and, when
    /// non-zero, baked into the engine's metric labels as `model_version`
    /// so per-version session/abort counters separate canary from stable.
    std::uint64_t modelVersion = 0;
    /// Host the bridge is deployed at (filled by Starlink::deploy when left
    /// empty); bundles carry it so replay rebuilds the same topology.
    std::string bridgeHost;
};

// FailureCause, SessionRecord and the SessionHistory ring moved to
// session_history.hpp (included above) when the history became bounded;
// re-exported here so existing includes keep resolving.

class AutomataEngine {
public:
    AutomataEngine(std::shared_ptr<merge::MergedAutomaton> merged,
                   std::map<std::string, std::shared_ptr<mdl::MessageCodec>> codecs,
                   std::shared_ptr<merge::TranslationRegistry> translations,
                   NetworkEngine& network, automata::ColorRegistry& colors,
                   EngineOptions options = {});
    ~AutomataEngine();

    /// Attaches every component color and starts listening at q0.
    void start();

    /// Stops serving (the engine ignores traffic afterwards).
    void stop() { running_ = false; }

    bool running() const { return running_; }
    const std::string& currentState() const { return current_; }

    /// Recent session records (bounded ring) plus eviction-proof lifetime
    /// aggregates; see EngineOptions::sessionHistoryCapacity.
    const SessionHistory& sessions() const { return sessions_; }
    const automata::Trace& trace() const { return trace_; }
    const merge::MergedAutomaton& merged() const { return *merged_; }

    /// Completed spans of recent sessions (empty unless
    /// EngineOptions::spanCapacity > 0). Span::session ordinals are 1-based
    /// indices into sessions().
    const telemetry::SpanBuffer& spans() const { return spans_; }

    /// Fired on every completed (or timed-out) session.
    std::function<void(const SessionRecord&)> onSessionComplete;

    /// Rewinds the retransmission-jitter generator to a fresh seed. The
    /// sharded driver calls this before every session so a session's jitter
    /// draws depend only on its own seed, never on how many retransmissions
    /// earlier sessions of the pooled engine burned.
    void reseedRetry(std::uint64_t seed) {
        retryRng_ = Rng(seed);
        retrySeedInEffect_ = seed;
        retryDrawsSinceSeed_ = 0;
    }

    /// Records the driver-derived session seed for postmortem provenance
    /// (the engine never consumes it itself).
    void noteSessionSeed(std::uint64_t seed) { sessionSeed_ = seed; }

    /// Advances the jitter generator by `draws` without using the values --
    /// replay's tool for re-aligning a pooled engine's rng to the state it
    /// had when the captured session started.
    void burnRetryDraws(std::uint64_t draws) {
        for (std::uint64_t i = 0; i < draws; ++i) retryRng_.next();
        retryDrawsSinceSeed_ += draws;
    }

    /// The wire-level flight recorder (disabled unless
    /// EngineOptions::recorderSessionBytes > 0).
    const telemetry::FlightRecorder& recorder() const { return recorder_; }

    /// Codec serving a component color; nullptr for unknown colors. Lets the
    /// postmortem printer decode captured payloads per leg.
    std::shared_ptr<mdl::MessageCodec> codecForColor(std::uint64_t k) const {
        const automata::ColoredAutomaton* component = componentByColor(k);
        return component ? codecFor(*component) : nullptr;
    }

private:
    void onNetworkMessage(std::uint64_t colorK, const Bytes& payload, const net::Address& from);
    void onNetworkFault(std::uint64_t colorK, NetworkFault fault, const std::string& detail);
    void proceed();
    /// proceed() with runtime translation failures contained: the session
    /// aborts, the connector survives.
    void safeProceed();
    void takeDelta(const merge::DeltaTransition& delta);
    void scheduleSend(const automata::Transition& transition);
    void performSend(const automata::Transition& transition, telemetry::SpanId translateSpan);
    AbstractMessage buildOutgoing(const std::string& stateId, const std::string& messageType);
    Value resolveRef(const merge::FieldRef& ref, const std::string& transform) const;
    void completeSession(bool completed, FailureCause cause = FailureCause::None,
                         errc::ErrorCode code = errc::ErrorCode::Ok);
    net::Duration receiveDeadlineFor(const std::string& state) const;
    void armRetransmit();
    void onReceiveDeadline();
    void cancelRetransmit();
    /// (Re-)arms the idle deadline; called on every message in either
    /// direction while a session is live. No-op when idleTimeout is 0.
    void armIdleTimeout();
    void cancelIdleTimeout();
    static FailureCause classify(const std::exception& error);

    /// State change with per-state dwell accounting (virtual ms spent in the
    /// state being left, while a session is live).
    void enterState(const std::string& next);
    telemetry::Histogram* dwellHistogram(const std::string& state);

    const automata::ColoredAutomaton* componentByColor(std::uint64_t k) const;
    std::shared_ptr<mdl::MessageCodec> codecFor(const automata::ColoredAutomaton& a) const;

    std::shared_ptr<merge::MergedAutomaton> merged_;
    std::map<std::string, std::shared_ptr<mdl::MessageCodec>> codecs_;
    std::shared_ptr<merge::TranslationRegistry> translations_;
    NetworkEngine& network_;
    automata::ColorRegistry& colors_;
    EngineOptions options_;

    bool running_ = false;
    std::string current_;
    bool lastWasDelta_ = false;
    bool sendPending_ = false;
    bool sessionActive_ = false;
    SessionRecord liveSession_;
    std::optional<net::EventId> timeoutEvent_;
    std::optional<net::EventId> idleEvent_;

    // Retransmission state for the current wait. The engine keeps the last
    // encoded request so a lapsed reply deadline re-sends identical bytes.
    // retrySeedInEffect_/retryDrawsSinceSeed_ shadow the generator's exact
    // position so a postmortem bundle can re-derive it (pooled engines are
    // not reseeded per session outside the sharded driver).
    Rng retryRng_;
    std::uint64_t retrySeedInEffect_ = 0;
    std::uint64_t retryDrawsSinceSeed_ = 0;
    std::uint64_t sessionStartRetryDraws_ = 0;
    std::uint64_t sessionSeed_ = 0;
    std::uint64_t sessionOrdinal_ = 0;
    std::optional<net::EventId> retransmitEvent_;
    std::optional<Bytes> lastSentPayload_;
    std::uint64_t lastSentColor_ = 0;
    int retransmitsUsed_ = 0;

    /// Compose scratch buffer, reused across every send of the engine's
    /// lifetime so steady-state sessions stop allocating per message.
    Bytes composeScratch_;

    /// Receive arena: parsed String/Bytes field values borrow from the single
    /// datagram copy stored here instead of owning fresh heap strings. Reset
    /// (chunks retained) at every session boundary, so steady-state sessions
    /// parse with zero per-message heap allocation. Anything that outlives
    /// the session (the trace ring) is materialized first.
    mdl::RxArena rxArena_;

    SessionHistory sessions_;
    automata::Trace trace_;

    // --- telemetry -------------------------------------------------------
    // Spans: one tracer per engine, shared with the network engine for the
    // tcp-connect leg. Metrics: pointers cached at construction so the hot
    // path never touches the registry mutex; every metric site is gated on
    // telemetry::enabled().
    telemetry::SpanBuffer spans_;
    telemetry::SessionTracer tracer_;
    telemetry::FlightRecorder recorder_;
    telemetry::SpanId waitSpan_ = 0;
    net::TimePoint stateEnteredAt_{};
    struct EngineMetrics {
        telemetry::Counter* sessionsCompleted = nullptr;
        telemetry::Counter* messagesIn = nullptr;
        telemetry::Counter* messagesOut = nullptr;
        telemetry::Counter* retransmits = nullptr;
        telemetry::Histogram* translationMs = nullptr;
        // Previously-invisible accounting, refreshed at session boundaries:
        // span-ring drops, history evictions, arena/recorder memory held.
        telemetry::Gauge* spansDropped = nullptr;
        telemetry::Gauge* historyEvicted = nullptr;
        telemetry::Gauge* arenaBytes = nullptr;
        telemetry::Gauge* arenaChunks = nullptr;
        telemetry::Gauge* recorderBytes = nullptr;
    };
    EngineMetrics metrics_;
    /// Abort counters labeled by exact taxonomy code, resolved lazily on the
    /// first abort with that code (the code space is too wide to pre-register
    /// like the old 5-cause array; aborts are off the hot path anyway).
    telemetry::Counter* abortedCounter(errc::ErrorCode code);
    std::map<errc::ErrorCode, telemetry::Counter*> abortedByCode_;
    /// Where this engine's metrics live: EngineOptions::metrics or the
    /// process-global registry.
    telemetry::MetricsRegistry* registry_ = nullptr;
    std::map<std::string, telemetry::Histogram*> dwellByState_;
};

}  // namespace starlink::engine
