#include "core/bridge/replay.hpp"

#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/bridge/models.hpp"
#include "core/bridge/starlink.hpp"
#include "core/telemetry/metrics.hpp"
#include "net/scheduler.hpp"
#include "net/sim_network.hpp"

namespace starlink::bridge {

namespace {

net::Address parseAddress(const std::string& text) {
    const auto pos = text.rfind(':');
    if (pos == std::string::npos || pos + 1 >= text.size()) {
        throw SpecError(errc::ErrorCode::SpecViolation,
                        "replay: malformed captured address '" + text + "'");
    }
    int port = 0;
    try {
        port = std::stoi(text.substr(pos + 1));
    } catch (const std::exception&) {
        throw SpecError(errc::ErrorCode::SpecViolation,
                        "replay: malformed captured port in '" + text + "'");
    }
    return net::Address{text.substr(0, pos), static_cast<std::uint16_t>(port)};
}

/// Injection endpoints reconstructed from the capture. Every stub lives at
/// the ORIGINAL sender's address so the engine's notePeer/reply routing sees
/// the same peers it saw live.
struct Injector {
    // udp stub sockets, keyed by the captured from-address.
    std::map<std::string, std::unique_ptr<net::UdpSocket>> udp;
    // Listeners at the targets the bridge tcp-connected to (captured
    // TcpConnect outcome=connected), keyed by target address; the accepted
    // connection is the channel for client-color inbound chunks.
    std::map<std::string, std::unique_ptr<net::TcpListener>> listeners;
    std::map<std::string, std::shared_ptr<net::TcpConnection>> accepted;
    std::map<std::string, std::vector<Bytes>> pendingByTarget;
    // Outbound stub connections INTO the bridge's listener (server-color
    // inbound chunks), keyed by the captured peer from-address.
    std::map<std::string, std::shared_ptr<net::TcpConnection>> stubs;
    std::map<std::string, bool> stubConnecting;
    std::map<std::string, std::vector<Bytes>> pendingByStub;
    // color -> connected target (for client-color rx and peer-closed faults).
    std::map<std::uint64_t, std::string> targetByColor;
    // color -> stub keys (for server-side peer-closed faults).
    std::map<std::uint64_t, std::vector<std::string>> stubKeysByColor;
};

std::string describeRecordMismatch(const telemetry::WireEvent& want,
                                   const engine::SessionRecord& got) {
    std::ostringstream out;
    out << "session record diverged: captured {completed=" << int(want.completed)
        << " code=" << want.code << " in=" << want.messagesIn << " out=" << want.messagesOut
        << " retransmits=" << want.retransmits << "} replayed {completed=" << got.completed
        << " code=" << errc::to_error_code(got.code) << " in=" << got.messagesIn
        << " out=" << got.messagesOut << " retransmits=" << got.retransmits << "}";
    return out.str();
}

}  // namespace

ReplayComparison replayBundle(const telemetry::PostmortemBundle& bundle,
                              std::size_t maxEvents) {
    const std::optional<models::Case> caseId = models::caseBySlug(bundle.caseSlug);
    if (!caseId) {
        throw SpecError(errc::ErrorCode::SpecViolation,
                        "replay: unknown case slug '" + bundle.caseSlug +
                            "' (only bridges deployed from models::forCase are replayable)");
    }
    const std::string host = bundle.bridgeHost.empty() ? "10.0.0.9" : bundle.bridgeHost;
    return replayBundle(bundle, models::forCase(*caseId, host), maxEvents);
}

ReplayComparison replayBundle(const telemetry::PostmortemBundle& bundle,
                              const models::DeploymentSpec& spec, std::size_t maxEvents) {
    // The identity gate comes FIRST -- before the capture is decoded, before
    // any model document is parsed, before anything is deployed. A bundle
    // whose fingerprint does not match these models must be rejected with
    // zero side effects: re-injecting a capture into different automata
    // would produce a confidently wrong diff.
    if (bundle.modelIdentity != 0 && models::modelSetIdentity(spec) != bundle.modelIdentity) {
        throw SpecError(errc::ErrorCode::BridgeIdentityMismatch,
                        "replay: the '" + bundle.caseSlug +
                            "' model set does not match this bundle's identity fingerprint (" +
                            std::to_string(bundle.modelIdentity) +
                            "); the replay would exercise different automata");
    }
    if (bundle.truncated) {
        throw SpecError(errc::ErrorCode::SpecViolation,
                        "replay: capture is truncated (" + std::to_string(bundle.droppedEvents) +
                            " events dropped at the recorder's byte cap); the injection "
                            "schedule is incomplete -- re-record with a larger --record cap");
    }
    const std::string host = bundle.bridgeHost.empty() ? "10.0.0.9" : bundle.bridgeHost;

    const std::vector<telemetry::WireEvent> events = telemetry::decodeEvents(bundle.events);

    // Fresh island. Latency/jitter/loss are zeroed: the capture pins every
    // inbound arrival to its original virtual timestamp, so the network must
    // not add a second (differently-seeded) delay on top.
    net::VirtualClock clock;
    net::EventScheduler scheduler(clock);
    net::SimNetwork network(scheduler, /*seed=*/1);
    network.latency().base = net::us(0);
    network.latency().jitter = net::us(0);
    network.latency().lossProbability = 0.0;

    telemetry::MetricsRegistry registry;  // keep replay out of the global registry
    Starlink starlink(network);

    engine::EngineOptions options;
    options.processingDelay = net::Duration{bundle.processingDelayUs};
    options.sessionTimeout = net::Duration{bundle.sessionTimeoutUs};
    options.receiveTimeout = net::Duration{bundle.receiveTimeoutUs};
    options.retransmitJitter = net::Duration{bundle.retransmitJitterUs};
    options.idleTimeout = net::Duration{bundle.idleTimeoutUs};
    options.tcpConnectRetryDelay = net::Duration{bundle.tcpConnectRetryDelayUs};
    options.tcpConnectRetryMaxDelay = net::Duration{bundle.tcpConnectRetryMaxDelayUs};
    options.maxRetransmits = bundle.maxRetransmits;
    options.tcpConnectAttempts = bundle.tcpConnectAttempts;
    options.retransmitBackoff = static_cast<double>(bundle.retransmitBackoffMicros) / 1e6;
    options.tcpMaxBacklogBytes = static_cast<std::size_t>(bundle.tcpMaxBacklogBytes);
    options.retrySeed = bundle.retrySeed;
    options.metrics = &registry;
    options.spanCapacity = 0;
    // Record the replay too -- its Tx events ARE the wire comparison. The cap
    // comfortably exceeds the original log (same traffic, never truncates).
    options.recorderSessionBytes = bundle.events.size() + 64 * 1024;
    options.recorderCase = bundle.caseSlug;
    options.shardId = bundle.shard;

    DeployedBridge& deployed = starlink.deploy(spec, host, options);
    engine::AutomataEngine& engine = deployed.engine();
    engine.reseedRetry(bundle.retrySeed);
    engine.burnRetryDraws(bundle.retryDraws);
    engine.noteSessionSeed(bundle.sessionSeed);

    // -- reconstruct the peers ------------------------------------------------
    Injector inj;

    // Pass 1: targets the bridge successfully connected to get a listener, so
    // the replayed connect succeeds and yields the client-color channel.
    // Targets that only ever refused get NO listener -- the refusal replays
    // naturally from the empty network.
    for (const telemetry::WireEvent& event : events) {
        if (event.kind != telemetry::WireEvent::Kind::TcpConnect) continue;
        if (event.action != telemetry::WireEvent::kConnectConnected) continue;
        const std::string target = event.from;  // TcpConnect carries the target here
        inj.targetByColor[event.color] = target;
        if (inj.listeners.contains(target)) continue;
        const net::Address addr = parseAddress(target);
        auto listener = network.listenTcp(addr.host, addr.port);
        listener->onAccept([&inj, target](std::shared_ptr<net::TcpConnection> conn) {
            inj.accepted[target] = conn;
            for (const Bytes& payload : inj.pendingByTarget[target]) conn->send(payload);
            inj.pendingByTarget[target].clear();
        });
        inj.listeners.emplace(target, std::move(listener));
    }

    // Pass 2: udp stubs, bound at the original sender addresses. Created up
    // front so injection lambdas never race socket creation.
    for (const telemetry::WireEvent& event : events) {
        if (event.kind != telemetry::WireEvent::Kind::Rx) continue;
        if (event.to.empty()) continue;  // client-color tcp chunk, handled via accepted conns
        const automata::Color* color = starlink.colors().lookup(event.color);
        if (color == nullptr || color->transport() != "udp") continue;
        if (inj.udp.contains(event.from)) continue;
        const net::Address addr = parseAddress(event.from);
        inj.udp.emplace(event.from, network.openUdp(addr.host, addr.port));
    }

    // Pass 3: schedule every inbound event at its captured virtual timestamp.
    // scheduleAt keeps insertion order within a timestamp, so same-tick events
    // replay in log order.
    for (const telemetry::WireEvent& event : events) {
        const net::TimePoint when{net::Duration{event.tsUs}};
        switch (event.kind) {
            case telemetry::WireEvent::Kind::Rx: {
                if (event.to.empty()) {
                    // Chunk on a connection the bridge opened: deliver on (or
                    // queue for) the accepted side of the matching listener.
                    const auto targetIt = inj.targetByColor.find(event.color);
                    if (targetIt == inj.targetByColor.end()) break;  // capture gap; skip
                    const std::string target = targetIt->second;
                    const Bytes payload = event.payload;
                    scheduler.scheduleAt(when, [&inj, target, payload] {
                        const auto it = inj.accepted.find(target);
                        if (it != inj.accepted.end() && it->second->isOpen()) {
                            it->second->send(payload);
                        } else {
                            inj.pendingByTarget[target].push_back(payload);
                        }
                    });
                    break;
                }
                const automata::Color* color = starlink.colors().lookup(event.color);
                if (color != nullptr && color->transport() == "tcp") {
                    // Chunk INTO the bridge's listener: replay the peer's
                    // connect lazily at the first chunk's timestamp.
                    const std::string key = event.from;
                    const std::string fromHost = parseAddress(event.from).host;
                    const net::Address dest = parseAddress(event.to);
                    inj.stubKeysByColor[event.color].push_back(key);
                    const Bytes payload = event.payload;
                    scheduler.scheduleAt(when, [&inj, &network, key, fromHost, dest, payload] {
                        const auto it = inj.stubs.find(key);
                        if (it != inj.stubs.end() && it->second->isOpen()) {
                            it->second->send(payload);
                            return;
                        }
                        inj.pendingByStub[key].push_back(payload);
                        if (inj.stubConnecting[key]) return;
                        inj.stubConnecting[key] = true;
                        network.connectTcp(
                            fromHost, dest,
                            [&inj, key](std::shared_ptr<net::TcpConnection> conn) {
                                inj.stubConnecting[key] = false;
                                if (!conn) return;  // bridge died first; injection moot
                                inj.stubs[key] = conn;
                                for (const Bytes& queued : inj.pendingByStub[key]) {
                                    conn->send(queued);
                                }
                                inj.pendingByStub[key].clear();
                            });
                    });
                    break;
                }
                // Datagram: unicast from the original sender's socket to the
                // endpoint the engine received it at (multicast membership is
                // irrelevant -- the capture already resolved delivery).
                const auto sockIt = inj.udp.find(event.from);
                if (sockIt == inj.udp.end()) break;
                net::UdpSocket* sock = sockIt->second.get();
                const net::Address dest = parseAddress(event.to);
                const Bytes payload = event.payload;
                scheduler.scheduleAt(when, [sock, dest, payload] { sock->sendTo(dest, payload); });
                break;
            }
            case telemetry::WireEvent::Kind::Fault: {
                if (event.action != telemetry::WireEvent::kFaultPeerClosed) break;
                // Re-inflict the peer's disappearance on whichever replay
                // endpoint models it: our stub into the bridge, or the
                // accepted side of the bridge's own connect.
                const std::uint64_t colorK = event.color;
                scheduler.scheduleAt(when, [&inj, colorK] {
                    const auto stubKeys = inj.stubKeysByColor.find(colorK);
                    if (stubKeys != inj.stubKeysByColor.end()) {
                        for (const std::string& key : stubKeys->second) {
                            const auto it = inj.stubs.find(key);
                            if (it != inj.stubs.end() && it->second->isOpen()) it->second->close();
                        }
                        return;
                    }
                    const auto targetIt = inj.targetByColor.find(colorK);
                    if (targetIt == inj.targetByColor.end()) return;
                    const auto it = inj.accepted.find(targetIt->second);
                    if (it != inj.accepted.end() && it->second->isOpen()) it->second->close();
                });
                break;
            }
            default:
                break;  // Tx/Transition/Translate/SessionEnd: engine-side, not injected
        }
    }

    // -- run ------------------------------------------------------------------
    std::optional<engine::SessionRecord> replayed;
    engine.onSessionComplete = [&replayed, &engine](const engine::SessionRecord& record) {
        if (replayed) return;
        replayed = record;
        // Stop before any leftover injections (scheduled past the terminal
        // event) can open a SECOND session on the pooled engine.
        engine.stop();
    };
    scheduler.runUntilIdle(maxEvents);

    // -- diff -----------------------------------------------------------------
    ReplayComparison result;
    if (!replayed) {
        result.detail = "replay produced no terminal session record";
        return result;
    }
    result.ran = true;
    result.completed = replayed->completed;
    result.abortCode = errc::to_error_code(replayed->code);
    result.messagesIn = static_cast<std::uint32_t>(replayed->messagesIn);
    result.messagesOut = static_cast<std::uint32_t>(replayed->messagesOut);
    result.retransmits = static_cast<std::uint32_t>(replayed->retransmits);

    const telemetry::WireEvent* captured = nullptr;
    for (const telemetry::WireEvent& event : events) {
        if (event.kind == telemetry::WireEvent::Kind::SessionEnd) captured = &event;
    }
    if (captured == nullptr) {
        result.detail = "capture has no SessionEnd event";
        return result;
    }
    result.recordMatches = (captured->completed != 0) == replayed->completed &&
                           captured->code == errc::to_error_code(replayed->code) &&
                           captured->cause == static_cast<std::uint8_t>(replayed->cause) &&
                           captured->messagesIn == replayed->messagesIn &&
                           captured->messagesOut == replayed->messagesOut &&
                           captured->retransmits == replayed->retransmits;
    if (!result.recordMatches) result.detail = describeRecordMismatch(*captured, *replayed);

    // Wire comparison: the ordered (color, payload) Tx sequence must be
    // byte-identical. Timestamps are deliberately NOT compared -- connect
    // handshakes run faster on the zero-latency island.
    std::vector<const telemetry::WireEvent*> wantTx;
    for (const telemetry::WireEvent& event : events) {
        if (event.kind == telemetry::WireEvent::Kind::Tx) wantTx.push_back(&event);
    }
    const telemetry::FlightRecorder::SessionLog* log = engine.recorder().last();
    std::vector<telemetry::WireEvent> gotEvents =
        log ? telemetry::decodeEvents(log->events) : std::vector<telemetry::WireEvent>{};
    std::vector<const telemetry::WireEvent*> gotTx;
    for (const telemetry::WireEvent& event : gotEvents) {
        if (event.kind == telemetry::WireEvent::Kind::Tx) gotTx.push_back(&event);
    }
    result.originalTx = wantTx.size();
    result.replayedTx = gotTx.size();
    result.wireMatches = wantTx.size() == gotTx.size();
    if (!result.wireMatches) {
        if (result.detail.empty()) {
            result.detail = "outbound message count diverged: captured " +
                            std::to_string(wantTx.size()) + " tx, replayed " +
                            std::to_string(gotTx.size());
        }
    } else {
        for (std::size_t i = 0; i < wantTx.size(); ++i) {
            if (wantTx[i]->color == gotTx[i]->color && wantTx[i]->payload == gotTx[i]->payload) {
                continue;
            }
            result.wireMatches = false;
            if (result.detail.empty()) {
                result.detail = "outbound message " + std::to_string(i) +
                                " diverged (color or payload bytes differ)";
            }
            break;
        }
    }
    return result;
}

}  // namespace starlink::bridge
