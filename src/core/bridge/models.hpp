// The built-in model library: MDL documents, colored automata and bridge
// specifications for the paper's case study (section V).
//
// Everything here is DATA -- XML strings interpreted at runtime by the
// generic framework. No protocol-specific code exists outside these models,
// which is the paper's headline claim: "there is no implementation or
// deployment of legacy code that is specific to the behaviour of an
// individual protocol".
//
// Automata come in two roles. The same protocol is modelled from the side
// the bridge impersonates: Server (the bridge answers that protocol's
// clients) or Client (the bridge queries that protocol's services). State
// ids follow the paper's numbering: SLP s10-s12, SSDP s20-s22, HTTP s30-s32,
// mDNS s40-s42.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace starlink::bridge::models {

enum class Role { Client, Server };

// -- MDL documents (Figs 7 and 11, completed with the reply messages) --------
std::string slpMdl();
std::string dnsMdl();
std::string ssdpMdl();
std::string httpMdl();

// -- colored automata (Figs 1, 2, 3, 9) ---------------------------------------
std::string slpAutomaton(Role role);
std::string mdnsAutomaton(Role role);
std::string ssdpAutomaton(Role role);
/// The HTTP automaton; in Server role it listens on `serverPort` at the
/// bridge host (the LOCATION the bridge advertises must point there).
std::string httpAutomaton(Role role, int serverPort = 8085);

// -- the six interoperability cases (section V) -------------------------------
enum class Case {
    SlpToUpnp,      // 1: SLP client discovers a UPnP device   (Figs 4-5)
    SlpToBonjour,   // 2: SLP client discovers a Bonjour service (Fig 10)
    UpnpToSlp,      // 3: UPnP control point discovers an SLP service
    UpnpToBonjour,  // 4: UPnP control point discovers a Bonjour service
    BonjourToUpnp,  // 5: Bonjour browser discovers a UPnP device
    BonjourToSlp    // 6: Bonjour browser discovers an SLP service
};

inline constexpr Case kAllCases[] = {Case::SlpToUpnp,     Case::SlpToBonjour,
                                     Case::UpnpToSlp,     Case::UpnpToBonjour,
                                     Case::BonjourToUpnp, Case::BonjourToSlp};

const char* caseName(Case c);

/// Stable kebab-case identifier ("slp-to-upnp"); matches the merged-automaton
/// name in the bridge spec, so it doubles as the `bridge` metric label and the
/// CLI case argument. caseName() is the DISPLAY name ("SLP to UPnP") -- never
/// use it as an identifier.
const char* caseSlug(Case c);
/// Inverse of caseSlug(); nullopt for unknown slugs.
std::optional<Case> caseBySlug(const std::string& slug);

/// One protocol's pair of models.
struct ProtocolModel {
    std::string mdlXml;
    std::string automatonXml;
};

/// Everything one deployment needs.
struct DeploymentSpec {
    std::vector<ProtocolModel> protocols;
    std::string bridgeXml;
};

/// Order-sensitive FNV-1a fingerprint over every model document in the spec
/// (each protocol's MDL + automaton, then the bridge XML). Postmortem bundles
/// carry it so replay can refuse to re-inject a capture into different models.
std::uint64_t modelSetIdentity(const DeploymentSpec& spec);

/// Models for a case. `bridgeHost` parameterises the LOCATION the bridge
/// advertises when it impersonates a UPnP device (cases 3 and 4);
/// `bridgeHttpPort` is where its HTTP side listens.
DeploymentSpec forCase(Case c, const std::string& bridgeHost, int bridgeHttpPort = 8085);

/// Line count of the bridge specification (the paper reports "typically
/// around 100 lines of XML" per merged automaton -- experiment E8).
std::size_t bridgeSpecLines(const DeploymentSpec& spec);

// -- the SLP <-> LDAP extension (rich translations, paper section III-A) ------
//
// "...interoperability between two protocols such as SLP and LDAP that both
//  support attribute-based requests is restricted [under subset
//  intermediaries]."  Starlink's per-protocol models carry the attribute
//  predicate through: these bridges translate BOTH the service type and the
//  attribute filter.

std::string ldapMdl();
/// Client role connects to the directory at `directoryHost`:389; server role
/// listens on the bridge host.
std::string ldapAutomaton(Role role, const std::string& directoryHost = "");

/// SLP client -> LDAP directory, predicate included.
DeploymentSpec slpToLdap(const std::string& directoryHost);
/// Same bridge with the predicate assignment REMOVED -- what a greatest-
/// common-divisor intermediary would do; used as the ablation baseline.
DeploymentSpec slpToLdapWithoutPredicate(const std::string& directoryHost);
/// LDAP client -> SLP service, filter carried into the SLP predicate.
DeploymentSpec ldapToSlp();

// -- the WS-Discovery extension (xml MDL dialect) ------------------------------
//
// WS-Discovery's SOAP envelopes exercise the third MDL dialect the paper
// names ("specialised languages for binary messages, text messages and XML
// messages can be plugged into the framework").

std::string wsdMdl();
std::string wsdAutomaton(Role role);
/// SLP client -> WS-Discovery target.
DeploymentSpec slpToWsd();
/// WS-Discovery client -> SLP service.
DeploymentSpec wsdToSlp();

}  // namespace starlink::bridge::models
