#include "core/bridge/models.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace starlink::bridge::models {

// ---------------------------------------------------------------------------
// MDL documents

std::string slpMdl() {
    return R"(<Mdl protocol="SLP" kind="binary">
  <Types>
    <Version>Integer</Version>
    <FunctionID>Integer</FunctionID>
    <MessageLength>Integer[f-msglength()]</MessageLength>
    <Reserved>Integer</Reserved>
    <NextExtOffset>Integer</NextExtOffset>
    <XID>Integer</XID>
    <LangTagLen>Integer[f-length(LangTag)]</LangTagLen>
    <LangTag>String</LangTag>
    <PRLength>Integer[f-length(PRStringTable)]</PRLength>
    <PRStringTable>String</PRStringTable>
    <SRVTypeLength>Integer[f-length(SRVType)]</SRVTypeLength>
    <SRVType>String</SRVType>
    <PredLength>Integer[f-length(PredString)]</PredLength>
    <PredString>String</PredString>
    <SPILength>Integer[f-length(SPIString)]</SPILength>
    <SPIString>String</SPIString>
    <ErrorCode>Integer</ErrorCode>
    <URLEntryCount>Integer</URLEntryCount>
    <URLReserved>Integer</URLReserved>
    <Lifetime>Integer</Lifetime>
    <URLLength>Integer[f-length(URLEntry)]</URLLength>
    <URLEntry>String</URLEntry>
  </Types>
  <Header type="SLP">
    <Version default="2">8</Version>
    <FunctionID>8</FunctionID>
    <MessageLength>24</MessageLength>
    <Reserved>16</Reserved>
    <NextExtOffset>24</NextExtOffset>
    <XID mandatory="true">16</XID>
    <LangTagLen>16</LangTagLen>
    <LangTag default="en">LangTagLen</LangTag>
  </Header>
  <Message type="SLPSrvRequest">
    <Rule>FunctionID=1</Rule>
    <PRLength>16</PRLength>
    <PRStringTable>PRLength</PRStringTable>
    <SRVTypeLength>16</SRVTypeLength>
    <SRVType mandatory="true">SRVTypeLength</SRVType>
    <PredLength>16</PredLength>
    <PredString>PredLength</PredString>
    <SPILength>16</SPILength>
    <SPIString>SPILength</SPIString>
  </Message>
  <Message type="SLPSrvReply">
    <Rule>FunctionID=2</Rule>
    <ErrorCode>16</ErrorCode>
    <URLEntryCount default="1">16</URLEntryCount>
    <URLReserved>8</URLReserved>
    <Lifetime default="65535">16</Lifetime>
    <URLLength>16</URLLength>
    <URLEntry mandatory="true">URLLength</URLEntry>
  </Message>
</Mdl>
)";
}

std::string dnsMdl() {
    return R"(<Mdl protocol="DNS" kind="binary">
  <Types>
    <ID>Integer</ID>
    <Flags>Integer</Flags>
    <QDCount>Integer</QDCount>
    <ANCount>Integer</ANCount>
    <NSCount>Integer</NSCount>
    <ARCount>Integer</ARCount>
    <QName>FQDN</QName>
    <QType>Integer</QType>
    <QClass>Integer</QClass>
    <AName>FQDN</AName>
    <Type>Integer</Type>
    <Class>Integer</Class>
    <TTL>Integer</TTL>
    <RDLength>Integer[f-length(RData)]</RDLength>
    <RData>String</RData>
  </Types>
  <Header type="DNS">
    <ID mandatory="true">16</ID>
    <Flags>16</Flags>
    <QDCount>16</QDCount>
    <ANCount>16</ANCount>
    <NSCount>16</NSCount>
    <ARCount>16</ARCount>
  </Header>
  <Message type="DNS_Question">
    <Rule>QDCount=1</Rule>
    <QName mandatory="true">auto</QName>
    <QType default="12">16</QType>
    <QClass default="1">16</QClass>
  </Message>
  <Message type="DNS_Response">
    <Rule>ANCount=1</Rule>
    <AName mandatory="true">auto</AName>
    <Type default="16">16</Type>
    <Class default="1">16</Class>
    <TTL default="120">32</TTL>
    <RDLength>16</RDLength>
    <RData mandatory="true">RDLength</RData>
  </Message>
</Mdl>
)";
}

std::string ssdpMdl() {
    // Fig 11, completed: the request line tokens split at spaces (char 32)
    // and CRLF (13,10); header lines split at ':' (char 58).
    return R"(<Mdl protocol="SSDP" kind="text">
  <Types>
    <Method>String</Method>
    <URI>String</URI>
    <Version>String</Version>
    <MX>Integer</MX>
  </Types>
  <Header type="SSDP">
    <Method>32</Method>
    <URI>32</URI>
    <Version>13,10</Version>
    <Fields>13,10:58</Fields>
  </Header>
  <Message type="SSDP_MSearch">
    <Rule>Method=M-SEARCH</Rule>
    <URI default="*"/>
    <Version default="HTTP/1.1"/>
    <HOST default="239.255.255.250:1900"/>
    <MAN default="&quot;ssdp:discover&quot;"/>
    <MX default="2"/>
    <ST mandatory="true"/>
  </Message>
  <Message type="SSDP_Resp">
    <Rule>Method=HTTP/1.1</Rule>
    <URI default="200"/>
    <Version default="OK"/>
    <CACHE-CONTROL default="max-age=1800"/>
    <SERVER default="Starlink-Bridge/1.0 UPnP/1.0"/>
    <EXT default=""/>
    <ST mandatory="true"/>
    <USN/>
    <LOCATION mandatory="true"/>
  </Message>
</Mdl>
)";
}

std::string httpMdl() {
    return R"(<Mdl protocol="HTTP" kind="text">
  <Types>
    <Method>String</Method>
    <URI>String</URI>
    <Version>String</Version>
  </Types>
  <Header type="HTTP">
    <Method>32</Method>
    <URI>32</URI>
    <Version>13,10</Version>
    <Fields>13,10:58</Fields>
    <Body/>
  </Header>
  <Message type="HTTP_GET">
    <Rule>Method=GET</Rule>
    <URI mandatory="true"/>
    <Version default="HTTP/1.1"/>
  </Message>
  <Message type="HTTP_OK">
    <Rule>Method=HTTP/1.1</Rule>
    <URI default="200"/>
    <Version default="OK"/>
    <Content-Type default="text/xml"/>
    <Body mandatory="true"/>
  </Message>
</Mdl>
)";
}

// ---------------------------------------------------------------------------
// Colored automata

namespace {

/// Builds a three-state request/response automaton. In Server role the
/// conversation is ?request !response, in Client role !request ?response.
std::string requestResponseAutomaton(const std::string& name, const std::string& color,
                                     const std::string& statePrefix,
                                     const std::string& requestType,
                                     const std::string& responseType, Role role) {
    const std::string s0 = statePrefix + "0";
    const std::string s1 = statePrefix + "1";
    const std::string s2 = statePrefix + "2";
    const std::string first = role == Role::Server ? "receive" : "send";
    const std::string second = role == Role::Server ? "send" : "receive";
    std::string out = "<Automaton name=\"" + name + "\">\n";
    out += "  " + color + "\n";
    out += "  <State id=\"" + s0 + "\" initial=\"true\"/>\n";
    out += "  <State id=\"" + s1 + "\"/>\n";
    out += "  <State id=\"" + s2 + "\" accepting=\"true\"/>\n";
    out += "  <Transition from=\"" + s0 + "\" action=\"" + first + "\" message=\"" +
           requestType + "\" to=\"" + s1 + "\"/>\n";
    out += "  <Transition from=\"" + s1 + "\" action=\"" + second + "\" message=\"" +
           responseType + "\" to=\"" + s2 + "\"/>\n";
    out += "</Automaton>\n";
    return out;
}

}  // namespace

std::string slpAutomaton(Role role) {
    // Fig 1: udp 427, async, multicast 239.255.255.253.
    return requestResponseAutomaton(
        "SLP",
        R"(<Color transport_protocol="udp" port="427" mode="async" multicast="yes" group="239.255.255.253"/>)",
        "s1", "SLPSrvRequest", "SLPSrvReply", role);
}

std::string mdnsAutomaton(Role role) {
    // Fig 9: udp 5353, async, multicast 224.0.0.251.
    return requestResponseAutomaton(
        "mDNS",
        R"(<Color transport_protocol="udp" port="5353" mode="async" multicast="yes" group="224.0.0.251"/>)",
        "s4", "DNS_Question", "DNS_Response", role);
}

std::string ssdpAutomaton(Role role) {
    // Fig 2: udp 1900, async, multicast 239.255.255.250.
    return requestResponseAutomaton(
        "SSDP",
        R"(<Color transport_protocol="udp" port="1900" mode="async" multicast="yes" group="239.255.255.250"/>)",
        "s2", "SSDP_MSearch", "SSDP_Resp", role);
}

std::string httpAutomaton(Role role, int serverPort) {
    // Fig 3: tcp, sync, no multicast. The client side's target host arrives
    // at runtime through set_host; the server side listens on serverPort.
    const int port = role == Role::Server ? serverPort : 80;
    return requestResponseAutomaton(
        "HTTP",
        "<Color transport_protocol=\"tcp\" port=\"" + std::to_string(port) +
            "\" mode=\"sync\" multicast=\"no\"/>",
        "s3", "HTTP_GET", "HTTP_OK", role);
}

// ---------------------------------------------------------------------------
// Bridge specifications

const char* caseName(Case c) {
    switch (c) {
        case Case::SlpToUpnp: return "SLP to UPnP";
        case Case::SlpToBonjour: return "SLP to Bonjour";
        case Case::UpnpToSlp: return "UPnP to SLP";
        case Case::UpnpToBonjour: return "UPnP to Bonjour";
        case Case::BonjourToUpnp: return "Bonjour to UPnP";
        case Case::BonjourToSlp: return "Bonjour to SLP";
    }
    return "?";
}

const char* caseSlug(Case c) {
    switch (c) {
        case Case::SlpToUpnp: return "slp-to-upnp";
        case Case::SlpToBonjour: return "slp-to-bonjour";
        case Case::UpnpToSlp: return "upnp-to-slp";
        case Case::UpnpToBonjour: return "upnp-to-bonjour";
        case Case::BonjourToUpnp: return "bonjour-to-upnp";
        case Case::BonjourToSlp: return "bonjour-to-slp";
    }
    return "?";
}

std::optional<Case> caseBySlug(const std::string& slug) {
    for (Case c : kAllCases) {
        if (slug == caseSlug(c)) return c;
    }
    return std::nullopt;
}

std::uint64_t modelSetIdentity(const DeploymentSpec& spec) {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    auto mix = [&h](const std::string& s) {
        for (unsigned char c : s) {
            h ^= c;
            h *= 1099511628211ull;
        }
        h ^= 0xff;  // document separator so concatenations don't collide
        h *= 1099511628211ull;
    };
    for (const ProtocolModel& p : spec.protocols) {
        mix(p.mdlXml);
        mix(p.automatonXml);
    }
    mix(spec.bridgeXml);
    return h;
}

namespace {

std::string assignment(const std::string& transform, const std::string& targetState,
                       const std::string& targetMessage, const std::string& targetPath,
                       const std::string& sourceState, const std::string& sourceMessage,
                       const std::string& sourcePath) {
    std::string out = transform.empty() ? "    <Assignment>\n"
                                        : "    <Assignment transform=\"" + transform + "\">\n";
    out += "      <Field state=\"" + targetState + "\" message=\"" + targetMessage +
           "\" path=\"" + targetPath + "\"/>\n";
    out += "      <Field state=\"" + sourceState + "\" message=\"" + sourceMessage +
           "\" path=\"" + sourcePath + "\"/>\n";
    out += "    </Assignment>\n";
    return out;
}

std::string constantAssignment(const std::string& targetState, const std::string& targetMessage,
                               const std::string& targetPath, const std::string& value) {
    std::string out = "    <Assignment>\n";
    out += "      <Field state=\"" + targetState + "\" message=\"" + targetMessage +
           "\" path=\"" + targetPath + "\"/>\n";
    out += "      <Constant>" + value + "</Constant>\n";
    out += "    </Assignment>\n";
    return out;
}

/// The Fig 8 XPath form, used for a couple of assignments so both
/// addressing styles stay exercised end to end.
std::string xpathAssignment(const std::string& transform, const std::string& targetState,
                            const std::string& targetMessage, const std::string& targetField,
                            const std::string& sourceState, const std::string& sourceMessage,
                            const std::string& sourceField) {
    std::string out = transform.empty() ? "    <Assignment>\n"
                                        : "    <Assignment transform=\"" + transform + "\">\n";
    out += "      <Field>\n";
    out += "        <State>" + targetState + "</State>\n";
    out += "        <Message>" + targetMessage + "</Message>\n";
    out += "        <Xpath>/field/primitiveField[label='" + targetField + "']/value</Xpath>\n";
    out += "      </Field>\n";
    out += "      <Field>\n";
    out += "        <State>" + sourceState + "</State>\n";
    out += "        <Message>" + sourceMessage + "</Message>\n";
    out += "        <Xpath>/field/primitiveField[label='" + sourceField + "']/value</Xpath>\n";
    out += "      </Field>\n";
    out += "    </Assignment>\n";
    return out;
}

std::string setHostDelta(const std::string& from, const std::string& to,
                         const std::string& refState, const std::string& refMessage,
                         const std::string& refPath) {
    std::string out = "  <DeltaTransition from=\"" + from + "\" to=\"" + to + "\">\n";
    out += "    <Action name=\"set_host\">\n";
    out += "      <Arg state=\"" + refState + "\" message=\"" + refMessage + "\" path=\"" +
           refPath + "\" transform=\"url_host\"/>\n";
    out += "      <Arg state=\"" + refState + "\" message=\"" + refMessage + "\" path=\"" +
           refPath + "\" transform=\"url_port\"/>\n";
    out += "    </Action>\n";
    out += "  </DeltaTransition>\n";
    return out;
}

std::string bridgeLocation(const std::string& bridgeHost, int bridgeHttpPort) {
    return "http://" + bridgeHost + ":" + std::to_string(bridgeHttpPort) + "/desc.xml";
}

}  // namespace

DeploymentSpec forCase(Case c, const std::string& bridgeHost, int bridgeHttpPort) {
    DeploymentSpec spec;
    std::string xml;
    switch (c) {
        case Case::SlpToUpnp: {
            // Fig 4 / Fig 5: SLP server <-> SSDP client + HTTP client.
            spec.protocols = {{slpMdl(), slpAutomaton(Role::Server)},
                              {ssdpMdl(), ssdpAutomaton(Role::Client)},
                              {httpMdl(), httpAutomaton(Role::Client)}};
            xml = "<Bridge name=\"slp-to-upnp\">\n";
            xml += "  <Start state=\"s10\"/>\n  <Accept state=\"s12\"/>\n";
            xml += "  <Equivalence message=\"SSDP_MSearch\" of=\"SLPSrvRequest\"/>\n";
            xml += "  <Equivalence message=\"HTTP_GET\" of=\"SSDP_Resp\"/>\n";
            xml += "  <Equivalence message=\"SLPSrvReply\" of=\"HTTP_OK,SLPSrvRequest\"/>\n";
            xml += "  <TranslationLogic>\n";
            // Fig 5 line 4 -- written in the Fig 8 XPath form.
            xml += xpathAssignment("slp_to_urn", "s20", "SSDP_MSearch", "ST", "s11",
                                   "SLPSrvRequest", "SRVType");
            xml += assignment("url_path", "s30", "HTTP_GET", "URI", "s22", "SSDP_Resp",
                              "LOCATION");
            xml += assignment("url_host", "s30", "HTTP_GET", "Host", "s22", "SSDP_Resp",
                              "LOCATION");
            xml += assignment("url_base", "s11", "SLPSrvReply", "URLEntry", "s32", "HTTP_OK",
                              "Body");
            // Fig 5 line 9: the reply echoes the request's transaction id.
            xml += assignment("", "s11", "SLPSrvReply", "XID", "s11", "SLPSrvRequest", "XID");
            xml += "  </TranslationLogic>\n";
            xml += "  <DeltaTransition from=\"s11\" to=\"s20\"/>\n";
            // Fig 5 line 11: set_host from the SSDP response's LOCATION.
            xml += setHostDelta("s22", "s30", "s22", "SSDP_Resp", "LOCATION");
            xml += "  <DeltaTransition from=\"s32\" to=\"s11\"/>\n";
            xml += "</Bridge>\n";
            break;
        }
        case Case::SlpToBonjour: {
            // Fig 10: SLP server <-> mDNS client.
            spec.protocols = {{slpMdl(), slpAutomaton(Role::Server)},
                              {dnsMdl(), mdnsAutomaton(Role::Client)}};
            xml = "<Bridge name=\"slp-to-bonjour\">\n";
            xml += "  <Start state=\"s10\"/>\n  <Accept state=\"s12\"/>\n";
            xml += "  <Equivalence message=\"DNS_Question\" of=\"SLPSrvRequest\"/>\n";
            xml += "  <Equivalence message=\"SLPSrvReply\" of=\"DNS_Response,SLPSrvRequest\"/>\n";
            xml += "  <TranslationLogic>\n";
            xml += xpathAssignment("slp_to_dnssd", "s40", "DNS_Question", "QName", "s11",
                                   "SLPSrvRequest", "SRVType");
            xml += constantAssignment("s40", "DNS_Question", "ID", "4242");
            xml += assignment("", "s11", "SLPSrvReply", "URLEntry", "s42", "DNS_Response",
                              "RData");
            xml += assignment("", "s11", "SLPSrvReply", "XID", "s11", "SLPSrvRequest", "XID");
            xml += "  </TranslationLogic>\n";
            xml += "  <DeltaTransition from=\"s11\" to=\"s40\"/>\n";
            xml += "  <DeltaTransition from=\"s42\" to=\"s11\"/>\n";
            xml += "</Bridge>\n";
            break;
        }
        case Case::UpnpToSlp: {
            // SSDP server <-> SLP client, then HTTP server for the
            // control point's description fetch.
            spec.protocols = {{ssdpMdl(), ssdpAutomaton(Role::Server)},
                              {slpMdl(), slpAutomaton(Role::Client)},
                              {httpMdl(), httpAutomaton(Role::Server, bridgeHttpPort)}};
            xml = "<Bridge name=\"upnp-to-slp\">\n";
            xml += "  <Start state=\"s20\"/>\n  <Accept state=\"s32\"/>\n";
            xml += "  <Equivalence message=\"SLPSrvRequest\" of=\"SSDP_MSearch\"/>\n";
            xml += "  <Equivalence message=\"SSDP_Resp\" of=\"SLPSrvReply,SSDP_MSearch\"/>\n";
            xml += "  <Equivalence message=\"HTTP_OK\" of=\"SLPSrvReply,HTTP_GET\"/>\n";
            xml += "  <TranslationLogic>\n";
            xml += assignment("urn_to_slp", "s10", "SLPSrvRequest", "SRVType", "s21",
                              "SSDP_MSearch", "ST");
            xml += constantAssignment("s10", "SLPSrvRequest", "XID", "77");
            xml += assignment("", "s21", "SSDP_Resp", "ST", "s21", "SSDP_MSearch", "ST");
            xml += assignment("usn_from_st", "s21", "SSDP_Resp", "USN", "s21", "SSDP_MSearch",
                              "ST");
            xml += constantAssignment("s21", "SSDP_Resp", "LOCATION",
                                      bridgeLocation(bridgeHost, bridgeHttpPort));
            xml += assignment("device_description", "s31", "HTTP_OK", "Body", "s12",
                              "SLPSrvReply", "URLEntry");
            xml += "  </TranslationLogic>\n";
            xml += "  <DeltaTransition from=\"s21\" to=\"s10\"/>\n";
            xml += "  <DeltaTransition from=\"s12\" to=\"s21\"/>\n";
            xml += "  <DeltaTransition from=\"s22\" to=\"s30\"/>\n";
            xml += "</Bridge>\n";
            break;
        }
        case Case::UpnpToBonjour: {
            spec.protocols = {{ssdpMdl(), ssdpAutomaton(Role::Server)},
                              {dnsMdl(), mdnsAutomaton(Role::Client)},
                              {httpMdl(), httpAutomaton(Role::Server, bridgeHttpPort)}};
            xml = "<Bridge name=\"upnp-to-bonjour\">\n";
            xml += "  <Start state=\"s20\"/>\n  <Accept state=\"s32\"/>\n";
            xml += "  <Equivalence message=\"DNS_Question\" of=\"SSDP_MSearch\"/>\n";
            xml += "  <Equivalence message=\"SSDP_Resp\" of=\"DNS_Response,SSDP_MSearch\"/>\n";
            xml += "  <Equivalence message=\"HTTP_OK\" of=\"DNS_Response,HTTP_GET\"/>\n";
            xml += "  <TranslationLogic>\n";
            xml += assignment("urn_to_dnssd", "s40", "DNS_Question", "QName", "s21",
                              "SSDP_MSearch", "ST");
            xml += constantAssignment("s40", "DNS_Question", "ID", "4243");
            xml += assignment("", "s21", "SSDP_Resp", "ST", "s21", "SSDP_MSearch", "ST");
            xml += assignment("usn_from_st", "s21", "SSDP_Resp", "USN", "s21", "SSDP_MSearch",
                              "ST");
            xml += constantAssignment("s21", "SSDP_Resp", "LOCATION",
                                      bridgeLocation(bridgeHost, bridgeHttpPort));
            xml += assignment("device_description", "s31", "HTTP_OK", "Body", "s42",
                              "DNS_Response", "RData");
            xml += "  </TranslationLogic>\n";
            xml += "  <DeltaTransition from=\"s21\" to=\"s40\"/>\n";
            xml += "  <DeltaTransition from=\"s42\" to=\"s21\"/>\n";
            xml += "  <DeltaTransition from=\"s22\" to=\"s30\"/>\n";
            xml += "</Bridge>\n";
            break;
        }
        case Case::BonjourToUpnp: {
            spec.protocols = {{dnsMdl(), mdnsAutomaton(Role::Server)},
                              {ssdpMdl(), ssdpAutomaton(Role::Client)},
                              {httpMdl(), httpAutomaton(Role::Client)}};
            xml = "<Bridge name=\"bonjour-to-upnp\">\n";
            xml += "  <Start state=\"s40\"/>\n  <Accept state=\"s42\"/>\n";
            xml += "  <Equivalence message=\"SSDP_MSearch\" of=\"DNS_Question\"/>\n";
            xml += "  <Equivalence message=\"HTTP_GET\" of=\"SSDP_Resp\"/>\n";
            xml += "  <Equivalence message=\"DNS_Response\" of=\"HTTP_OK,DNS_Question\"/>\n";
            xml += "  <TranslationLogic>\n";
            xml += assignment("dnssd_to_urn", "s20", "SSDP_MSearch", "ST", "s41",
                              "DNS_Question", "QName");
            xml += assignment("url_path", "s30", "HTTP_GET", "URI", "s22", "SSDP_Resp",
                              "LOCATION");
            xml += assignment("url_host", "s30", "HTTP_GET", "Host", "s22", "SSDP_Resp",
                              "LOCATION");
            xml += assignment("", "s41", "DNS_Response", "ID", "s41", "DNS_Question", "ID");
            xml += constantAssignment("s41", "DNS_Response", "Flags", "33792");
            xml += assignment("", "s41", "DNS_Response", "AName", "s41", "DNS_Question",
                              "QName");
            xml += assignment("url_base", "s41", "DNS_Response", "RData", "s32", "HTTP_OK",
                              "Body");
            xml += "  </TranslationLogic>\n";
            xml += "  <DeltaTransition from=\"s41\" to=\"s20\"/>\n";
            xml += setHostDelta("s22", "s30", "s22", "SSDP_Resp", "LOCATION");
            xml += "  <DeltaTransition from=\"s32\" to=\"s41\"/>\n";
            xml += "</Bridge>\n";
            break;
        }
        case Case::BonjourToSlp: {
            spec.protocols = {{dnsMdl(), mdnsAutomaton(Role::Server)},
                              {slpMdl(), slpAutomaton(Role::Client)}};
            xml = "<Bridge name=\"bonjour-to-slp\">\n";
            xml += "  <Start state=\"s40\"/>\n  <Accept state=\"s42\"/>\n";
            xml += "  <Equivalence message=\"SLPSrvRequest\" of=\"DNS_Question\"/>\n";
            xml += "  <Equivalence message=\"DNS_Response\" of=\"SLPSrvReply,DNS_Question\"/>\n";
            xml += "  <TranslationLogic>\n";
            xml += assignment("dnssd_to_slp", "s10", "SLPSrvRequest", "SRVType", "s41",
                              "DNS_Question", "QName");
            xml += constantAssignment("s10", "SLPSrvRequest", "XID", "78");
            xml += assignment("", "s41", "DNS_Response", "ID", "s41", "DNS_Question", "ID");
            xml += constantAssignment("s41", "DNS_Response", "Flags", "33792");
            xml += assignment("", "s41", "DNS_Response", "AName", "s41", "DNS_Question",
                              "QName");
            xml += assignment("", "s41", "DNS_Response", "RData", "s12", "SLPSrvReply",
                              "URLEntry");
            xml += "  </TranslationLogic>\n";
            xml += "  <DeltaTransition from=\"s41\" to=\"s10\"/>\n";
            xml += "  <DeltaTransition from=\"s12\" to=\"s41\"/>\n";
            xml += "</Bridge>\n";
            break;
        }
    }
    spec.bridgeXml = std::move(xml);
    return spec;
}

// ---------------------------------------------------------------------------
// SLP <-> LDAP extension

std::string ldapMdl() {
    return R"(<Mdl protocol="LDAP" kind="binary">
  <Types>
    <Version>Integer</Version>
    <MsgType>Integer</MsgType>
    <MessageID>Integer</MessageID>
    <BaseDNLen>Integer[f-length(BaseDN)]</BaseDNLen>
    <BaseDN>String</BaseDN>
    <ClassLen>Integer[f-length(ServiceClass)]</ClassLen>
    <ServiceClass>String</ServiceClass>
    <FilterLen>Integer[f-length(Filter)]</FilterLen>
    <Filter>String</Filter>
    <ResultCode>Integer</ResultCode>
    <DNLen>Integer[f-length(DN)]</DNLen>
    <DN>String</DN>
    <URLLen>Integer[f-length(URL)]</URLLen>
    <URL>String</URL>
  </Types>
  <Header type="LDAP">
    <Version default="3">8</Version>
    <MsgType>8</MsgType>
    <MessageID mandatory="true">16</MessageID>
  </Header>
  <Message type="LDAP_SearchRequest">
    <Rule>MsgType=1</Rule>
    <BaseDNLen>16</BaseDNLen>
    <BaseDN default="dc=services,dc=local">BaseDNLen</BaseDN>
    <ClassLen>16</ClassLen>
    <ServiceClass mandatory="true">ClassLen</ServiceClass>
    <FilterLen>16</FilterLen>
    <Filter>FilterLen</Filter>
  </Message>
  <Message type="LDAP_SearchResult">
    <Rule>MsgType=2</Rule>
    <ResultCode>8</ResultCode>
    <DNLen>16</DNLen>
    <DN>DNLen</DN>
    <URLLen>16</URLLen>
    <URL mandatory="true">URLLen</URL>
  </Message>
</Mdl>
)";
}

std::string ldapAutomaton(Role role, const std::string& directoryHost) {
    std::string color = "<Color transport_protocol=\"tcp\" port=\"389\" mode=\"sync\" "
                        "multicast=\"no\"";
    if (role == Role::Client && !directoryHost.empty()) {
        color += " host=\"" + directoryHost + "\"";
    }
    color += "/>";
    return requestResponseAutomaton("LDAP", color, "l", "LDAP_SearchRequest",
                                    "LDAP_SearchResult", role);
}

namespace {

DeploymentSpec slpToLdapSpec(const std::string& directoryHost, bool carryPredicate) {
    DeploymentSpec spec;
    spec.protocols = {{slpMdl(), slpAutomaton(Role::Server)},
                      {ldapMdl(), ldapAutomaton(Role::Client, directoryHost)}};
    std::string xml = "<Bridge name=\"slp-to-ldap\">\n";
    xml += "  <Start state=\"s10\"/>\n  <Accept state=\"s12\"/>\n";
    xml += "  <Equivalence message=\"LDAP_SearchRequest\" of=\"SLPSrvRequest\"/>\n";
    xml += "  <Equivalence message=\"SLPSrvReply\" of=\"LDAP_SearchResult,SLPSrvRequest\"/>\n";
    xml += "  <TranslationLogic>\n";
    xml += assignment("", "l0", "LDAP_SearchRequest", "ServiceClass", "s11", "SLPSrvRequest",
                      "SRVType");
    if (carryPredicate) {
        // The rich translation: the SLP predicate becomes the LDAP filter.
        xml += assignment("", "l0", "LDAP_SearchRequest", "Filter", "s11", "SLPSrvRequest",
                          "PredString");
    }
    xml += assignment("", "l0", "LDAP_SearchRequest", "MessageID", "s11", "SLPSrvRequest",
                      "XID");
    xml += assignment("", "s11", "SLPSrvReply", "URLEntry", "l2", "LDAP_SearchResult", "URL");
    xml += assignment("", "s11", "SLPSrvReply", "XID", "s11", "SLPSrvRequest", "XID");
    xml += "  </TranslationLogic>\n";
    xml += "  <DeltaTransition from=\"s11\" to=\"l0\"/>\n";
    xml += "  <DeltaTransition from=\"l2\" to=\"s11\"/>\n";
    xml += "</Bridge>\n";
    spec.bridgeXml = std::move(xml);
    return spec;
}

}  // namespace

DeploymentSpec slpToLdap(const std::string& directoryHost) {
    return slpToLdapSpec(directoryHost, /*carryPredicate=*/true);
}

DeploymentSpec slpToLdapWithoutPredicate(const std::string& directoryHost) {
    return slpToLdapSpec(directoryHost, /*carryPredicate=*/false);
}

DeploymentSpec ldapToSlp() {
    DeploymentSpec spec;
    spec.protocols = {{ldapMdl(), ldapAutomaton(Role::Server)},
                      {slpMdl(), slpAutomaton(Role::Client)}};
    std::string xml = "<Bridge name=\"ldap-to-slp\">\n";
    xml += "  <Start state=\"l0\"/>\n  <Accept state=\"l2\"/>\n";
    xml += "  <Equivalence message=\"SLPSrvRequest\" of=\"LDAP_SearchRequest\"/>\n";
    xml += "  <Equivalence message=\"LDAP_SearchResult\" of=\"SLPSrvReply,LDAP_SearchRequest\"/>\n";
    xml += "  <TranslationLogic>\n";
    xml += assignment("", "s10", "SLPSrvRequest", "SRVType", "l1", "LDAP_SearchRequest",
                      "ServiceClass");
    // The rich translation, in the other direction: LDAP filter -> SLP
    // predicate.
    xml += assignment("", "s10", "SLPSrvRequest", "PredString", "l1", "LDAP_SearchRequest",
                      "Filter");
    xml += assignment("", "s10", "SLPSrvRequest", "XID", "l1", "LDAP_SearchRequest",
                      "MessageID");
    xml += assignment("", "l1", "LDAP_SearchResult", "MessageID", "l1", "LDAP_SearchRequest",
                      "MessageID");
    xml += constantAssignment("l1", "LDAP_SearchResult", "DN",
                              "cn=bridged,dc=services,dc=local");
    xml += assignment("", "l1", "LDAP_SearchResult", "URL", "s12", "SLPSrvReply", "URLEntry");
    xml += "  </TranslationLogic>\n";
    xml += "  <DeltaTransition from=\"l1\" to=\"s10\"/>\n";
    xml += "  <DeltaTransition from=\"s12\" to=\"l1\"/>\n";
    xml += "</Bridge>\n";
    spec.bridgeXml = std::move(xml);
    return spec;
}

// ---------------------------------------------------------------------------
// WS-Discovery extension (xml MDL dialect)

std::string wsdMdl() {
    return R"(<Mdl protocol="WSD" kind="xml">
  <Types>
    <Action>String</Action>
    <MessageID>String</MessageID>
    <RelatesTo>String</RelatesTo>
  </Types>
  <Header type="WSD" root="Envelope">
    <Action>Header/Action</Action>
    <MessageID mandatory="true">Header/MessageID</MessageID>
  </Header>
  <Message type="WSD_Probe">
    <Rule>Action=http://schemas.xmlsoap.org/ws/2005/04/discovery/Probe</Rule>
    <Types mandatory="true">Body/Probe/Types</Types>
  </Message>
  <Message type="WSD_ProbeMatch">
    <Rule>Action=http://schemas.xmlsoap.org/ws/2005/04/discovery/ProbeMatches</Rule>
    <RelatesTo mandatory="true">Header/RelatesTo</RelatesTo>
    <MatchTypes>Body/ProbeMatches/ProbeMatch/Types</MatchTypes>
    <XAddrs mandatory="true">Body/ProbeMatches/ProbeMatch/XAddrs</XAddrs>
  </Message>
</Mdl>
)";
}

std::string wsdAutomaton(Role role) {
    // WS-Discovery: SOAP-over-UDP on 239.255.255.250:3702.
    return requestResponseAutomaton(
        "WSD",
        R"(<Color transport_protocol="udp" port="3702" mode="async" multicast="yes" group="239.255.255.250"/>)",
        "w", "WSD_Probe", "WSD_ProbeMatch", role);
}

DeploymentSpec slpToWsd() {
    DeploymentSpec spec;
    spec.protocols = {{slpMdl(), slpAutomaton(Role::Server)},
                      {wsdMdl(), wsdAutomaton(Role::Client)}};
    std::string xml = "<Bridge name=\"slp-to-wsd\">\n";
    xml += "  <Start state=\"s10\"/>\n  <Accept state=\"s12\"/>\n";
    xml += "  <Equivalence message=\"WSD_Probe\" of=\"SLPSrvRequest\"/>\n";
    xml += "  <Equivalence message=\"SLPSrvReply\" of=\"WSD_ProbeMatch,SLPSrvRequest\"/>\n";
    xml += "  <TranslationLogic>\n";
    xml += assignment("slp_to_word", "w0", "WSD_Probe", "Types", "s11", "SLPSrvRequest",
                      "SRVType");
    xml += assignment("to_string", "w0", "WSD_Probe", "MessageID", "s11", "SLPSrvRequest",
                      "XID");
    xml += assignment("", "s11", "SLPSrvReply", "URLEntry", "w2", "WSD_ProbeMatch", "XAddrs");
    xml += assignment("", "s11", "SLPSrvReply", "XID", "s11", "SLPSrvRequest", "XID");
    xml += "  </TranslationLogic>\n";
    xml += "  <DeltaTransition from=\"s11\" to=\"w0\"/>\n";
    xml += "  <DeltaTransition from=\"w2\" to=\"s11\"/>\n";
    xml += "</Bridge>\n";
    spec.bridgeXml = std::move(xml);
    return spec;
}

DeploymentSpec wsdToSlp() {
    DeploymentSpec spec;
    spec.protocols = {{wsdMdl(), wsdAutomaton(Role::Server)},
                      {slpMdl(), slpAutomaton(Role::Client)}};
    std::string xml = "<Bridge name=\"wsd-to-slp\">\n";
    xml += "  <Start state=\"w0\"/>\n  <Accept state=\"w2\"/>\n";
    xml += "  <Equivalence message=\"SLPSrvRequest\" of=\"WSD_Probe\"/>\n";
    xml += "  <Equivalence message=\"WSD_ProbeMatch\" of=\"SLPSrvReply,WSD_Probe\"/>\n";
    xml += "  <TranslationLogic>\n";
    xml += assignment("word_to_slp", "s10", "SLPSrvRequest", "SRVType", "w1", "WSD_Probe",
                      "Types");
    xml += constantAssignment("s10", "SLPSrvRequest", "XID", "81");
    xml += constantAssignment("w1", "WSD_ProbeMatch", "MessageID", "uuid:starlink-bridge-2");
    xml += assignment("", "w1", "WSD_ProbeMatch", "RelatesTo", "w1", "WSD_Probe", "MessageID");
    xml += assignment("", "w1", "WSD_ProbeMatch", "MatchTypes", "w1", "WSD_Probe", "Types");
    xml += assignment("", "w1", "WSD_ProbeMatch", "XAddrs", "s12", "SLPSrvReply", "URLEntry");
    xml += "  </TranslationLogic>\n";
    xml += "  <DeltaTransition from=\"w1\" to=\"s10\"/>\n";
    xml += "  <DeltaTransition from=\"s12\" to=\"w1\"/>\n";
    xml += "</Bridge>\n";
    spec.bridgeXml = std::move(xml);
    return spec;
}

std::size_t bridgeSpecLines(const DeploymentSpec& spec) {
    std::size_t lines = 0;
    for (const std::string& line : split(spec.bridgeXml, '\n')) {
        if (!trim(line).empty()) ++lines;
    }
    return lines;
}

}  // namespace starlink::bridge::models
