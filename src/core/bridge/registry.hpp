// Versioned model-set registry: hot-swap deployment for the bridge fleet
// (ROADMAP item 4 -- "runtime interoperability" should mean the models change
// without restarting the fleet).
//
// A ModelSet is one immutable, lint-gated generation of the six-direction
// discovery fleet: per-case DeploymentSpecs plus the FNV-1a identity hash of
// each (the same fingerprint postmortem bundles carry). The ModelRegistry
// owns the generations and the swap protocol:
//
//   load      -- loadDirectory() slurps every spec file fully into memory
//                FIRST (a reload racing a file write must never parse a
//                half-written document), then runs the full cross-layer
//                linter over the closure as a hard deploy gate: any
//                error-severity diagnostic rejects the candidate with
//                bridge.deploy-rejected and the registry keeps serving
//                whatever it served before. A rejected set never gets a
//                version number.
//   publish   -- an accepted set is stamped with a monotonic version. The
//                FIRST set becomes active outright; later sets either swap
//                immediately (canaryPercent == 0) or enter canary.
//   pin       -- sessions pin the generation they start on: pin(sessionKey)
//                returns a shared_ptr<const ModelSet> chosen by session-key
//                hash (canary cohort = hash % 10000 < canaryPercent * 100,
//                deterministic and shard-count-invariant), and the caller
//                keeps the pointer for the session's lifetime, so in-flight
//                sessions always finish on the version they started with --
//                no global pause, per-shard swap for free.
//   judge     -- noteSession() feeds per-cohort sliding windows of terminal
//                outcomes. When any abort code's rate in the canary window
//                regresses beyond rollbackRatio x the stable window's rate
//                (minCanarySessions gate), the canary is rolled back
//                automatically; after promoteAfter clean canary sessions it
//                is promoted to active.
//
// Telemetry: starlink_registry_active_version / _canary_version gauges,
// _swaps_total / _rollbacks_total / _reload_failures_total counters, and
// per-cohort session/abort gauges -- all in the caller-supplied registry
// (the process-global one by default).
//
// Thread safety: every public method is mutex-guarded; pin() hands out
// shared_ptr copies, so shard threads never touch registry state after
// submit time. The returned ModelSet is deeply immutable.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/bridge/models.hpp"
#include "core/error/error_code.hpp"
#include "core/telemetry/metrics.hpp"

namespace starlink::bridge {

/// One immutable generation of the six-direction model fleet.
class ModelSet {
public:
    /// Monotonic registry version (1 = first accepted set). 0 never occurs
    /// in a published set, so engines use it as "no registry in play".
    std::uint64_t version() const { return version_; }
    /// Where the set came from: "builtin", a directory path, or a
    /// caller-supplied label (loadSpecs).
    const std::string& source() const { return source_; }
    /// FNV-1a fingerprint of one case's spec -- the exact value
    /// models::modelSetIdentity() computes and postmortem bundles carry.
    std::uint64_t identityFor(models::Case c) const {
        return identities_[static_cast<std::size_t>(c)];
    }
    /// Order-sensitive fold of the six per-case identities: one number that
    /// names the whole generation.
    std::uint64_t identity() const { return identity_; }
    const models::DeploymentSpec& specFor(models::Case c) const {
        return specs_[static_cast<std::size_t>(c)];
    }

private:
    friend class ModelRegistry;
    std::uint64_t version_ = 0;
    std::string source_;
    std::array<models::DeploymentSpec, 6> specs_{};
    std::array<std::uint64_t, 6> identities_{};
    std::uint64_t identity_ = 0;
};

/// Registry lifecycle notification (the daemon turns these into summary
/// lines; tests assert on them).
struct RegistryEvent {
    enum class Kind {
        Swapped,       ///< a new version became active (first load or immediate swap)
        CanaryStarted, ///< a new version entered the canary cohort
        Promoted,      ///< the canary became active (manual or promoteAfter)
        RolledBack,    ///< the canary was withdrawn (manual or abort-rate regression)
        ReloadFailed,  ///< a candidate was rejected; the old version keeps serving
    };
    Kind kind = Kind::Swapped;
    std::uint64_t fromVersion = 0;
    std::uint64_t toVersion = 0;
    std::string detail;
};

const char* registryEventName(RegistryEvent::Kind kind);

struct ModelRegistryOptions {
    /// Topology baked into loadBuiltins() specs (mirrors ShardEngineOptions).
    std::string bridgeHost = "10.0.0.9";
    int bridgeHttpPort = 8085;
    /// Share of new sessions pinned to a freshly loaded set, in percent.
    /// 0 = no canary, every load swaps immediately; 100 = every NEW session
    /// runs the candidate while the stable cohort is whatever finished
    /// before (time-based canary, the live daemon's mode).
    double canaryPercent = 0.0;
    /// Roll back when any abort code's canary-window rate exceeds the stable
    /// window's rate for that code times this factor. With a clean stable
    /// cohort any canary abort regresses (rate > 0 == rollback).
    double rollbackRatio = 2.0;
    /// Sliding-window length per cohort, in sessions.
    std::size_t windowSessions = 256;
    /// Minimum canary-window occupancy before the judge may roll back.
    std::size_t minCanarySessions = 32;
    /// Auto-promote after this many canary sessions without a rollback
    /// (0 = promotion stays manual via promoteCanary()).
    std::size_t promoteAfter = 0;
    /// Metrics destination; nullptr = the process-global registry.
    telemetry::MetricsRegistry* metrics = nullptr;
};

class ModelRegistry {
public:
    explicit ModelRegistry(ModelRegistryOptions options = {});
    ~ModelRegistry();  // out-of-line: CohortWindow is incomplete here

    const ModelRegistryOptions& options() const { return options_; }

    /// Publishes the built-in models::forCase fleet (at options' host/port).
    std::shared_ptr<const ModelSet> loadBuiltins();

    /// Loads the starlinkd-export file layout from `dir` (slp.mdl.xml,
    /// slp.server.automaton.xml, ..., SLP-to-UPnP.bridge.xml): every file is
    /// read fully into memory first, the whole closure is linted, and only a
    /// clean candidate is published. Throws SpecError:
    ///   bridge.deploy-rejected -- missing/unreadable file or any
    ///                             error-severity lint finding (listed in
    ///                             the message); the registry is unchanged.
    std::shared_ptr<const ModelSet> loadDirectory(const std::string& dir);

    /// Publishes caller-built specs (tests, synthetic candidates). The same
    /// lint gate applies -- a defective spec set is rejected identically.
    std::shared_ptr<const ModelSet> loadSpecs(std::array<models::DeploymentSpec, 6> specs,
                                              std::string source);

    /// The stable generation (nullptr before the first load).
    std::shared_ptr<const ModelSet> active() const;
    /// The generation under canary, nullptr when none.
    std::shared_ptr<const ModelSet> canary() const;

    /// The generation a new session with this key starts on. Deterministic:
    /// the cohort depends only on (key, canaryPercent), never on shard count
    /// or call order. Throws SpecError(bridge.version-unknown) before the
    /// first load.
    std::shared_ptr<const ModelSet> pin(const std::string& sessionKey);

    /// Whether `sessionKey` falls in the canary cohort at `percent` --
    /// FNV-1a(key) % 10000 < percent * 100, the same hash ShardEngine
    /// dispatches by.
    static bool inCanaryCohort(const std::string& sessionKey, double percent);

    /// Feeds one terminal session outcome into the cohort windows and runs
    /// the judge: automatic rollback on per-code regression, automatic
    /// promotion after promoteAfter clean canary sessions. Outcomes for
    /// versions no longer active/canary are ignored (late finishers).
    void noteSession(std::uint64_t version, bool aborted,
                     errc::ErrorCode code = errc::ErrorCode::Ok);

    /// Promotes the canary to active. False when no canary is in flight.
    bool promoteCanary();
    /// Withdraws the canary; the active version keeps serving. False when
    /// no canary is in flight.
    bool rollbackCanary(const std::string& reason);

    /// Resolves a retained generation by one case's identity fingerprint --
    /// how replay matches a postmortem bundle to the models that produced
    /// it. Every generation ever published stays resolvable (rolled-back
    /// ones included: their bundles are exactly the interesting ones).
    std::shared_ptr<const ModelSet> byCaseIdentity(models::Case c,
                                                   std::uint64_t identity) const;
    /// Resolves by registry version number.
    std::shared_ptr<const ModelSet> byVersion(std::uint64_t version) const;

    /// Lifetime counters (also exported as metrics).
    std::uint64_t swapsTotal() const;
    std::uint64_t rollbacksTotal() const;
    std::uint64_t reloadFailuresTotal() const;

    /// Fired (under the registry mutex) on every lifecycle transition.
    std::function<void(const RegistryEvent&)> onEvent;

    /// Records a rejected candidate for the reload-failure counter/event
    /// without touching the generations (the daemon calls this when
    /// loadDirectory throws, so /metrics shows the failure).
    void noteReloadFailure(const std::string& detail);

private:
    struct CohortWindow;

    std::shared_ptr<const ModelSet> publishLocked(std::shared_ptr<ModelSet> set);
    void emitLocked(RegistryEvent event);
    void refreshGaugesLocked();
    bool judgeLocked();  // true when the canary was rolled back

    ModelRegistryOptions options_;
    mutable std::mutex mutex_;
    std::shared_ptr<const ModelSet> active_;
    std::shared_ptr<const ModelSet> canary_;
    std::vector<std::shared_ptr<const ModelSet>> generations_;
    std::uint64_t nextVersion_ = 1;
    std::uint64_t swaps_ = 0;
    std::uint64_t rollbacks_ = 0;
    std::uint64_t reloadFailures_ = 0;
    std::size_t canarySessionsSeen_ = 0;

    std::unique_ptr<CohortWindow> stableWindow_;
    std::unique_ptr<CohortWindow> canaryWindow_;

    telemetry::MetricsRegistry* metrics_ = nullptr;
    telemetry::Gauge* activeVersionGauge_ = nullptr;
    telemetry::Gauge* canaryVersionGauge_ = nullptr;
    telemetry::Counter* swapsCounter_ = nullptr;
    telemetry::Counter* rollbacksCounter_ = nullptr;
    telemetry::Counter* reloadFailuresCounter_ = nullptr;
    telemetry::Gauge* canarySessionsGauge_ = nullptr;
    telemetry::Gauge* canaryAbortsGauge_ = nullptr;
    telemetry::Gauge* stableSessionsGauge_ = nullptr;
    telemetry::Gauge* stableAbortsGauge_ = nullptr;
};

}  // namespace starlink::bridge
