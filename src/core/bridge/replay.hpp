// Deterministic replay of postmortem bundles.
//
// replayBundle() turns a captured abort into a one-command repro: it deploys
// a fresh single-island simulation of the bundle's case, rewinds the engine's
// jitter generator to the captured (seed, draws) position, re-injects every
// recorded inbound datagram/chunk at its recorded virtual timestamp through
// stub endpoints bound at the original sender addresses, and lets the engine
// run. The replayed SessionRecord and outbound wire traffic are then diffed
// against the capture.
//
// The injected network is latency-, jitter- and loss-free: the capture
// already encodes WHEN each accepted message arrived, so the original chaos
// (dropped datagrams never appear in the log; delayed ones carry their real
// arrival time) is baked into the injection schedule rather than re-rolled.
// Known limitation: legs whose timing the capture cannot pin -- tcp connect
// handshakes and their retries -- complete earlier under zero latency, so a
// session that raced a connect outcome against an inbound message can, for
// some captures, diverge; the comparison reports it rather than hiding it.
#pragma once

#include <cstdint>
#include <string>

#include "core/bridge/models.hpp"
#include "core/telemetry/recorder.hpp"

namespace starlink::bridge {

/// Outcome of one replay, diffed against the bundle's capture.
struct ReplayComparison {
    /// The replay island produced a terminal SessionRecord at all.
    bool ran = false;
    /// completed/cause/code/messagesIn/messagesOut/retransmits all match the
    /// captured SessionEnd event.
    bool recordMatches = false;
    /// The replayed outbound (color, payload) sequence is byte-identical to
    /// the captured Tx sequence.
    bool wireMatches = false;
    /// First mismatch, human-readable; empty when ok().
    std::string detail;

    // The replayed terminal outcome, for reporting.
    bool completed = false;
    int abortCode = 0;
    std::uint32_t messagesIn = 0;
    std::uint32_t messagesOut = 0;
    std::uint32_t retransmits = 0;
    std::size_t originalTx = 0;
    std::size_t replayedTx = 0;

    bool ok() const { return ran && recordMatches && wireMatches; }
};

/// Replays one bundle in a fresh island and diffs the outcome. Throws
/// SpecError when the bundle cannot be replayed at all: a model set whose
/// fingerprint does not match the capture's (bridge.identity-mismatch),
/// a truncated capture, or an unknown case slug (only forCase deployments
/// are replayable). Resolves the model set via models::forCase.
ReplayComparison replayBundle(const telemetry::PostmortemBundle& bundle,
                              std::size_t maxEvents = 2'000'000);

/// Replays against a caller-supplied model set (a registry generation
/// resolved by the bundle's identity hash). The identity check is the FIRST
/// gate, before any model document is parsed or loaded: a mismatched bundle
/// is rejected with bridge.identity-mismatch and zero side effects -- no
/// island, no codec plans, no partially deployed bridge.
ReplayComparison replayBundle(const telemetry::PostmortemBundle& bundle,
                              const models::DeploymentSpec& spec,
                              std::size_t maxEvents = 2'000'000);

}  // namespace starlink::bridge
