#include "core/bridge/starlink.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "core/merge/spec_loader.hpp"
#include "core/merge/synthesizer.hpp"

namespace starlink::bridge {

Starlink::Starlink(net::Network& network)
    : network_(network),
      marshallers_(mdl::MarshallerRegistry::withDefaults()),
      translations_(merge::TranslationRegistry::withDefaults()) {
    setLogTimeSource([&network] {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   network.now().time_since_epoch())
            .count();
    });
}

Starlink::~Starlink() { setLogTimeSource(nullptr); }

DeployedBridge& Starlink::deploy(const models::DeploymentSpec& spec, const std::string& host,
                                 engine::EngineOptions options) {
    // 1. Specialise a parser/composer pair per protocol and load its
    //    colored automaton; pairing is positional within the bundle.
    std::vector<std::shared_ptr<automata::ColoredAutomaton>> automata;
    std::map<std::string, std::shared_ptr<mdl::MessageCodec>> codecs;
    for (const models::ProtocolModel& protocol : spec.protocols) {
        auto codec = mdl::MessageCodec::fromXml(protocol.mdlXml, marshallers_);
        auto automaton = merge::loadAutomaton(protocol.automatonXml, colors_);
        if (codecs.contains(automaton->name())) {
            throw SpecError(errc::ErrorCode::BridgeDeploy,
                        "deploy: two protocols named '" + automaton->name() + "'");
        }
        codecs.emplace(automaton->name(), std::move(codec));
        automata.push_back(std::move(automaton));
    }

    // 2. Load and validate the merged automaton.
    auto merged = merge::loadBridge(spec.bridgeXml, std::move(automata));
    merged->validate();

    // 2b. Every transform the translation logic names must exist NOW: a typo
    //     discovered per-message would be misreported as a rejected value.
    const std::vector<std::string> unknown = merged->unknownTransforms(*translations_);
    if (!unknown.empty()) {
        throw SpecError(errc::ErrorCode::BridgeTransformUnknown,
                        "deploy '" + merged->name() + "': unknown translation function " +
                        join(unknown, ", ") + "; registered: " +
                        join(translations_->names(), ", "));
    }

    // 3. Semantic-equivalence coverage (eqn 1): every mandatory field of
    //    every equivalent message must be produced by the translation logic.
    const auto mandatoryFields = [&merged, &codecs](const std::string& messageType) {
        for (const auto& component : merged->components()) {
            const auto& codec = codecs.at(component->name());
            if (codec->document().message(messageType) != nullptr) {
                return codec->document().mandatoryFields(messageType);
            }
        }
        return std::vector<std::string>{};
    };
    const std::vector<std::string> uncovered = merged->checkEquivalences(mandatoryFields);
    if (!uncovered.empty()) {
        throw SpecError(errc::ErrorCode::BridgeDeploy,
                        "deploy '" + merged->name() +
                        "': semantic equivalence does not hold; mandatory fields without a "
                        "translation: " + join(uncovered, ", "));
    }

    // 4. Wire the engines and go live. Postmortem provenance defaults: the
    //    deployment's model fingerprint and host, unless the caller stamped
    //    its own.
    if (options.modelIdentity == 0) options.modelIdentity = models::modelSetIdentity(spec);
    if (options.bridgeHost.empty()) options.bridgeHost = host;
    auto bridge = std::unique_ptr<DeployedBridge>(new DeployedBridge());
    bridge->network_ = std::make_unique<engine::NetworkEngine>(
        network_, host,
        engine::NetworkEngine::Options{options.tcpConnectAttempts,
                                       options.tcpConnectRetryDelay, options.metrics,
                                       options.tcpConnectRetryMaxDelay,
                                       options.tcpMaxBacklogBytes});
    bridge->engine_ = std::make_unique<engine::AutomataEngine>(
        std::move(merged), std::move(codecs), translations_, *bridge->network_, colors_,
        options);
    bridge->engine_->start();

    bridges_.push_back(std::move(bridge));
    STARLINK_LOG(Info, "starlink") << "deployed bridge at " << host;
    return *bridges_.back();
}

DeployedBridge& Starlink::deploySynthesized(const models::ProtocolModel& served,
                                            const models::ProtocolModel& queried,
                                            const merge::Ontology& ontology,
                                            const std::string& host,
                                            engine::EngineOptions options,
                                            std::vector<std::string>* report) {
    auto servedCodec = mdl::MessageCodec::fromXml(served.mdlXml, marshallers_);
    auto queriedCodec = mdl::MessageCodec::fromXml(queried.mdlXml, marshallers_);
    auto servedAutomaton = merge::loadAutomaton(served.automatonXml, colors_);
    auto queriedAutomaton = merge::loadAutomaton(queried.automatonXml, colors_);

    merge::SynthesisInput input;
    input.servedAutomaton = servedAutomaton;
    input.servedMdl = &servedCodec->document();
    input.queriedAutomaton = queriedAutomaton;
    input.queriedMdl = &queriedCodec->document();
    input.ontology = &ontology;
    input.translations = translations_;
    merge::SynthesisResult synthesis = merge::synthesizeMerge(input);
    if (report != nullptr) *report = synthesis.report;
    const std::vector<std::string> unknown =
        synthesis.merged->unknownTransforms(*translations_);
    if (!unknown.empty()) {
        throw SpecError(errc::ErrorCode::BridgeTransformUnknown,
                        "deploy synthesized '" + synthesis.merged->name() +
                        "': ontology names unknown translation function " + join(unknown, ", "));
    }

    std::map<std::string, std::shared_ptr<mdl::MessageCodec>> codecs;
    codecs.emplace(servedAutomaton->name(), std::move(servedCodec));
    codecs.emplace(queriedAutomaton->name(), std::move(queriedCodec));

    if (options.bridgeHost.empty()) options.bridgeHost = host;
    auto bridge = std::unique_ptr<DeployedBridge>(new DeployedBridge());
    bridge->network_ = std::make_unique<engine::NetworkEngine>(
        network_, host,
        engine::NetworkEngine::Options{options.tcpConnectAttempts,
                                       options.tcpConnectRetryDelay, options.metrics,
                                       options.tcpConnectRetryMaxDelay,
                                       options.tcpMaxBacklogBytes});
    bridge->engine_ = std::make_unique<engine::AutomataEngine>(
        std::move(synthesis.merged), std::move(codecs), translations_, *bridge->network_,
        colors_, options);
    bridge->engine_->start();

    bridges_.push_back(std::move(bridge));
    STARLINK_LOG(Info, "starlink") << "deployed SYNTHESIZED bridge at " << host;
    return *bridges_.back();
}

}  // namespace starlink::bridge
