#include "core/bridge/registry.hpp"

#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/lint/linter.hpp"

namespace starlink::bridge {

namespace fs = std::filesystem;
using models::Case;

namespace {

/// Same FNV-1a 64 the shard engine dispatches by: the canary cohort must be
/// a pure function of the session key so an N-shard and a 1-shard run pin
/// identical versions to identical keys.
std::uint64_t fnv1a(const std::string& key) {
    std::uint64_t h = 14695981039346656037ULL;
    for (const unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/// The starlinkd-export file layout, per case, in models::forCase protocol
/// order (identity is order-sensitive, so a directory holding byte-identical
/// exports fingerprints identically to the builtins).
struct CaseFiles {
    Case caseId;
    std::vector<std::pair<const char*, const char*>> protocols;  // (mdl, automaton)
    const char* bridge;
};

const std::vector<CaseFiles>& caseFileTable() {
    static const std::vector<CaseFiles> table = {
        {Case::SlpToUpnp,
         {{"slp.mdl.xml", "slp.server.automaton.xml"},
          {"ssdp.mdl.xml", "ssdp.client.automaton.xml"},
          {"http.mdl.xml", "http.client.automaton.xml"}},
         "SLP-to-UPnP.bridge.xml"},
        {Case::SlpToBonjour,
         {{"slp.mdl.xml", "slp.server.automaton.xml"},
          {"dns.mdl.xml", "mdns.client.automaton.xml"}},
         "SLP-to-Bonjour.bridge.xml"},
        {Case::UpnpToSlp,
         {{"ssdp.mdl.xml", "ssdp.server.automaton.xml"},
          {"slp.mdl.xml", "slp.client.automaton.xml"},
          {"http.mdl.xml", "http.server.automaton.xml"}},
         "UPnP-to-SLP.bridge.xml"},
        {Case::UpnpToBonjour,
         {{"ssdp.mdl.xml", "ssdp.server.automaton.xml"},
          {"dns.mdl.xml", "mdns.client.automaton.xml"},
          {"http.mdl.xml", "http.server.automaton.xml"}},
         "UPnP-to-Bonjour.bridge.xml"},
        {Case::BonjourToUpnp,
         {{"dns.mdl.xml", "mdns.server.automaton.xml"},
          {"ssdp.mdl.xml", "ssdp.client.automaton.xml"},
          {"http.mdl.xml", "http.client.automaton.xml"}},
         "Bonjour-to-UPnP.bridge.xml"},
        {Case::BonjourToSlp,
         {{"dns.mdl.xml", "mdns.server.automaton.xml"},
          {"slp.mdl.xml", "slp.client.automaton.xml"}},
         "Bonjour-to-SLP.bridge.xml"},
    };
    return table;
}

/// Reads a file fully into memory in one shot. The reload path must never
/// hand a partially read document to any parser: the whole string exists
/// before anything looks at byte one, so a writer racing us produces either
/// yesterday's document or today's -- a torn read surfaces as a lint parse
/// error and the candidate is rejected, never half-loaded.
std::string slurpWhole(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw SpecError(errc::ErrorCode::BridgeDeployRejected,
                        "model registry: cannot read '" + path.string() +
                            "'; the candidate directory is incomplete");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        throw SpecError(errc::ErrorCode::BridgeDeployRejected,
                        "model registry: i/o error reading '" + path.string() + "'");
    }
    return std::move(buffer).str();
}

}  // namespace

const char* registryEventName(RegistryEvent::Kind kind) {
    switch (kind) {
        case RegistryEvent::Kind::Swapped: return "swapped";
        case RegistryEvent::Kind::CanaryStarted: return "canary-started";
        case RegistryEvent::Kind::Promoted: return "promoted";
        case RegistryEvent::Kind::RolledBack: return "rolled-back";
        case RegistryEvent::Kind::ReloadFailed: return "reload-failed";
    }
    return "unknown";
}

/// Per-cohort sliding window of terminal outcomes with a per-code abort
/// histogram kept incrementally (the judge runs on every session).
struct ModelRegistry::CohortWindow {
    std::size_t capacity = 256;
    std::deque<errc::ErrorCode> outcomes;  // Ok == completed
    std::size_t aborts = 0;
    std::map<errc::ErrorCode, std::size_t> abortsByCode;

    void note(bool aborted, errc::ErrorCode code) {
        const errc::ErrorCode entry = aborted ? code : errc::ErrorCode::Ok;
        outcomes.push_back(entry);
        if (aborted) {
            ++aborts;
            ++abortsByCode[entry];
        }
        while (capacity != 0 && outcomes.size() > capacity) {
            const errc::ErrorCode old = outcomes.front();
            outcomes.pop_front();
            if (old != errc::ErrorCode::Ok) {
                --aborts;
                auto it = abortsByCode.find(old);
                if (it != abortsByCode.end() && --it->second == 0) abortsByCode.erase(it);
            }
        }
    }

    std::size_t size() const { return outcomes.size(); }
    double rateFor(errc::ErrorCode code) const {
        if (outcomes.empty()) return 0.0;
        const auto it = abortsByCode.find(code);
        const std::size_t n = it == abortsByCode.end() ? 0 : it->second;
        return static_cast<double>(n) / static_cast<double>(outcomes.size());
    }
    void reset() {
        outcomes.clear();
        aborts = 0;
        abortsByCode.clear();
    }
};

ModelRegistry::ModelRegistry(ModelRegistryOptions options) : options_(std::move(options)) {
    metrics_ = options_.metrics != nullptr ? options_.metrics
                                           : &telemetry::MetricsRegistry::global();
    activeVersionGauge_ = &metrics_->gauge("starlink_registry_active_version");
    canaryVersionGauge_ = &metrics_->gauge("starlink_registry_canary_version");
    swapsCounter_ = &metrics_->counter("starlink_registry_swaps_total");
    rollbacksCounter_ = &metrics_->counter("starlink_registry_rollbacks_total");
    reloadFailuresCounter_ = &metrics_->counter("starlink_registry_reload_failures_total");
    canarySessionsGauge_ = &metrics_->gauge(
        telemetry::labeled("starlink_registry_cohort_sessions", {{"cohort", "canary"}}));
    canaryAbortsGauge_ = &metrics_->gauge(
        telemetry::labeled("starlink_registry_cohort_aborts", {{"cohort", "canary"}}));
    stableSessionsGauge_ = &metrics_->gauge(
        telemetry::labeled("starlink_registry_cohort_sessions", {{"cohort", "stable"}}));
    stableAbortsGauge_ = &metrics_->gauge(
        telemetry::labeled("starlink_registry_cohort_aborts", {{"cohort", "stable"}}));
    stableWindow_ = std::make_unique<CohortWindow>();
    canaryWindow_ = std::make_unique<CohortWindow>();
    stableWindow_->capacity = options_.windowSessions;
    canaryWindow_->capacity = options_.windowSessions;
}

ModelRegistry::~ModelRegistry() = default;

std::shared_ptr<const ModelSet> ModelRegistry::loadBuiltins() {
    std::array<models::DeploymentSpec, 6> specs;
    for (const Case c : models::kAllCases) {
        specs[static_cast<std::size_t>(c)] =
            models::forCase(c, options_.bridgeHost, options_.bridgeHttpPort);
    }
    return loadSpecs(std::move(specs), "builtin");
}

std::shared_ptr<const ModelSet> ModelRegistry::loadDirectory(const std::string& dir) {
    const fs::path root(dir);
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
        throw SpecError(errc::ErrorCode::BridgeDeployRejected,
                        "model registry: '" + dir + "' is not a readable directory");
    }

    // Phase 1: slurp every referenced file fully into memory. Nothing is
    // parsed until every byte of every document is resident.
    std::map<std::string, std::string> documents;
    for (const CaseFiles& files : caseFileTable()) {
        for (const auto& [mdlFile, automatonFile] : files.protocols) {
            if (!documents.contains(mdlFile)) documents[mdlFile] = slurpWhole(root / mdlFile);
            if (!documents.contains(automatonFile)) {
                documents[automatonFile] = slurpWhole(root / automatonFile);
            }
        }
        if (!documents.contains(files.bridge)) {
            documents[files.bridge] = slurpWhole(root / files.bridge);
        }
    }

    // Phase 2: assemble per-case specs in forCase protocol order so the
    // identity fingerprint of an unmodified export equals the builtin's.
    std::array<models::DeploymentSpec, 6> specs;
    for (const CaseFiles& files : caseFileTable()) {
        models::DeploymentSpec& spec = specs[static_cast<std::size_t>(files.caseId)];
        for (const auto& [mdlFile, automatonFile] : files.protocols) {
            spec.protocols.push_back({documents[mdlFile], documents[automatonFile]});
        }
        spec.bridgeXml = documents[files.bridge];
    }

    // Phase 3: the lint gate + publication (loadSpecs rejects on findings).
    return loadSpecs(std::move(specs), dir);
}

std::shared_ptr<const ModelSet> ModelRegistry::loadSpecs(
    std::array<models::DeploymentSpec, 6> specs, std::string source) {
    // Hard deploy gate: the full 22-rule cross-layer linter over the whole
    // closure. Every document is added once per distinct content (a shared
    // MDL appears in several specs); duplicates would only duplicate
    // findings.
    lint::Linter linter;
    std::map<std::string, bool> added;
    const auto add = [&](const std::string& label, const std::string& xmlText) {
        if (added.contains(label)) return;
        added[label] = true;
        linter.addModel(label, xmlText);
    };
    for (const Case c : models::kAllCases) {
        const models::DeploymentSpec& spec = specs[static_cast<std::size_t>(c)];
        const std::string slug = models::caseSlug(c);
        for (std::size_t i = 0; i < spec.protocols.size(); ++i) {
            // Label by content hash so a document shared across cases lints
            // once, while a case-local variant still gets its own pass.
            const models::ProtocolModel& p = spec.protocols[i];
            add(slug + "/mdl#" + std::to_string(fnv1a(p.mdlXml)), p.mdlXml);
            add(slug + "/automaton#" + std::to_string(fnv1a(p.automatonXml)), p.automatonXml);
        }
        add(slug + "/bridge", spec.bridgeXml);
    }
    const std::vector<lint::Diagnostic> findings = linter.run();
    if (lint::hasErrors(findings)) {
        std::size_t errors = 0;
        for (const lint::Diagnostic& d : findings) {
            if (d.severity == lint::Severity::Error) ++errors;
        }
        throw SpecError(errc::ErrorCode::BridgeDeployRejected,
                        "model registry: candidate '" + source + "' rejected by the lint gate (" +
                            std::to_string(errors) + " error finding" + (errors == 1 ? "" : "s") +
                            "):\n" + lint::renderText(findings));
    }

    auto set = std::make_shared<ModelSet>();
    set->source_ = std::move(source);
    set->specs_ = std::move(specs);
    std::uint64_t whole = 14695981039346656037ULL;
    for (const Case c : models::kAllCases) {
        const std::uint64_t id = models::modelSetIdentity(set->specs_[static_cast<std::size_t>(c)]);
        set->identities_[static_cast<std::size_t>(c)] = id;
        for (int shift = 0; shift < 64; shift += 8) {
            whole ^= (id >> shift) & 0xff;
            whole *= 1099511628211ULL;
        }
    }
    set->identity_ = whole;

    std::lock_guard<std::mutex> lock(mutex_);
    return publishLocked(std::move(set));
}

std::shared_ptr<const ModelSet> ModelRegistry::publishLocked(std::shared_ptr<ModelSet> set) {
    set->version_ = nextVersion_++;
    std::shared_ptr<const ModelSet> published = std::move(set);
    generations_.push_back(published);

    if (!active_) {
        // First generation: active outright, nothing to canary against.
        active_ = published;
        ++swaps_;
        swapsCounter_->add();
        emitLocked({RegistryEvent::Kind::Swapped, 0, published->version(),
                    "initial model set from " + published->source()});
    } else if (options_.canaryPercent <= 0.0) {
        // No canary configured: atomic swap. In-flight sessions keep their
        // pinned shared_ptr; new pins see the new active immediately.
        const std::uint64_t from = active_->version();
        active_ = published;
        canary_.reset();
        canaryWindow_->reset();
        canarySessionsSeen_ = 0;
        ++swaps_;
        swapsCounter_->add();
        emitLocked({RegistryEvent::Kind::Swapped, from, published->version(),
                    "swap from " + published->source()});
    } else {
        // Canary: the candidate serves only its key cohort until the judge
        // promotes or rolls it back. A newer candidate replaces an
        // unjudged one (last writer wins, stable stays untouched).
        const std::uint64_t from = canary_ ? canary_->version() : active_->version();
        canary_ = published;
        canaryWindow_->reset();
        canarySessionsSeen_ = 0;
        emitLocked({RegistryEvent::Kind::CanaryStarted, from, published->version(),
                    "canary at " + std::to_string(options_.canaryPercent) + "% from " +
                        published->source()});
    }
    refreshGaugesLocked();
    return published;
}

std::shared_ptr<const ModelSet> ModelRegistry::active() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return active_;
}

std::shared_ptr<const ModelSet> ModelRegistry::canary() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return canary_;
}

bool ModelRegistry::inCanaryCohort(const std::string& sessionKey, double percent) {
    if (percent <= 0.0) return false;
    if (percent >= 100.0) return true;
    // Basis points over the dispatch hash: deterministic, shard-count-
    // invariant, and uncorrelated with `hash % shards` for sane shard
    // counts (the modulus differs).
    return static_cast<double>(fnv1a(sessionKey) % 10000) < percent * 100.0;
}

std::shared_ptr<const ModelSet> ModelRegistry::pin(const std::string& sessionKey) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!active_) {
        throw SpecError(errc::ErrorCode::BridgeVersionUnknown,
                        "model registry: pin before any model set was loaded");
    }
    if (canary_ && inCanaryCohort(sessionKey, options_.canaryPercent)) return canary_;
    return active_;
}

void ModelRegistry::noteSession(std::uint64_t version, bool aborted, errc::ErrorCode code) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (canary_ && version == canary_->version()) {
        canaryWindow_->note(aborted, code);
        ++canarySessionsSeen_;
        if (!judgeLocked() && options_.promoteAfter != 0 &&
            canarySessionsSeen_ >= options_.promoteAfter) {
            const std::uint64_t from = active_ ? active_->version() : 0;
            const std::uint64_t to = canary_->version();
            active_ = canary_;
            canary_.reset();
            canaryWindow_->reset();
            canarySessionsSeen_ = 0;
            ++swaps_;
            swapsCounter_->add();
            emitLocked({RegistryEvent::Kind::Promoted, from, to,
                        "canary clean after " + std::to_string(options_.promoteAfter) +
                            " sessions"});
        }
    } else if (active_ && version == active_->version()) {
        stableWindow_->note(aborted, code);
    }
    // else: a late finisher on a retired version -- nothing to judge.
    refreshGaugesLocked();
}

bool ModelRegistry::judgeLocked() {
    if (!canary_ || canaryWindow_->size() < options_.minCanarySessions) return false;
    // Per-code regression: any abort code whose canary rate exceeds the
    // stable cohort's rate for the SAME code by rollbackRatio. A clean
    // stable window makes any canary abort a regression.
    for (const auto& [code, count] : canaryWindow_->abortsByCode) {
        const double canaryRate = canaryWindow_->rateFor(code);
        const double stableRate = stableWindow_->rateFor(code);
        if (canaryRate > stableRate * options_.rollbackRatio) {
            std::ostringstream detail;
            detail << "abort code " << errc::to_error_code(code) << " ("
                   << errc::to_string(code) << ") regressed: canary " << count << "/"
                   << canaryWindow_->size() << " vs stable "
                   << static_cast<std::size_t>(stableRate *
                                               static_cast<double>(stableWindow_->size()) +
                                               0.5)
                   << "/" << stableWindow_->size();
            const std::uint64_t from = canary_->version();
            const std::uint64_t to = active_ ? active_->version() : 0;
            canary_.reset();
            canaryWindow_->reset();
            canarySessionsSeen_ = 0;
            ++rollbacks_;
            rollbacksCounter_->add();
            emitLocked({RegistryEvent::Kind::RolledBack, from, to, detail.str()});
            return true;
        }
    }
    return false;
}

bool ModelRegistry::promoteCanary() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!canary_) return false;
    const std::uint64_t from = active_ ? active_->version() : 0;
    const std::uint64_t to = canary_->version();
    active_ = canary_;
    canary_.reset();
    canaryWindow_->reset();
    canarySessionsSeen_ = 0;
    ++swaps_;
    swapsCounter_->add();
    emitLocked({RegistryEvent::Kind::Promoted, from, to, "manual promotion"});
    refreshGaugesLocked();
    return true;
}

bool ModelRegistry::rollbackCanary(const std::string& reason) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!canary_) return false;
    const std::uint64_t from = canary_->version();
    const std::uint64_t to = active_ ? active_->version() : 0;
    canary_.reset();
    canaryWindow_->reset();
    canarySessionsSeen_ = 0;
    ++rollbacks_;
    rollbacksCounter_->add();
    emitLocked({RegistryEvent::Kind::RolledBack, from, to, reason});
    refreshGaugesLocked();
    return true;
}

std::shared_ptr<const ModelSet> ModelRegistry::byCaseIdentity(Case c,
                                                              std::uint64_t identity) const {
    std::lock_guard<std::mutex> lock(mutex_);
    // Newest first: when an unchanged document set reloads under a new
    // version (identical fingerprint), replay resolves to the latest.
    for (auto it = generations_.rbegin(); it != generations_.rend(); ++it) {
        if ((*it)->identityFor(c) == identity) return *it;
    }
    return nullptr;
}

std::shared_ptr<const ModelSet> ModelRegistry::byVersion(std::uint64_t version) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& set : generations_) {
        if (set->version() == version) return set;
    }
    return nullptr;
}

std::uint64_t ModelRegistry::swapsTotal() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return swaps_;
}

std::uint64_t ModelRegistry::rollbacksTotal() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rollbacks_;
}

std::uint64_t ModelRegistry::reloadFailuresTotal() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reloadFailures_;
}

void ModelRegistry::noteReloadFailure(const std::string& detail) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++reloadFailures_;
    reloadFailuresCounter_->add();
    const std::uint64_t keeping = active_ ? active_->version() : 0;
    emitLocked({RegistryEvent::Kind::ReloadFailed, keeping, keeping, detail});
}

void ModelRegistry::emitLocked(RegistryEvent event) {
    {
        auto line = STARLINK_LOG(Info, "registry");
        line << registryEventName(event.kind) << " v" << event.fromVersion << " -> v"
             << event.toVersion;
        if (!event.detail.empty()) line << " (" << event.detail << ")";
    }
    if (onEvent) onEvent(event);
}

void ModelRegistry::refreshGaugesLocked() {
    activeVersionGauge_->set(active_ ? static_cast<std::int64_t>(active_->version()) : 0);
    canaryVersionGauge_->set(canary_ ? static_cast<std::int64_t>(canary_->version()) : 0);
    canarySessionsGauge_->set(static_cast<std::int64_t>(canaryWindow_->size()));
    canaryAbortsGauge_->set(static_cast<std::int64_t>(canaryWindow_->aborts));
    stableSessionsGauge_->set(static_cast<std::int64_t>(stableWindow_->size()));
    stableAbortsGauge_->set(static_cast<std::int64_t>(stableWindow_->aborts));
}

}  // namespace starlink::bridge
