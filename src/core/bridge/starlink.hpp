// The Starlink framework facade (paper Fig 6).
//
// One Starlink instance hosts shared runtime-extensible registries (MDL
// marshallers, translation functions T, the color hash f) and deploys
// interoperability bridges from model bundles: per-protocol MDL + colored
// automaton documents, and a bridge document (merged automaton + translation
// logic). Deployment is entirely model-driven -- the use case of the paper's
// section V is: hand the framework five to seven XML documents and two
// legacy systems start interoperating.
//
//     net::VirtualClock clock;
//     net::EventScheduler scheduler(clock);
//     net::SimNetwork network(scheduler);
//     bridge::Starlink starlink(network);
//     auto models = bridge::models::forCase(
//         bridge::models::Case::SlpToBonjour, "10.0.0.9");
//     bridge::DeployedBridge& b = starlink.deploy(models, "10.0.0.9");
//     ... run legacy applications; scheduler.runUntilIdle(); ...
//     b.engine().sessions();  // per-conversation translation times
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/automata/color.hpp"
#include "core/bridge/models.hpp"
#include "core/engine/automata_engine.hpp"
#include "core/engine/network_engine.hpp"
#include "core/mdl/codec.hpp"
#include "core/merge/ontology.hpp"
#include "core/merge/translation.hpp"
#include "net/network.hpp"

namespace starlink::bridge {

/// A live connector: its network endpoints plus the executing engine.
class DeployedBridge {
public:
    engine::AutomataEngine& engine() { return *engine_; }
    const engine::AutomataEngine& engine() const { return *engine_; }
    const std::string& host() const { return network_->host(); }

private:
    friend class Starlink;
    DeployedBridge() = default;

    std::unique_ptr<engine::NetworkEngine> network_;
    std::unique_ptr<engine::AutomataEngine> engine_;
};

class Starlink {
public:
    /// Construction also installs the network's virtual clock as the
    /// CONSTRUCTING THREAD's log time source, so every log line that thread
    /// emits carries the simulation time; destruction removes it. The slot is
    /// thread-local: with several frameworks alive on one thread the most
    /// recently constructed one stamps that thread's log, while frameworks on
    /// other threads (one per shard of the sharded driver) stamp their own
    /// lines independently. Construct and destroy a framework on the same
    /// thread that runs its simulation.
    explicit Starlink(net::Network& network);
    ~Starlink();

    /// Deploys a bridge at `host`. Loads every protocol model, the bridge
    /// document, validates the merge (structure + semantic-equivalence
    /// coverage of mandatory fields), starts the engine. Throws SpecError on
    /// any model defect.
    DeployedBridge& deploy(const models::DeploymentSpec& spec, const std::string& host,
                           engine::EngineOptions options = {});

    /// Synthesizes the merged automaton AUTOMATICALLY from the two protocol
    /// models and a field ontology (paper section VII, future work), then
    /// deploys it. The served protocol answers the bridge's clients, the
    /// queried protocol reaches the heterogeneous service.
    DeployedBridge& deploySynthesized(const models::ProtocolModel& served,
                                      const models::ProtocolModel& queried,
                                      const merge::Ontology& ontology, const std::string& host,
                                      engine::EngineOptions options = {},
                                      std::vector<std::string>* report = nullptr);

    // -- runtime extension points ---------------------------------------------
    mdl::MarshallerRegistry& marshallers() { return *marshallers_; }
    merge::TranslationRegistry& translations() { return *translations_; }
    automata::ColorRegistry& colors() { return colors_; }

    const std::vector<std::unique_ptr<DeployedBridge>>& bridges() const { return bridges_; }
    net::Network& network() { return network_; }

private:
    net::Network& network_;
    std::shared_ptr<mdl::MarshallerRegistry> marshallers_;
    std::shared_ptr<merge::TranslationRegistry> translations_;
    automata::ColorRegistry colors_;
    std::vector<std::unique_ptr<DeployedBridge>> bridges_;
};

}  // namespace starlink::bridge
