// The protocol-independent message representation at the heart of Starlink
// (paper section III-A, Fig 6).
//
// Parsers lift network bytes into an AbstractMessage; translation logic moves
// content between AbstractMessages of different protocols; composers lower an
// AbstractMessage back to bytes. Fields are addressed two ways:
//  - dotted paths ("URL.port") used internally by the engine, mirroring the
//    paper's msg.field selection operator, and
//  - the XML projection + XPath used by bridge specifications (Fig 8); the
//    projection conforms to the fixed schema
//        <field message="TYPE">
//          <primitiveField><label/><type/><value/></primitiveField>
//          <structuredField><label/> ...nested fields... </structuredField>
//        </field>
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/message/field.hpp"
#include "xml/dom.hpp"

namespace starlink {

class AbstractMessage {
public:
    AbstractMessage() = default;
    explicit AbstractMessage(std::string type) : type_(std::move(type)) {}

    /// The message type label, e.g. "SLPSrvRequest" -- the name automata
    /// transitions are labelled with.
    const std::string& type() const { return type_; }
    void setType(std::string type) { type_ = std::move(type); }

    const std::vector<Field>& fields() const { return fields_; }
    std::vector<Field>& fields() { return fields_; }
    void addField(Field field) { fields_.push_back(std::move(field)); }

    // -- dotted-path access ---------------------------------------------------
    /// Resolves "a.b.c" to the addressed field; nullptr when any step is
    /// missing. This is the paper's msg.field operator.
    const Field* field(std::string_view dottedPath) const;
    Field* field(std::string_view dottedPath);

    /// Value of the addressed primitive field; nullopt when missing or
    /// structured.
    std::optional<Value> value(std::string_view dottedPath) const;

    /// Sets the value of the addressed primitive field, creating intermediate
    /// structured fields and the leaf (with the given type name) as needed.
    void setValue(std::string_view dottedPath, Value value, std::string typeName = "String");

    /// Removes a top-level field by label; returns false when absent.
    bool removeField(std::string_view label);

    /// Deep-owns any arena-backed view values so the message can outlive the
    /// rx arena it was parsed against (trace rings, session histories).
    void materializeValues() {
        for (Field& f : fields_) f.materializeValues();
    }

    // -- XML projection ---------------------------------------------------------
    /// Projects into the fixed abstract-message XML schema. Root element is
    /// <field message="TYPE">; XPath expressions in bridge specs evaluate
    /// against this root.
    std::unique_ptr<xml::Node> toXml() const;

    /// Rebuilds a message from its projection; throws SpecError on schema
    /// violations.
    static AbstractMessage fromXml(const xml::Node& root);

    bool operator==(const AbstractMessage& other) const {
        return type_ == other.type_ && fields_ == other.fields_;
    }

    /// Human-readable one-per-line dump for diagnostics and examples.
    std::string describe() const;

private:
    std::string type_;
    std::vector<Field> fields_;
};

}  // namespace starlink
