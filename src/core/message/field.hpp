// Fields of an abstract message (paper section III-A).
//
// "An abstract message consists of a set of fields, either primitive or
//  structured. A primitive field is composed of a label naming the field, a
//  type describing the type of the data content, a length defining the length
//  in bits of the field, and the value. A structured field is composed of
//  multiple primitive fields."  (We additionally allow structured fields to
//  nest, which the URL example in the paper implies.)
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/message/value.hpp"

namespace starlink {

class Field {
public:
    enum class Kind { Primitive, Structured };

    /// Creates a primitive field. `typeName` is the MDL type label (e.g.
    /// "Integer", "FQDN"); `lengthBits` is the wire length when known.
    static Field primitive(std::string label, std::string typeName, Value value,
                           std::optional<int> lengthBits = std::nullopt);

    /// Creates a structured field with the given children.
    static Field structured(std::string label, std::vector<Field> children = {});

    Kind kind() const { return kind_; }
    bool isPrimitive() const { return kind_ == Kind::Primitive; }

    const std::string& label() const { return label_; }
    void setLabel(std::string label) { label_ = std::move(label); }

    // -- primitive accessors (meaningful only when isPrimitive()) -----------
    const std::string& typeName() const { return typeName_; }
    void setTypeName(std::string t) { typeName_ = std::move(t); }
    const Value& value() const { return value_; }
    void setValue(Value v) { value_ = std::move(v); }
    std::optional<int> lengthBits() const { return lengthBits_; }
    void setLengthBits(std::optional<int> bits) { lengthBits_ = bits; }

    // -- structured accessors -------------------------------------------------
    const std::vector<Field>& children() const { return children_; }
    std::vector<Field>& children() { return children_; }

    /// First child with the given label (structured fields only), or nullptr.
    const Field* child(std::string_view label) const;
    Field* child(std::string_view label);

    /// Deep-owns any arena-backed view values (recursively); required before
    /// the field outlives the rx arena its values borrow from.
    void materializeValues() {
        value_.materialize();
        for (Field& c : children_) c.materializeValues();
    }

    bool operator==(const Field& other) const;

private:
    Field() = default;

    Kind kind_ = Kind::Primitive;
    std::string label_;
    std::string typeName_;
    Value value_;
    std::optional<int> lengthBits_;
    std::vector<Field> children_;
};

}  // namespace starlink
