// Typed field content for abstract messages (paper section III-A).
//
// A Value is what a primitive field carries between a generic parser and a
// generic composer. The type set covers what discovery/middleware protocol
// fields need: integers (all wire widths normalise to Int), text, raw bytes,
// booleans and doubles. Everything is convertible to/from a canonical text
// form because translation logic and the XML projection move content as text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "common/bytes.hpp"

namespace starlink {

enum class ValueType { Empty, Int, String, Bytes, Bool, Double };

const char* valueTypeName(ValueType type);
std::optional<ValueType> valueTypeFromName(std::string_view name);

class Value {
public:
    Value() = default;
    explicit Value(std::int64_t v) : data_(v) {}
    explicit Value(std::string v) : data_(std::move(v)) {}
    explicit Value(Bytes v) : data_(std::move(v)) {}
    explicit Value(bool v) : data_(v) {}
    explicit Value(double v) : data_(v) {}

    static Value ofInt(std::int64_t v) { return Value(v); }
    static Value ofString(std::string v) { return Value(std::move(v)); }
    static Value ofBytes(Bytes v) { return Value(std::move(v)); }
    static Value ofBool(bool v) { return Value(v); }
    static Value ofDouble(double v) { return Value(v); }

    ValueType type() const;
    bool isEmpty() const { return type() == ValueType::Empty; }

    // Exact accessors: nullopt when the stored type differs.
    std::optional<std::int64_t> asInt() const;
    std::optional<std::string> asString() const;
    std::optional<Bytes> asBytes() const;
    std::optional<bool> asBool() const;
    std::optional<double> asDouble() const;

    /// Canonical text form: Int -> decimal, Bytes -> hex, Bool -> true/false,
    /// Double -> shortest round-trippable, Empty -> "".
    std::string toText() const;

    /// Parses the canonical text form back into a Value of the given type;
    /// nullopt when the text does not fit the type.
    static std::optional<Value> fromText(ValueType type, std::string_view text);

    /// Coerces this value to another type where a natural conversion exists
    /// (Int<->String decimal, String<->Bytes verbatim, Int<->Bool, ...).
    /// nullopt when no lossless-ish conversion applies.
    std::optional<Value> coerceTo(ValueType target) const;

    bool operator==(const Value& other) const { return data_ == other.data_; }

private:
    std::variant<std::monostate, std::int64_t, std::string, Bytes, bool, double> data_;
};

}  // namespace starlink
