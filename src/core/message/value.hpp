// Typed field content for abstract messages (paper section III-A).
//
// A Value is what a primitive field carries between a generic parser and a
// generic composer. The type set covers what discovery/middleware protocol
// fields need: integers (all wire widths normalise to Int), text, raw bytes,
// booleans and doubles. Everything is convertible to/from a canonical text
// form because translation logic and the XML projection move content as text.
//
// String and Bytes content comes in two representations: owning
// (std::string / Bytes) and borrowed views (std::string_view / ByteView)
// over a session-scoped RxArena. type() and the accessors erase the
// difference -- a view-backed Value behaves exactly like an owning one --
// so the zero-copy parse path and the copying interpreter oracles produce
// values that compare equal. Views are only valid while their arena is;
// anything that outlives the session (trace rings, stored histories) must
// call materialize() first.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "common/bytes.hpp"

namespace starlink {

enum class ValueType { Empty, Int, String, Bytes, Bool, Double };

const char* valueTypeName(ValueType type);
std::optional<ValueType> valueTypeFromName(std::string_view name);

/// A borrowed span of raw bytes (the Bytes analogue of std::string_view).
struct ByteView {
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
};

class Value {
public:
    Value() = default;
    explicit Value(std::int64_t v) : data_(v) {}
    explicit Value(std::string v) : data_(std::move(v)) {}
    explicit Value(Bytes v) : data_(std::move(v)) {}
    explicit Value(bool v) : data_(v) {}
    explicit Value(double v) : data_(v) {}

    static Value ofInt(std::int64_t v) { return Value(v); }
    static Value ofString(std::string v) { return Value(std::move(v)); }
    static Value ofBytes(Bytes v) { return Value(std::move(v)); }
    static Value ofBool(bool v) { return Value(v); }
    static Value ofDouble(double v) { return Value(v); }

    /// Borrowed content: type() reports String/Bytes, no heap allocation.
    /// The caller guarantees the referenced storage outlives the Value.
    static Value ofView(std::string_view v) {
        Value out;
        out.data_ = v;
        return out;
    }
    static Value ofByteView(ByteView v) {
        Value out;
        out.data_ = v;
        return out;
    }

    ValueType type() const;
    bool isEmpty() const { return type() == ValueType::Empty; }

    /// True when the content is borrowed from an arena rather than owned.
    bool isView() const { return data_.index() == 6 || data_.index() == 7; }

    /// Converts borrowed content into owned content in place; owning values
    /// are untouched. Required before the Value outlives its arena.
    void materialize();

    // Exact accessors: nullopt when the stored type differs. View-backed
    // values answer through their logical type (String/Bytes), copying.
    std::optional<std::int64_t> asInt() const;
    std::optional<std::string> asString() const;
    std::optional<Bytes> asBytes() const;
    std::optional<bool> asBool() const;
    std::optional<double> asDouble() const;

    /// Zero-copy peek at String content (owned or view); nullopt otherwise.
    std::optional<std::string_view> stringContent() const;
    /// Zero-copy peek at Bytes content (owned or view); nullopt otherwise.
    std::optional<ByteView> bytesContent() const;

    /// Canonical text form: Int -> decimal, Bytes -> hex, Bool -> true/false,
    /// Double -> shortest round-trippable, Empty -> "".
    std::string toText() const;

    /// Parses the canonical text form back into a Value of the given type;
    /// nullopt when the text does not fit the type.
    static std::optional<Value> fromText(ValueType type, std::string_view text);

    /// Coerces this value to another type where a natural conversion exists
    /// (Int<->String decimal, String<->Bytes verbatim, Int<->Bool, ...).
    /// nullopt when no lossless-ish conversion applies.
    std::optional<Value> coerceTo(ValueType target) const;

    /// Content equality: a view-backed value equals an owning value with the
    /// same bytes (the differential fuzz harness compares plan output, which
    /// may borrow, against interpreter output, which always owns).
    bool operator==(const Value& other) const;

private:
    std::variant<std::monostate, std::int64_t, std::string, Bytes, bool, double,
                 std::string_view, ByteView>
        data_;
};

}  // namespace starlink
