#include "core/message/abstract_message.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace starlink {

namespace {

const Field* findIn(const std::vector<Field>& fields, std::string_view label) {
    for (const Field& f : fields) {
        if (f.label() == label) return &f;
    }
    return nullptr;
}

Field* findIn(std::vector<Field>& fields, std::string_view label) {
    for (Field& f : fields) {
        if (f.label() == label) return &f;
    }
    return nullptr;
}

}  // namespace

const Field* AbstractMessage::field(std::string_view dottedPath) const {
    const std::vector<std::string> steps = split(dottedPath, '.');
    if (steps.empty()) return nullptr;
    const Field* current = findIn(fields_, steps[0]);
    for (std::size_t i = 1; current != nullptr && i < steps.size(); ++i) {
        current = current->child(steps[i]);
    }
    return current;
}

Field* AbstractMessage::field(std::string_view dottedPath) {
    const std::vector<std::string> steps = split(dottedPath, '.');
    if (steps.empty()) return nullptr;
    Field* current = findIn(fields_, steps[0]);
    for (std::size_t i = 1; current != nullptr && i < steps.size(); ++i) {
        current = current->child(steps[i]);
    }
    return current;
}

std::optional<Value> AbstractMessage::value(std::string_view dottedPath) const {
    const Field* f = field(dottedPath);
    if (f == nullptr || !f->isPrimitive()) return std::nullopt;
    return f->value();
}

void AbstractMessage::setValue(std::string_view dottedPath, Value value, std::string typeName) {
    const std::vector<std::string> steps = split(dottedPath, '.');
    if (steps.empty()) throw SpecError("setValue: empty path");

    // Walk/create the structured spine.
    std::vector<Field>* container = &fields_;
    for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
        Field* next = findIn(*container, steps[i]);
        if (next == nullptr) {
            container->push_back(Field::structured(steps[i]));
            next = &container->back();
        }
        if (next->isPrimitive()) {
            throw SpecError("setValue: '" + steps[i] + "' in path '" + std::string(dottedPath) +
                            "' is a primitive field, cannot descend");
        }
        container = &next->children();
    }

    Field* leaf = findIn(*container, steps.back());
    if (leaf == nullptr) {
        container->push_back(Field::primitive(steps.back(), std::move(typeName), std::move(value)));
        return;
    }
    if (!leaf->isPrimitive()) {
        throw SpecError("setValue: '" + std::string(dottedPath) + "' addresses a structured field");
    }
    leaf->setValue(std::move(value));
}

bool AbstractMessage::removeField(std::string_view label) {
    for (auto it = fields_.begin(); it != fields_.end(); ++it) {
        if (it->label() == label) {
            fields_.erase(it);
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// XML projection

namespace {

void fieldToXml(const Field& field, xml::Node& parent) {
    if (field.isPrimitive()) {
        xml::Node& node = parent.appendChild("primitiveField");
        node.appendChild("label").setText(field.label());
        node.appendChild("type").setText(field.typeName());
        if (field.lengthBits()) {
            node.appendChild("length").setText(std::to_string(*field.lengthBits()));
        }
        node.appendChild("valueType").setText(valueTypeName(field.value().type()));
        node.appendChild("value").setText(field.value().toText());
    } else {
        xml::Node& node = parent.appendChild("structuredField");
        node.appendChild("label").setText(field.label());
        for (const Field& child : field.children()) {
            fieldToXml(child, node);
        }
    }
}

Field fieldFromXml(const xml::Node& node) {
    const auto label = node.childText("label");
    if (!label) throw SpecError("abstract message xml: field without <label>");
    if (node.name() == "primitiveField") {
        const std::string typeName = trim(node.childText("type").value_or("String"));
        const std::string valueTypeText = trim(node.childText("valueType").value_or("String"));
        const auto valueType = valueTypeFromName(valueTypeText);
        if (!valueType) {
            throw SpecError("abstract message xml: unknown valueType '" + valueTypeText + "'");
        }
        const std::string text = node.childText("value").value_or("");
        const auto value = Value::fromText(*valueType, trim(text));
        if (!value) {
            throw SpecError("abstract message xml: value '" + text + "' does not parse as " +
                            valueTypeText);
        }
        std::optional<int> lengthBits;
        if (const auto lengthText = node.childText("length")) {
            const auto parsed = parseInt(trim(*lengthText));
            if (parsed) lengthBits = static_cast<int>(*parsed);
        }
        return Field::primitive(trim(*label), typeName, *value, lengthBits);
    }
    if (node.name() == "structuredField") {
        std::vector<Field> children;
        for (const auto& child : node.children()) {
            if (child->name() == "primitiveField" || child->name() == "structuredField") {
                children.push_back(fieldFromXml(*child));
            }
        }
        return Field::structured(trim(*label), std::move(children));
    }
    throw SpecError("abstract message xml: unexpected element <" + node.name() + ">");
}

void describeField(const Field& field, int depth, std::ostringstream& out) {
    out << std::string(static_cast<std::size_t>(depth) * 2, ' ');
    if (field.isPrimitive()) {
        out << field.label() << " : " << field.typeName() << " = " << field.value().toText()
            << '\n';
    } else {
        out << field.label() << " {\n";
        for (const Field& child : field.children()) {
            describeField(child, depth + 1, out);
        }
        out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "}\n";
    }
}

}  // namespace

std::unique_ptr<xml::Node> AbstractMessage::toXml() const {
    auto root = std::make_unique<xml::Node>("field");
    root->setAttribute("message", type_);
    for (const Field& f : fields_) {
        fieldToXml(f, *root);
    }
    return root;
}

AbstractMessage AbstractMessage::fromXml(const xml::Node& root) {
    if (root.name() != "field") {
        throw SpecError("abstract message xml: root must be <field>, got <" + root.name() + ">");
    }
    AbstractMessage msg(root.attribute("message").value_or(""));
    for (const auto& child : root.children()) {
        if (child->name() == "primitiveField" || child->name() == "structuredField") {
            msg.addField(fieldFromXml(*child));
        }
    }
    return msg;
}

std::string AbstractMessage::describe() const {
    std::ostringstream out;
    out << "message " << type_ << " {\n";
    for (const Field& f : fields_) {
        describeField(f, 1, out);
    }
    out << "}\n";
    return out.str();
}

}  // namespace starlink
