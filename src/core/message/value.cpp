#include "core/message/value.hpp"

#include <cstring>
#include <sstream>

#include "common/strings.hpp"

namespace starlink {

const char* valueTypeName(ValueType type) {
    switch (type) {
        case ValueType::Empty: return "Empty";
        case ValueType::Int: return "Int";
        case ValueType::String: return "String";
        case ValueType::Bytes: return "Bytes";
        case ValueType::Bool: return "Bool";
        case ValueType::Double: return "Double";
    }
    return "?";
}

std::optional<ValueType> valueTypeFromName(std::string_view name) {
    if (name == "Empty") return ValueType::Empty;
    if (name == "Int" || name == "Integer") return ValueType::Int;
    if (name == "String") return ValueType::String;
    if (name == "Bytes") return ValueType::Bytes;
    if (name == "Bool" || name == "Boolean") return ValueType::Bool;
    if (name == "Double" || name == "Float") return ValueType::Double;
    return std::nullopt;
}

ValueType Value::type() const {
    switch (data_.index()) {
        case 0: return ValueType::Empty;
        case 1: return ValueType::Int;
        case 2: return ValueType::String;
        case 3: return ValueType::Bytes;
        case 4: return ValueType::Bool;
        case 5: return ValueType::Double;
        case 6: return ValueType::String;  // borrowed text
        case 7: return ValueType::Bytes;   // borrowed bytes
    }
    return ValueType::Empty;
}

void Value::materialize() {
    if (const auto* v = std::get_if<std::string_view>(&data_)) {
        data_ = std::string(*v);
    } else if (const auto* b = std::get_if<ByteView>(&data_)) {
        data_ = Bytes(b->data, b->data + b->size);
    }
}

std::optional<std::int64_t> Value::asInt() const {
    if (const auto* v = std::get_if<std::int64_t>(&data_)) return *v;
    return std::nullopt;
}

std::optional<std::string> Value::asString() const {
    if (const auto* v = std::get_if<std::string>(&data_)) return *v;
    if (const auto* v = std::get_if<std::string_view>(&data_)) return std::string(*v);
    return std::nullopt;
}

std::optional<Bytes> Value::asBytes() const {
    if (const auto* v = std::get_if<Bytes>(&data_)) return *v;
    if (const auto* v = std::get_if<ByteView>(&data_)) return Bytes(v->data, v->data + v->size);
    return std::nullopt;
}

std::optional<bool> Value::asBool() const {
    if (const auto* v = std::get_if<bool>(&data_)) return *v;
    return std::nullopt;
}

std::optional<double> Value::asDouble() const {
    if (const auto* v = std::get_if<double>(&data_)) return *v;
    return std::nullopt;
}

std::optional<std::string_view> Value::stringContent() const {
    if (const auto* v = std::get_if<std::string>(&data_)) return std::string_view(*v);
    if (const auto* v = std::get_if<std::string_view>(&data_)) return *v;
    return std::nullopt;
}

std::optional<ByteView> Value::bytesContent() const {
    if (const auto* v = std::get_if<Bytes>(&data_)) return ByteView{v->data(), v->size()};
    if (const auto* v = std::get_if<ByteView>(&data_)) return *v;
    return std::nullopt;
}

std::string Value::toText() const {
    switch (type()) {
        case ValueType::Empty: return "";
        case ValueType::Int: return std::to_string(*asInt());
        case ValueType::String: return std::string(*stringContent());
        case ValueType::Bytes: {
            const ByteView view = *bytesContent();
            return toHex(Bytes(view.data, view.data + view.size));
        }
        case ValueType::Bool: return *asBool() ? "true" : "false";
        case ValueType::Double: {
            std::ostringstream out;
            out << *asDouble();
            return out.str();
        }
    }
    return "";
}

std::optional<Value> Value::fromText(ValueType type, std::string_view text) {
    switch (type) {
        case ValueType::Empty:
            return Value();
        case ValueType::Int: {
            const auto v = parseInt(text);
            if (!v) return std::nullopt;
            return Value::ofInt(*v);
        }
        case ValueType::String:
            return Value::ofString(std::string(text));
        case ValueType::Bytes: {
            try {
                return Value::ofBytes(fromHex(text));
            } catch (...) {
                return std::nullopt;
            }
        }
        case ValueType::Bool:
            if (text == "true" || text == "1") return Value::ofBool(true);
            if (text == "false" || text == "0") return Value::ofBool(false);
            return std::nullopt;
        case ValueType::Double: {
            try {
                std::size_t consumed = 0;
                const double v = std::stod(std::string(text), &consumed);
                if (consumed != text.size()) return std::nullopt;
                return Value::ofDouble(v);
            } catch (...) {
                return std::nullopt;
            }
        }
    }
    return std::nullopt;
}

std::optional<Value> Value::coerceTo(ValueType target) const {
    if (type() == target) return *this;
    switch (target) {
        case ValueType::String:
            return Value::ofString(toText());
        case ValueType::Int: {
            if (type() == ValueType::String) {
                const auto v = parseInt(*stringContent());
                if (!v) return std::nullopt;
                return Value::ofInt(*v);
            }
            if (type() == ValueType::Bool) return Value::ofInt(*asBool() ? 1 : 0);
            if (type() == ValueType::Double) {
                return Value::ofInt(static_cast<std::int64_t>(*asDouble()));
            }
            return std::nullopt;
        }
        case ValueType::Bytes: {
            if (type() == ValueType::String) return Value::ofBytes(toBytes(*asString()));
            return std::nullopt;
        }
        case ValueType::Bool: {
            if (type() == ValueType::Int) return Value::ofBool(*asInt() != 0);
            if (type() == ValueType::String) return fromText(ValueType::Bool, *stringContent());
            return std::nullopt;
        }
        case ValueType::Double: {
            if (type() == ValueType::Int) return Value::ofDouble(static_cast<double>(*asInt()));
            if (type() == ValueType::String) return fromText(ValueType::Double, *stringContent());
            return std::nullopt;
        }
        case ValueType::Empty:
            return Value();
    }
    return std::nullopt;
}

bool Value::operator==(const Value& other) const {
    const ValueType kind = type();
    if (kind != other.type()) return false;
    switch (kind) {
        case ValueType::Empty: return true;
        case ValueType::Int: return *asInt() == *other.asInt();
        case ValueType::Bool: return *asBool() == *other.asBool();
        case ValueType::Double: return *asDouble() == *other.asDouble();
        case ValueType::String: return *stringContent() == *other.stringContent();
        case ValueType::Bytes: {
            const ByteView a = *bytesContent();
            const ByteView b = *other.bytesContent();
            if (a.size != b.size) return false;
            return a.size == 0 || std::memcmp(a.data, b.data, a.size) == 0;
        }
    }
    return false;
}

}  // namespace starlink
