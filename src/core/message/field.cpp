#include "core/message/field.hpp"

namespace starlink {

Field Field::primitive(std::string label, std::string typeName, Value value,
                       std::optional<int> lengthBits) {
    Field f;
    f.kind_ = Kind::Primitive;
    f.label_ = std::move(label);
    f.typeName_ = std::move(typeName);
    f.value_ = std::move(value);
    f.lengthBits_ = lengthBits;
    return f;
}

Field Field::structured(std::string label, std::vector<Field> children) {
    Field f;
    f.kind_ = Kind::Structured;
    f.label_ = std::move(label);
    f.children_ = std::move(children);
    return f;
}

const Field* Field::child(std::string_view label) const {
    for (const Field& c : children_) {
        if (c.label() == label) return &c;
    }
    return nullptr;
}

Field* Field::child(std::string_view label) {
    for (Field& c : children_) {
        if (c.label() == label) return &c;
    }
    return nullptr;
}

bool Field::operator==(const Field& other) const {
    if (kind_ != other.kind_ || label_ != other.label_) return false;
    if (kind_ == Kind::Primitive) {
        return typeName_ == other.typeName_ && value_ == other.value_;
    }
    return children_ == other.children_;
}

}  // namespace starlink
