// Execution traces and the history operator => (paper section III-B).
//
// "To further analyse at runtime the behavior of an automaton, we define a
//  history operator: s1 =!m=> s2 (resp. s1 =?m=> s2) gives the sequence of
//  the sent (resp. received) instances for each abstract message from the
//  state s1 to s2."
//
// The automata engine records every transition it takes into a Trace; the
// history operator replays the recorded segment between two states. Merge
// validation uses it to evaluate the semantic-equivalence precondition of
// the delta-transition constraints (eqns 2-3).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/automata/colored_automaton.hpp"

namespace starlink::automata {

struct TraceEvent {
    std::string automaton;  // component automaton name
    std::string from;
    std::string to;
    /// nullopt for a delta-transition (no message exchanged).
    std::optional<Action> action;
    /// The exchanged instance; empty message for delta-transitions.
    AbstractMessage message;
};

class Trace {
public:
    /// The trace is a CAPPED ring: a long-running bridge keeps the most
    /// recent `capacity` transitions instead of growing without bound. The
    /// history operator consequently answers over that sliding window --
    /// merge validation and the engine only ever query segments of the
    /// current conversation, which fits comfortably (the engine's capacity
    /// comes from EngineOptions::traceCapacity).
    ///
    /// Thread confinement: a Trace is engine state, and an engine is island
    /// state -- with concurrent engines (shard_engine.hpp) each ring is
    /// recorded and queried only on its shard's thread. segment() anchors at
    /// the LAST visit of `from`, so on a pooled island serving session after
    /// session the operator answers over the current conversation even while
    /// older sessions' transitions are still in the window.
    static constexpr std::size_t kDefaultCapacity = 4096;

    explicit Trace(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

    void record(TraceEvent event) {
        if (capacity_ == 0) {
            ++dropped_;
            return;
        }
        while (events_.size() >= capacity_) {
            events_.pop_front();
            ++dropped_;
        }
        events_.push_back(std::move(event));
    }
    void clear() { events_.clear(); }

    /// Shrinking the cap trims the oldest events immediately.
    void setCapacity(std::size_t capacity) {
        capacity_ = capacity;
        while (events_.size() > capacity_) {
            events_.pop_front();
            ++dropped_;
        }
    }
    std::size_t capacity() const { return capacity_; }
    /// Events evicted by the cap since construction.
    std::uint64_t dropped() const { return dropped_; }

    const std::deque<TraceEvent>& events() const { return events_; }
    std::size_t size() const { return events_.size(); }

    /// History operator: the sequence of instances with the given action
    /// exchanged on the recorded path from the LAST visit of `from` up to and
    /// including the first subsequent arrival at `to`. Empty when the segment
    /// does not appear in the trace.
    std::vector<AbstractMessage> history(const std::string& from, const std::string& to,
                                         Action action) const;

    /// Both directions: every instance on the segment regardless of action.
    std::vector<AbstractMessage> historyAll(const std::string& from,
                                            const std::string& to) const;

private:
    /// [begin, end) event index range of the from->to segment; nullopt when
    /// absent.
    std::optional<std::pair<std::size_t, std::size_t>> segment(const std::string& from,
                                                               const std::string& to) const;

    std::size_t capacity_ = kDefaultCapacity;
    std::uint64_t dropped_ = 0;
    std::deque<TraceEvent> events_;
};

}  // namespace starlink::automata
