#include "core/automata/color.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace starlink::automata {

Color::Color(std::initializer_list<std::pair<std::string, std::string>> entries) {
    for (const auto& [key, value] : entries) set(key, value);
}

void Color::set(const std::string& key, std::string value) {
    for (auto& [k, v] : entries_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    entries_.emplace_back(key, std::move(value));
    std::sort(entries_.begin(), entries_.end());
}

std::optional<std::string> Color::get(std::string_view key) const {
    for (const auto& [k, v] : entries_) {
        if (k == key) return v;
    }
    return std::nullopt;
}

std::string Color::canonicalKey() const {
    std::string out;
    for (const auto& [k, v] : entries_) {
        out += k;
        out += '=';
        out += v;
        out += ';';
    }
    return out;
}

std::optional<int> Color::port() const {
    const auto text = get(keys::port);
    if (!text) return std::nullopt;
    const auto value = parseInt(*text);
    if (!value || *value < 0 || *value > 65535) return std::nullopt;
    return static_cast<int>(*value);
}

namespace {
std::uint64_t fnv1a(std::string_view s) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (char c : s) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}
}  // namespace

std::uint64_t ColorRegistry::colorOf(const Color& color) {
    const std::string key = color.canonicalKey();
    const auto it = byKey_.find(key);
    if (it != byKey_.end()) return it->second.first;

    std::uint64_t k = fnv1a(key);
    // Deterministic re-probe keeps f injective even under a 64-bit collision.
    while (byHash_.contains(k)) k += 0x9e3779b97f4a7c15ULL;
    byKey_.emplace(key, std::make_pair(k, color));
    byHash_.emplace(k, key);
    return k;
}

const Color* ColorRegistry::lookup(std::uint64_t k) const {
    const auto it = byHash_.find(k);
    if (it == byHash_.end()) return nullptr;
    return &byKey_.at(it->second).second;
}

}  // namespace starlink::automata
