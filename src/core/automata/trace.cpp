#include "core/automata/trace.hpp"

namespace starlink::automata {

std::optional<std::pair<std::size_t, std::size_t>> Trace::segment(const std::string& from,
                                                                  const std::string& to) const {
    // Find the last event departing `from`, then scan forward to the first
    // event arriving at `to`.
    std::optional<std::size_t> begin;
    for (std::size_t i = 0; i < events_.size(); ++i) {
        if (events_[i].from == from) begin = i;
    }
    if (!begin) return std::nullopt;
    for (std::size_t i = *begin; i < events_.size(); ++i) {
        if (events_[i].to == to) return std::make_pair(*begin, i + 1);
    }
    return std::nullopt;
}

std::vector<AbstractMessage> Trace::history(const std::string& from, const std::string& to,
                                            Action action) const {
    std::vector<AbstractMessage> out;
    const auto range = segment(from, to);
    if (!range) return out;
    for (std::size_t i = range->first; i < range->second; ++i) {
        if (events_[i].action && *events_[i].action == action) {
            out.push_back(events_[i].message);
        }
    }
    return out;
}

std::vector<AbstractMessage> Trace::historyAll(const std::string& from,
                                               const std::string& to) const {
    std::vector<AbstractMessage> out;
    const auto range = segment(from, to);
    if (!range) return out;
    for (std::size_t i = range->first; i < range->second; ++i) {
        if (events_[i].action) out.push_back(events_[i].message);
    }
    return out;
}

}  // namespace starlink::automata
