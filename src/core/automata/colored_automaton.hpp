// k-colored automata (paper section III-B).
//
//   Ak = (Q, M, q0, F, Act, ->, =>)
//
// Q are states, M abstract message types, Act = {?, !} with ? receive and
// ! send, -> the transition relation, and => the history operator over the
// per-state message queues. Each state carries the color k of the network
// semantics in force while the automaton sits in it; the k-colored invariant
// (all states of a component share one color, and transitions never cross
// colors -- only delta-transitions of a merged automaton may) is enforced by
// validate().
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/automata/color.hpp"
#include "core/message/abstract_message.hpp"

namespace starlink::automata {

enum class Action { Send, Receive };

inline const char* actionSymbol(Action a) { return a == Action::Send ? "!" : "?"; }

struct Transition {
    std::string from;
    std::string to;
    Action action = Action::Receive;
    std::string messageType;
};

/// One automaton state. The queue stores message INSTANCES seen while
/// passing through the state ("each state maintains a queue to store both
/// incoming and outgoing message instances"), which is what translation
/// logic addresses with s.m.field.
class State {
public:
    State(std::string id, std::uint64_t color, bool accepting)
        : id_(std::move(id)), color_(color), accepting_(accepting) {}

    const std::string& id() const { return id_; }
    std::uint64_t color() const { return color_; }
    bool accepting() const { return accepting_; }
    void setAccepting(bool accepting) { accepting_ = accepting; }

    // -- message queue -------------------------------------------------------
    void pushMessage(AbstractMessage message) { queue_.push_back(std::move(message)); }

    /// Latest stored instance of the given type (s.m in the paper), nullptr
    /// when none.
    const AbstractMessage* message(const std::string& type) const;

    /// All stored instances in arrival order (s.m-vector).
    const std::deque<AbstractMessage>& messages() const { return queue_; }

    void clearQueue() { queue_.clear(); }

private:
    std::string id_;
    std::uint64_t color_;
    bool accepting_;
    std::deque<AbstractMessage> queue_;
};

class ColoredAutomaton {
public:
    explicit ColoredAutomaton(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    /// Adds a state colored with `color` (registered through `registry` so
    /// that k is consistent across every automaton sharing the registry).
    State& addState(const std::string& id, const Color& color, ColorRegistry& registry,
                    bool accepting = false);

    void setInitial(const std::string& id);
    const std::string& initialState() const { return initial_; }

    void addTransition(const std::string& from, Action action, const std::string& messageType,
                       const std::string& to);

    // -- lookup ---------------------------------------------------------------
    const State* state(const std::string& id) const;
    State* state(const std::string& id);
    std::vector<const State*> states() const;
    std::vector<std::string> acceptingStates() const;
    const std::vector<Transition>& transitions() const { return transitions_; }

    /// Transitions leaving `from`. Served from a per-state dispatch index
    /// built lazily after the last addTransition; the reference stays valid
    /// until the automaton is mutated.
    const std::vector<const Transition*>& transitionsFrom(const std::string& from) const;

    /// The unique transition leaving `from` on (action, messageType), or
    /// nullptr.
    const Transition* transitionFor(const std::string& from, Action action,
                                    const std::string& messageType) const;

    /// The color shared by this automaton's states (k in Ak). Meaningful
    /// after validate().
    std::uint64_t color() const;

    /// Checks the k-colored automaton invariants; throws SpecError:
    ///  - an initial state is set and exists,
    ///  - at least one accepting state exists,
    ///  - every transition endpoint exists,
    ///  - transitions connect same-colored states only,
    ///  - all states share one color (single-protocol automaton),
    ///  - every state is reachable from q0,
    ///  - no state has two outgoing transitions on the same (action, type).
    void validate() const;

    /// Empties every state queue (between bridge sessions).
    void reset();

private:
    /// (Re)builds the per-state dispatch index when dirty. Engines query the
    /// automaton far more often than builders mutate it, so the index is
    /// rebuilt at most once per burst of addTransition calls; Transition
    /// pointers in the index stay valid until the next mutation.
    void rebuildDispatchIndex() const;

    std::string name_;
    std::string initial_;
    std::map<std::string, State> states_;
    std::vector<std::string> stateOrder_;
    std::vector<Transition> transitions_;

    // Lazily-built dispatch index: state id -> transitions leaving it, in
    // insertion order (so indexed dispatch preserves linear-scan semantics).
    mutable std::unordered_map<std::string, std::vector<const Transition*>> fromIndex_;
    mutable bool indexDirty_ = true;
};

}  // namespace starlink::automata
