#include "core/automata/colored_automaton.hpp"

#include <set>

#include "common/error.hpp"

namespace starlink::automata {

const AbstractMessage* State::message(const std::string& type) const {
    for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
        if (it->type() == type) return &*it;
    }
    return nullptr;
}

State& ColoredAutomaton::addState(const std::string& id, const Color& color,
                                  ColorRegistry& registry, bool accepting) {
    if (states_.contains(id)) {
        throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name_ + "': duplicate state '" + id + "'");
    }
    const std::uint64_t k = registry.colorOf(color);
    auto [it, inserted] = states_.emplace(id, State(id, k, accepting));
    stateOrder_.push_back(id);
    return it->second;
}

void ColoredAutomaton::setInitial(const std::string& id) {
    if (!states_.contains(id)) {
        throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name_ + "': initial state '" + id + "' unknown");
    }
    initial_ = id;
}

void ColoredAutomaton::addTransition(const std::string& from, Action action,
                                     const std::string& messageType, const std::string& to) {
    transitions_.push_back(Transition{from, to, action, messageType});
    indexDirty_ = true;  // pointers into transitions_ may have moved
}

void ColoredAutomaton::rebuildDispatchIndex() const {
    fromIndex_.clear();
    fromIndex_.reserve(states_.size());
    for (const Transition& t : transitions_) fromIndex_[t.from].push_back(&t);
    indexDirty_ = false;
}

const State* ColoredAutomaton::state(const std::string& id) const {
    const auto it = states_.find(id);
    return it == states_.end() ? nullptr : &it->second;
}

State* ColoredAutomaton::state(const std::string& id) {
    const auto it = states_.find(id);
    return it == states_.end() ? nullptr : &it->second;
}

std::vector<const State*> ColoredAutomaton::states() const {
    std::vector<const State*> out;
    out.reserve(stateOrder_.size());
    for (const std::string& id : stateOrder_) out.push_back(&states_.at(id));
    return out;
}

std::vector<std::string> ColoredAutomaton::acceptingStates() const {
    std::vector<std::string> out;
    for (const std::string& id : stateOrder_) {
        if (states_.at(id).accepting()) out.push_back(id);
    }
    return out;
}

const std::vector<const Transition*>& ColoredAutomaton::transitionsFrom(
    const std::string& from) const {
    static const std::vector<const Transition*> kEmpty;
    if (indexDirty_) rebuildDispatchIndex();
    const auto it = fromIndex_.find(from);
    return it == fromIndex_.end() ? kEmpty : it->second;
}

const Transition* ColoredAutomaton::transitionFor(const std::string& from, Action action,
                                                  const std::string& messageType) const {
    // Validated automata are deterministic per (from, action, type), so the
    // per-state candidate list is short; one hash probe replaces the scan of
    // every transition in the automaton.
    for (const Transition* t : transitionsFrom(from)) {
        if (t->action == action && t->messageType == messageType) return t;
    }
    return nullptr;
}

std::uint64_t ColoredAutomaton::color() const {
    if (states_.empty()) throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name_ + "': no states");
    return states_.begin()->second.color();
}

void ColoredAutomaton::validate() const {
    if (initial_.empty()) {
        throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name_ + "': no initial state");
    }
    if (acceptingStates().empty()) {
        throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name_ + "': no accepting state");
    }

    // Single color across states (one protocol, one k).
    const std::uint64_t k = color();
    for (const auto& [id, state] : states_) {
        if (state.color() != k) {
            throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name_ + "': state '" + id +
                            "' has a different color; single-protocol automata are k-colored "
                            "with one k (cross-color moves require a merged automaton's "
                            "delta-transition)");
        }
    }

    std::set<std::pair<std::string, std::pair<Action, std::string>>> seen;
    for (const Transition& t : transitions_) {
        if (!states_.contains(t.from) || !states_.contains(t.to)) {
            throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name_ + "': transition " + t.from + " " +
                            actionSymbol(t.action) + t.messageType + " -> " + t.to +
                            " references an unknown state");
        }
        if (!seen.insert({t.from, {t.action, t.messageType}}).second) {
            throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name_ + "': nondeterministic transitions from '" +
                            t.from + "' on " + actionSymbol(t.action) + t.messageType);
        }
    }

    // Reachability from q0.
    std::set<std::string> reachable{initial_};
    bool grew = true;
    while (grew) {
        grew = false;
        for (const Transition& t : transitions_) {
            if (reachable.contains(t.from) && reachable.insert(t.to).second) grew = true;
        }
    }
    for (const auto& [id, state] : states_) {
        if (!reachable.contains(id)) {
            throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name_ + "': state '" + id +
                            "' is unreachable from the initial state");
        }
    }
}

void ColoredAutomaton::reset() {
    for (auto& [id, state] : states_) state.clearQueue();
}

}  // namespace starlink::automata
