#include "core/automata/learner.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace starlink::automata {

void BehaviourLearner::observeSession(const std::vector<ObservedEvent>& session) {
    std::size_t current = 0;
    for (const ObservedEvent& event : session) {
        const auto key = std::make_pair(event.action, event.messageType);
        const auto it = nodes_[current].edges.find(key);
        if (it != nodes_[current].edges.end()) {
            current = it->second;
        } else {
            nodes_.push_back(Node{});
            const std::size_t next = nodes_.size() - 1;
            nodes_[current].edges.emplace(key, next);
            current = next;
        }
    }
    nodes_[current].accepting = true;
    ++sessions_;
}

std::shared_ptr<ColoredAutomaton> BehaviourLearner::build(const std::string& name,
                                                          const Color& color,
                                                          ColorRegistry& registry,
                                                          const std::string& statePrefix) const {
    if (sessions_ == 0) {
        throw SpecError("behaviour learner: no sessions observed for '" + name + "'");
    }
    auto automaton = std::make_shared<ColoredAutomaton>(name);

    // Breadth-first naming keeps state ids stable and readable.
    std::vector<std::size_t> bfsOrder;
    std::vector<std::size_t> nameOf(nodes_.size(), 0);
    bfsOrder.push_back(0);
    for (std::size_t i = 0; i < bfsOrder.size(); ++i) {
        for (const auto& [key, next] : nodes_[bfsOrder[i]].edges) {
            bfsOrder.push_back(next);
        }
    }
    for (std::size_t i = 0; i < bfsOrder.size(); ++i) nameOf[bfsOrder[i]] = i;

    auto stateName = [&](std::size_t node) {
        return statePrefix + std::to_string(nameOf[node]);
    };
    for (std::size_t node : bfsOrder) {
        automaton->addState(stateName(node), color, registry, nodes_[node].accepting);
    }
    automaton->setInitial(stateName(0));
    for (std::size_t node : bfsOrder) {
        for (const auto& [key, next] : nodes_[node].edges) {
            automaton->addTransition(stateName(node), key.first, key.second, stateName(next));
        }
    }
    automaton->validate();
    return automaton;
}

void ColorInference::observePacket(const PacketFacts& facts) {
    ++transport_[facts.transport];
    if (facts.destinationPort > 0) ++port_[facts.destinationPort];
    ++multicast_[facts.multicast];
    if (facts.multicast && !facts.group.empty()) ++group_[facts.group];
    ++synchronous_[facts.synchronous];
    ++packets_;
}

namespace {
template <typename K>
const K& majority(const std::map<K, std::size_t>& votes) {
    return std::max_element(votes.begin(), votes.end(), [](const auto& a, const auto& b) {
               return a.second < b.second;
           })->first;
}
}  // namespace

Color ColorInference::infer() const {
    if (packets_ == 0) throw SpecError("color inference: no packets observed");
    Color color;
    color.set(keys::transport, majority(transport_));
    if (!port_.empty()) color.set(keys::port, std::to_string(majority(port_)));
    const bool multicast = majority(multicast_);
    color.set(keys::multicast, multicast ? "yes" : "no");
    if (multicast && !group_.empty()) color.set(keys::group, majority(group_));
    color.set(keys::mode, majority(synchronous_) ? "sync" : "async");
    return color;
}

}  // namespace starlink::automata
