// Passive learning of protocol behaviour (paper section VII, "Learning"):
//
// "We are also investigating learning techniques to understand and model the
//  behaviour of the individual protocols... learning algorithms have been
//  utilised to learn the interaction behaviour of protocols. We hope to
//  build upon these techniques in order to learn both MDLs and coloured
//  automata for protocols."
//
// This module learns the COLORED AUTOMATON side of that programme from
// observed conversations:
//
//  - BehaviourLearner ingests complete observed sessions (sequences of
//    send/receive events with their abstract message types, as produced by a
//    monitoring point that already owns the protocol's MDL) and builds a
//    prefix-tree automaton: one state per distinct event prefix, accepting
//    at session ends. Identical conversations collapse to the linear
//    request/response chains the Starlink engine executes; divergent ones
//    produce deterministic branching.
//
//  - ColorInference accumulates the network attributes of the observed
//    packets (transport, destination port, multicast group, synchrony) and
//    votes them into the color descriptor the automaton is painted with.
//
// Learning MDLs (wire-format inference a la Polyglot, the paper's other
// citation) is out of scope here, as it was for the paper.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/automata/colored_automaton.hpp"

namespace starlink::automata {

/// One observed protocol event, from the perspective of the endpoint being
/// learned (Send = it emitted the message).
struct ObservedEvent {
    Action action = Action::Receive;
    std::string messageType;
};

class BehaviourLearner {
public:
    /// Ingests one complete conversation.
    void observeSession(const std::vector<ObservedEvent>& session);

    std::size_t sessionsObserved() const { return sessions_; }

    /// Number of distinct states the prefix tree currently holds (including
    /// the initial state).
    std::size_t stateCount() const { return nodes_.size(); }

    /// Materialises the learned automaton, painting every state with
    /// `color`. States are named `<prefix>0`, `<prefix>1`, ... in
    /// breadth-first order from the initial state. Throws SpecError when
    /// nothing has been observed.
    std::shared_ptr<ColoredAutomaton> build(const std::string& name, const Color& color,
                                            ColorRegistry& registry,
                                            const std::string& statePrefix = "q") const;

private:
    struct Node {
        std::map<std::pair<Action, std::string>, std::size_t> edges;
        bool accepting = false;
    };

    std::vector<Node> nodes_ = {Node{}};  // node 0 = initial
    std::size_t sessions_ = 0;
};

/// Votes observed packet attributes into a color descriptor.
class ColorInference {
public:
    struct PacketFacts {
        std::string transport = "udp";   // "udp" | "tcp"
        int destinationPort = 0;
        bool multicast = false;
        std::string group;               // non-empty when multicast
        bool synchronous = false;        // same-connection request/response
    };

    void observePacket(const PacketFacts& facts);
    std::size_t packetsObserved() const { return packets_; }

    /// Majority-vote color; throws SpecError when nothing has been observed.
    Color infer() const;

private:
    template <typename K>
    using Votes = std::map<K, std::size_t>;

    Votes<std::string> transport_;
    Votes<int> port_;
    Votes<bool> multicast_;
    Votes<std::string> group_;
    Votes<bool> synchronous_;
    std::size_t packets_ = 0;
};

}  // namespace starlink::automata
