// Automaton coloring (paper section III-B).
//
// "In order to capture these low level network semantics, we use automaton
//  coloring which consists of assigning labels called colors to states...
//  there exists a function f such as
//  f(<(key1,val1),...,(keyn,valn)>) = k. Function f is a perfect hash
//  function that maps a list of tuples, where each tuple is a key-value pair
//  describing low level network details, to a unique hash value k."
//
// A Color is the ordered tuple list; ColorRegistry is the function f. The
// registry canonicalises the tuple list (sorted by key) before hashing and
// keeps every assignment, so two distinct descriptors can never silently
// share a k: a 64-bit FNV-1a collision is detected and resolved by
// deterministic re-probing, keeping f perfect as the paper requires.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace starlink::automata {

/// Well-known color keys, as used in the paper's Figs 1-3 annotations.
namespace keys {
inline constexpr const char* transport = "transport_protocol";  // "udp" | "tcp"
inline constexpr const char* port = "port";
inline constexpr const char* mode = "mode";            // "sync" | "async"
inline constexpr const char* multicast = "multicast";  // "yes" | "no"
inline constexpr const char* group = "group";          // multicast group ip
inline constexpr const char* host = "host";            // unicast target, may be set by set_host
}  // namespace keys

class Color {
public:
    Color() = default;
    Color(std::initializer_list<std::pair<std::string, std::string>> entries);

    void set(const std::string& key, std::string value);
    std::optional<std::string> get(std::string_view key) const;

    /// The tuple list in canonical (key-sorted) order.
    const std::vector<std::pair<std::string, std::string>>& entries() const { return entries_; }

    /// Canonical text form "k1=v1;k2=v2;..." -- the hash input.
    std::string canonicalKey() const;

    // Typed views of the well-known keys.
    std::string transport() const { return get(keys::transport).value_or("udp"); }
    std::optional<int> port() const;
    bool isMulticast() const { return get(keys::multicast).value_or("no") == "yes"; }
    bool isSync() const { return get(keys::mode).value_or("async") == "sync"; }
    std::string group() const { return get(keys::group).value_or(""); }

    bool operator==(const Color& other) const { return entries_ == other.entries_; }

private:
    std::vector<std::pair<std::string, std::string>> entries_;  // kept key-sorted
};

/// The perfect hash f. Shared by all automata that participate in one merged
/// automaton so that equal descriptors get equal k and distinct descriptors
/// provably get distinct k.
class ColorRegistry {
public:
    /// Returns k for this color, assigning a fresh value on first sight.
    std::uint64_t colorOf(const Color& color);

    /// The descriptor registered under k, or nullptr.
    const Color* lookup(std::uint64_t k) const;

    std::size_t size() const { return byKey_.size(); }

private:
    std::map<std::string, std::pair<std::uint64_t, Color>> byKey_;
    std::map<std::uint64_t, std::string> byHash_;
};

}  // namespace starlink::automata
