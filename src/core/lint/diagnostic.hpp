// Structured findings of the static model linter.
//
// Everything the runtime loaders report by THROWING (SpecError at deploy
// time, one defect per run) the linter reports as data: a flat list of
// diagnostics, each tied to a model file, an XML source line, and a stable
// rule id documented in docs/LINT.md. Tooling consumes the list (text or
// JSON) and CI fails a fleet on any error-severity entry.
#pragma once

#include <string>
#include <vector>

#include "core/error/error_code.hpp"

namespace starlink::lint {

enum class Severity { Info, Warning, Error };

inline const char* severityName(Severity severity) {
    switch (severity) {
        case Severity::Info: return "info";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "error";
}

/// One finding. `line` is the 1-based line of the XML element the finding is
/// anchored to (0 when the document did not even parse).
struct Diagnostic {
    Severity severity = Severity::Error;
    std::string file;     // path/label the model was added under
    int line = 0;         // 1-based XML source line, 0 = whole file
    std::string rule;     // stable id, e.g. "bridge.transform.unknown"
    std::string message;  // human-readable explanation
    /// Taxonomy code the rule aliases (codeForRule(rule)); the linter fills
    /// this in so a static finding and the runtime abort it predicts carry
    /// the same number.
    errc::ErrorCode code = errc::ErrorCode::Unclassified;
};

/// The taxonomy code a lint rule id aliases. Most rules point into the layer
/// whose runtime failure they predict (e.g. "xml.parse" -> XmlParse,
/// "bridge.transform.unknown" -> BridgeTransformUnknown); rules that only
/// exist statically live in the lint range. Unknown ids -> Unclassified.
errc::ErrorCode codeForRule(const std::string& rule);

/// True when any diagnostic is error-severity (the CI gate).
bool hasErrors(const std::vector<Diagnostic>& diagnostics);

/// compiler-style rendering: "file:line: severity [rule] message\n".
std::string renderText(const std::vector<Diagnostic>& diagnostics);

/// JSON array of {file, line, severity, rule, message} objects.
std::string renderJson(const std::vector<Diagnostic>& diagnostics);

}  // namespace starlink::lint
