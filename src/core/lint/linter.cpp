#include "core/lint/linter.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/mdl/plan.hpp"
#include "core/merge/spec_loader.hpp"
#include "xml/parser.hpp"

namespace starlink::lint {

namespace {

using automata::Action;
using automata::ColoredAutomaton;
using automata::Transition;
using merge::FieldRef;

int lineOf(const xml::Node* node) { return node == nullptr ? 0 : node->line(); }

std::string jsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::size_t editDistance(const std::string& a, const std::string& b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diagonal = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t previous = row[j];
            const std::size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
            diagonal = previous;
        }
    }
    return row[b.size()];
}

/// "; did you mean 'X'?" when a registered name is plausibly the intended
/// spelling, else the full registered list.
std::string didYouMean(const std::string& name, const std::vector<std::string>& known) {
    std::string bestName;
    std::size_t bestDistance = static_cast<std::size_t>(-1);
    for (const std::string& candidate : known) {
        const std::size_t d = editDistance(name, candidate);
        if (d < bestDistance) {
            bestDistance = d;
            bestName = candidate;
        }
    }
    if (!bestName.empty() && bestDistance <= std::max<std::size_t>(2, name.size() / 3)) {
        return "; did you mean '" + bestName + "'?";
    }
    return "; registered: " + join(known, ", ");
}

std::string firstSegment(const std::string& path) {
    const auto dot = path.find('.');
    return dot == std::string::npos ? path : path.substr(0, dot);
}

std::optional<ValueType> marshallerValueType(const std::string& name) {
    if (name == "Integer" || name == "Int") return ValueType::Int;
    if (name == "String" || name == "Text" || name == "FQDN") return ValueType::String;
    if (name == "Bytes") return ValueType::Bytes;
    if (name == "Bool" || name == "Boolean") return ValueType::Bool;
    return std::nullopt;
}

/// Text-dialect documents whose header declares a <Fields> block carry
/// arbitrary "Label: value" lines besides the declared positionals (that is
/// the block's purpose), so field names against them cannot be closed-world
/// checked.
bool hasOpenFieldSchema(const mdl::MdlDocument& doc) {
    if (doc.kind() != mdl::MdlKind::Text) return false;
    for (const mdl::FieldSpec& field : doc.header().fields) {
        if (field.length == mdl::FieldSpec::Length::FieldsBlock) return true;
    }
    return false;
}

/// Does any transition ever store an instance of `type` at `state`? The
/// engine pushes received messages at the transition's TARGET state and
/// outgoing messages at the send transition's SOURCE state, so a field
/// reference s.m.f is resolvable exactly when such a transition exists.
bool messageStoredAt(const ColoredAutomaton& automaton, const std::string& state,
                     const std::string& type) {
    for (const Transition& t : automaton.transitions()) {
        if (t.messageType != type) continue;
        if (t.action == Action::Receive && t.to == state) return true;
        if (t.action == Action::Send && t.from == state) return true;
    }
    return false;
}

bool hasIncomingReceive(const ColoredAutomaton& a, const std::string& state) {
    for (const Transition& t : a.transitions()) {
        if (t.to == state && t.action == Action::Receive) return true;
    }
    return false;
}

bool hasOutgoingSend(const ColoredAutomaton& a, const std::string& state) {
    for (const Transition& t : a.transitions()) {
        if (t.from == state && t.action == Action::Send) return true;
    }
    return false;
}

bool hasOutgoingReceive(const ColoredAutomaton& a, const std::string& state) {
    for (const Transition& t : a.transitions()) {
        if (t.from == state && t.action == Action::Receive) return true;
    }
    return false;
}

/// The merge-constraint forms (i)/(ii)/(iii) of MergedAutomaton::validate(),
/// as a per-delta predicate. Role resolution scores candidate client/server
/// combinations by how many deltas satisfy a form: the intended roles make
/// the merge constraints hold, swapped roles break them (a send expected at
/// the entered state becomes a receive and vice versa).
bool deltaSatisfiesForm(const merge::MergedAutomaton& merged, const merge::DeltaTransition& d) {
    const ColoredAutomaton* fromA = merged.automatonOf(d.from);
    const ColoredAutomaton* toA = merged.automatonOf(d.to);
    if (fromA == nullptr || toA == nullptr || fromA == toA) return false;
    const bool formI = toA->initialState() == d.to && hasOutgoingSend(*toA, d.to) &&
                       (hasIncomingReceive(*fromA, d.from) || d.from == merged.initialState());
    const bool formII = fromA->state(d.from)->accepting() &&
                        hasIncomingReceive(*fromA, d.from) && hasOutgoingSend(*toA, d.to);
    const bool formIII = fromA->state(d.from)->accepting() && toA->initialState() == d.to &&
                         hasOutgoingReceive(*toA, d.to);
    return formI || formII || formIII;
}

}  // namespace

bool hasErrors(const std::vector<Diagnostic>& diagnostics) {
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [](const Diagnostic& d) { return d.severity == Severity::Error; });
}

std::string renderText(const std::vector<Diagnostic>& diagnostics) {
    std::string out;
    for (const Diagnostic& d : diagnostics) {
        out += d.file;
        if (d.line > 0) out += ":" + std::to_string(d.line);
        out += ": ";
        out += severityName(d.severity);
        out += " [" + d.rule + "] " + d.message + "\n";
    }
    return out;
}

std::string renderJson(const std::vector<Diagnostic>& diagnostics) {
    std::string out = "[";
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic& d = diagnostics[i];
        if (i > 0) out += ",";
        out += "\n  {\"file\": \"" + jsonEscape(d.file) +
               "\", \"line\": " + std::to_string(d.line) + ", \"severity\": \"" +
               severityName(d.severity) + "\", \"rule\": \"" + jsonEscape(d.rule) +
               "\", \"code\": " + std::to_string(errc::to_error_code(d.code)) +
               ", \"message\": \"" + jsonEscape(d.message) + "\"}";
    }
    out += diagnostics.empty() ? "]\n" : "\n]\n";
    return out;
}

errc::ErrorCode codeForRule(const std::string& rule) {
    using errc::ErrorCode;
    // Every stable rule id of docs/LINT.md, one code each. Rules predicting a
    // runtime failure alias that layer's code so `lint` and the abort agree.
    static const std::map<std::string, ErrorCode> kRuleCodes = {
        {"xml.parse", ErrorCode::XmlParse},
        {"lint.unknown-kind", ErrorCode::LintUnknownKind},
        {"mdl.invalid", ErrorCode::MdlInvalid},
        {"mdl.marshaller.unknown", ErrorCode::MdlMarshallerUnknown},
        {"mdl.plan", ErrorCode::MdlPlan},
        {"mdl.rule.shadowed", ErrorCode::MdlRuleShadowed},
        {"automaton.invalid", ErrorCode::AutomatonInvalid},
        {"automaton.message.unknown", ErrorCode::AutomatonMessageUnknown},
        {"automaton.receive.ambiguous", ErrorCode::AutomatonReceiveAmbiguous},
        {"automaton.transition.dead", ErrorCode::AutomatonTransitionDead},
        {"automaton.state.dead-end", ErrorCode::AutomatonStateDeadEnd},
        {"bridge.invalid", ErrorCode::BridgeInvalid},
        {"bridge.closure.missing", ErrorCode::BridgeClosureMissing},
        {"bridge.state.unknown", ErrorCode::BridgeStateUnknown},
        {"bridge.ref.message-not-stored", ErrorCode::BridgeRefNotStored},
        {"bridge.message.unknown", ErrorCode::BridgeMessageUnknown},
        {"bridge.field.unknown", ErrorCode::BridgeFieldUnknown},
        {"bridge.transform.unknown", ErrorCode::BridgeTransformUnknown},
        {"bridge.transform.mismatch", ErrorCode::BridgeTransformMismatch},
        {"bridge.equivalence.unknown", ErrorCode::BridgeEquivalenceUnknown},
        {"bridge.equivalence.uncovered", ErrorCode::BridgeEquivalenceUncovered},
        {"bridge.delta.missing", ErrorCode::BridgeDeltaMissing},
    };
    const auto it = kRuleCodes.find(rule);
    return it != kRuleCodes.end() ? it->second : ErrorCode::Unclassified;
}

Linter::Linter()
    : Linter(mdl::MarshallerRegistry::withDefaults(),
             merge::TranslationRegistry::withDefaults()) {}

Linter::Linter(std::shared_ptr<mdl::MarshallerRegistry> marshallers,
               std::shared_ptr<merge::TranslationRegistry> translations)
    : marshallers_(std::move(marshallers)), translations_(std::move(translations)) {}

void Linter::emit(Severity severity, const Source& source, const xml::Node* node,
                  std::string rule, std::string message) {
    const errc::ErrorCode code = codeForRule(rule);
    diagnostics_.push_back(
        {severity, source.path, lineOf(node), std::move(rule), std::move(message), code});
}

void Linter::addModel(const std::string& path, const std::string& xmlText) {
    auto source = std::make_unique<Source>();
    source->path = path;
    sources_.push_back(std::move(source));
    Source& src = *sources_.back();
    try {
        src.root = xml::parse(xmlText);
    } catch (const SpecError& e) {
        emit(Severity::Error, src, nullptr, "xml.parse", e.what());
        return;
    }
    const xml::Node& root = *src.root;
    if (root.name() == "Mdl") {
        MdlModel model;
        model.source = &src;
        try {
            model.doc = std::make_shared<mdl::MdlDocument>(mdl::MdlDocument::fromXml(root));
        } catch (const SpecError& e) {
            emit(Severity::Error, src, &root, "mdl.invalid", e.what());
            return;
        }
        mdls_.push_back(std::move(model));
    } else if (root.name() == "Automaton") {
        AutomatonModel model;
        model.source = &src;
        try {
            model.automaton = merge::loadAutomaton(root, colors_);
        } catch (const SpecError& e) {
            emit(Severity::Error, src, &root, "automaton.invalid", e.what());
            return;
        }
        automata_.push_back(std::move(model));
    } else if (root.name() == "Bridge") {
        bridges_.push_back({&src});
    } else {
        emit(Severity::Error, src, &root, "lint.unknown-kind",
             "root element <" + root.name() + "> is none of <Mdl>, <Automaton>, <Bridge>");
    }
}

std::vector<Diagnostic> Linter::run() {
    for (const MdlModel& model : mdls_) lintMdl(model);
    for (const AutomatonModel& model : automata_) lintAutomaton(model);
    for (const BridgeModel& model : bridges_) lintBridge(model);
    std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         if (a.file != b.file) return a.file < b.file;
                         if (a.line != b.line) return a.line < b.line;
                         return a.rule < b.rule;
                     });
    return diagnostics_;
}

const Linter::MdlModel* Linter::mdlDefining(const std::string& messageType) const {
    for (const MdlModel& model : mdls_) {
        if (model.doc->message(messageType) != nullptr) return &model;
    }
    return nullptr;
}

std::optional<ValueType> Linter::fieldValueType(const merge::FieldRef& ref) const {
    const MdlModel* model = mdlDefining(ref.messageType);
    if (model == nullptr) return std::nullopt;
    const mdl::MdlDocument& doc = *model->doc;
    const std::string label = firstSegment(ref.path);
    const mdl::FieldSpec* found = nullptr;
    for (const mdl::FieldSpec& f : doc.header().fields) {
        if (f.label == label) found = &f;
    }
    if (found == nullptr) {
        const mdl::MessageSpec* spec = doc.message(ref.messageType);
        for (const mdl::FieldSpec& f : spec->fields) {
            if (f.label == label) found = &f;
        }
    }
    if (found == nullptr) return std::nullopt;
    return marshallerValueType(doc.marshallerFor(*found));
}

void Linter::lintMdl(const MdlModel& model) {
    const mdl::MdlDocument& doc = *model.doc;
    const Source& src = *model.source;
    const xml::Node& root = *src.root;
    const std::string context = "MDL '" + doc.protocol() + "'";

    // 1. Every <Types> declaration must name a registered marshaller --
    //    anchored at the declaring element, not at whichever message first
    //    trips over it at plan-compile time.
    const xml::Node* typesNode = root.child("Types");
    bool marshallersResolve = true;
    for (const auto& [name, def] : doc.types()) {
        if (marshallers_->find(def.marshaller) != nullptr) continue;
        marshallersResolve = false;
        const xml::Node* where = typesNode == nullptr ? &root : typesNode->child(name);
        if (where == nullptr) where = typesNode;
        emit(Severity::Error, src, where, "mdl.marshaller.unknown",
             context + ": type '" + name + "' names marshaller '" + def.marshaller +
                 "', which is not registered");
    }

    // 2. The compiled plan must build: resolved field-length links, compose
    //    metadata, rule indexing. Skipped when (1) already failed -- compile
    //    would report the same marshaller again, without a line.
    if (marshallersResolve) {
        try {
            (void)mdl::CodecPlan::compile(doc, *marshallers_);
        } catch (const SpecError& e) {
            emit(Severity::Error, src, &root, "mdl.plan", e.what());
        }
    }

    // 3. Rule dispatch walks messages in document order: a duplicate
    //    (field, value) rule or a second rule-less fallback is dead weight
    //    the parser can never select.
    const auto messageNodes = root.childrenNamed("Message");
    std::map<std::pair<std::string, std::string>, std::string> seenRules;
    const mdl::MessageSpec* firstUnruled = nullptr;
    for (std::size_t i = 0; i < doc.messages().size(); ++i) {
        const mdl::MessageSpec& message = doc.messages()[i];
        const xml::Node* node = i < messageNodes.size() ? messageNodes[i] : &root;
        if (message.rule) {
            const auto key = std::make_pair(message.rule->field, message.rule->value);
            const auto [it, fresh] = seenRules.emplace(key, message.type);
            if (!fresh) {
                emit(Severity::Error, src, node, "mdl.rule.shadowed",
                     context + ": message '" + message.type + "' can never be selected: its "
                     "rule " + message.rule->field + "=" + message.rule->value +
                     " duplicates the rule of earlier message '" + it->second + "'");
            }
        } else if (firstUnruled != nullptr) {
            emit(Severity::Error, src, node, "mdl.rule.shadowed",
                 context + ": rule-less message '" + message.type + "' can never be selected: "
                 "dispatch falls back to the first rule-less message, '" + firstUnruled->type +
                 "'");
        } else {
            firstUnruled = &message;
        }
    }
}

void Linter::lintAutomaton(const AutomatonModel& model) {
    const ColoredAutomaton& automaton = *model.automaton;
    const Source& src = *model.source;
    const xml::Node& root = *src.root;
    const std::string context = "automaton '" + automaton.name() + "'";
    const auto transitionNodes = root.childrenNamed("Transition");
    const auto stateNodes = root.childrenNamed("State");
    const auto transitionNode = [&](std::size_t i) -> const xml::Node* {
        return i < transitionNodes.size() ? transitionNodes[i] : &root;
    };
    const auto stateNode = [&](const std::string& id) -> const xml::Node* {
        for (const xml::Node* node : stateNodes) {
            if (node->attribute("id").value_or("") == id) return node;
        }
        return &root;
    };
    const std::vector<Transition>& transitions = automaton.transitions();

    // 1. Every message type must be parseable/composable by some MDL in the
    //    lint set (skipped when the set has none -- a lone automaton can be
    //    linted structurally without its protocol definitions).
    if (!mdls_.empty()) {
        for (std::size_t i = 0; i < transitions.size(); ++i) {
            const Transition& t = transitions[i];
            if (mdlDefining(t.messageType) != nullptr) continue;
            emit(Severity::Error, src, transitionNode(i), "automaton.message.unknown",
                 context + ": transition " + t.from + " " + automata::actionSymbol(t.action) +
                     t.messageType + " -> " + t.to + " names a message type no MDL in the "
                     "lint set defines");
        }

        // 2. Receive fan-out the MDL dispatch cannot tell apart: two expected
        //    types from one document, neither carrying a <Rule>, means the
        //    parser always yields its first rule-less fallback and the other
        //    transition can never fire.
        std::map<std::string, std::vector<std::size_t>> receivesFrom;
        for (std::size_t i = 0; i < transitions.size(); ++i) {
            if (transitions[i].action == Action::Receive) {
                receivesFrom[transitions[i].from].push_back(i);
            }
        }
        for (const auto& [state, indices] : receivesFrom) {
            if (indices.size() < 2) continue;
            std::map<const MdlModel*, std::vector<std::size_t>> unruledByDoc;
            for (const std::size_t i : indices) {
                const MdlModel* doc = mdlDefining(transitions[i].messageType);
                if (doc == nullptr) continue;
                const mdl::MessageSpec* spec = doc->doc->message(transitions[i].messageType);
                if (spec != nullptr && !spec->rule) unruledByDoc[doc].push_back(i);
            }
            for (const auto& [doc, unruled] : unruledByDoc) {
                for (std::size_t k = 1; k < unruled.size(); ++k) {
                    emit(Severity::Error, src, transitionNode(unruled[k]),
                         "automaton.receive.ambiguous",
                         context + ": state '" + state + "' expects both '" +
                             transitions[unruled[0]].messageType + "' and '" +
                             transitions[unruled[k]].messageType + "', but neither carries a "
                             "<Rule> in MDL '" + doc->doc->protocol() + "' -- dispatch always "
                             "selects the first, so this transition can never fire");
                }
            }
        }
    }

    // 3. Transitions into states from which no accepting state is reachable:
    //    the conversation that takes one can never complete.
    std::set<std::string> reachesAccepting;
    for (const automata::State* state : automaton.states()) {
        if (state->accepting()) reachesAccepting.insert(state->id());
    }
    bool grew = true;
    while (grew) {
        grew = false;
        for (const Transition& t : transitions) {
            if (reachesAccepting.contains(t.to) && reachesAccepting.insert(t.from).second) {
                grew = true;
            }
        }
    }
    for (std::size_t i = 0; i < transitions.size(); ++i) {
        const Transition& t = transitions[i];
        if (reachesAccepting.contains(t.to)) continue;
        emit(Severity::Warning, src, transitionNode(i), "automaton.transition.dead",
             context + ": transition " + t.from + " " + automata::actionSymbol(t.action) +
                 t.messageType + " -> " + t.to + " is dead: no accepting state is reachable "
                 "from '" + t.to + "'");
    }

    // 4. Non-accepting states with no way out.
    for (const automata::State* state : automaton.states()) {
        if (state->accepting() || !automaton.transitionsFrom(state->id()).empty()) continue;
        emit(Severity::Warning, src, stateNode(state->id()), "automaton.state.dead-end",
             context + ": non-accepting state '" + state->id() +
                 "' has no outgoing transitions; a conversation reaching it can never leave");
    }
}

void Linter::lintBridge(const BridgeModel& model) {
    const Source& src = *model.source;
    const xml::Node& root = *src.root;

    // 0. Shape: loadBridge's DOM checks are component-independent, so parse
    //    once with no components to separate "the spec is malformed" from
    //    "the spec does not fit the automata".
    std::shared_ptr<merge::MergedAutomaton> shape;
    try {
        shape = merge::loadBridge(root, {});
    } catch (const SpecError& e) {
        emit(Severity::Error, src, &root, "bridge.invalid", e.what());
        return;
    }
    const std::string context = "bridge '" + shape->name() + "'";

    // DOM nodes index-aligned with the loader's parsed vectors.
    const xml::Node* startNode = root.child("Start");
    const auto acceptNodes = root.childrenNamed("Accept");
    const auto equivalenceNodes = root.childrenNamed("Equivalence");
    const auto deltaNodes = root.childrenNamed("DeltaTransition");
    const xml::Node* logicNode = root.child("TranslationLogic");
    const std::vector<const xml::Node*> assignmentNodes =
        logicNode == nullptr ? std::vector<const xml::Node*>{}
                             : logicNode->childrenNamed("Assignment");

    // 1. Gather every referenced state (with its first referencing element)
    //    and every field reference (with the element carrying it).
    std::vector<std::pair<std::string, const xml::Node*>> stateRefs;
    std::set<std::string> seenStates;
    const auto addStateRef = [&](const std::string& id, const xml::Node* node) {
        if (!id.empty() && seenStates.insert(id).second) stateRefs.emplace_back(id, node);
    };
    struct RefSite {
        const FieldRef* ref = nullptr;
        const xml::Node* node = nullptr;
        const std::string* transform = nullptr;  // transform applied at this site, if any
        bool transformProducesRef = false;       // ref is the transform's TARGET field
    };
    std::vector<RefSite> refSites;

    addStateRef(shape->initialState(), startNode == nullptr ? &root : startNode);
    for (const xml::Node* node : acceptNodes) {
        addStateRef(node->attribute("state").value_or(""), node);
    }
    for (std::size_t i = 0; i < shape->assignments().size(); ++i) {
        const merge::Assignment& assignment = shape->assignments()[i];
        const xml::Node* assignmentNode =
            i < assignmentNodes.size() ? assignmentNodes[i] : &root;
        const auto fieldNodes = assignmentNode->childrenNamed("Field");
        const xml::Node* targetNode = fieldNodes.empty() ? assignmentNode : fieldNodes[0];
        refSites.push_back({&assignment.target, targetNode, &assignment.transform, true});
        addStateRef(assignment.target.state, targetNode);
        if (assignment.source) {
            const xml::Node* sourceNode =
                fieldNodes.size() > 1 ? fieldNodes[1] : assignmentNode;
            refSites.push_back({&*assignment.source, sourceNode, nullptr, false});
            addStateRef(assignment.source->state, sourceNode);
        }
    }
    for (std::size_t i = 0; i < shape->deltas().size(); ++i) {
        const merge::DeltaTransition& delta = shape->deltas()[i];
        const xml::Node* deltaNode = i < deltaNodes.size() ? deltaNodes[i] : &root;
        addStateRef(delta.from, deltaNode);
        addStateRef(delta.to, deltaNode);
        const auto actionNodes = deltaNode->childrenNamed("Action");
        for (std::size_t j = 0; j < delta.actions.size(); ++j) {
            const xml::Node* actionNode = j < actionNodes.size() ? actionNodes[j] : deltaNode;
            const auto argNodes = actionNode->childrenNamed("Arg");
            for (std::size_t k = 0; k < delta.actions[j].args.size(); ++k) {
                const merge::NetworkAction::Arg& arg = delta.actions[j].args[k];
                const xml::Node* argNode = k < argNodes.size() ? argNodes[k] : actionNode;
                refSites.push_back({&arg.ref, argNode, &arg.transform, false});
                addStateRef(arg.ref.state, argNode);
            }
        }
    }

    // 2. The closure must contain automata, and every referenced state must
    //    exist in one of them.
    if (automata_.empty()) {
        emit(Severity::Error, src, &root, "bridge.closure.missing",
             context + ": no automaton models in the lint set; its state references "
             "cannot be resolved");
        return;
    }
    bool allStatesKnown = true;
    for (const auto& [id, node] : stateRefs) {
        const bool known =
            std::any_of(automata_.begin(), automata_.end(), [&id](const AutomatonModel& m) {
                return m.automaton->state(id) != nullptr;
            });
        if (!known) {
            allStatesKnown = false;
            emit(Severity::Error, src, node, "bridge.state.unknown",
                 context + ": state '" + id +
                     "' is not defined by any automaton in the lint set");
        }
    }

    // 3. Role resolution. Client and server automata of one protocol share
    //    state ids, so enumerate the combinations of the involved automata
    //    and keep the one satisfying the most merge-constraint forms.
    std::vector<std::string> names;
    std::map<std::string, std::vector<const AutomatonModel*>> byName;
    for (const AutomatonModel& m : automata_) {
        const bool involved =
            std::any_of(stateRefs.begin(), stateRefs.end(), [&m](const auto& ref) {
                return m.automaton->state(ref.first) != nullptr;
            });
        if (!involved) continue;
        auto& list = byName[m.automaton->name()];
        if (list.empty()) names.push_back(m.automaton->name());
        list.push_back(&m);
    }
    if (names.empty()) return;  // nothing resolvable; state errors already reported

    std::size_t comboCount = 1;
    for (const std::string& name : names) {
        comboCount *= byName[name].size();
        if (comboCount > 64) {
            comboCount = 64;
            break;
        }
    }
    std::shared_ptr<merge::MergedAutomaton> best;
    int bestScore = -1;
    std::string bestError;
    for (std::size_t combo = 0; combo < comboCount; ++combo) {
        std::vector<std::shared_ptr<ColoredAutomaton>> components;
        std::size_t rest = combo;
        for (const std::string& name : names) {
            const auto& list = byName[name];
            components.push_back(list[rest % list.size()]->automaton);
            rest /= list.size();
        }
        std::shared_ptr<merge::MergedAutomaton> merged;
        try {
            merged = merge::loadBridge(root, std::move(components));
        } catch (const SpecError&) {
            continue;  // unreachable: the component-free parse above succeeded
        }
        int score = 0;
        for (const merge::DeltaTransition& delta : merged->deltas()) {
            if (deltaSatisfiesForm(*merged, delta)) ++score;
        }
        std::string error;
        try {
            merged->validate();
            score += 1000;
        } catch (const SpecError& e) {
            error = e.what();
        }
        if (score > bestScore) {
            bestScore = score;
            best = std::move(merged);
            bestError = error;
        }
    }
    if (best == nullptr) return;
    const bool valid = bestError.empty();
    if (!valid && allStatesKnown) {
        emit(Severity::Error, src, &root, "bridge.invalid",
             context + ": no client/server role assignment of {" + join(names, ", ") +
                 "} satisfies the merge constraints; best candidate failed: " + bestError);
    }

    // 4. Equivalences: real message types, and eqn (1) coverage -- every
    //    mandatory field of an equivalent message produced by an assignment.
    if (!mdls_.empty()) {
        const auto equivalenceNode = [&](std::size_t i) -> const xml::Node* {
            return i < equivalenceNodes.size() ? equivalenceNodes[i] : &root;
        };
        for (std::size_t i = 0; i < best->equivalences().size(); ++i) {
            const merge::EquivalenceDecl& equivalence = best->equivalences()[i];
            const auto checkMessage = [&](const std::string& type) {
                if (mdlDefining(type) != nullptr) return;
                emit(Severity::Error, src, equivalenceNode(i), "bridge.equivalence.unknown",
                     context + ": equivalence references message type '" + type +
                         "', which no MDL in the lint set defines");
            };
            checkMessage(equivalence.lhs);
            for (const std::string& rhs : equivalence.rhs) checkMessage(rhs);
        }
        const std::vector<std::string> uncovered =
            best->checkEquivalences([this](const std::string& type) {
                const MdlModel* m = mdlDefining(type);
                return m == nullptr ? std::vector<std::string>{}
                                    : m->doc->mandatoryFields(type);
            });
        for (const std::string& entry : uncovered) {
            const std::string lhs = firstSegment(entry);
            const xml::Node* node = &root;
            for (std::size_t i = 0; i < best->equivalences().size(); ++i) {
                if (best->equivalences()[i].lhs == lhs) {
                    node = equivalenceNode(i);
                    break;
                }
            }
            emit(Severity::Error, src, node, "bridge.equivalence.uncovered",
                 context + ": mandatory field '" + entry + "' of an equivalent message has "
                 "no assignment producing it, so semantic equivalence (eqn 1) cannot hold");
        }
    }

    // 5. Field references: each (state, message, field) triple must resolve
    //    against the automata (an instance is actually stored there) and the
    //    MDL schema (the field exists); transforms must be registered and
    //    type-compatible with the field they produce.
    for (const RefSite& site : refSites) {
        const FieldRef& ref = *site.ref;
        const ColoredAutomaton* owner = best->automatonOf(ref.state);
        if (owner != nullptr && !messageStoredAt(*owner, ref.state, ref.messageType)) {
            emit(Severity::Error, src, site.node, "bridge.ref.message-not-stored",
                 context + ": no instance of '" + ref.messageType + "' is ever stored at "
                 "state '" + ref.state + "' of automaton '" + owner->name() +
                     "': no receive transition enters it and no send transition leaves it "
                     "carrying that type");
        }
        const MdlModel* doc = mdls_.empty() ? nullptr : mdlDefining(ref.messageType);
        if (!mdls_.empty()) {
            if (doc == nullptr) {
                emit(Severity::Error, src, site.node, "bridge.message.unknown",
                     context + ": message type '" + ref.messageType +
                         "' is not defined by any MDL in the lint set");
            } else if (!hasOpenFieldSchema(*doc->doc)) {
                const std::string label = firstSegment(ref.path);
                const mdl::MdlDocument& d = *doc->doc;
                const mdl::MessageSpec* spec = d.message(ref.messageType);
                bool known = std::any_of(d.header().fields.begin(), d.header().fields.end(),
                                         [&](const mdl::FieldSpec& f) { return f.label == label; });
                known = known || (spec != nullptr &&
                                  std::any_of(spec->fields.begin(), spec->fields.end(),
                                              [&](const mdl::FieldSpec& f) {
                                                  return f.label == label;
                                              }));
                if (!known) {
                    emit(Severity::Error, src, site.node, "bridge.field.unknown",
                         context + ": message '" + ref.messageType + "' (MDL '" +
                             d.protocol() + "') declares no field '" + label + "'");
                }
            }
        }
        if (site.transform == nullptr || site.transform->empty()) continue;
        const std::string& transform = *site.transform;
        if (!translations_->contains(transform)) {
            emit(Severity::Error, src, site.node, "bridge.transform.unknown",
                 context + ": unknown translation function '" + transform + "'" +
                     didYouMean(transform, translations_->names()));
            continue;
        }
        if (!site.transformProducesRef) continue;
        const merge::TransformSignature* signature = translations_->signature(transform);
        if (signature == nullptr || !signature->output) continue;
        const std::optional<ValueType> targetType = fieldValueType(ref);
        if (targetType && *targetType != *signature->output) {
            emit(Severity::Warning, src, site.node, "bridge.transform.mismatch",
                 context + ": transform '" + transform + "' produces a " +
                     valueTypeName(*signature->output) + " value, but target field " +
                     ref.toString() + " is declared " + valueTypeName(*targetType) +
                     " by its MDL");
        }
    }

    // 6. Stranded conversations: a reachable state that ends its component's
    //    run (accepting there, or no way onward) must either accept the
    //    whole merge or hand over through a delta-transition.
    if (valid) {
        std::set<std::string> reachable{best->initialState()};
        bool extended = true;
        while (extended) {
            extended = false;
            for (const auto& component : best->components()) {
                for (const Transition& t : component->transitions()) {
                    if (reachable.contains(t.from) && reachable.insert(t.to).second) {
                        extended = true;
                    }
                }
            }
            for (const merge::DeltaTransition& delta : best->deltas()) {
                if (reachable.contains(delta.from) && reachable.insert(delta.to).second) {
                    extended = true;
                }
            }
        }
        for (const std::string& state : reachable) {
            if (best->acceptingStates().contains(state)) continue;
            const ColoredAutomaton* owner = best->automatonOf(state);
            if (owner == nullptr) continue;
            const bool terminal = owner->state(state)->accepting() ||
                                  owner->transitionsFrom(state).empty();
            if (terminal && best->deltaFrom(state) == nullptr) {
                emit(Severity::Error, src, startNode == nullptr ? &root : startNode,
                     "bridge.delta.missing",
                     context + ": the conversation can reach state '" + state +
                         "' and stop there: it ends automaton '" + owner->name() +
                         "''s run, but it is not an accepting state of the merge and no "
                         "delta-transition leaves it");
            }
        }
    }
}

}  // namespace starlink::lint
