// Static cross-layer validation of Starlink models (the `starlinkd lint`
// engine).
//
// The runtime consumes three model kinds -- MDL documents, colored
// automata, bridge specifications -- and each loader validates ITS layer in
// isolation, throwing on the first defect it meets. The linter instead loads
// a whole closure of models, cross-references the layers against each other,
// and reports every defect it can find as a structured Diagnostic:
//
//  * MDL      -- every field marshaller resolvable, the compiled CodecPlan
//                buildable (compose metadata complete), every <Rule>
//                dispatchable (no message shadowed by an earlier rule or by
//                an earlier rule-less fallback);
//  * automata -- beyond ColoredAutomaton::validate(): transitions that can
//                never lead to an accepting state, non-accepting dead-end
//                states, message types no MDL in the closure defines,
//                receive fan-out the MDL rule dispatch cannot distinguish;
//  * bridges  -- every Assignment / DeltaTransition field reference resolves
//                to a real (state, message, field) triple in the automata
//                AND the MDL schema, every named transform exists in the
//                TranslationRegistry with a compatible output type, every
//                Equivalence names real messages and is covered by the
//                translation logic (paper eqn 1), and every state where the
//                merged conversation can stop either accepts or hands over
//                through a delta-transition.
//
// Client/server automata of one protocol share state ids, so a bridge does
// not say which role it composes with. The linter resolves roles the way the
// paper's merge constraints define them: it enumerates the role combinations
// and keeps the one satisfying the most delta-transition merge-constraint
// forms (a full MergedAutomaton::validate() pass counts heaviest).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/automata/color.hpp"
#include "core/automata/colored_automaton.hpp"
#include "core/lint/diagnostic.hpp"
#include "core/mdl/marshaller.hpp"
#include "core/mdl/spec.hpp"
#include "core/merge/merged_automaton.hpp"
#include "core/merge/translation.hpp"
#include "xml/dom.hpp"

namespace starlink::lint {

class Linter {
public:
    /// Checks against the default marshaller and translation registries --
    /// the ones Starlink::deploy uses.
    Linter();

    /// Checks against caller-supplied registries (deployments that register
    /// domain-specific transforms lint against the extended set).
    Linter(std::shared_ptr<mdl::MarshallerRegistry> marshallers,
           std::shared_ptr<merge::TranslationRegistry> translations);

    /// Parses one model document and classifies it by root element (<Mdl>,
    /// <Automaton>, <Bridge>). Unparseable or unclassifiable input becomes a
    /// diagnostic, never a throw. `path` is echoed in diagnostics.
    void addModel(const std::string& path, const std::string& xmlText);

    /// Runs every per-model and cross-model pass over the models added so
    /// far and returns all findings, sorted by (file, line, rule).
    std::vector<Diagnostic> run();

private:
    struct Source {
        std::string path;
        std::unique_ptr<xml::Node> root;
    };
    struct MdlModel {
        const Source* source = nullptr;
        std::shared_ptr<mdl::MdlDocument> doc;
    };
    struct AutomatonModel {
        const Source* source = nullptr;
        std::shared_ptr<automata::ColoredAutomaton> automaton;
    };
    struct BridgeModel {
        const Source* source = nullptr;
    };

    void emit(Severity severity, const Source& source, const xml::Node* node, std::string rule,
              std::string message);

    void lintMdl(const MdlModel& model);
    void lintAutomaton(const AutomatonModel& model);
    void lintBridge(const BridgeModel& model);

    /// MDL model defining a message type, nullptr when none does.
    const MdlModel* mdlDefining(const std::string& messageType) const;

    /// Declared ValueType of the first path segment of `ref` per the MDL
    /// defining its message, nullopt when untyped/unknown.
    std::optional<ValueType> fieldValueType(const merge::FieldRef& ref) const;

    std::shared_ptr<mdl::MarshallerRegistry> marshallers_;
    std::shared_ptr<merge::TranslationRegistry> translations_;
    automata::ColorRegistry colors_;

    std::vector<std::unique_ptr<Source>> sources_;
    std::vector<MdlModel> mdls_;
    std::vector<AutomatonModel> automata_;
    std::vector<BridgeModel> bridges_;
    std::vector<Diagnostic> diagnostics_;
};

}  // namespace starlink::lint
