// GraphViz export of colored and merged automata.
//
// The paper presents its models as state diagrams (Figs 1-4, 9-10); this
// renders the in-memory models in the same visual language: one node per
// state, ?m / !m transition labels, one fill color per k, dashed edges for
// delta-transitions, double circles for accepting states. Feed the output to
// `dot -Tsvg` to regenerate the paper's figures from the executable models.
#pragma once

#include <string>

#include "core/automata/colored_automaton.hpp"
#include "core/merge/merged_automaton.hpp"

namespace starlink::merge {

/// One component automaton as a digraph.
std::string toDot(const automata::ColoredAutomaton& automaton);

/// A merged automaton: component clusters plus dashed delta edges annotated
/// with their lambda actions.
std::string toDot(const MergedAutomaton& merged);

}  // namespace starlink::merge
