// Translation logic (paper section III-D).
//
// The two operators of the translation language:
//
//   (5)  s1i.m1.fielda = s2j.m2.fieldb          -- direct assignment
//   (6)  s1i.m1.fielda = T(s2j.m2.fieldb)       -- assignment through a
//                                                  translation function
//
// A FieldRef names one side: the automaton state whose queue holds the
// message instance, the message type, and the field inside it. Fields are
// addressed with dotted paths internally; bridge-spec XML uses the XPath
// form of Fig 8, which the loader compiles down to dotted paths.
//
// Translation functions T are pluggable, mirroring the MDL marshaller
// mechanism: a registry maps names to Value -> optional<Value> functions, and
// deployments can register domain-specific ones at runtime.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/message/value.hpp"

namespace starlink::merge {

/// One side of an assignment: state s, message type m, field path f -- the
/// paper's s.m.f selection.
struct FieldRef {
    std::string state;        // e.g. "s11"
    std::string messageType;  // e.g. "SLPSrvRequest"
    std::string path;         // dotted field path, e.g. "SRVType" or "URL.port"

    std::string toString() const { return state + "." + messageType + "." + path; }
};

/// s_target.m.f = T(source) | T(constant).
struct Assignment {
    FieldRef target;

    /// Exactly one of `source` / `constant` is set.
    std::optional<FieldRef> source;
    std::optional<std::string> constant;

    /// Name of the translation function T; empty = direct assignment (5).
    std::string transform;
};

/// A lambda network action attached to a delta-transition (paper: the
/// set_host keyword operator of Fig 5 line 11). Arguments are field
/// references, each optionally passed through a translation function first.
struct NetworkAction {
    struct Arg {
        FieldRef ref;
        std::string transform;  // optional T applied to the argument
    };
    std::string name;  // e.g. "set_host"
    std::vector<Arg> args;
};

/// Declared value types of a translation function, for static checking.
/// nullopt means "any" (the function coerces its input / its output type
/// depends on the input). The linter compares `output` against the MDL type
/// of the field an assignment targets.
struct TransformSignature {
    std::optional<ValueType> input;
    std::optional<ValueType> output;
};

/// Registry of translation functions T. Starts with the built-ins listed in
/// translation.cpp (identity, url parsing, SLP<->URN<->DNS-SD service-name
/// conversions, case folding); register() extends it at runtime.
class TranslationRegistry {
public:
    using Fn = std::function<std::optional<Value>(const Value&)>;

    static std::shared_ptr<TranslationRegistry> withDefaults();

    void add(const std::string& name, Fn fn);
    /// Registers with a declared signature so the model linter can check
    /// assignments through this function against the MDL field types.
    void add(const std::string& name, Fn fn, TransformSignature signature);
    bool contains(const std::string& name) const { return table_.contains(name); }

    /// Declared signature, nullptr when the function was registered without
    /// one (treated as any -> any by static checks).
    const TransformSignature* signature(const std::string& name) const;

    /// Applies T `name` to `input`. nullopt when the function is unknown or
    /// rejects the input. Deployment validates transform names up front
    /// (Starlink::deploy / the lint pass), so for a checked model a nullopt
    /// here always means "value rejected".
    std::optional<Value> apply(const std::string& name, const Value& input) const;

    std::vector<std::string> names() const;

private:
    std::map<std::string, Fn> table_;
    std::map<std::string, TransformSignature> signatures_;
};

/// Compiles the Fig 8 XPath form into a dotted field path:
///   /field/primitiveField[label='ST']/value                    -> "ST"
///   /field/structuredField[label='URL']/primitiveField[label='port']/value
///                                                              -> "URL.port"
/// Throws SpecError when the expression does not follow the abstract-message
/// schema shape.
std::string xpathToFieldPath(const std::string& xpath);

/// The inverse (for diagnostics and spec round-trips).
std::string fieldPathToXpath(const std::string& dottedPath);

}  // namespace starlink::merge
