// XML serialization of behaviour models -- the inverse of spec_loader.hpp.
//
// Closes the loop for generated models: a colored automaton learned from
// traffic (automata::BehaviourLearner) or a merged automaton produced by the
// synthesizer (merge::synthesizeMerge) can be written out in exactly the
// document formats the loaders accept, stored, distributed, and redeployed
// -- the "fully generateable at runtime" requirement of the paper's
// section II-E made durable.
//
// Round-trip guarantee (tested): loadAutomaton(writeAutomaton(a)) is
// structurally identical to a, and loadBridge(writeBridge(m), components)
// revalidates and deploys.
#pragma once

#include <string>

#include "core/automata/colored_automaton.hpp"
#include "core/merge/merged_automaton.hpp"

namespace starlink::merge {

/// Serializes one colored automaton into the <Automaton> document format.
/// `registry` resolves the automaton's k back to its color descriptor.
std::string writeAutomaton(const automata::ColoredAutomaton& automaton,
                           const automata::ColorRegistry& registry);

/// Serializes a merged automaton's bridge specification (<Bridge> document:
/// start/accept states, equivalences, translation logic, delta-transitions).
/// Component automata are written separately with writeAutomaton().
std::string writeBridge(const MergedAutomaton& merged);

}  // namespace starlink::merge
