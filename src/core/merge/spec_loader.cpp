#include "core/merge/spec_loader.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "xml/parser.hpp"

namespace starlink::merge {

using automata::Action;
using automata::Color;
using automata::ColoredAutomaton;
using automata::ColorRegistry;

namespace {

std::string requireAttribute(const xml::Node& node, const std::string& key,
                             const std::string& context) {
    const auto value = node.attribute(key);
    if (!value || value->empty()) {
        throw SpecError(context + ": <" + node.name() + "> requires attribute '" + key + "'");
    }
    return *value;
}

FieldRef parseFieldRef(const xml::Node& node, const std::string& context) {
    FieldRef ref;
    // Elements (Fig 8 style) or attributes (compact style) both work.
    if (const auto state = node.childText("State")) {
        ref.state = trim(*state);
    } else if (const auto state2 = node.attribute("state")) {
        ref.state = *state2;
    }
    if (const auto message = node.childText("Message")) {
        ref.messageType = trim(*message);
    } else if (const auto message2 = node.attribute("message")) {
        ref.messageType = *message2;
    }
    if (const auto xpath = node.childText("Xpath")) {
        ref.path = xpathToFieldPath(trim(*xpath));
    } else if (const auto xpath2 = node.attribute("xpath")) {
        ref.path = xpathToFieldPath(*xpath2);
    } else if (const auto path = node.childText("Path")) {
        ref.path = trim(*path);
    } else if (const auto path2 = node.attribute("path")) {
        ref.path = *path2;
    }
    if (ref.state.empty() || ref.messageType.empty() || ref.path.empty()) {
        throw SpecError(context + ": field reference needs state, message and a path/xpath");
    }
    return ref;
}

}  // namespace

std::shared_ptr<ColoredAutomaton> loadAutomaton(const xml::Node& root, ColorRegistry& registry) {
    if (root.name() != "Automaton") {
        throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton spec: root must be <Automaton>, got <" + root.name() + ">");
    }
    const std::string name = requireAttribute(root, "name", "automaton spec");
    auto automaton = std::make_shared<ColoredAutomaton>(name);

    const xml::Node* colorNode = root.child("Color");
    if (colorNode == nullptr) {
        throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name + "': missing <Color>");
    }
    Color color;
    for (const auto& [key, value] : colorNode->attributes()) color.set(key, value);

    std::string initial;
    for (const xml::Node* stateNode : root.childrenNamed("State")) {
        const std::string id = requireAttribute(*stateNode, "id", "automaton '" + name + "'");
        const bool accepting = stateNode->attribute("accepting").value_or("false") == "true";
        automaton->addState(id, color, registry, accepting);
        if (stateNode->attribute("initial").value_or("false") == "true") {
            if (!initial.empty()) {
                throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name + "': two initial states");
            }
            initial = id;
        }
    }
    if (initial.empty()) throw SpecError(errc::ErrorCode::AutomatonInvalid,
                        "automaton '" + name + "': no initial state");
    automaton->setInitial(initial);

    for (const xml::Node* transitionNode : root.childrenNamed("Transition")) {
        const std::string context = "automaton '" + name + "'";
        const std::string actionText = requireAttribute(*transitionNode, "action", context);
        Action action;
        if (actionText == "receive" || actionText == "?") {
            action = Action::Receive;
        } else if (actionText == "send" || actionText == "!") {
            action = Action::Send;
        } else {
            throw SpecError(context + ": unknown action '" + actionText + "'");
        }
        automaton->addTransition(requireAttribute(*transitionNode, "from", context), action,
                                 requireAttribute(*transitionNode, "message", context),
                                 requireAttribute(*transitionNode, "to", context));
    }
    automaton->validate();
    return automaton;
}

std::shared_ptr<ColoredAutomaton> loadAutomaton(const std::string& xmlText,
                                                ColorRegistry& registry) {
    const auto root = xml::parse(xmlText);
    return loadAutomaton(*root, registry);
}

std::shared_ptr<MergedAutomaton> loadBridge(
    const xml::Node& root, std::vector<std::shared_ptr<ColoredAutomaton>> components) {
    if (root.name() != "Bridge") {
        throw SpecError(errc::ErrorCode::BridgeInvalid,
                        "bridge spec: root must be <Bridge>, got <" + root.name() + ">");
    }
    const std::string name = root.attribute("name").value_or("bridge");
    auto merged = std::make_shared<MergedAutomaton>(name);
    for (auto& component : components) merged->addComponent(std::move(component));
    const std::string context = "bridge '" + name + "'";

    const xml::Node* startNode = root.child("Start");
    if (startNode == nullptr) throw SpecError(errc::ErrorCode::BridgeInvalid,
                        context + ": missing <Start>");
    merged->setInitial(requireAttribute(*startNode, "state", context));

    for (const xml::Node* acceptNode : root.childrenNamed("Accept")) {
        merged->addAccepting(requireAttribute(*acceptNode, "state", context));
    }

    for (const xml::Node* equivalenceNode : root.childrenNamed("Equivalence")) {
        EquivalenceDecl decl;
        decl.lhs = requireAttribute(*equivalenceNode, "message", context);
        for (const std::string& piece :
             split(requireAttribute(*equivalenceNode, "of", context), ',')) {
            const std::string rhs = trim(piece);
            if (!rhs.empty()) decl.rhs.push_back(rhs);
        }
        if (decl.rhs.empty()) {
            throw SpecError(errc::ErrorCode::BridgeInvalid,
                        context + ": <Equivalence message='" + decl.lhs +
                            "'> has an empty 'of' list");
        }
        merged->addEquivalence(std::move(decl));
    }

    const xml::Node* logicNode = root.child("TranslationLogic");
    if (logicNode != nullptr) {
        for (const xml::Node* assignmentNode : logicNode->childrenNamed("Assignment")) {
            Assignment assignment;
            if (const auto transform = assignmentNode->attribute("transform")) {
                assignment.transform = *transform;
            }
            const auto fieldNodes = assignmentNode->childrenNamed("Field");
            if (fieldNodes.empty()) {
                throw SpecError(errc::ErrorCode::BridgeInvalid,
                        context + ": <Assignment> without target <Field>");
            }
            assignment.target = parseFieldRef(*fieldNodes[0], context);
            if (fieldNodes.size() > 2) {
                // An assignment is target = T(source); silently dropping
                // extra <Field> children would hide a spec-authoring bug.
                throw SpecError(errc::ErrorCode::BridgeInvalid,
                        context + ": <Assignment> targeting " +
                                assignment.target.toString() + " has " +
                                std::to_string(fieldNodes.size()) +
                                " <Field> children; expected a target and at most one source");
            }
            if (fieldNodes.size() == 2) {
                assignment.source = parseFieldRef(*fieldNodes[1], context);
            } else if (const auto constant = assignmentNode->childText("Constant")) {
                assignment.constant = trim(*constant);
            } else {
                throw SpecError(errc::ErrorCode::BridgeInvalid,
                        context + ": <Assignment> targeting " +
                                assignment.target.toString() +
                                " has neither a source <Field> nor a <Constant>");
            }
            merged->addAssignment(std::move(assignment));
        }
    }

    for (const xml::Node* deltaNode : root.childrenNamed("DeltaTransition")) {
        DeltaTransition delta;
        delta.from = requireAttribute(*deltaNode, "from", context);
        delta.to = requireAttribute(*deltaNode, "to", context);
        for (const xml::Node* actionNode : deltaNode->childrenNamed("Action")) {
            NetworkAction action;
            action.name = requireAttribute(*actionNode, "name", context);
            for (const xml::Node* argNode : actionNode->childrenNamed("Arg")) {
                NetworkAction::Arg arg;
                arg.ref = parseFieldRef(*argNode, context);
                arg.transform = argNode->attribute("transform").value_or("");
                action.args.push_back(std::move(arg));
            }
            delta.actions.push_back(std::move(action));
        }
        merged->addDelta(std::move(delta));
    }

    return merged;
}

std::shared_ptr<MergedAutomaton> loadBridge(
    const std::string& xmlText, std::vector<std::shared_ptr<ColoredAutomaton>> components) {
    const auto root = xml::parse(xmlText);
    return loadBridge(*root, std::move(components));
}

}  // namespace starlink::merge
