#include "core/merge/spec_writer.hpp"

#include "common/error.hpp"
#include "xml/dom.hpp"
#include "xml/writer.hpp"

namespace starlink::merge {

using automata::ColoredAutomaton;
using automata::State;
using automata::Transition;

std::string writeAutomaton(const ColoredAutomaton& automaton,
                           const automata::ColorRegistry& registry) {
    xml::Node root("Automaton");
    root.setAttribute("name", automaton.name());

    const automata::Color* color = registry.lookup(automaton.color());
    if (color == nullptr) {
        throw SpecError("writeAutomaton: color of '" + automaton.name() +
                        "' is not in the registry");
    }
    xml::Node& colorNode = root.appendChild("Color");
    for (const auto& [key, value] : color->entries()) {
        colorNode.setAttribute(key, value);
    }

    for (const State* state : automaton.states()) {
        xml::Node& stateNode = root.appendChild("State");
        stateNode.setAttribute("id", state->id());
        if (state->id() == automaton.initialState()) stateNode.setAttribute("initial", "true");
        if (state->accepting()) stateNode.setAttribute("accepting", "true");
    }
    for (const Transition& t : automaton.transitions()) {
        xml::Node& transitionNode = root.appendChild("Transition");
        transitionNode.setAttribute("from", t.from);
        transitionNode.setAttribute("action",
                                    t.action == automata::Action::Send ? "send" : "receive");
        transitionNode.setAttribute("message", t.messageType);
        transitionNode.setAttribute("to", t.to);
    }
    return xml::write(root);
}

namespace {

void writeFieldRef(xml::Node& parent, const FieldRef& ref) {
    xml::Node& field = parent.appendChild("Field");
    field.setAttribute("state", ref.state);
    field.setAttribute("message", ref.messageType);
    field.setAttribute("path", ref.path);
}

}  // namespace

std::string writeBridge(const MergedAutomaton& merged) {
    xml::Node root("Bridge");
    root.setAttribute("name", merged.name());

    root.appendChild("Start").setAttribute("state", merged.initialState());
    for (const std::string& accepting : merged.acceptingStates()) {
        root.appendChild("Accept").setAttribute("state", accepting);
    }

    for (const EquivalenceDecl& equivalence : merged.equivalences()) {
        xml::Node& node = root.appendChild("Equivalence");
        node.setAttribute("message", equivalence.lhs);
        std::string of;
        for (std::size_t i = 0; i < equivalence.rhs.size(); ++i) {
            if (i > 0) of += ",";
            of += equivalence.rhs[i];
        }
        node.setAttribute("of", of);
    }

    if (!merged.assignments().empty()) {
        xml::Node& logic = root.appendChild("TranslationLogic");
        for (const Assignment& assignment : merged.assignments()) {
            xml::Node& node = logic.appendChild("Assignment");
            if (!assignment.transform.empty()) {
                node.setAttribute("transform", assignment.transform);
            }
            writeFieldRef(node, assignment.target);
            if (assignment.source) {
                writeFieldRef(node, *assignment.source);
            } else {
                node.appendChild("Constant").setText(assignment.constant.value_or(""));
            }
        }
    }

    for (const DeltaTransition& delta : merged.deltas()) {
        xml::Node& node = root.appendChild("DeltaTransition");
        node.setAttribute("from", delta.from);
        node.setAttribute("to", delta.to);
        for (const NetworkAction& action : delta.actions) {
            xml::Node& actionNode = node.appendChild("Action");
            actionNode.setAttribute("name", action.name);
            for (const NetworkAction::Arg& arg : action.args) {
                xml::Node& argNode = actionNode.appendChild("Arg");
                argNode.setAttribute("state", arg.ref.state);
                argNode.setAttribute("message", arg.ref.messageType);
                argNode.setAttribute("path", arg.ref.path);
                if (!arg.transform.empty()) argNode.setAttribute("transform", arg.transform);
            }
        }
    }
    return xml::write(root);
}

}  // namespace starlink::merge
