// XML loaders for behaviour models: colored automata and bridge (merged
// automaton + translation logic) specifications.
//
// "The Automata Engine, like the message composers and parsers, interprets a
//  loaded runtime model... implemented to read these models from XML
//  content." (paper section IV-B)
//
// Colored automaton document:
//
//   <Automaton name="SLP">
//     <Color transport_protocol="udp" port="427" mode="async"
//            multicast="yes" group="239.255.255.253"/>
//     <State id="s10" initial="true"/>
//     <State id="s12" accepting="true"/>
//     <Transition from="s10" action="receive" message="SLPSrvRequest" to="s11"/>
//   </Automaton>
//
// Bridge document (the Fig 8 format, extended with the state qualifier the
// paper's formal model uses and the delta-transitions of Fig 5 lines 10-12):
//
//   <Bridge name="slp-to-bonjour">
//     <Start state="s10"/>
//     <Accept state="s12"/>
//     <Equivalence message="DNS_Question" of="SLPSrvRequest"/>
//     <TranslationLogic>
//       <Assignment transform="slp_to_dnssd">
//         <Field>                                     <!-- target first -->
//           <State>s40</State><Message>DNS_Question</Message>
//           <Xpath>/field/primitiveField[label='QName']/value</Xpath>
//         </Field>
//         <Field>                                     <!-- then source -->
//           <State>s11</State><Message>SLPSrvRequest</Message>
//           <Xpath>/field/primitiveField[label='SRVType']/value</Xpath>
//         </Field>
//       </Assignment>
//       <Assignment>                                  <!-- constant source -->
//         <Field>...</Field>
//         <Constant>0</Constant>
//       </Assignment>
//     </TranslationLogic>
//     <DeltaTransition from="s11" to="s40"/>
//     <DeltaTransition from="s22" to="s30">
//       <Action name="set_host">
//         <Arg state="s22" message="SSDP_Resp" path="LOCATION" transform="url_host"/>
//         <Arg state="s22" message="SSDP_Resp" path="LOCATION" transform="url_port"/>
//       </Action>
//     </DeltaTransition>
//   </Bridge>
//
// Field addresses accept either <Xpath> (the Fig 8 form, compiled down) or
// <Path> with a dotted field path.
#pragma once

#include <memory>
#include <string>

#include "core/automata/colored_automaton.hpp"
#include "core/merge/merged_automaton.hpp"
#include "xml/dom.hpp"

namespace starlink::merge {

/// Parses a colored automaton document. Colors register through `registry`
/// so all automata of one deployment share the hash function f.
std::shared_ptr<automata::ColoredAutomaton> loadAutomaton(const xml::Node& root,
                                                          automata::ColorRegistry& registry);
std::shared_ptr<automata::ColoredAutomaton> loadAutomaton(const std::string& xmlText,
                                                          automata::ColorRegistry& registry);

/// Parses a bridge document over already-loaded component automata.
/// Validation (merge constraints) is NOT run here -- callers decide when.
std::shared_ptr<MergedAutomaton> loadBridge(
    const xml::Node& root,
    std::vector<std::shared_ptr<automata::ColoredAutomaton>> components);
std::shared_ptr<MergedAutomaton> loadBridge(
    const std::string& xmlText,
    std::vector<std::shared_ptr<automata::ColoredAutomaton>> components);

}  // namespace starlink::merge
