// Merged automata (paper section III-C).
//
// A merged automaton A{k1..kn} combines the k-colored automata of n
// protocols with delta-transitions: silent moves between automata that
// exchange no message but may run lambda network actions (e.g. set_host) and
// mark where translation logic applies. The merge constraints of eqns (2)
// and (3) are checked structurally by validate():
//
//   form (i):  s1x --?m--> s1i --delta--> s20 (initial of A2) --!n--> ...
//              with n |= the received history -- enter a protocol after a
//              receive, through its initial state, towards a send;
//
//   form (ii): s2x --?n--> s2n (final of A2) --delta--> s1y --!m--> ...
//              with m |= the received history -- leave a protocol from a
//              final state after a receive, towards a send in the earlier
//              automaton.
//
// The weak-merge condition of eqn (4) -- the delta-transitions chain the
// automata along one directed path that starts and ends in the same
// automaton -- is what classify() reports; a merge is STRONG when every
// entered automaton also delta-returns directly to the automaton that
// entered it (pairwise mergeable), WEAK otherwise (the Fig 4 SLP/SSDP/HTTP
// chain is weak: SSDP hands over to HTTP, which returns to SLP).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/automata/colored_automaton.hpp"
#include "core/automata/trace.hpp"
#include "core/merge/translation.hpp"

namespace starlink::merge {

/// A delta-transition between two component automata.
struct DeltaTransition {
    std::string from;  // state id in one component
    std::string to;    // state id in a different component
    std::vector<NetworkAction> actions;  // the {lambda} sequence
};

/// Declares n |= <m1...mk>: message type `lhs` is semantically equivalent to
/// the sequence of message types `rhs` (paper eqn 1).
struct EquivalenceDecl {
    std::string lhs;
    std::vector<std::string> rhs;
};

enum class MergeKind { Strong, Weak };

class MergedAutomaton {
public:
    explicit MergedAutomaton(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    // -- construction ---------------------------------------------------------
    void addComponent(std::shared_ptr<automata::ColoredAutomaton> component);
    void setInitial(const std::string& stateId);
    void addAccepting(const std::string& stateId);
    void addDelta(DeltaTransition delta);
    void addEquivalence(EquivalenceDecl equivalence);
    void addAssignment(Assignment assignment);

    // -- lookup ----------------------------------------------------------------
    const std::vector<std::shared_ptr<automata::ColoredAutomaton>>& components() const {
        return components_;
    }
    automata::ColoredAutomaton* component(const std::string& name);
    const automata::ColoredAutomaton* component(const std::string& name) const;

    /// The component automaton owning a state id (ids are unique across the
    /// merge; validate() enforces it). nullptr when unknown.
    const automata::ColoredAutomaton* automatonOf(const std::string& stateId) const;
    automata::ColoredAutomaton* automatonOf(const std::string& stateId);

    const std::string& initialState() const { return initial_; }
    const std::set<std::string>& acceptingStates() const { return accepting_; }
    const std::vector<DeltaTransition>& deltas() const { return deltas_; }
    const std::vector<EquivalenceDecl>& equivalences() const { return equivalences_; }
    const std::vector<Assignment>& assignments() const { return assignments_; }

    const DeltaTransition* deltaFrom(const std::string& stateId) const;

    /// Assignments whose target is (state, messageType) -- what the engine
    /// executes when composing that message at that state.
    std::vector<const Assignment*> assignmentsTargeting(const std::string& stateId,
                                                        const std::string& messageType) const;

    /// The declared equivalence n |= m-vector for a message type, if any.
    const EquivalenceDecl* equivalenceFor(const std::string& messageType) const;

    // -- validation --------------------------------------------------------------
    /// Structural validation (throws SpecError): components individually
    /// valid, unique state ids, q0/F set and known, every delta crosses
    /// automata and satisfies merge-constraint form (i) or (ii), and an
    /// accepting state is reachable from q0 through -> and delta edges.
    void validate() const;

    /// Checks eqn (1) statically: for every equivalence n |= m-vector, every
    /// mandatory field of n (per `mandatoryFields`, typically backed by the
    /// protocol MDLs) must be covered by an assignment targeting n. Returns
    /// the list of uncovered "type.field" names (empty == equivalent).
    std::vector<std::string> checkEquivalences(
        const std::function<std::vector<std::string>(const std::string&)>& mandatoryFields) const;

    /// Translation-function names the registry does not know, one entry per
    /// offending assignment / delta-action argument (with a description of
    /// where it is used). Deployment fails on any -- a typo'd transform must
    /// surface at deploy time as a named-transform SpecError, not mid-session
    /// as a misleading "translation rejected value".
    std::vector<std::string> unknownTransforms(const TranslationRegistry& registry) const;

    /// Strong vs weak merge (see file header).
    MergeKind classify() const;

    /// Clears all component queues (between bridge sessions).
    void reset();

private:
    std::string name_;
    std::vector<std::shared_ptr<automata::ColoredAutomaton>> components_;
    std::string initial_;
    std::set<std::string> accepting_;
    std::vector<DeltaTransition> deltas_;
    std::vector<EquivalenceDecl> equivalences_;
    std::vector<Assignment> assignments_;
};

}  // namespace starlink::merge
