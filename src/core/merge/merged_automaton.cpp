#include "core/merge/merged_automaton.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace starlink::merge {

using automata::Action;
using automata::ColoredAutomaton;
using automata::Transition;

void MergedAutomaton::addComponent(std::shared_ptr<ColoredAutomaton> component) {
    components_.push_back(std::move(component));
}

void MergedAutomaton::setInitial(const std::string& stateId) { initial_ = stateId; }

void MergedAutomaton::addAccepting(const std::string& stateId) { accepting_.insert(stateId); }

void MergedAutomaton::addDelta(DeltaTransition delta) { deltas_.push_back(std::move(delta)); }

void MergedAutomaton::addEquivalence(EquivalenceDecl equivalence) {
    equivalences_.push_back(std::move(equivalence));
}

void MergedAutomaton::addAssignment(Assignment assignment) {
    assignments_.push_back(std::move(assignment));
}

ColoredAutomaton* MergedAutomaton::component(const std::string& name) {
    for (const auto& c : components_) {
        if (c->name() == name) return c.get();
    }
    return nullptr;
}

const ColoredAutomaton* MergedAutomaton::component(const std::string& name) const {
    for (const auto& c : components_) {
        if (c->name() == name) return c.get();
    }
    return nullptr;
}

const ColoredAutomaton* MergedAutomaton::automatonOf(const std::string& stateId) const {
    for (const auto& c : components_) {
        if (c->state(stateId) != nullptr) return c.get();
    }
    return nullptr;
}

ColoredAutomaton* MergedAutomaton::automatonOf(const std::string& stateId) {
    for (const auto& c : components_) {
        if (c->state(stateId) != nullptr) return c.get();
    }
    return nullptr;
}

const DeltaTransition* MergedAutomaton::deltaFrom(const std::string& stateId) const {
    for (const DeltaTransition& d : deltas_) {
        if (d.from == stateId) return &d;
    }
    return nullptr;
}

std::vector<const Assignment*> MergedAutomaton::assignmentsTargeting(
    const std::string& stateId, const std::string& messageType) const {
    std::vector<const Assignment*> out;
    for (const Assignment& a : assignments_) {
        if (a.target.state == stateId && a.target.messageType == messageType) out.push_back(&a);
    }
    return out;
}

const EquivalenceDecl* MergedAutomaton::equivalenceFor(const std::string& messageType) const {
    for (const EquivalenceDecl& e : equivalences_) {
        if (e.lhs == messageType) return &e;
    }
    return nullptr;
}

void MergedAutomaton::validate() const {
    if (components_.empty()) throw SpecError(errc::ErrorCode::MergeInvalid,
                        "merge '" + name_ + "': no component automata");
    std::set<std::string> allStates;
    for (const auto& c : components_) {
        c->validate();
        for (const automata::State* s : c->states()) {
            if (!allStates.insert(s->id()).second) {
                throw SpecError(errc::ErrorCode::MergeInvalid,
                        "merge '" + name_ + "': state id '" + s->id() +
                                "' appears in more than one component");
            }
        }
    }
    if (initial_.empty() || automatonOf(initial_) == nullptr) {
        throw SpecError(errc::ErrorCode::MergeInvalid,
                        "merge '" + name_ + "': initial state missing or unknown");
    }
    if (accepting_.empty()) throw SpecError(errc::ErrorCode::MergeInvalid,
                        "merge '" + name_ + "': no accepting states");
    for (const std::string& f : accepting_) {
        if (automatonOf(f) == nullptr) {
            throw SpecError(errc::ErrorCode::MergeInvalid,
                        "merge '" + name_ + "': accepting state '" + f + "' unknown");
        }
    }

    auto hasIncomingReceive = [](const ColoredAutomaton& a, const std::string& state) {
        for (const Transition& t : a.transitions()) {
            if (t.to == state && t.action == Action::Receive) return true;
        }
        return false;
    };
    auto hasOutgoingSend = [](const ColoredAutomaton& a, const std::string& state) {
        for (const Transition& t : a.transitions()) {
            if (t.from == state && t.action == Action::Send) return true;
        }
        return false;
    };
    auto hasOutgoingReceive = [](const ColoredAutomaton& a, const std::string& state) {
        for (const Transition& t : a.transitions()) {
            if (t.from == state && t.action == Action::Receive) return true;
        }
        return false;
    };

    std::set<std::string> deltaSources;
    for (const DeltaTransition& d : deltas_) {
        const ColoredAutomaton* fromA = automatonOf(d.from);
        const ColoredAutomaton* toA = automatonOf(d.to);
        if (fromA == nullptr || toA == nullptr) {
            throw SpecError(errc::ErrorCode::MergeInvalid,
                        "merge '" + name_ + "': delta " + d.from + " -> " + d.to +
                            " references an unknown state");
        }
        if (fromA == toA) {
            throw SpecError(errc::ErrorCode::MergeInvalid,
                        "merge '" + name_ + "': delta " + d.from + " -> " + d.to +
                            " stays inside automaton '" + fromA->name() +
                            "'; delta-transitions must cross automata");
        }
        if (!deltaSources.insert(d.from).second) {
            throw SpecError(errc::ErrorCode::MergeInvalid,
                        "merge '" + name_ + "': two delta-transitions leave state '" +
                            d.from + "'");
        }

        // Merge-constraint forms (i) / (ii) of eqns (2)-(3).
        const bool formI = toA->initialState() == d.to && hasOutgoingSend(*toA, d.to) &&
                           (hasIncomingReceive(*fromA, d.from) || d.from == initial_);
        const bool formII = fromA->state(d.from)->accepting() &&
                            hasIncomingReceive(*fromA, d.from) && hasOutgoingSend(*toA, d.to);
        // Form (iii): the server-side dual of form (i) -- after completing a
        // reply (final state entered by a send), hand over to another
        // protocol the bridge is impersonating the SERVICE side of, entering
        // its initial receive state. The paper's UPnP-as-client cases (its
        // section V lists "UPnP to SLP and Bonjour") need this shape: the
        // bridge answers SSDP, then must await the control point's HTTP GET.
        const bool formIII = fromA->state(d.from)->accepting() &&
                             toA->initialState() == d.to && hasOutgoingReceive(*toA, d.to);
        if (!formI && !formII && !formIII) {
            throw SpecError(errc::ErrorCode::MergeInvalid,
                        
                "merge '" + name_ + "': delta " + d.from + " -> " + d.to +
                " satisfies no merge-constraint form: it must enter the target automaton's "
                "initial state towards a send after a receive (form i), leave a final state "
                "after a receive towards a send (form ii), or leave a final state after a "
                "reply into another served protocol's initial receive state (form iii)");
        }
    }

    // Reachability of an accepting state over -> union delta.
    std::set<std::string> reachable{initial_};
    bool grew = true;
    while (grew) {
        grew = false;
        for (const auto& c : components_) {
            for (const Transition& t : c->transitions()) {
                if (reachable.contains(t.from) && reachable.insert(t.to).second) grew = true;
            }
        }
        for (const DeltaTransition& d : deltas_) {
            if (reachable.contains(d.from) && reachable.insert(d.to).second) grew = true;
        }
    }
    const bool acceptingReachable =
        std::any_of(accepting_.begin(), accepting_.end(),
                    [&reachable](const std::string& f) { return reachable.contains(f); });
    if (!acceptingReachable) {
        throw SpecError(errc::ErrorCode::MergeInvalid,
                        "merge '" + name_ +
                        "': no accepting state is reachable from the initial state");
    }
}

std::vector<std::string> MergedAutomaton::checkEquivalences(
    const std::function<std::vector<std::string>(const std::string&)>& mandatoryFields) const {
    std::vector<std::string> uncovered;
    for (const EquivalenceDecl& equivalence : equivalences_) {
        for (const std::string& field : mandatoryFields(equivalence.lhs)) {
            const bool covered = std::any_of(
                assignments_.begin(), assignments_.end(), [&](const Assignment& a) {
                    if (a.target.messageType != equivalence.lhs) return false;
                    // The assignment covers the field itself or a sub-field
                    // of a structured field.
                    return a.target.path == field ||
                           a.target.path.rfind(field + ".", 0) == 0;
                });
            if (!covered) uncovered.push_back(equivalence.lhs + "." + field);
        }
    }
    return uncovered;
}

std::vector<std::string> MergedAutomaton::unknownTransforms(
    const TranslationRegistry& registry) const {
    std::vector<std::string> out;
    const auto check = [&registry, &out](const std::string& name, const std::string& where) {
        if (!name.empty() && !registry.contains(name)) {
            out.push_back("'" + name + "' (" + where + ")");
        }
    };
    for (const Assignment& a : assignments_) {
        check(a.transform, "assignment targeting " + a.target.toString());
    }
    for (const DeltaTransition& d : deltas_) {
        for (const NetworkAction& action : d.actions) {
            for (const NetworkAction::Arg& arg : action.args) {
                check(arg.transform,
                      "delta " + d.from + " -> " + d.to + " action " + action.name);
            }
        }
    }
    return out;
}

MergeKind MergedAutomaton::classify() const {
    // Strong: every delta that ENTERS an automaton B from A (form i) is
    // matched by a delta returning from B directly to A.
    for (const DeltaTransition& enter : deltas_) {
        const ColoredAutomaton* fromA = automatonOf(enter.from);
        const ColoredAutomaton* toA = automatonOf(enter.to);
        if (toA->initialState() != enter.to) continue;  // not an entering delta
        const bool returned =
            std::any_of(deltas_.begin(), deltas_.end(), [&](const DeltaTransition& back) {
                return automatonOf(back.from) == toA && automatonOf(back.to) == fromA;
            });
        if (!returned) return MergeKind::Weak;
    }
    return MergeKind::Strong;
}

void MergedAutomaton::reset() {
    for (const auto& c : components_) c->reset();
}

}  // namespace starlink::merge
