#include "core/merge/ontology.hpp"

namespace starlink::merge {

void Ontology::mapField(const std::string& messageType, const std::string& fieldPath,
                        const std::string& conceptName, const std::string& toCanonical,
                        const std::string& fromCanonical) {
    mappings_[{messageType, fieldPath}] = FieldMapping{conceptName, toCanonical, fromCanonical};
}

void Ontology::declareConstant(const std::string& messageType, const std::string& fieldPath,
                               const std::string& value) {
    constants_[{messageType, fieldPath}] = value;
}

std::optional<Ontology::FieldMapping> Ontology::mapping(const std::string& messageType,
                                                        const std::string& fieldPath) const {
    const auto it = mappings_.find({messageType, fieldPath});
    if (it == mappings_.end()) return std::nullopt;
    return it->second;
}

std::vector<std::pair<std::string, Ontology::FieldMapping>> Ontology::fieldsOf(
    const std::string& messageType) const {
    std::vector<std::pair<std::string, FieldMapping>> out;
    for (const auto& [key, mapping] : mappings_) {
        if (key.first == messageType) out.emplace_back(key.second, mapping);
    }
    return out;
}

std::vector<std::pair<std::string, std::string>> Ontology::constantsOf(
    const std::string& messageType) const {
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& [key, value] : constants_) {
        if (key.first == messageType) out.emplace_back(key.second, value);
    }
    return out;
}

Ontology Ontology::discovery() {
    Ontology ontology;
    // Concept: service-type -- canonical form is the SLP abstract type
    // ("service:printer").
    ontology.mapField("SLPSrvRequest", "SRVType", "service-type");
    ontology.mapField("DNS_Question", "QName", "service-type", "dnssd_to_slp", "slp_to_dnssd");
    ontology.mapField("SSDP_MSearch", "ST", "service-type", "urn_to_slp", "slp_to_urn");

    // Concept: service-url -- the resolved access point of the service.
    ontology.mapField("SLPSrvReply", "URLEntry", "service-url");
    ontology.mapField("DNS_Response", "RData", "service-url");
    ontology.mapField("HTTP_OK", "Body", "service-url", "url_base", "device_description");

    // Concept: transaction-id -- request/reply correlation.
    ontology.mapField("SLPSrvRequest", "XID", "transaction-id");
    ontology.mapField("SLPSrvReply", "XID", "transaction-id");
    ontology.mapField("DNS_Question", "ID", "transaction-id");
    ontology.mapField("DNS_Response", "ID", "transaction-id");

    // Concept: service-name -- the advertised instance name, canonical in
    // DNS-SD form.
    ontology.mapField("DNS_Question", "QName", "service-type", "dnssd_to_slp", "slp_to_dnssd");
    ontology.mapField("DNS_Response", "AName", "service-type", "dnssd_to_slp", "slp_to_dnssd");
    ontology.mapField("SSDP_Resp", "ST", "service-type", "urn_to_slp", "slp_to_urn");

    // WS-Discovery (xml dialect): bare service word, uuid correlation.
    ontology.mapField("WSD_Probe", "Types", "service-type", "word_to_slp", "slp_to_word");
    ontology.mapField("WSD_ProbeMatch", "MatchTypes", "service-type", "word_to_slp",
                      "slp_to_word");
    ontology.mapField("WSD_Probe", "MessageID", "transaction-id", "", "to_string");
    ontology.mapField("WSD_ProbeMatch", "RelatesTo", "transaction-id", "", "to_string");
    ontology.mapField("WSD_ProbeMatch", "XAddrs", "service-url");

    // Protocol liveness constants for composed messages.
    ontology.declareConstant("DNS_Response", "Flags", "33792");  // QR|AA
    return ontology;
}

}  // namespace starlink::merge
