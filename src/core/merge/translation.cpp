#include "core/merge/translation.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "xml/xpath.hpp"

namespace starlink::merge {

namespace {

// --- URL helpers -----------------------------------------------------------
// Parses "scheme://host:port/path"; port defaults by scheme (only where the
// scheme actually HAS a well-known default), path to "/". Bracketed IPv6
// authorities ("http://[::1]:8080/x") keep their colons inside the brackets.
struct ParsedUrl {
    std::string scheme;
    std::string host;                // brackets stripped for IPv6 literals
    std::optional<int> port;         // nullopt: no explicit port, no scheme default
    std::string path;
};

std::optional<int> defaultPortFor(const std::string& scheme) {
    if (scheme == "http" || scheme == "ws") return 80;
    if (scheme == "https" || scheme == "wss") return 443;
    return std::nullopt;  // unknown/empty scheme: no default to invent
}

std::optional<ParsedUrl> parseUrl(const std::string& text) {
    ParsedUrl url;
    const std::size_t schemeEnd = text.find("://");
    std::size_t rest = 0;
    if (schemeEnd != std::string::npos) {
        url.scheme = text.substr(0, schemeEnd);
        rest = schemeEnd + 3;
    }
    std::string portText;
    if (rest < text.size() && text[rest] == '[') {
        // IPv6 literal: the authority's colons live inside the brackets.
        const std::size_t close = text.find(']', rest);
        if (close == std::string::npos) return std::nullopt;
        url.host = text.substr(rest + 1, close - rest - 1);
        std::size_t after = close + 1;
        if (after < text.size() && text[after] == ':') {
            const std::size_t pathStart = text.find('/', after);
            portText = pathStart == std::string::npos
                           ? text.substr(after + 1)
                           : text.substr(after + 1, pathStart - after - 1);
            after = pathStart == std::string::npos ? text.size() : pathStart;
        } else if (after < text.size() && text[after] != '/') {
            return std::nullopt;  // garbage between ']' and the path
        }
        url.path = after >= text.size() ? "/" : text.substr(after);
    } else {
        const std::size_t pathStart = text.find('/', rest);
        const std::string authority = pathStart == std::string::npos
                                          ? text.substr(rest)
                                          : text.substr(rest, pathStart - rest);
        url.path = pathStart == std::string::npos ? "/" : text.substr(pathStart);
        const auto hostPort = splitFirst(authority, ':');
        if (hostPort) {
            url.host = hostPort->first;
            portText = hostPort->second;
        } else {
            url.host = authority;
        }
    }
    if (!portText.empty()) {
        const auto port = parseInt(portText);
        if (!port || *port < 0 || *port > 65535) return std::nullopt;
        url.port = static_cast<int>(*port);
    } else {
        url.port = defaultPortFor(url.scheme);
    }
    if (url.host.empty()) return std::nullopt;
    return url;
}

std::optional<std::string> asText(const Value& v) {
    const auto coerced = v.coerceTo(ValueType::String);
    if (!coerced) return std::nullopt;
    return coerced->asString();
}

// --- service-name conversions ------------------------------------------------
// SLP service types look like "service:printer"; DNS-SD instance types like
// "_printer._tcp.local"; UPnP search targets like
// "urn:schemas-upnp-org:service:printer:1". These translation functions move
// the protocol-independent service word between the three conventions.

std::optional<Value> slpToDnssd(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    std::string name = *text;
    if (startsWith(name, "service:")) name = name.substr(8);
    // Nested SLP types ("service:printer:lpr") keep only the abstract type.
    name = split(name, ':')[0];
    if (name.empty()) return std::nullopt;
    return Value::ofString("_" + name + "._tcp.local");
}

std::optional<Value> dnssdToSlp(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    std::string name = *text;
    if (!startsWith(name, "_")) return std::nullopt;
    name = name.substr(1);
    const std::size_t dot = name.find("._");
    if (dot != std::string::npos) name = name.substr(0, dot);
    if (name.empty()) return std::nullopt;
    return Value::ofString("service:" + name);
}

std::optional<Value> slpToUrn(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    std::string name = *text;
    if (startsWith(name, "service:")) name = name.substr(8);
    name = split(name, ':')[0];
    if (name.empty()) return std::nullopt;
    return Value::ofString("urn:schemas-upnp-org:service:" + name + ":1");
}

std::optional<Value> urnToSlp(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    const std::vector<std::string> pieces = split(*text, ':');
    // urn:schemas-upnp-org:service:printer:1
    if (pieces.size() < 4 || pieces[0] != "urn" || pieces[2] != "service") return std::nullopt;
    return Value::ofString("service:" + pieces[3]);
}

// WS-Discovery carries the bare service word ("printer").
std::optional<Value> slpToWord(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    std::string name = *text;
    if (startsWith(name, "service:")) name = name.substr(8);
    name = split(name, ':')[0];
    if (name.empty()) return std::nullopt;
    return Value::ofString(name);
}

std::optional<Value> wordToSlp(const Value& v) {
    const auto text = asText(v);
    if (!text || text->empty()) return std::nullopt;
    if (startsWith(*text, "service:")) return Value::ofString(*text);
    return Value::ofString("service:" + *text);
}

std::optional<Value> dnssdToUrn(const Value& v) {
    const auto slp = dnssdToSlp(v);
    if (!slp) return std::nullopt;
    return slpToUrn(*slp);
}

std::optional<Value> urnToDnssd(const Value& v) {
    const auto slp = urnToSlp(v);
    if (!slp) return std::nullopt;
    return slpToDnssd(*slp);
}

// --- misc --------------------------------------------------------------------

/// Extracts the content of the <URLBase> element from a UPnP device
/// description body; this is the paper's HTTP_OK.URL_BASE source field.
std::optional<Value> urlBase(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    const std::size_t open = text->find("<URLBase>");
    if (open == std::string::npos) return std::nullopt;
    const std::size_t start = open + 9;
    const std::size_t close = text->find("</URLBase>", start);
    if (close == std::string::npos) return std::nullopt;
    return Value::ofString(trim(text->substr(start, close - start)));
}

}  // namespace

std::shared_ptr<TranslationRegistry> TranslationRegistry::withDefaults() {
    auto registry = std::make_shared<TranslationRegistry>();
    // Shorthand signatures: any -> String / any -> Int. `identity` stays
    // unsigned (its output type depends on its input).
    const TransformSignature toText{std::nullopt, ValueType::String};
    const TransformSignature toInt{std::nullopt, ValueType::Int};
    registry->add("identity", [](const Value& v) -> std::optional<Value> { return v; });
    registry->add("to_string", [](const Value& v) { return v.coerceTo(ValueType::String); },
                  toText);
    registry->add("to_int", [](const Value& v) { return v.coerceTo(ValueType::Int); }, toInt);
    registry->add("trim", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        return Value::ofString(trim(*text));
    }, toText);
    registry->add("lowercase", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        return Value::ofString(toLower(*text));
    }, toText);
    registry->add("url_host", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        const auto url = parseUrl(*text);
        if (!url) return std::nullopt;
        return Value::ofString(url->host);
    }, toText);
    registry->add("url_port", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        const auto url = parseUrl(*text);
        // No explicit port and no well-known default for the scheme: reject
        // rather than inventing 80 for, say, "service:printer://host/q".
        if (!url || !url->port) return std::nullopt;
        return Value::ofInt(*url->port);
    }, toInt);
    registry->add("url_path", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        const auto url = parseUrl(*text);
        if (!url) return std::nullopt;
        return Value::ofString(url->path);
    }, toText);
    registry->add("url_base", urlBase, toText);
    // Wraps a plain service URL into a minimal UPnP device description whose
    // URLBase carries it -- the inverse of url_base, used when the bridge
    // impersonates a UPnP device in front of an SLP/Bonjour service.
    registry->add("device_description", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        return Value::ofString(
            "<root xmlns=\"urn:schemas-upnp-org:device-1-0\"><device>"
            "<friendlyName>Starlink bridged service</friendlyName>"
            "<URLBase>" + *text + "</URLBase>"
            "</device></root>");
    }, toText);
    // Derives a unique service name (USN) from a search target, as UPnP
    // devices do when answering M-SEARCH.
    registry->add("usn_from_st", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        return Value::ofString("uuid:starlink-bridge::" + *text);
    }, toText);
    registry->add("slp_to_dnssd", slpToDnssd, toText);
    registry->add("dnssd_to_slp", dnssdToSlp, toText);
    registry->add("slp_to_urn", slpToUrn, toText);
    registry->add("urn_to_slp", urnToSlp, toText);
    registry->add("dnssd_to_urn", dnssdToUrn, toText);
    registry->add("urn_to_dnssd", urnToDnssd, toText);
    registry->add("slp_to_word", slpToWord, toText);
    registry->add("word_to_slp", wordToSlp, toText);
    return registry;
}

void TranslationRegistry::add(const std::string& name, Fn fn) { table_[name] = std::move(fn); }

void TranslationRegistry::add(const std::string& name, Fn fn, TransformSignature signature) {
    table_[name] = std::move(fn);
    signatures_[name] = signature;
}

const TransformSignature* TranslationRegistry::signature(const std::string& name) const {
    const auto it = signatures_.find(name);
    return it == signatures_.end() ? nullptr : &it->second;
}

std::optional<Value> TranslationRegistry::apply(const std::string& name,
                                                const Value& input) const {
    const auto it = table_.find(name);
    if (it == table_.end()) return std::nullopt;
    return it->second(input);
}

std::vector<std::string> TranslationRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(table_.size());
    for (const auto& [name, fn] : table_) out.push_back(name);
    return out;
}

// ---------------------------------------------------------------------------
// XPath <-> dotted path

namespace {

// A field label must survive the round trip dotted <-> [label='..']: a '.'
// would re-split into bogus structure steps, a '\'' would break out of the
// xpath predicate quoting, and an empty label is addressable in neither form.
void requireRoundTrippableLabel(const std::string& label, const std::string& context) {
    if (label.empty()) {
        throw SpecError(errc::ErrorCode::BridgeInvalid,
                        "bridge spec: empty field label in " + context);
    }
    if (label.find('.') != std::string::npos || label.find('\'') != std::string::npos) {
        throw SpecError(errc::ErrorCode::BridgeInvalid,
                        "bridge spec: field label '" + label + "' in " + context +
                        " may not contain '.' or '\\'' (breaks the xpath <-> dotted-path "
                        "round trip)");
    }
}

}  // namespace

std::string xpathToFieldPath(const std::string& xpath) {
    const xml::Path compiled = xml::Path::compile(xpath);
    const auto& steps = compiled.steps();
    if (steps.size() < 3 || steps.front().name != "field" || steps.back().name != "value") {
        throw SpecError(errc::ErrorCode::BridgeInvalid,
                        "bridge spec: xpath '" + xpath +
                        "' does not follow /field/.../value over the abstract-message schema");
    }
    std::vector<std::string> pieces;
    for (std::size_t i = 1; i + 1 < steps.size(); ++i) {
        const xml::Step& step = steps[i];
        const bool isField = step.name == "primitiveField" || step.name == "structuredField";
        if (!isField || step.predicate != xml::Step::PredicateKind::ChildText ||
            step.predicateName != "label") {
            throw SpecError(errc::ErrorCode::BridgeInvalid,
                        "bridge spec: xpath step in '" + xpath +
                            "' must be primitiveField[label='..'] or structuredField[label='..']");
        }
        if (step.name == "primitiveField" && i + 2 != steps.size()) {
            throw SpecError(errc::ErrorCode::BridgeInvalid,
                        "bridge spec: primitiveField must be the last field step in '" +
                            xpath + "'");
        }
        requireRoundTrippableLabel(step.predicateValue, "xpath '" + xpath + "'");
        pieces.push_back(step.predicateValue);
    }
    return join(pieces, ".");
}

std::string fieldPathToXpath(const std::string& dottedPath) {
    const std::vector<std::string> pieces = split(dottedPath, '.');
    if (dottedPath.empty() || pieces.empty()) {
        throw SpecError(errc::ErrorCode::BridgeInvalid,
                        "bridge spec: empty dotted field path");
    }
    for (const std::string& piece : pieces) {
        requireRoundTrippableLabel(piece, "dotted path '" + dottedPath + "'");
    }
    std::string out = "/field";
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        const bool last = i + 1 == pieces.size();
        out += last ? "/primitiveField[label='" : "/structuredField[label='";
        out += pieces[i];
        out += "']";
    }
    out += "/value";
    return out;
}

}  // namespace starlink::merge
