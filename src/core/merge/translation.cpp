#include "core/merge/translation.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "xml/xpath.hpp"

namespace starlink::merge {

namespace {

// --- URL helpers -----------------------------------------------------------
// Parses "scheme://host:port/path"; port defaults by scheme, path to "/".
struct ParsedUrl {
    std::string scheme;
    std::string host;
    int port = 0;
    std::string path;
};

std::optional<ParsedUrl> parseUrl(const std::string& text) {
    ParsedUrl url;
    const std::size_t schemeEnd = text.find("://");
    std::size_t rest = 0;
    if (schemeEnd != std::string::npos) {
        url.scheme = text.substr(0, schemeEnd);
        rest = schemeEnd + 3;
    }
    const std::size_t pathStart = text.find('/', rest);
    const std::string authority =
        pathStart == std::string::npos ? text.substr(rest) : text.substr(rest, pathStart - rest);
    url.path = pathStart == std::string::npos ? "/" : text.substr(pathStart);
    const auto hostPort = splitFirst(authority, ':');
    if (hostPort) {
        url.host = hostPort->first;
        const auto port = parseInt(hostPort->second);
        if (!port || *port < 0 || *port > 65535) return std::nullopt;
        url.port = static_cast<int>(*port);
    } else {
        url.host = authority;
        url.port = url.scheme == "https" ? 443 : 80;
    }
    if (url.host.empty()) return std::nullopt;
    return url;
}

std::optional<std::string> asText(const Value& v) {
    const auto coerced = v.coerceTo(ValueType::String);
    if (!coerced) return std::nullopt;
    return coerced->asString();
}

// --- service-name conversions ------------------------------------------------
// SLP service types look like "service:printer"; DNS-SD instance types like
// "_printer._tcp.local"; UPnP search targets like
// "urn:schemas-upnp-org:service:printer:1". These translation functions move
// the protocol-independent service word between the three conventions.

std::optional<Value> slpToDnssd(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    std::string name = *text;
    if (startsWith(name, "service:")) name = name.substr(8);
    // Nested SLP types ("service:printer:lpr") keep only the abstract type.
    name = split(name, ':')[0];
    if (name.empty()) return std::nullopt;
    return Value::ofString("_" + name + "._tcp.local");
}

std::optional<Value> dnssdToSlp(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    std::string name = *text;
    if (!startsWith(name, "_")) return std::nullopt;
    name = name.substr(1);
    const std::size_t dot = name.find("._");
    if (dot != std::string::npos) name = name.substr(0, dot);
    if (name.empty()) return std::nullopt;
    return Value::ofString("service:" + name);
}

std::optional<Value> slpToUrn(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    std::string name = *text;
    if (startsWith(name, "service:")) name = name.substr(8);
    name = split(name, ':')[0];
    if (name.empty()) return std::nullopt;
    return Value::ofString("urn:schemas-upnp-org:service:" + name + ":1");
}

std::optional<Value> urnToSlp(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    const std::vector<std::string> pieces = split(*text, ':');
    // urn:schemas-upnp-org:service:printer:1
    if (pieces.size() < 4 || pieces[0] != "urn" || pieces[2] != "service") return std::nullopt;
    return Value::ofString("service:" + pieces[3]);
}

// WS-Discovery carries the bare service word ("printer").
std::optional<Value> slpToWord(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    std::string name = *text;
    if (startsWith(name, "service:")) name = name.substr(8);
    name = split(name, ':')[0];
    if (name.empty()) return std::nullopt;
    return Value::ofString(name);
}

std::optional<Value> wordToSlp(const Value& v) {
    const auto text = asText(v);
    if (!text || text->empty()) return std::nullopt;
    if (startsWith(*text, "service:")) return Value::ofString(*text);
    return Value::ofString("service:" + *text);
}

std::optional<Value> dnssdToUrn(const Value& v) {
    const auto slp = dnssdToSlp(v);
    if (!slp) return std::nullopt;
    return slpToUrn(*slp);
}

std::optional<Value> urnToDnssd(const Value& v) {
    const auto slp = urnToSlp(v);
    if (!slp) return std::nullopt;
    return slpToDnssd(*slp);
}

// --- misc --------------------------------------------------------------------

/// Extracts the content of the <URLBase> element from a UPnP device
/// description body; this is the paper's HTTP_OK.URL_BASE source field.
std::optional<Value> urlBase(const Value& v) {
    const auto text = asText(v);
    if (!text) return std::nullopt;
    const std::size_t open = text->find("<URLBase>");
    if (open == std::string::npos) return std::nullopt;
    const std::size_t start = open + 9;
    const std::size_t close = text->find("</URLBase>", start);
    if (close == std::string::npos) return std::nullopt;
    return Value::ofString(trim(text->substr(start, close - start)));
}

}  // namespace

std::shared_ptr<TranslationRegistry> TranslationRegistry::withDefaults() {
    auto registry = std::make_shared<TranslationRegistry>();
    registry->add("identity", [](const Value& v) -> std::optional<Value> { return v; });
    registry->add("to_string", [](const Value& v) { return v.coerceTo(ValueType::String); });
    registry->add("to_int", [](const Value& v) { return v.coerceTo(ValueType::Int); });
    registry->add("trim", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        return Value::ofString(trim(*text));
    });
    registry->add("lowercase", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        return Value::ofString(toLower(*text));
    });
    registry->add("url_host", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        const auto url = parseUrl(*text);
        if (!url) return std::nullopt;
        return Value::ofString(url->host);
    });
    registry->add("url_port", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        const auto url = parseUrl(*text);
        if (!url) return std::nullopt;
        return Value::ofInt(url->port);
    });
    registry->add("url_path", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        const auto url = parseUrl(*text);
        if (!url) return std::nullopt;
        return Value::ofString(url->path);
    });
    registry->add("url_base", urlBase);
    // Wraps a plain service URL into a minimal UPnP device description whose
    // URLBase carries it -- the inverse of url_base, used when the bridge
    // impersonates a UPnP device in front of an SLP/Bonjour service.
    registry->add("device_description", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        return Value::ofString(
            "<root xmlns=\"urn:schemas-upnp-org:device-1-0\"><device>"
            "<friendlyName>Starlink bridged service</friendlyName>"
            "<URLBase>" + *text + "</URLBase>"
            "</device></root>");
    });
    // Derives a unique service name (USN) from a search target, as UPnP
    // devices do when answering M-SEARCH.
    registry->add("usn_from_st", [](const Value& v) -> std::optional<Value> {
        const auto text = asText(v);
        if (!text) return std::nullopt;
        return Value::ofString("uuid:starlink-bridge::" + *text);
    });
    registry->add("slp_to_dnssd", slpToDnssd);
    registry->add("dnssd_to_slp", dnssdToSlp);
    registry->add("slp_to_urn", slpToUrn);
    registry->add("urn_to_slp", urnToSlp);
    registry->add("dnssd_to_urn", dnssdToUrn);
    registry->add("urn_to_dnssd", urnToDnssd);
    registry->add("slp_to_word", slpToWord);
    registry->add("word_to_slp", wordToSlp);
    return registry;
}

void TranslationRegistry::add(const std::string& name, Fn fn) { table_[name] = std::move(fn); }

std::optional<Value> TranslationRegistry::apply(const std::string& name,
                                                const Value& input) const {
    const auto it = table_.find(name);
    if (it == table_.end()) return std::nullopt;
    return it->second(input);
}

std::vector<std::string> TranslationRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(table_.size());
    for (const auto& [name, fn] : table_) out.push_back(name);
    return out;
}

// ---------------------------------------------------------------------------
// XPath <-> dotted path

std::string xpathToFieldPath(const std::string& xpath) {
    const xml::Path compiled = xml::Path::compile(xpath);
    const auto& steps = compiled.steps();
    if (steps.size() < 3 || steps.front().name != "field" || steps.back().name != "value") {
        throw SpecError("bridge spec: xpath '" + xpath +
                        "' does not follow /field/.../value over the abstract-message schema");
    }
    std::vector<std::string> pieces;
    for (std::size_t i = 1; i + 1 < steps.size(); ++i) {
        const xml::Step& step = steps[i];
        const bool isField = step.name == "primitiveField" || step.name == "structuredField";
        if (!isField || step.predicate != xml::Step::PredicateKind::ChildText ||
            step.predicateName != "label") {
            throw SpecError("bridge spec: xpath step in '" + xpath +
                            "' must be primitiveField[label='..'] or structuredField[label='..']");
        }
        if (step.name == "primitiveField" && i + 2 != steps.size()) {
            throw SpecError("bridge spec: primitiveField must be the last field step in '" +
                            xpath + "'");
        }
        pieces.push_back(step.predicateValue);
    }
    return join(pieces, ".");
}

std::string fieldPathToXpath(const std::string& dottedPath) {
    const std::vector<std::string> pieces = split(dottedPath, '.');
    std::string out = "/field";
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        const bool last = i + 1 == pieces.size();
        out += last ? "/primitiveField[label='" : "/structuredField[label='";
        out += pieces[i];
        out += "']";
    }
    out += "/value";
    return out;
}

}  // namespace starlink::merge
