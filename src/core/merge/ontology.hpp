// A lightweight field ontology (paper section VII, "Ontology integration").
//
// "Here ontologies describing two protocols would be reasoned upon and the
//  semantic matches would be inferred, i.e., the fields where data can be
//  translated."
//
// The ontology maps protocol-specific message fields to shared CONCEPTS.
// Each mapping may name translation functions between the field's native
// value space and the concept's canonical space (e.g. the concept
// service-type is canonically an SLP-style "service:printer"; the DNS QName
// field reaches it through dnssd_to_slp and is produced from it through
// slp_to_dnssd). The merge synthesizer matches fields by concept and chains
// toCanonical/fromCanonical into the generated translation logic.
//
// Constants handle protocol liveness fields with no cross-protocol meaning
// (e.g. the DNS Flags word of a response must read 0x8400 for any resolver
// to accept it).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace starlink::merge {

class Ontology {
public:
    struct FieldMapping {
        std::string conceptName;
        std::string toCanonical;    // translation fn: field value -> concept value ("" = identity)
        std::string fromCanonical;  // translation fn: concept value -> field value ("" = identity)
    };

    /// Maps (messageType, fieldPath) onto a concept.
    void mapField(const std::string& messageType, const std::string& fieldPath,
                  const std::string& conceptName, const std::string& toCanonical = "",
                  const std::string& fromCanonical = "");

    /// Declares a protocol-mandated constant for a composed message's field.
    void declareConstant(const std::string& messageType, const std::string& fieldPath,
                         const std::string& value);

    std::optional<FieldMapping> mapping(const std::string& messageType,
                                        const std::string& fieldPath) const;

    /// All (fieldPath, mapping) pairs of one message type.
    std::vector<std::pair<std::string, FieldMapping>> fieldsOf(
        const std::string& messageType) const;

    /// All (fieldPath, value) constants of one message type.
    std::vector<std::pair<std::string, std::string>> constantsOf(
        const std::string& messageType) const;

    /// The ontology for the service-discovery domain used throughout the
    /// paper's evaluation: concepts service-type, service-url,
    /// transaction-id and service-name over SLP, DNS/Bonjour, SSDP and HTTP.
    static Ontology discovery();

private:
    std::map<std::pair<std::string, std::string>, FieldMapping> mappings_;
    std::map<std::pair<std::string, std::string>, std::string> constants_;
};

}  // namespace starlink::merge
