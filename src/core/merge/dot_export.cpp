#include "core/merge/dot_export.hpp"

#include <map>
#include <sstream>

namespace starlink::merge {

using automata::ColoredAutomaton;
using automata::State;
using automata::Transition;

namespace {

// A small rotating palette; k values are mapped to fills in first-seen order.
const char* kPalette[] = {"#cfe2f3", "#d9ead3", "#fff2cc", "#f4cccc", "#d9d2e9", "#fce5cd"};

std::string fillFor(std::uint64_t k, std::map<std::uint64_t, std::string>& assigned) {
    const auto it = assigned.find(k);
    if (it != assigned.end()) return it->second;
    const std::string color = kPalette[assigned.size() % std::size(kPalette)];
    assigned.emplace(k, color);
    return color;
}

void emitStates(std::ostringstream& out, const ColoredAutomaton& automaton,
                std::map<std::uint64_t, std::string>& fills, const std::string& indent) {
    for (const State* state : automaton.states()) {
        out << indent << "\"" << state->id() << "\" [style=filled, fillcolor=\""
            << fillFor(state->color(), fills) << "\"";
        if (state->accepting()) out << ", shape=doublecircle";
        if (state->id() == automaton.initialState()) out << ", penwidth=2";
        out << "];\n";
    }
}

void emitTransitions(std::ostringstream& out, const ColoredAutomaton& automaton,
                     const std::string& indent) {
    for (const Transition& t : automaton.transitions()) {
        out << indent << "\"" << t.from << "\" -> \"" << t.to << "\" [label=\""
            << automata::actionSymbol(t.action) << t.messageType << "\"];\n";
    }
}

}  // namespace

std::string toDot(const ColoredAutomaton& automaton) {
    std::ostringstream out;
    std::map<std::uint64_t, std::string> fills;
    out << "digraph \"" << automaton.name() << "\" {\n";
    out << "  rankdir=LR;\n  node [shape=circle];\n";
    emitStates(out, automaton, fills, "  ");
    emitTransitions(out, automaton, "  ");
    out << "}\n";
    return out.str();
}

std::string toDot(const MergedAutomaton& merged) {
    std::ostringstream out;
    std::map<std::uint64_t, std::string> fills;
    out << "digraph \"" << merged.name() << "\" {\n";
    out << "  rankdir=LR;\n  node [shape=circle];\n";
    int cluster = 0;
    for (const auto& component : merged.components()) {
        out << "  subgraph cluster_" << cluster++ << " {\n";
        out << "    label=\"" << component->name() << "\";\n";
        emitStates(out, *component, fills, "    ");
        emitTransitions(out, *component, "    ");
        out << "  }\n";
    }
    for (const DeltaTransition& delta : merged.deltas()) {
        out << "  \"" << delta.from << "\" -> \"" << delta.to
            << "\" [style=dashed, label=\"delta";
        for (const NetworkAction& action : delta.actions) {
            out << " " << action.name << "()";
        }
        out << "\"];\n";
    }
    out << "}\n";
    return out.str();
}

}  // namespace starlink::merge
