#include "core/merge/synthesizer.hpp"

#include <set>

#include "common/error.hpp"
#include "common/log.hpp"

namespace starlink::merge {

using automata::Action;
using automata::ColoredAutomaton;
using automata::Transition;

namespace {

/// Follows the unique outgoing transition from state to state; throws when a
/// state branches (the synthesizer only reasons about linear chains).
std::vector<const Transition*> linearPath(const ColoredAutomaton& automaton) {
    std::vector<const Transition*> path;
    std::string current = automaton.initialState();
    std::set<std::string> visited;
    while (visited.insert(current).second) {
        const auto outgoing = automaton.transitionsFrom(current);
        if (outgoing.empty()) break;
        if (outgoing.size() > 1) {
            throw SpecError(errc::ErrorCode::SynthesisFailed,
                        "merge synthesis: automaton '" + automaton.name() + "' branches at '" +
                            current + "'; only linear request/response chains are synthesizable");
        }
        path.push_back(outgoing[0]);
        current = outgoing[0]->to;
    }
    return path;
}

/// A message instance available as an assignment source at some point of the
/// merged execution.
struct Source {
    std::string state;        // where the instance is stored
    std::string messageType;
};

std::string compositeTransform(const std::string& toCanonical, const std::string& fromCanonical,
                               TranslationRegistry& registry) {
    if (toCanonical.empty()) return fromCanonical;
    if (fromCanonical.empty()) return toCanonical;
    const std::string name = "ont:" + toCanonical + "+" + fromCanonical;
    if (!registry.contains(name)) {
        // The registry outlives its own entries; a raw pointer avoids an
        // ownership cycle through the stored lambda.
        TranslationRegistry* reg = &registry;
        registry.add(name, [reg, toCanonical, fromCanonical](
                               const Value& value) -> std::optional<Value> {
            const auto canonical = reg->apply(toCanonical, value);
            if (!canonical) return std::nullopt;
            return reg->apply(fromCanonical, *canonical);
        });
    }
    return name;
}

}  // namespace

SynthesisResult synthesizeMerge(const SynthesisInput& input) {
    if (!input.servedAutomaton || !input.queriedAutomaton || input.servedMdl == nullptr ||
        input.queriedMdl == nullptr || input.ontology == nullptr || !input.translations) {
        throw SpecError(errc::ErrorCode::SynthesisFailed,
                        "merge synthesis: incomplete input");
    }
    const ColoredAutomaton& served = *input.servedAutomaton;
    const ColoredAutomaton& queried = *input.queriedAutomaton;
    const Ontology& ontology = *input.ontology;

    const auto servedPath = linearPath(served);
    const auto queriedPath = linearPath(queried);
    if (servedPath.empty() || servedPath.front()->action != Action::Receive) {
        throw SpecError(errc::ErrorCode::SynthesisFailed,
                        "merge synthesis: served automaton '" + served.name() +
                        "' must open with a receive (server role)");
    }
    if (queriedPath.empty() || queriedPath.front()->action != Action::Send) {
        throw SpecError(errc::ErrorCode::SynthesisFailed,
                        "merge synthesis: queried automaton '" + queried.name() +
                        "' must open with a send (client role)");
    }

    // Merged execution order: served prefix through its first receive, the
    // whole queried conversation, then the served remainder.
    std::size_t servedSplit = 0;
    while (servedSplit < servedPath.size() &&
           servedPath[servedSplit]->action != Action::Receive) {
        ++servedSplit;
    }
    ++servedSplit;  // include the first receive itself
    struct Step {
        const Transition* transition;
        const mdl::MdlDocument* mdl;
    };
    std::vector<Step> order;
    for (std::size_t i = 0; i < servedSplit; ++i) order.push_back({servedPath[i], input.servedMdl});
    for (const Transition* t : queriedPath) order.push_back({t, input.queriedMdl});
    for (std::size_t i = servedSplit; i < servedPath.size(); ++i) {
        order.push_back({servedPath[i], input.servedMdl});
    }

    auto merged = std::make_shared<MergedAutomaton>("synth:" + served.name() + "-to-" +
                                                    queried.name());
    merged->addComponent(input.servedAutomaton);
    merged->addComponent(input.queriedAutomaton);
    merged->setInitial(served.initialState());
    for (const std::string& accepting : served.acceptingStates()) {
        merged->addAccepting(accepting);
    }

    SynthesisResult result;
    std::vector<Source> sources;
    for (const Step& step : order) {
        const Transition& transition = *step.transition;
        if (transition.action == Action::Receive) {
            // The engine stores received instances at the entered state.
            sources.push_back({transition.to, transition.messageType});
            continue;
        }

        // A send: infer the full assignment set for the composed message.
        std::set<std::string> witnessTypes;
        for (const std::string& field : step.mdl->mandatoryFields(transition.messageType)) {
            const auto targetMapping = ontology.mapping(transition.messageType, field);
            if (!targetMapping) {
                throw SpecError(errc::ErrorCode::SynthesisFailed,
                        "merge synthesis: mandatory field " + transition.messageType +
                                "." + field + " has no ontology concept");
            }
            // Most recent matching source wins.
            bool matched = false;
            for (auto it = sources.rbegin(); it != sources.rend() && !matched; ++it) {
                // Look field-by-field: any field of the source message with
                // the same concept qualifies.
                for (const auto& [sourceField, mapping] :
                     ontology.fieldsOf(it->messageType)) {
                    if (mapping.conceptName != targetMapping->conceptName) continue;
                    Assignment assignment;
                    assignment.target =
                        FieldRef{transition.from, transition.messageType, field};
                    assignment.source = FieldRef{it->state, it->messageType, sourceField};
                    assignment.transform = compositeTransform(
                        mapping.toCanonical, targetMapping->fromCanonical,
                        *input.translations);
                    merged->addAssignment(assignment);
                    witnessTypes.insert(it->messageType);
                    result.report.push_back(
                        transition.messageType + "." + field + " <= " + it->messageType + "." +
                        sourceField + " via concept " + targetMapping->conceptName +
                        (assignment.transform.empty() ? "" : " (" + assignment.transform + ")"));
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                throw SpecError(errc::ErrorCode::SynthesisFailed,
                        "merge synthesis: no received message provides concept '" +
                                targetMapping->conceptName + "' for mandatory field " +
                                transition.messageType + "." + field);
            }
        }
        for (const auto& [field, value] : ontology.constantsOf(transition.messageType)) {
            Assignment assignment;
            assignment.target = FieldRef{transition.from, transition.messageType, field};
            assignment.constant = value;
            merged->addAssignment(assignment);
            result.report.push_back(transition.messageType + "." + field + " <= constant '" +
                                    value + "'");
        }

        EquivalenceDecl equivalence;
        equivalence.lhs = transition.messageType;
        if (witnessTypes.empty() && !sources.empty()) {
            witnessTypes.insert(sources.back().messageType);
        }
        equivalence.rhs.assign(witnessTypes.begin(), witnessTypes.end());
        if (!equivalence.rhs.empty()) merged->addEquivalence(std::move(equivalence));
    }

    // Delta-transitions: forms (i) and (ii) of the merge constraints.
    const std::string servedAfterReceive = servedPath[servedSplit - 1]->to;
    merged->addDelta(DeltaTransition{servedAfterReceive, queried.initialState(), {}});
    result.report.push_back("delta " + servedAfterReceive + " -> " + queried.initialState() +
                            " (form i: enter queried protocol)");

    const std::string queriedFinal = queriedPath.back()->to;
    // Return to the state owning the served protocol's next send.
    std::string servedReplyState;
    for (std::size_t i = servedSplit; i < servedPath.size(); ++i) {
        if (servedPath[i]->action == Action::Send) {
            servedReplyState = servedPath[i]->from;
            break;
        }
    }
    if (servedReplyState.empty()) {
        throw SpecError(errc::ErrorCode::SynthesisFailed,
                        "merge synthesis: served automaton '" + served.name() +
                        "' never replies after its first receive");
    }
    merged->addDelta(DeltaTransition{queriedFinal, servedReplyState, {}});
    result.report.push_back("delta " + queriedFinal + " -> " + servedReplyState +
                            " (form ii: return with the response)");

    merged->validate();
    STARLINK_LOG(Info, "synthesizer") << "generated merge '" << merged->name() << "' with "
                                      << merged->assignments().size() << " assignments";
    result.merged = std::move(merged);
    return result;
}

}  // namespace starlink::merge
