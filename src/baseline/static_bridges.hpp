// Hand-coded, statically compiled protocol bridges -- the z2z-style baseline
// (ablation A2 in DESIGN.md).
//
// These bridges do exactly what the Starlink connectors do for the same
// cases, but with protocol logic written by hand against the legacy codecs:
// no abstract messages, no interpreted automata, no XML. They represent the
// state of the art the paper argues against ("z2z generated gateways are
// statically built, and thus are not adequate for environments where
// interaction protocols remain unknown until runtime") and give the
// benchmark harness a compiled reference point for the cost of Starlink's
// runtime interpretation.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "protocols/http/http_agents.hpp"
#include "protocols/mdns/dns_codec.hpp"
#include "protocols/slp/slp_codec.hpp"
#include "protocols/ssdp/ssdp_agents.hpp"

namespace starlink::baseline {

/// Per-conversation timing, comparable to engine::SessionRecord.
struct BridgeSession {
    net::TimePoint firstReceive{};
    net::TimePoint lastSend{};
    bool completed = false;

    net::Duration translationTime() const {
        return std::chrono::duration_cast<net::Duration>(lastSend - firstReceive);
    }
};

/// Common surface of the static bridges.
class StaticBridge {
public:
    virtual ~StaticBridge() = default;
    const std::vector<BridgeSession>& sessions() const { return sessions_; }

protected:
    std::vector<BridgeSession> sessions_;
};

/// SLP client -> Bonjour service (paper case 2), hand-coded.
class SlpToBonjourStatic : public StaticBridge {
public:
    SlpToBonjourStatic(net::Network& network, const std::string& host);

private:
    void onSlp(const Bytes& payload, const net::Address& from);
    void onMdns(const Bytes& payload, const net::Address& from);

    net::Network& network_;
    std::unique_ptr<net::UdpSocket> slpSocket_;
    std::unique_ptr<net::UdpSocket> mdnsSocket_;

    // In-flight conversation state.
    std::optional<slp::SrvRequest> pendingRequest_;
    std::optional<net::Address> client_;
    BridgeSession live_;
    std::uint16_t nextDnsId_ = 0x3000;
};

/// SLP client -> UPnP device (paper case 1: SSDP + HTTP legs), hand-coded.
class SlpToUpnpStatic : public StaticBridge {
public:
    SlpToUpnpStatic(net::Network& network, const std::string& host);

private:
    void onSlp(const Bytes& payload, const net::Address& from);
    void onSsdp(const Bytes& payload, const net::Address& from);
    void fetchDescription(const ssdp::Response& response);
    void replyToClient(const std::string& url);

    net::Network& network_;
    std::string host_;
    std::unique_ptr<net::UdpSocket> slpSocket_;
    std::unique_ptr<net::UdpSocket> ssdpSocket_;
    http::Client httpClient_;

    std::optional<slp::SrvRequest> pendingRequest_;
    std::optional<net::Address> client_;
    bool fetching_ = false;
    BridgeSession live_;
};

/// Bonjour browser -> SLP service (paper case 6), hand-coded.
class BonjourToSlpStatic : public StaticBridge {
public:
    BonjourToSlpStatic(net::Network& network, const std::string& host);

private:
    void onMdns(const Bytes& payload, const net::Address& from);
    void onSlp(const Bytes& payload, const net::Address& from);

    net::Network& network_;
    std::unique_ptr<net::UdpSocket> mdnsSocket_;
    std::unique_ptr<net::UdpSocket> slpSocket_;

    std::optional<mdns::DnsMessage> pendingQuestion_;
    std::optional<net::Address> client_;
    BridgeSession live_;
    std::uint16_t nextXid_ = 0x4000;
};

/// UPnP control point -> SLP service (paper case 3), hand-coded: answers
/// SSDP M-SEARCH by querying SLP, serves the device description over HTTP.
class UpnpToSlpStatic : public StaticBridge {
public:
    UpnpToSlpStatic(net::Network& network, const std::string& host,
                    std::uint16_t httpPort = 8086);

private:
    void onSsdp(const Bytes& payload, const net::Address& from);
    void onSlp(const Bytes& payload, const net::Address& from);
    void onHttp(const std::shared_ptr<net::TcpConnection>& connection, const Bytes& data);

    net::Network& network_;
    std::string host_;
    std::uint16_t httpPort_;
    std::unique_ptr<net::UdpSocket> ssdpSocket_;
    std::unique_ptr<net::UdpSocket> slpSocket_;
    std::unique_ptr<net::TcpListener> httpListener_;
    std::vector<std::shared_ptr<net::TcpConnection>> connections_;

    std::optional<ssdp::MSearch> pendingSearch_;
    std::optional<net::Address> client_;
    std::string resolvedUrl_;
    BridgeSession live_;
    std::uint16_t nextXid_ = 0x5000;
};

/// Bonjour browser -> UPnP device (paper case 5), hand-coded.
class BonjourToUpnpStatic : public StaticBridge {
public:
    BonjourToUpnpStatic(net::Network& network, const std::string& host);

private:
    void onMdns(const Bytes& payload, const net::Address& from);
    void onSsdp(const Bytes& payload, const net::Address& from);
    void replyToClient(const std::string& url);

    net::Network& network_;
    std::unique_ptr<net::UdpSocket> mdnsSocket_;
    std::unique_ptr<net::UdpSocket> ssdpSocket_;
    http::Client httpClient_;

    std::optional<mdns::DnsMessage> pendingQuestion_;
    std::optional<net::Address> client_;
    bool fetching_ = false;
    BridgeSession live_;
};

// -- hand-written service-name conversions (the code Starlink's translation
//    functions replace) ---------------------------------------------------------
std::string slpTypeToDnssd(const std::string& slpType);
std::string dnssdToSlpType(const std::string& dnssdName);
std::string slpTypeToUrn(const std::string& slpType);

}  // namespace starlink::baseline
