#include "baseline/static_bridges.hpp"

#include "common/strings.hpp"

namespace starlink::baseline {

std::string slpTypeToDnssd(const std::string& slpType) {
    std::string name = slpType;
    if (startsWith(name, "service:")) name = name.substr(8);
    name = split(name, ':')[0];
    return "_" + name + "._tcp.local";
}

std::string dnssdToSlpType(const std::string& dnssdName) {
    std::string name = dnssdName;
    if (startsWith(name, "_")) name = name.substr(1);
    const std::size_t dot = name.find("._");
    if (dot != std::string::npos) name = name.substr(0, dot);
    return "service:" + name;
}

std::string slpTypeToUrn(const std::string& slpType) {
    std::string name = slpType;
    if (startsWith(name, "service:")) name = name.substr(8);
    name = split(name, ':')[0];
    return "urn:schemas-upnp-org:service:" + name + ":1";
}

// ---------------------------------------------------------------------------
// SlpToBonjourStatic

SlpToBonjourStatic::SlpToBonjourStatic(net::Network& network, const std::string& host)
    : network_(network) {
    slpSocket_ = network_.openUdp(host, slp::kPort);
    slpSocket_->joinGroup(net::Address{slp::kGroup, slp::kPort});
    slpSocket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onSlp(payload, from);
    });
    mdnsSocket_ = network_.openUdp(host, mdns::kPort);
    mdnsSocket_->joinGroup(net::Address{mdns::kGroup, mdns::kPort});
    mdnsSocket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onMdns(payload, from);
    });
}

void SlpToBonjourStatic::onSlp(const Bytes& payload, const net::Address& from) {
    const auto request = slp::decodeRequest(payload);
    if (!request || pendingRequest_) return;
    pendingRequest_ = *request;
    client_ = from;
    live_ = BridgeSession{};
    live_.firstReceive = network_.now();

    const auto question =
        mdns::makeQuestion(nextDnsId_++, slpTypeToDnssd(request->serviceType));
    mdnsSocket_->sendTo(net::Address{mdns::kGroup, mdns::kPort}, mdns::encode(question));
}

void SlpToBonjourStatic::onMdns(const Bytes& payload, const net::Address&) {
    if (!pendingRequest_) return;
    const auto message = mdns::decode(payload);
    if (!message || !message->isResponse() || message->answers.empty()) return;

    slp::SrvReply reply;
    reply.xid = pendingRequest_->xid;
    reply.langTag = pendingRequest_->langTag;
    reply.url = toString(message->answers.front().rdata);
    slpSocket_->sendTo(*client_, slp::encode(reply));

    live_.lastSend = network_.now();
    live_.completed = true;
    sessions_.push_back(live_);
    pendingRequest_.reset();
    client_.reset();
}

// ---------------------------------------------------------------------------
// SlpToUpnpStatic

SlpToUpnpStatic::SlpToUpnpStatic(net::Network& network, const std::string& host)
    : network_(network), host_(host), httpClient_(network, host) {
    slpSocket_ = network_.openUdp(host, slp::kPort);
    slpSocket_->joinGroup(net::Address{slp::kGroup, slp::kPort});
    slpSocket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onSlp(payload, from);
    });
    ssdpSocket_ = network_.openUdp(host, ssdp::kPort);
    ssdpSocket_->joinGroup(net::Address{ssdp::kGroup, ssdp::kPort});
    ssdpSocket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onSsdp(payload, from);
    });
}

void SlpToUpnpStatic::onSlp(const Bytes& payload, const net::Address& from) {
    const auto request = slp::decodeRequest(payload);
    if (!request || pendingRequest_) return;
    pendingRequest_ = *request;
    client_ = from;
    fetching_ = false;
    live_ = BridgeSession{};
    live_.firstReceive = network_.now();

    ssdp::MSearch search;
    search.st = slpTypeToUrn(request->serviceType);
    ssdpSocket_->sendTo(net::Address{ssdp::kGroup, ssdp::kPort}, ssdp::encode(search));
}

void SlpToUpnpStatic::onSsdp(const Bytes& payload, const net::Address&) {
    if (!pendingRequest_ || fetching_) return;
    const auto response = ssdp::decodeResponse(payload);
    if (!response) return;
    fetching_ = true;
    fetchDescription(*response);
}

void SlpToUpnpStatic::fetchDescription(const ssdp::Response& response) {
    // Hand-rolled LOCATION parsing -- what Starlink's url_* translation
    // functions and set_host action do from the model.
    std::string rest = response.location;
    if (const std::size_t scheme = rest.find("://"); scheme != std::string::npos) {
        rest = rest.substr(scheme + 3);
    }
    const std::size_t slash = rest.find('/');
    const std::string authority = slash == std::string::npos ? rest : rest.substr(0, slash);
    const std::string path = slash == std::string::npos ? "/" : rest.substr(slash);
    std::string host = authority;
    std::uint16_t port = 80;
    if (const auto split = splitFirst(authority, ':')) {
        host = split->first;
        if (const auto parsed = parseInt(split->second)) {
            port = static_cast<std::uint16_t>(*parsed);
        }
    }
    httpClient_.get(host, port, path, [this](std::optional<http::Response> response) {
        if (!pendingRequest_) return;
        std::string url;
        if (response && response->status == 200) {
            if (const auto base = ssdp::extractUrlBase(response->body)) url = *base;
        }
        replyToClient(url);
    });
}

void SlpToUpnpStatic::replyToClient(const std::string& url) {
    if (url.empty()) {
        // Description fetch failed: drop the conversation (the SLP client
        // times out, as it would against a vanished device).
        pendingRequest_.reset();
        client_.reset();
        return;
    }
    slp::SrvReply reply;
    reply.xid = pendingRequest_->xid;
    reply.langTag = pendingRequest_->langTag;
    reply.url = url;
    slpSocket_->sendTo(*client_, slp::encode(reply));

    live_.lastSend = network_.now();
    live_.completed = true;
    sessions_.push_back(live_);
    pendingRequest_.reset();
    client_.reset();
    fetching_ = false;
}

// ---------------------------------------------------------------------------
// BonjourToSlpStatic

BonjourToSlpStatic::BonjourToSlpStatic(net::Network& network, const std::string& host)
    : network_(network) {
    mdnsSocket_ = network_.openUdp(host, mdns::kPort);
    mdnsSocket_->joinGroup(net::Address{mdns::kGroup, mdns::kPort});
    mdnsSocket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onMdns(payload, from);
    });
    slpSocket_ = network_.openUdp(host, slp::kPort);
    slpSocket_->joinGroup(net::Address{slp::kGroup, slp::kPort});
    slpSocket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onSlp(payload, from);
    });
}

void BonjourToSlpStatic::onMdns(const Bytes& payload, const net::Address& from) {
    const auto message = mdns::decode(payload);
    if (!message || message->isResponse() || message->questions.empty() || pendingQuestion_) {
        return;
    }
    pendingQuestion_ = *message;
    client_ = from;
    live_ = BridgeSession{};
    live_.firstReceive = network_.now();

    slp::SrvRequest request;
    request.xid = nextXid_++;
    request.serviceType = dnssdToSlpType(message->questions.front().qname);
    slpSocket_->sendTo(net::Address{slp::kGroup, slp::kPort}, slp::encode(request));
}

void BonjourToSlpStatic::onSlp(const Bytes& payload, const net::Address&) {
    if (!pendingQuestion_) return;
    const auto reply = slp::decodeReply(payload);
    if (!reply || reply->errorCode != 0) return;

    const auto response = mdns::makeResponse(
        pendingQuestion_->id, pendingQuestion_->questions.front().qname, reply->url);
    mdnsSocket_->sendTo(*client_, mdns::encode(response));

    live_.lastSend = network_.now();
    live_.completed = true;
    sessions_.push_back(live_);
    pendingQuestion_.reset();
    client_.reset();
}

// ---------------------------------------------------------------------------
// UpnpToSlpStatic

UpnpToSlpStatic::UpnpToSlpStatic(net::Network& network, const std::string& host,
                                 std::uint16_t httpPort)
    : network_(network), host_(host), httpPort_(httpPort) {
    ssdpSocket_ = network_.openUdp(host, ssdp::kPort);
    ssdpSocket_->joinGroup(net::Address{ssdp::kGroup, ssdp::kPort});
    ssdpSocket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onSsdp(payload, from);
    });
    slpSocket_ = network_.openUdp(host, slp::kPort);
    slpSocket_->joinGroup(net::Address{slp::kGroup, slp::kPort});
    slpSocket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onSlp(payload, from);
    });
    httpListener_ = network_.listenTcp(host, httpPort);
    httpListener_->onAccept([this](std::shared_ptr<net::TcpConnection> connection) {
        connections_.push_back(connection);
        auto weak = std::weak_ptr<net::TcpConnection>(connection);
        connection->onData([this, weak](const Bytes& data) {
            if (auto conn = weak.lock()) onHttp(conn, data);
        });
    });
}

void UpnpToSlpStatic::onSsdp(const Bytes& payload, const net::Address& from) {
    const auto search = ssdp::decodeMSearch(payload);
    if (!search || pendingSearch_) return;
    pendingSearch_ = *search;
    client_ = from;
    resolvedUrl_.clear();
    live_ = BridgeSession{};
    live_.firstReceive = network_.now();

    slp::SrvRequest request;
    request.xid = nextXid_++;
    // urn:schemas-upnp-org:service:printer:1 -> service:printer
    if (search->st != "ssdp:all") {
        const std::vector<std::string> pieces = split(search->st, ':');
        request.serviceType = pieces.size() >= 4 ? "service:" + pieces[3] : search->st;
    }
    slpSocket_->sendTo(net::Address{slp::kGroup, slp::kPort}, slp::encode(request));
}

void UpnpToSlpStatic::onSlp(const Bytes& payload, const net::Address&) {
    if (!pendingSearch_) return;
    const auto reply = slp::decodeReply(payload);
    if (!reply || reply->errorCode != 0) return;
    resolvedUrl_ = reply->url;

    ssdp::Response response;
    response.st = pendingSearch_->st;
    response.usn = "uuid:static-bridge::" + pendingSearch_->st;
    response.location = "http://" + host_ + ":" + std::to_string(httpPort_) + "/desc.xml";
    ssdpSocket_->sendTo(*client_, ssdp::encode(response));
    live_.lastSend = network_.now();
    live_.completed = true;  // translated response delivered; HTTP leg follows
    sessions_.push_back(live_);
}

void UpnpToSlpStatic::onHttp(const std::shared_ptr<net::TcpConnection>& connection,
                             const Bytes& data) {
    const auto request = http::decodeRequest(data);
    http::Response response;
    if (!request || resolvedUrl_.empty()) {
        response.status = 404;
        response.reason = "Not Found";
    } else {
        response.body = "<root><device><URLBase>" + resolvedUrl_ + "</URLBase></device></root>";
        response.headers.emplace_back("Content-Type", "text/xml");
    }
    connection->send(http::encode(response));
    pendingSearch_.reset();
    client_.reset();
}

// ---------------------------------------------------------------------------
// BonjourToUpnpStatic

BonjourToUpnpStatic::BonjourToUpnpStatic(net::Network& network, const std::string& host)
    : network_(network), httpClient_(network, host) {
    mdnsSocket_ = network_.openUdp(host, mdns::kPort);
    mdnsSocket_->joinGroup(net::Address{mdns::kGroup, mdns::kPort});
    mdnsSocket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onMdns(payload, from);
    });
    ssdpSocket_ = network_.openUdp(host, ssdp::kPort);
    ssdpSocket_->joinGroup(net::Address{ssdp::kGroup, ssdp::kPort});
    ssdpSocket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onSsdp(payload, from);
    });
}

void BonjourToUpnpStatic::onMdns(const Bytes& payload, const net::Address& from) {
    const auto message = mdns::decode(payload);
    if (!message || message->isResponse() || message->questions.empty() || pendingQuestion_) {
        return;
    }
    pendingQuestion_ = *message;
    client_ = from;
    fetching_ = false;
    live_ = BridgeSession{};
    live_.firstReceive = network_.now();

    ssdp::MSearch search;
    // _printer._tcp.local -> urn:schemas-upnp-org:service:printer:1
    search.st = slpTypeToUrn(dnssdToSlpType(message->questions.front().qname));
    ssdpSocket_->sendTo(net::Address{ssdp::kGroup, ssdp::kPort}, ssdp::encode(search));
}

void BonjourToUpnpStatic::onSsdp(const Bytes& payload, const net::Address&) {
    if (!pendingQuestion_ || fetching_) return;
    const auto response = ssdp::decodeResponse(payload);
    if (!response) return;
    fetching_ = true;

    std::string rest = response->location;
    if (const std::size_t scheme = rest.find("://"); scheme != std::string::npos) {
        rest = rest.substr(scheme + 3);
    }
    const std::size_t slash = rest.find('/');
    const std::string authority = slash == std::string::npos ? rest : rest.substr(0, slash);
    const std::string path = slash == std::string::npos ? "/" : rest.substr(slash);
    std::string httpHost = authority;
    std::uint16_t port = 80;
    if (const auto hostPort = splitFirst(authority, ':')) {
        httpHost = hostPort->first;
        if (const auto parsed = parseInt(hostPort->second)) {
            port = static_cast<std::uint16_t>(*parsed);
        }
    }
    httpClient_.get(httpHost, port, path, [this](std::optional<http::Response> response) {
        if (!pendingQuestion_) return;
        std::string url;
        if (response && response->status == 200) {
            if (const auto base = ssdp::extractUrlBase(response->body)) url = *base;
        }
        replyToClient(url);
    });
}

void BonjourToUpnpStatic::replyToClient(const std::string& url) {
    if (url.empty()) {
        pendingQuestion_.reset();
        client_.reset();
        fetching_ = false;
        return;
    }
    const auto response = mdns::makeResponse(
        pendingQuestion_->id, pendingQuestion_->questions.front().qname, url);
    mdnsSocket_->sendTo(*client_, mdns::encode(response));
    live_.lastSend = network_.now();
    live_.completed = true;
    sessions_.push_back(live_);
    pendingQuestion_.reset();
    client_.reset();
    fetching_ = false;
}

}  // namespace starlink::baseline
