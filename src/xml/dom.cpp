#include "xml/dom.hpp"

#include "common/strings.hpp"

namespace starlink::xml {

void Node::setAttribute(const std::string& key, std::string value) {
    for (auto& [k, v] : attributes_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    attributes_.emplace_back(key, std::move(value));
}

std::optional<std::string> Node::attribute(std::string_view key) const {
    for (const auto& [k, v] : attributes_) {
        if (k == key) return v;
    }
    return std::nullopt;
}

Node& Node::appendChild(std::string name) {
    children_.push_back(std::make_unique<Node>(std::move(name)));
    return *children_.back();
}

void Node::adoptChild(std::unique_ptr<Node> child) {
    children_.push_back(std::move(child));
}

const Node* Node::child(std::string_view name) const {
    for (const auto& c : children_) {
        if (c->name() == name) return c.get();
    }
    return nullptr;
}

Node* Node::child(std::string_view name) {
    for (const auto& c : children_) {
        if (c->name() == name) return c.get();
    }
    return nullptr;
}

std::vector<const Node*> Node::childrenNamed(std::string_view name) const {
    std::vector<const Node*> out;
    for (const auto& c : children_) {
        if (c->name() == name) out.push_back(c.get());
    }
    return out;
}

std::optional<std::string> Node::childText(std::string_view name) const {
    const Node* c = child(name);
    if (c == nullptr) return std::nullopt;
    return c->text();
}

std::unique_ptr<Node> Node::clone() const {
    auto copy = std::make_unique<Node>(name_);
    copy->line_ = line_;
    copy->text_ = text_;
    copy->attributes_ = attributes_;
    copy->children_.reserve(children_.size());
    for (const auto& c : children_) {
        copy->children_.push_back(c->clone());
    }
    return copy;
}

bool Node::structurallyEquals(const Node& other) const {
    if (name_ != other.name_) return false;
    if (trim(text_) != trim(other.text_)) return false;
    if (attributes_ != other.attributes_) return false;
    if (children_.size() != other.children_.size()) return false;
    for (std::size_t i = 0; i < children_.size(); ++i) {
        if (!children_[i]->structurallyEquals(*other.children_[i])) return false;
    }
    return true;
}

}  // namespace starlink::xml
