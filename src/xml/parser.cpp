#include "xml/parser.hpp"

#include <cctype>
#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace starlink::xml {

namespace {

// Hard resource caps against hostile documents. Both limits are far above
// anything a legitimate Starlink model needs (the deepest in-tree model nests
// 6 levels; entities expand to at most 4 bytes each) but low enough that a
// crafted input cannot exhaust the stack or memory before being rejected.
constexpr int kMaxElementDepth = 256;
constexpr std::size_t kMaxEntityExpansion = 1 << 20;  // 1 MiB of decoded output

class Parser {
public:
    explicit Parser(std::string_view input) : input_(input) {}

    std::unique_ptr<Node> parseDocument() {
        skipProlog();
        auto root = parseElement();
        skipMisc();
        if (!atEnd()) fail(errc::ErrorCode::XmlTrailingContent, "trailing content after root element");
        return root;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        fail(errc::ErrorCode::XmlParse, message);
    }

    [[noreturn]] void fail(errc::ErrorCode code, const std::string& message) const {
        std::size_t line = 1;
        std::size_t column = 1;
        for (std::size_t i = 0; i < pos_ && i < input_.size(); ++i) {
            if (input_[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
        }
        throw SpecError(code, "xml parse error at line " + std::to_string(line) +
                                  ", column " + std::to_string(column) + ": " + message);
    }

    bool atEnd() const { return pos_ >= input_.size(); }
    char peek() const { return input_[pos_]; }
    char take() { return input_[pos_++]; }

    bool lookingAt(std::string_view s) const {
        return input_.substr(pos_, s.size()) == s;
    }

    void expect(char c) {
        if (atEnd() || peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    void skipWhitespace() {
        while (!atEnd() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
    }

    void skipComment() {
        // Assumes "<!--" is next.
        pos_ += 4;
        const std::size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
    }

    void skipProlog() {
        skipWhitespace();
        if (lookingAt("<?xml")) {
            const std::size_t end = input_.find("?>", pos_);
            if (end == std::string_view::npos) fail("unterminated xml declaration");
            pos_ = end + 2;
        }
        skipMisc();
    }

    void skipMisc() {
        while (true) {
            skipWhitespace();
            if (lookingAt("<!--")) {
                skipComment();
            } else {
                return;
            }
        }
    }

    static bool isNameStart(char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    }
    static bool isNameChar(char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
               c == '-' || c == '.';
    }

    std::string parseName() {
        if (atEnd() || !isNameStart(peek())) fail("expected name");
        const std::size_t start = pos_;
        ++pos_;
        while (!atEnd() && isNameChar(peek())) ++pos_;
        return std::string(input_.substr(start, pos_ - start));
    }

    std::string decodeEntity() {
        std::string decoded = decodeEntityRaw();
        expandedBytes_ += decoded.size();
        if (expandedBytes_ > kMaxEntityExpansion) {
            fail(errc::ErrorCode::XmlExpansionLimit,
                 "entity expansion output exceeds " + std::to_string(kMaxEntityExpansion) +
                     " bytes");
        }
        return decoded;
    }

    std::string decodeEntityRaw() {
        // Assumes '&' is next.
        const std::size_t semi = input_.find(';', pos_);
        if (semi == std::string_view::npos || semi - pos_ > 10) {
            fail(errc::ErrorCode::XmlEntity, "unterminated entity");
        }
        const std::string_view entity = input_.substr(pos_ + 1, semi - pos_ - 1);
        pos_ = semi + 1;
        if (entity == "lt") return "<";
        if (entity == "gt") return ">";
        if (entity == "amp") return "&";
        if (entity == "quot") return "\"";
        if (entity == "apos") return "'";
        if (!entity.empty() && entity[0] == '#') {
            if (entity.size() < 2) fail(errc::ErrorCode::XmlEntity, "bad numeric entity");
            long code = 0;
            try {
                code = entity[1] == 'x' || entity[1] == 'X'
                           ? std::stol(std::string(entity.substr(2)), nullptr, 16)
                           : std::stol(std::string(entity.substr(1)), nullptr, 10);
            } catch (...) {
                fail(errc::ErrorCode::XmlEntity, "bad numeric entity");
            }
            // Any Unicode scalar value is legal (XML 1.0 Char minus the
            // surrogate block); encode it as UTF-8 instead of truncating to
            // a byte.
            if (code < 0 || code > 0x10FFFF) {
                fail(errc::ErrorCode::XmlEntity, "numeric entity outside Unicode range");
            }
            if (code >= 0xD800 && code <= 0xDFFF) {
                fail(errc::ErrorCode::XmlEntity, "numeric entity is a surrogate");
            }
            return encodeUtf8(static_cast<std::uint32_t>(code));
        }
        fail(errc::ErrorCode::XmlEntity, "unknown entity '&" + std::string(entity) + ";'");
    }

    /// Minimal UTF-8 encoder for numeric character references.
    static std::string encodeUtf8(std::uint32_t code) {
        std::string out;
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | code >> 6));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | code >> 12));
            out.push_back(static_cast<char>(0x80 | (code >> 6 & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | code >> 18));
            out.push_back(static_cast<char>(0x80 | (code >> 12 & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code >> 6 & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        return out;
    }

    std::string parseAttributeValue() {
        if (atEnd() || (peek() != '"' && peek() != '\'')) fail("expected quoted value");
        const char quote = take();
        std::string value;
        while (!atEnd() && peek() != quote) {
            if (peek() == '&') {
                value += decodeEntity();
            } else {
                value.push_back(take());
            }
        }
        expect(quote);
        return value;
    }

    std::unique_ptr<Node> parseElement() {
        // parseElement/parseContent recurse mutually, one frame pair per
        // nesting level: without this cap a few thousand bytes of "<a><a>..."
        // overflow the stack, which no in-process handler can contain.
        if (++depth_ > kMaxElementDepth) {
            fail(errc::ErrorCode::XmlDepthLimit,
                 "element nesting exceeds " + std::to_string(kMaxElementDepth) + " levels");
        }
        auto node = parseElementInner();
        --depth_;
        return node;
    }

    std::unique_ptr<Node> parseElementInner() {
        const std::size_t startOffset = pos_;
        expect('<');
        auto node = std::make_unique<Node>(parseName());
        // Stash the byte offset of the start tag; parse() converts offsets to
        // 1-based line numbers in one pass once the tree is complete.
        node->setLine(static_cast<int>(startOffset));
        // Attributes.
        while (true) {
            skipWhitespace();
            if (atEnd()) fail("unterminated start tag");
            if (peek() == '/' || peek() == '>') break;
            const std::string key = parseName();
            skipWhitespace();
            expect('=');
            skipWhitespace();
            node->setAttribute(key, parseAttributeValue());
        }
        if (peek() == '/') {
            ++pos_;
            expect('>');
            return node;  // self-closing
        }
        expect('>');
        parseContent(*node);
        return node;
    }

    void parseContent(Node& node) {
        while (true) {
            if (atEnd()) fail("unterminated element <" + node.name() + ">");
            if (peek() == '<') {
                if (lookingAt("<!--")) {
                    skipComment();
                } else if (lookingAt("</")) {
                    pos_ += 2;
                    const std::string name = parseName();
                    if (name != node.name()) {
                        fail(errc::ErrorCode::XmlMismatchedTag,
                             "mismatched close tag </" + name + "> for <" + node.name() + ">");
                    }
                    skipWhitespace();
                    expect('>');
                    return;
                } else {
                    node.adoptChild(parseElement());
                }
            } else if (peek() == '&') {
                node.appendText(decodeEntity());
            } else {
                const std::size_t start = pos_;
                while (!atEnd() && peek() != '<' && peek() != '&') ++pos_;
                node.appendText(input_.substr(start, pos_ - start));
            }
        }
    }

    std::string_view input_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::size_t expandedBytes_ = 0;
};

// Pre-order traversal visits nodes in increasing start-tag offset, so one
// linear scan over the input converts every stashed offset to its line.
void assignLines(Node& node, std::string_view input, std::size_t& cursor, int& line) {
    const auto offset = static_cast<std::size_t>(node.line());
    while (cursor < offset && cursor < input.size()) {
        if (input[cursor] == '\n') ++line;
        ++cursor;
    }
    node.setLine(line);
    for (auto& child : node.children()) assignLines(*child, input, cursor, line);
}

}  // namespace

std::unique_ptr<Node> parse(std::string_view document) {
    auto root = Parser(document).parseDocument();
    std::size_t cursor = 0;
    int line = 1;
    assignLines(*root, document, cursor, line);
    return root;
}

}  // namespace starlink::xml
