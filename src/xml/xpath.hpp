// XPath-lite: the path subset Starlink bridge specifications use to address
// fields inside the XML projection of an abstract message (paper Fig 8), e.g.
//
//     /field/primitiveField[label='ST']/value
//
// Grammar:
//     path      := '/' step ( '/' step )*
//     step      := name predicate?
//     predicate := '[' name '=' quoted ']'        -- child-text equality
//                | '[' '@' name '=' quoted ']'    -- attribute equality
//                | '[' integer ']'                -- 1-based position
//
// A path is evaluated relative to a context node; the FIRST step must match
// the context node itself (paths are rooted at the message element), the
// remaining steps descend through children.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.hpp"

namespace starlink::xml {

/// One compiled location step.
struct Step {
    std::string name;

    enum class PredicateKind { None, ChildText, Attribute, Position };
    PredicateKind predicate = PredicateKind::None;
    std::string predicateName;   // child name or attribute name
    std::string predicateValue;  // expected text
    int position = 0;            // 1-based, for PredicateKind::Position

    bool matches(const Node& node, int oneBasedIndexAmongMatches) const;
};

/// A compiled path. Compile once, evaluate many times.
class Path {
public:
    /// Compiles an expression; throws SpecError on syntax errors.
    static Path compile(std::string_view expression);

    /// All nodes the path selects, in document order.
    std::vector<const Node*> select(const Node& context) const;
    std::vector<Node*> select(Node& context) const;

    /// First selected node or nullptr.
    const Node* first(const Node& context) const;
    Node* first(Node& context) const;

    /// Like select(), but materialises missing steps as new child elements so
    /// the path always resolves (used when composing messages). Predicated
    /// steps create the child/attribute the predicate demands.
    Node* selectOrCreate(Node& context) const;

    const std::vector<Step>& steps() const { return steps_; }
    const std::string& expression() const { return expression_; }

private:
    std::string expression_;
    std::vector<Step> steps_;
};

}  // namespace starlink::xml
