// XML serializer: the inverse of parser.hpp for the supported subset.
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace starlink::xml {

struct WriteOptions {
    /// Pretty-print with 2-space indentation; otherwise emit a single line.
    bool indent = true;
};

/// Serializes the subtree rooted at `node`. Text and attribute values are
/// entity-escaped so that parse(write(n)) is structurally identical to n.
std::string write(const Node& node, const WriteOptions& options = {});

}  // namespace starlink::xml
