#include "xml/writer.hpp"

#include "common/strings.hpp"

namespace starlink::xml {

namespace {

void escapeInto(std::string& out, std::string_view raw, bool inAttribute) {
    for (char c : raw) {
        switch (c) {
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '&': out += "&amp;"; break;
            case '"':
                if (inAttribute) {
                    out += "&quot;";
                } else {
                    out.push_back(c);
                }
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20 && c != '\n' && c != '\t' && c != '\r') {
                    out += "&#" + std::to_string(static_cast<unsigned char>(c)) + ";";
                } else {
                    out.push_back(c);
                }
        }
    }
}

void writeNode(std::string& out, const Node& node, const WriteOptions& options, int depth) {
    const std::string pad = options.indent ? std::string(static_cast<std::size_t>(depth) * 2, ' ')
                                           : std::string();
    out += pad;
    out += '<';
    out += node.name();
    for (const auto& [key, value] : node.attributes()) {
        out += ' ';
        out += key;
        out += "=\"";
        escapeInto(out, value, /*inAttribute=*/true);
        out += '"';
    }
    const std::string text = trim(node.text());
    if (text.empty() && node.children().empty()) {
        out += "/>";
        if (options.indent) out += '\n';
        return;
    }
    out += '>';
    if (node.children().empty()) {
        escapeInto(out, text, /*inAttribute=*/false);
    } else {
        if (options.indent) out += '\n';
        if (!text.empty()) {
            out += options.indent ? pad + "  " : "";
            escapeInto(out, text, /*inAttribute=*/false);
            if (options.indent) out += '\n';
        }
        for (const auto& child : node.children()) {
            writeNode(out, *child, options, depth + 1);
        }
        out += pad;
    }
    out += "</";
    out += node.name();
    out += '>';
    if (options.indent) out += '\n';
}

}  // namespace

std::string write(const Node& node, const WriteOptions& options) {
    std::string out;
    writeNode(out, node, options, 0);
    return out;
}

}  // namespace starlink::xml
