// A small XML document object model.
//
// Starlink interprets its models -- MDL documents, bridge specifications,
// abstract-message projections -- as XML at runtime (paper section IV). This
// DOM supports exactly what those models need: elements, attributes, text
// content and child elements. Namespaces, CDATA and processing instructions
// beyond the <?xml?> declaration are out of scope.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace starlink::xml {

/// One XML element. Children are owned; the tree is a strict hierarchy.
class Node {
public:
    explicit Node(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /// 1-based source line of the element's start tag when the node came out
    /// of xml::parse; 0 for programmatically built nodes. Model linting uses
    /// this to anchor diagnostics to the offending spec line.
    int line() const { return line_; }
    void setLine(int line) { line_ = line; }

    /// Concatenated character data directly inside this element
    /// (child-element text is NOT included).
    const std::string& text() const { return text_; }
    void setText(std::string text) { text_ = std::move(text); }
    void appendText(std::string_view text) { text_ += text; }

    // -- attributes (ordered, first occurrence wins on lookup) --------------
    void setAttribute(const std::string& key, std::string value);
    std::optional<std::string> attribute(std::string_view key) const;
    const std::vector<std::pair<std::string, std::string>>& attributes() const {
        return attributes_;
    }

    // -- children ------------------------------------------------------------
    Node& appendChild(std::string name);
    void adoptChild(std::unique_ptr<Node> child);
    const std::vector<std::unique_ptr<Node>>& children() const { return children_; }
    std::vector<std::unique_ptr<Node>>& children() { return children_; }

    /// First child element with the given name, or nullptr.
    const Node* child(std::string_view name) const;
    Node* child(std::string_view name);

    /// All child elements with the given name, in document order.
    std::vector<const Node*> childrenNamed(std::string_view name) const;

    /// Text of the first child with the given name; nullopt when absent.
    std::optional<std::string> childText(std::string_view name) const;

    /// Deep copy of this subtree.
    std::unique_ptr<Node> clone() const;

    /// Structural equality (name, attributes in order, trimmed text, children).
    bool structurallyEquals(const Node& other) const;

private:
    std::string name_;
    int line_ = 0;
    std::string text_;
    std::vector<std::pair<std::string, std::string>> attributes_;
    std::vector<std::unique_ptr<Node>> children_;
};

}  // namespace starlink::xml
