// Recursive-descent XML parser producing a Node tree.
//
// Supports the subset of XML that Starlink models use:
//   - elements with attributes (single- or double-quoted values)
//   - character data with the five predefined entities and &#NN; / &#xNN;
//   - comments and an optional leading <?xml ...?> declaration
//   - self-closing tags
//
// Malformed input throws SpecError with a line/column position: model files
// are specifications, so failing loudly at load time is the correct contract
// (see common/error.hpp).
#pragma once

#include <memory>
#include <string_view>

#include "xml/dom.hpp"

namespace starlink::xml {

/// Parses a complete document; returns its single root element.
std::unique_ptr<Node> parse(std::string_view document);

}  // namespace starlink::xml
