#include "xml/xpath.hpp"

#include <cctype>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace starlink::xml {

namespace {

class StepLexer {
public:
    explicit StepLexer(std::string_view expr) : expr_(expr) {}

    [[noreturn]] void fail(const std::string& message) const {
        throw SpecError("xpath error in '" + std::string(expr_) + "': " + message);
    }

    bool atEnd() const { return pos_ >= expr_.size(); }
    char peek() const { return expr_[pos_]; }
    void advance() { ++pos_; }

    void expect(char c) {
        if (atEnd() || peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    std::string name() {
        const std::size_t start = pos_;
        while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
                            peek() == '-' || peek() == '.' || peek() == ':')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected name");
        return std::string(expr_.substr(start, pos_ - start));
    }

    std::string quoted() {
        if (atEnd() || (peek() != '\'' && peek() != '"')) fail("expected quoted string");
        const char quote = peek();
        ++pos_;
        const std::size_t start = pos_;
        while (!atEnd() && peek() != quote) ++pos_;
        if (atEnd()) fail("unterminated string");
        const std::string value(expr_.substr(start, pos_ - start));
        ++pos_;
        return value;
    }

private:
    std::string_view expr_;
    std::size_t pos_ = 0;
};

}  // namespace

bool Step::matches(const Node& node, int oneBasedIndexAmongMatches) const {
    if (node.name() != name) return false;
    switch (predicate) {
        case PredicateKind::None:
            return true;
        case PredicateKind::ChildText: {
            const Node* child = node.child(predicateName);
            return child != nullptr && trim(child->text()) == predicateValue;
        }
        case PredicateKind::Attribute: {
            const auto value = node.attribute(predicateName);
            return value.has_value() && *value == predicateValue;
        }
        case PredicateKind::Position:
            return oneBasedIndexAmongMatches == position;
    }
    return false;
}

Path Path::compile(std::string_view expression) {
    Path path;
    path.expression_ = std::string(expression);
    StepLexer lexer(expression);
    if (lexer.atEnd()) lexer.fail("empty path");
    while (!lexer.atEnd()) {
        lexer.expect('/');
        Step step;
        step.name = lexer.name();
        if (!lexer.atEnd() && lexer.peek() == '[') {
            lexer.advance();
            if (!lexer.atEnd() && lexer.peek() == '@') {
                lexer.advance();
                step.predicate = Step::PredicateKind::Attribute;
                step.predicateName = lexer.name();
                lexer.expect('=');
                step.predicateValue = lexer.quoted();
            } else if (!lexer.atEnd() && std::isdigit(static_cast<unsigned char>(lexer.peek()))) {
                std::string digits;
                while (!lexer.atEnd() && std::isdigit(static_cast<unsigned char>(lexer.peek()))) {
                    digits.push_back(lexer.peek());
                    lexer.advance();
                }
                step.predicate = Step::PredicateKind::Position;
                step.position = static_cast<int>(*parseInt(digits));
                if (step.position < 1) lexer.fail("position predicates are 1-based");
            } else {
                step.predicate = Step::PredicateKind::ChildText;
                step.predicateName = lexer.name();
                lexer.expect('=');
                step.predicateValue = lexer.quoted();
            }
            lexer.expect(']');
        }
        path.steps_.push_back(std::move(step));
    }
    return path;
}

namespace {

// Collects, among `candidates`, those matching `step` (handling the 1-based
// position predicate per sibling group).
template <typename NodePtr>
std::vector<NodePtr> filterStep(const std::vector<NodePtr>& candidates, const Step& step) {
    std::vector<NodePtr> out;
    int index = 0;
    for (NodePtr n : candidates) {
        if (n->name() != step.name) continue;
        ++index;
        if (step.matches(*n, index)) out.push_back(n);
    }
    return out;
}

template <typename NodeRef, typename NodePtr>
std::vector<NodePtr> evaluate(const std::vector<Step>& steps, NodeRef& context) {
    if (steps.empty()) return {};
    // First step must match the context node itself.
    std::vector<NodePtr> current;
    if (steps[0].matches(context, 1)) current.push_back(&context);
    for (std::size_t i = 1; i < steps.size() && !current.empty(); ++i) {
        std::vector<NodePtr> next;
        for (NodePtr node : current) {
            std::vector<NodePtr> kids;
            for (const auto& childPtr : node->children()) {
                kids.push_back(childPtr.get());
            }
            auto matched = filterStep(kids, steps[i]);
            next.insert(next.end(), matched.begin(), matched.end());
        }
        current = std::move(next);
    }
    return current;
}

}  // namespace

std::vector<const Node*> Path::select(const Node& context) const {
    return evaluate<const Node, const Node*>(steps_, context);
}

std::vector<Node*> Path::select(Node& context) const {
    return evaluate<Node, Node*>(steps_, context);
}

const Node* Path::first(const Node& context) const {
    const auto nodes = select(context);
    return nodes.empty() ? nullptr : nodes.front();
}

Node* Path::first(Node& context) const {
    const auto nodes = select(context);
    return nodes.empty() ? nullptr : nodes.front();
}

Node* Path::selectOrCreate(Node& context) const {
    if (steps_.empty()) return nullptr;
    if (!steps_[0].matches(context, 1)) {
        throw SpecError("xpath selectOrCreate: context node <" + context.name() +
                        "> does not match first step of " + expression_);
    }
    Node* current = &context;
    for (std::size_t i = 1; i < steps_.size(); ++i) {
        const Step& step = steps_[i];
        Node* next = nullptr;
        int index = 0;
        for (const auto& childPtr : current->children()) {
            if (childPtr->name() != step.name) continue;
            ++index;
            if (step.matches(*childPtr, index)) {
                next = childPtr.get();
                break;
            }
        }
        if (next == nullptr) {
            next = &current->appendChild(step.name);
            switch (step.predicate) {
                case Step::PredicateKind::ChildText:
                    next->appendChild(step.predicateName).setText(step.predicateValue);
                    break;
                case Step::PredicateKind::Attribute:
                    next->setAttribute(step.predicateName, step.predicateValue);
                    break;
                case Step::PredicateKind::Position:
                case Step::PredicateKind::None:
                    break;
            }
        }
        current = next;
    }
    return current;
}

}  // namespace starlink::xml
