// Deterministic pseudo-random number generation.
//
// Everything stochastic in the reproduction (network jitter, protocol stack
// processing-time variation, property-test inputs) draws from this generator
// so that every run of the test suite and the benchmark harnesses is
// reproducible bit-for-bit from a seed.
#pragma once

#include <cstdint>

namespace starlink {

/// SplitMix64 -- tiny, fast, passes BigCrush when used as a stream.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = state_ += 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t range(std::int64_t lo, std::int64_t hi) {
        const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(next() % span);
    }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// Bernoulli draw.
    bool chance(double probability) { return uniform() < probability; }

private:
    std::uint64_t state_;
};

}  // namespace starlink
