#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace starlink {

namespace {

LogLevel levelFromEnv() {
    const char* env = std::getenv("STARLINK_LOG_LEVEL");
    LogLevel level = LogLevel::Warn;
    if (env != nullptr) parseLogLevel(env, level);
    return level;
}

std::atomic<LogLevel>& levelSlot() {
    // First touch applies the STARLINK_LOG_LEVEL override; explicit
    // setLogLevel() calls replace it afterwards.
    static std::atomic<LogLevel> level{levelFromEnv()};
    return level;
}

// THREAD-LOCAL by design: a time source reads a VirtualClock owned by the
// thread's own simulation island. A process-global slot would race (and
// dangle) the moment two shard threads each construct a bridge::Starlink;
// per-thread slots make the install/remove pair naturally shard-confined and
// let every shard stamp its log lines with its OWN virtual time.
thread_local std::function<std::int64_t()> t_timeSource;

const char* levelName(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "debug";
        case LogLevel::Info: return "info";
        case LogLevel::Warn: return "warn";
        case LogLevel::Error: return "error";
        case LogLevel::Off: return "off";
    }
    return "?";
}

}  // namespace

void setLogLevel(LogLevel level) { levelSlot().store(level); }

LogLevel logLevel() { return levelSlot().load(); }

bool parseLogLevel(const std::string& name, LogLevel& out) {
    std::string lower;
    lower.reserve(name.size());
    for (const char c : name) {
        lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
    }
    if (lower == "debug") out = LogLevel::Debug;
    else if (lower == "info") out = LogLevel::Info;
    else if (lower == "warn" || lower == "warning") out = LogLevel::Warn;
    else if (lower == "error") out = LogLevel::Error;
    else if (lower == "off" || lower == "none") out = LogLevel::Off;
    else return false;
    return true;
}

void setLogTimeSource(std::function<std::int64_t()> microsSource) {
    t_timeSource = std::move(microsSource);
}

void logLine(LogLevel level, const std::string& component, const std::string& message) {
    std::string line;
    line.reserve(component.size() + message.size() + 32);
    if (t_timeSource) {
        const std::int64_t us = t_timeSource();
        char stamp[32];
        std::snprintf(stamp, sizeof(stamp), "[+%lld.%06llds] ",
                      static_cast<long long>(us / 1000000),
                      static_cast<long long>(us % 1000000));
        line += stamp;
    }
    line += '[';
    line += levelName(level);
    line += "] ";
    line += component;
    line += ": ";
    line += message;
    line += '\n';
    // One preformatted write: lines from concurrent threads never interleave
    // (fwrite on stderr is atomic per call under POSIX stdio locking).
    std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace starlink
