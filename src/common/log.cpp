#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace starlink {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* levelName(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "debug";
        case LogLevel::Info: return "info";
        case LogLevel::Warn: return "warn";
        case LogLevel::Error: return "error";
        case LogLevel::Off: return "off";
    }
    return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }

LogLevel logLevel() { return g_level.load(); }

void logLine(LogLevel level, const std::string& component, const std::string& message) {
    std::cerr << '[' << levelName(level) << "] " << component << ": " << message << '\n';
}

}  // namespace starlink
