// Error taxonomy for the Starlink framework.
//
// Per the C++ Core Guidelines (E.2, E.14), exceptions are reserved for
// conditions the immediate caller cannot reasonably handle inline:
//  - SpecError:     a model (MDL document, bridge specification, automaton
//                   definition) is malformed. These are programming/deployment
//                   errors discovered while loading or validating models.
//  - ProtocolError: a hand-written legacy protocol stack was asked to encode
//                   an impossible message (e.g. a string longer than its
//                   length field allows).
//  - NetError:      misuse of the simulated network (binding the same
//                   endpoint twice, sending on a closed connection).
//
// Expected runtime events -- above all, failing to parse bytes that arrived
// from the network -- are reported via std::optional / result values, not
// exceptions, because they are part of normal operation.
#pragma once

#include <stdexcept>
#include <string>

namespace starlink {

/// A model/specification is malformed (bad MDL, bad bridge spec, bad XML).
class SpecError : public std::runtime_error {
public:
    explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

/// A legacy protocol stack was driven outside its encodable domain.
class ProtocolError : public std::runtime_error {
public:
    explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// The simulated network was misused (double bind, closed connection, ...).
class NetError : public std::runtime_error {
public:
    explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// A tcp peer vanished mid-session (closed its side, or our send raced its
/// close). Subtyped from NetError so existing handlers keep working while the
/// engine can attribute the session abort to the peer.
class PeerClosedError : public NetError {
public:
    explicit PeerClosedError(const std::string& what) : NetError(what) {}
};

/// A tcp connect was refused and the bounded retry budget is exhausted.
class ConnectRefusedError : public NetError {
public:
    explicit ConnectRefusedError(const std::string& what) : NetError(what) {}
};

}  // namespace starlink
