// Exception hierarchy for the Starlink framework, carrying taxonomy codes.
//
// Per the C++ Core Guidelines (E.2, E.14), exceptions are reserved for
// conditions the immediate caller cannot reasonably handle inline:
//  - SpecError:     a model (MDL document, bridge specification, automaton
//                   definition) is malformed. These are programming/deployment
//                   errors discovered while loading or validating models.
//  - ProtocolError: a hand-written legacy protocol stack was asked to encode
//                   an impossible message (e.g. a string longer than its
//                   length field allows).
//  - NetError:      misuse of the simulated network (binding the same
//                   endpoint twice, sending on a closed connection).
//
// Expected runtime events -- above all, failing to parse bytes that arrived
// from the network -- are reported via std::optional / result values, not
// exceptions, because they are part of normal operation.
//
// Every exception derives from StarlinkError and carries an errc::ErrorCode
// (see core/error/error_code.hpp for the numbered per-layer ranges). The
// legacy single-string constructors remain and default to each class's
// coarse code, so existing throw sites stay valid while hot paths are
// upgraded to precise codes incrementally.
#pragma once

#include <stdexcept>
#include <string>

#include "core/error/error_code.hpp"

namespace starlink {

/// Base of every framework exception: a runtime_error plus a taxonomy code.
class StarlinkError : public std::runtime_error {
public:
    StarlinkError(errc::ErrorCode code, const std::string& what)
        : std::runtime_error(what), code_(code) {}

    errc::ErrorCode code() const noexcept { return code_; }

private:
    errc::ErrorCode code_;
};

/// A model/specification is malformed (bad MDL, bad bridge spec, bad XML).
class SpecError : public StarlinkError {
public:
    explicit SpecError(const std::string& what)
        : StarlinkError(errc::ErrorCode::SpecViolation, what) {}
    SpecError(errc::ErrorCode code, const std::string& what)
        : StarlinkError(code, what) {}
};

/// A legacy protocol stack was driven outside its encodable domain.
class ProtocolError : public StarlinkError {
public:
    explicit ProtocolError(const std::string& what)
        : StarlinkError(errc::ErrorCode::ProtocolEncode, what) {}
    ProtocolError(errc::ErrorCode code, const std::string& what)
        : StarlinkError(code, what) {}
};

/// The simulated network was misused (double bind, closed connection, ...).
class NetError : public StarlinkError {
public:
    explicit NetError(const std::string& what)
        : StarlinkError(errc::ErrorCode::NetMisuse, what) {}
    NetError(errc::ErrorCode code, const std::string& what)
        : StarlinkError(code, what) {}
};

/// A tcp peer vanished mid-session (closed its side, or our send raced its
/// close). Subtyped from NetError so existing handlers keep working while the
/// engine can attribute the session abort to the peer.
class PeerClosedError : public NetError {
public:
    explicit PeerClosedError(const std::string& what)
        : NetError(errc::ErrorCode::NetPeerClosed, what) {}
};

/// A tcp connect was refused and the bounded retry budget is exhausted.
class ConnectRefusedError : public NetError {
public:
    explicit ConnectRefusedError(const std::string& what)
        : NetError(errc::ErrorCode::NetConnectRefused, what) {}
};

/// The taxonomy code of any exception: coded exceptions report their own
/// code, everything else (std::bad_alloc, std::logic_error, raw
/// runtime_errors) is Unclassified -- which the fuzz harness treats as a
/// taxonomy escape when it crosses the engine/CLI boundary.
inline errc::ErrorCode to_error_code(const std::exception& error) {
    if (const auto* coded = dynamic_cast<const StarlinkError*>(&error)) {
        return coded->code();
    }
    return errc::ErrorCode::Unclassified;
}

}  // namespace starlink
