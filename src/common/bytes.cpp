#include "common/bytes.hpp"

#include "common/error.hpp"

namespace starlink {

Bytes toBytes(std::string_view s) {
    return Bytes(s.begin(), s.end());
}

std::string toString(const Bytes& b) {
    return std::string(b.begin(), b.end());
}

std::string toHex(const Bytes& b) {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(b.size() * 2);
    for (std::uint8_t c : b) {
        out.push_back(digits[c >> 4]);
        out.push_back(digits[c & 0x0f]);
    }
    return out;
}

namespace {
int hexValue(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}
}  // namespace

Bytes fromHex(std::string_view hex) {
    if (hex.size() % 2 != 0) {
        throw SpecError("fromHex: odd-length hex string");
    }
    Bytes out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hexValue(hex[i]);
        const int lo = hexValue(hex[i + 1]);
        if (hi < 0 || lo < 0) {
            throw SpecError("fromHex: non-hex character");
        }
        out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
    }
    return out;
}

void appendUint(Bytes& out, std::uint64_t value, int bytes) {
    for (int i = bytes - 1; i >= 0; --i) {
        out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
}

bool readUint(const Bytes& in, std::size_t offset, int bytes, std::uint64_t& value) {
    if (offset + static_cast<std::size_t>(bytes) > in.size()) return false;
    value = 0;
    for (int i = 0; i < bytes; ++i) {
        value = value << 8 | in[offset + static_cast<std::size_t>(i)];
    }
    return true;
}

}  // namespace starlink
