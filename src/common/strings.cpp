#include "common/strings.hpp"

#include <cctype>

namespace starlink {

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string> split(std::string_view s, std::string_view sep) {
    std::vector<std::string> out;
    if (sep.empty()) {
        out.emplace_back(s);
        return out;
    }
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            return out;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + sep.size();
    }
}

std::optional<std::pair<std::string, std::string>> splitFirst(std::string_view s, char sep) {
    const std::size_t pos = s.find(sep);
    if (pos == std::string_view::npos) return std::nullopt;
    return std::make_pair(std::string(s.substr(0, pos)), std::string(s.substr(pos + 1)));
}

std::string trim(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return std::string(s.substr(b, e - b));
}

std::string toLower(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool iequals(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

bool startsWith(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<long long> parseInt(std::string_view s) {
    if (s.empty()) return std::nullopt;
    std::size_t i = 0;
    bool negative = false;
    if (s[0] == '-' || s[0] == '+') {
        negative = s[0] == '-';
        i = 1;
        if (i == s.size()) return std::nullopt;
    }
    long long value = 0;
    for (; i < s.size(); ++i) {
        if (s[i] < '0' || s[i] > '9') return std::nullopt;
        value = value * 10 + (s[i] - '0');
    }
    return negative ? -value : value;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0) out += sep;
        out += pieces[i];
    }
    return out;
}

std::optional<std::string> findHeader(const HeaderList& headers, std::string_view name) {
    for (const auto& [key, value] : headers) {
        if (iequals(key, name)) return value;
    }
    return std::nullopt;
}

}  // namespace starlink
