// Minimal leveled logger.
//
// The framework logs model-loading and automata-engine decisions at Debug so
// that a bridge run can be traced; the default level is Warn so tests and
// benchmarks stay quiet. The STARLINK_LOG_LEVEL environment variable
// (debug|info|warn|error|off) overrides the default at process start, so
// starlinkd and the bench harnesses can be turned verbose without code edits;
// setLogLevel() still wins over the environment once called.
//
// Each line is formatted whole -- "[+<virtual time>] [level] component:
// message" -- and emitted with a single stderr write, so concurrent loggers
// never interleave mid-line. The timestamp is the VIRTUAL clock of the
// simulation when a time source is installed (bridge::Starlink installs its
// network's clock); without one the stamp is omitted.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace starlink {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are discarded. The slot is
/// a single atomic (the STARLINK_LOG_LEVEL env override is applied inside
/// its thread-safe first-touch initialisation), so concurrent engines may
/// query and set it freely.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive); returns
/// false on anything else.
bool parseLogLevel(const std::string& name, LogLevel& out);

/// Installs the CALLING THREAD's virtual-time source, stamped onto every
/// line that thread logs (microseconds since the simulation epoch). Pass
/// nullptr to remove it. The slot is thread-local: each shard thread of the
/// sharded engine stamps its lines with its own island's virtual clock, and
/// two threads' frameworks can never race on (or dangle) each other's clock.
void setLogTimeSource(std::function<std::int64_t()> microsSource);

/// Emits one line to stderr as "[+1.234567s] [level] component: message"
/// (time stamp only while a time source is installed). The line is written
/// with one call, making concurrent logging safe.
void logLine(LogLevel level, const std::string& component, const std::string& message);

/// Stream-style helper: LOG(Debug, "engine") << "state " << id;
class LogStream {
public:
    LogStream(LogLevel level, std::string component)
        : level_(level), component_(std::move(component)) {}
    ~LogStream() {
        if (level_ >= logLevel()) logLine(level_, component_, stream_.str());
    }
    LogStream(const LogStream&) = delete;
    LogStream& operator=(const LogStream&) = delete;

    template <typename T>
    LogStream& operator<<(const T& v) {
        if (level_ >= logLevel()) stream_ << v;
        return *this;
    }

private:
    LogLevel level_;
    std::string component_;
    std::ostringstream stream_;
};

}  // namespace starlink

#define STARLINK_LOG(level, component) ::starlink::LogStream(::starlink::LogLevel::level, component)
