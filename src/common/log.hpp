// Minimal leveled logger.
//
// The framework logs model-loading and automata-engine decisions at Debug so
// that a bridge run can be traced; the default level is Warn so tests and
// benchmarks stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace starlink {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emits one line to stderr as "[level] component: message".
void logLine(LogLevel level, const std::string& component, const std::string& message);

/// Stream-style helper: LOG(Debug, "engine") << "state " << id;
class LogStream {
public:
    LogStream(LogLevel level, std::string component)
        : level_(level), component_(std::move(component)) {}
    ~LogStream() {
        if (level_ >= logLevel()) logLine(level_, component_, stream_.str());
    }
    LogStream(const LogStream&) = delete;
    LogStream& operator=(const LogStream&) = delete;

    template <typename T>
    LogStream& operator<<(const T& v) {
        if (level_ >= logLevel()) stream_ << v;
        return *this;
    }

private:
    LogLevel level_;
    std::string component_;
    std::ostringstream stream_;
};

}  // namespace starlink

#define STARLINK_LOG(level, component) ::starlink::LogStream(::starlink::LogLevel::level, component)
