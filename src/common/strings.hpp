// Small string helpers used across the framework (parsers, codecs, specs).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace starlink {

/// Splits `s` on every occurrence of `sep`; empty pieces are kept, so
/// split("a::b", ':') == {"a", "", "b"}.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on a multi-character separator.
std::vector<std::string> split(std::string_view s, std::string_view sep);

/// Splits at the FIRST occurrence of `sep` only; returns nullopt when `sep`
/// does not occur.
std::optional<std::pair<std::string, std::string>> splitFirst(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string trim(std::string_view s);

/// ASCII lowercase copy.
std::string toLower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/// Strict decimal parse of the whole string; nullopt on any deviation.
std::optional<long long> parseInt(std::string_view s);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// A parsed "Name: value" header list, original casing preserved.
using HeaderList = std::vector<std::pair<std::string, std::string>>;

/// First value whose name matches case-insensitively (RFC 9110: field names
/// are case-insensitive); nullopt when absent. THE header lookup -- every
/// text-protocol stack (HTTP, SSDP) goes through this one helper so case
/// handling cannot drift between codecs.
std::optional<std::string> findHeader(const HeaderList& headers, std::string_view name);

}  // namespace starlink
