// Byte-buffer utilities shared by codecs, the MDL interpreters and the
// simulated network.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace starlink {

/// The universal wire representation: what legacy stacks emit and what the
/// generic MDL parsers consume.
using Bytes = std::vector<std::uint8_t>;

/// Builds a byte buffer from a string (no terminator).
Bytes toBytes(std::string_view s);

/// Interprets a byte buffer as text (bytes are copied verbatim).
std::string toString(const Bytes& b);

/// Renders a buffer as lowercase hex, two chars per byte ("dead beef" style,
/// no separators). Used by diagnostics and tests.
std::string toHex(const Bytes& b);

/// Parses a hex string produced by toHex(); throws SpecError on odd length or
/// non-hex characters.
Bytes fromHex(std::string_view hex);

/// Appends a big-endian unsigned integer occupying `bytes` bytes.
void appendUint(Bytes& out, std::uint64_t value, int bytes);

/// Reads a big-endian unsigned integer of `bytes` bytes at `offset`.
/// Returns false if the buffer is too short.
bool readUint(const Bytes& in, std::size_t offset, int bytes, std::uint64_t& value);

}  // namespace starlink
