// Legacy HTTP applications: a tiny device-description server and a one-shot
// GET client, over the simulated TCP transport.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "protocols/http/http_codec.hpp"

namespace starlink::http {

/// Serves registered resources; everything else is 404.
class Server {
public:
    struct Config {
        std::string host = "10.0.0.3";
        std::uint16_t port = 8080;
        net::Duration responseDelayBase = net::ms(40);
        net::Duration responseDelayJitter = net::ms(15);
        std::uint64_t seed = 17;
    };

    Server(net::Network& network, Config config);

    void addResource(const std::string& path, std::string body,
                     std::string contentType = "text/xml");

    std::size_t requestsServed() const { return served_; }
    const Config& config() const { return config_; }

private:
    void onRequest(const std::shared_ptr<net::TcpConnection>& connection, const Bytes& data);

    net::Network& network_;
    Config config_;
    Rng rng_;
    std::unique_ptr<net::TcpListener> listener_;
    std::vector<std::shared_ptr<net::TcpConnection>> connections_;
    std::map<std::string, std::pair<std::string, std::string>> resources_;  // path -> (body, type)
    std::size_t served_ = 0;
};

/// One GET per call; the connection is closed after the response.
class Client {
public:
    using Callback = std::function<void(std::optional<Response>)>;

    Client(net::Network& network, std::string host) : network_(network), host_(std::move(host)) {}

    /// Fetches http://host:port/path; the callback receives nullopt on
    /// connection refusal or a malformed response.
    void get(const std::string& host, std::uint16_t port, const std::string& path,
             Callback callback);

private:
    net::Network& network_;
    std::string host_;
};

}  // namespace starlink::http
