#include "protocols/http/http_agents.hpp"

#include "common/log.hpp"

namespace starlink::http {

// ---------------------------------------------------------------------------
// Server

Server::Server(net::Network& network, Config config)
    : network_(network), config_(std::move(config)), rng_(config_.seed) {
    listener_ = network_.listenTcp(config_.host, config_.port);
    listener_->onAccept([this](std::shared_ptr<net::TcpConnection> connection) {
        connections_.push_back(connection);
        auto weak = std::weak_ptr<net::TcpConnection>(connection);
        connection->onData([this, weak](const Bytes& data) {
            if (auto conn = weak.lock()) onRequest(conn, data);
        });
        connection->onClose([this, weak] {
            const auto conn = weak.lock();
            std::erase_if(connections_,
                          [&conn](const auto& held) { return held == conn; });
        });
    });
}

void Server::addResource(const std::string& path, std::string body, std::string contentType) {
    resources_[path] = {std::move(body), std::move(contentType)};
}

void Server::onRequest(const std::shared_ptr<net::TcpConnection>& connection, const Bytes& data) {
    const auto request = decodeRequest(data);
    Response response;
    if (!request || request->method != "GET") {
        response.status = 400;
        response.reason = "Bad Request";
    } else if (const auto it = resources_.find(request->path); it != resources_.end()) {
        response.body = it->second.first;
        response.headers.emplace_back("Content-Type", it->second.second);
    } else {
        response.status = 404;
        response.reason = "Not Found";
    }
    response.headers.emplace_back("Server", "Starlink-Sim/1.0");

    const auto jitterUs = config_.responseDelayJitter.count();
    const net::Duration delay =
        config_.responseDelayBase + (jitterUs > 0 ? net::us(rng_.range(0, jitterUs)) : net::us(0));
    const Bytes encoded = encode(response);
    network_.scheduler().schedule(delay, [this, connection, encoded] {
        if (!connection->isOpen()) return;
        connection->send(encoded);
        ++served_;
    });
}

// ---------------------------------------------------------------------------
// Client

void Client::get(const std::string& host, std::uint16_t port, const std::string& path,
                 Callback callback) {
    network_.connectTcp(host_, net::Address{host, port},
                        [path, callback = std::move(callback)](
                            std::shared_ptr<net::TcpConnection> connection) {
        if (!connection) {
            callback(std::nullopt);
            return;
        }
        Request request;
        request.path = path;
        request.headers.emplace_back("Host", connection->remoteAddress().toString());
        connection->onData([connection, callback](const Bytes& data) {
            callback(decodeResponse(data));
            connection->close();
        });
        connection->send(encode(request));
    });
}

}  // namespace starlink::http
