#include "protocols/http/http_codec.hpp"

#include "common/strings.hpp"

namespace starlink::http {

namespace {

constexpr const char* kCrlf = "\r\n";

void appendHeaders(std::string& out,
                   const std::vector<std::pair<std::string, std::string>>& headers,
                   const std::string& body) {
    bool hasContentLength = false;
    for (const auto& [key, value] : headers) {
        if (iequals(key, "Content-Length")) {
            hasContentLength = true;
            out += key + ": " + std::to_string(body.size()) + kCrlf;
        } else {
            out += key + ": " + value + kCrlf;
        }
    }
    if (!hasContentLength && !body.empty()) {
        out += "Content-Length: " + std::to_string(body.size()) + kCrlf;
    }
    out += kCrlf;
    out += body;
}

struct Parsed {
    std::string startLine;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
};

std::optional<Parsed> parseMessage(const Bytes& data) {
    const std::string text = toString(data);
    const std::size_t headerEnd = text.find("\r\n\r\n");
    if (headerEnd == std::string::npos) return std::nullopt;
    Parsed out;
    const std::vector<std::string> lines = split(text.substr(0, headerEnd), std::string_view(kCrlf));
    if (lines.empty()) return std::nullopt;
    out.startLine = lines[0];
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const auto halves = splitFirst(lines[i], ':');
        if (!halves) return std::nullopt;
        out.headers.emplace_back(trim(halves->first), trim(halves->second));
    }
    out.body = text.substr(headerEnd + 4);
    // Honour Content-Length when present (trailing bytes are rejected).
    if (const auto lengthText = findHeader(out.headers, "Content-Length")) {
        const auto length = parseInt(*lengthText);
        if (!length || *length < 0 || out.body.size() != static_cast<std::size_t>(*length)) {
            return std::nullopt;
        }
    }
    return out;
}

}  // namespace

std::optional<std::string> Request::header(const std::string& name) const {
    return findHeader(headers, name);
}

std::optional<std::string> Response::header(const std::string& name) const {
    return findHeader(headers, name);
}

Bytes encode(const Request& message) {
    std::string out = message.method + " " + message.path + " HTTP/1.1";
    out += kCrlf;
    appendHeaders(out, message.headers, message.body);
    return toBytes(out);
}

Bytes encode(const Response& message) {
    std::string out = "HTTP/1.1 " + std::to_string(message.status) + " " + message.reason;
    out += kCrlf;
    appendHeaders(out, message.headers, message.body);
    return toBytes(out);
}

std::optional<Request> decodeRequest(const Bytes& data) {
    const auto parsed = parseMessage(data);
    if (!parsed) return std::nullopt;
    const std::vector<std::string> pieces = split(parsed->startLine, ' ');
    if (pieces.size() != 3 || !startsWith(pieces[2], "HTTP/")) return std::nullopt;
    Request out;
    out.method = pieces[0];
    out.path = pieces[1];
    out.headers = parsed->headers;
    out.body = parsed->body;
    return out;
}

std::optional<Response> decodeResponse(const Bytes& data) {
    const auto parsed = parseMessage(data);
    if (!parsed) return std::nullopt;
    const std::vector<std::string> pieces = split(parsed->startLine, ' ');
    if (pieces.size() < 2 || !startsWith(pieces[0], "HTTP/")) return std::nullopt;
    const auto status = parseInt(pieces[1]);
    if (!status) return std::nullopt;
    Response out;
    out.status = static_cast<int>(*status);
    out.reason = pieces.size() >= 3 ? pieces[2] : "";
    for (std::size_t i = 3; i < pieces.size(); ++i) out.reason += " " + pieces[i];
    out.headers = parsed->headers;
    out.body = parsed->body;
    return out;
}

}  // namespace starlink::http
