// Minimal HTTP/1.1 codec (UPnP discovery step 2: fetching the device
// description).
//
// LEGACY stack, hand-written. Supports exactly what discovery needs: GET
// requests and 200/404 responses with a Content-Length-delimited body, one
// exchange per connection.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/strings.hpp"

namespace starlink::http {

struct Request {
    std::string method = "GET";
    std::string path = "/";
    /// Ordered header list (duplicates allowed, as on the wire). Lookups go
    /// through the shared case-insensitive findHeader in common/strings.
    HeaderList headers;
    std::string body;

    std::optional<std::string> header(const std::string& name) const;
};

struct Response {
    int status = 200;
    std::string reason = "OK";
    HeaderList headers;
    std::string body;

    std::optional<std::string> header(const std::string& name) const;
};

Bytes encode(const Request& message);
Bytes encode(const Response& message);

std::optional<Request> decodeRequest(const Bytes& data);
std::optional<Response> decodeResponse(const Bytes& data);

}  // namespace starlink::http
