#include "protocols/ldap/ldap_codec.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace starlink::ldap {

namespace {

void appendLengthPrefixed(Bytes& out, const std::string& text) {
    if (text.size() > 0xffff) throw ProtocolError("ldap: string exceeds 16-bit length");
    appendUint(out, text.size(), 2);
    out.insert(out.end(), text.begin(), text.end());
}

struct Reader {
    const Bytes& data;
    std::size_t pos = 0;

    bool readUint(int bytes, std::uint64_t& value) {
        if (!starlink::readUint(data, pos, bytes, value)) return false;
        pos += static_cast<std::size_t>(bytes);
        return true;
    }
    bool readString(std::string& out) {
        std::uint64_t length = 0;
        if (!readUint(2, length)) return false;
        if (pos + length > data.size()) return false;
        out.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                   data.begin() + static_cast<std::ptrdiff_t>(pos + length));
        pos += length;
        return true;
    }
};

std::optional<std::pair<std::uint8_t, std::uint16_t>> decodeHeader(Reader& reader) {
    std::uint64_t version = 0;
    std::uint64_t msgType = 0;
    std::uint64_t messageId = 0;
    if (!reader.readUint(1, version) || version != kVersion) return std::nullopt;
    if (!reader.readUint(1, msgType) || !reader.readUint(2, messageId)) return std::nullopt;
    return std::make_pair(static_cast<std::uint8_t>(msgType),
                          static_cast<std::uint16_t>(messageId));
}

}  // namespace

Bytes encode(const SearchRequest& message) {
    Bytes out;
    out.push_back(kVersion);
    out.push_back(kMsgSearchRequest);
    appendUint(out, message.messageId, 2);
    appendLengthPrefixed(out, message.baseDn);
    appendLengthPrefixed(out, message.serviceClass);
    appendLengthPrefixed(out, message.filter);
    return out;
}

Bytes encode(const SearchResult& message) {
    Bytes out;
    out.push_back(kVersion);
    out.push_back(kMsgSearchResult);
    appendUint(out, message.messageId, 2);
    out.push_back(message.resultCode);
    appendLengthPrefixed(out, message.dn);
    appendLengthPrefixed(out, message.url);
    return out;
}

std::optional<SearchRequest> decodeRequest(const Bytes& data) {
    Reader reader{data};
    const auto header = decodeHeader(reader);
    if (!header || header->first != kMsgSearchRequest) return std::nullopt;
    SearchRequest out;
    out.messageId = header->second;
    if (!reader.readString(out.baseDn) || !reader.readString(out.serviceClass) ||
        !reader.readString(out.filter)) {
        return std::nullopt;
    }
    if (reader.pos != data.size()) return std::nullopt;
    return out;
}

std::optional<SearchResult> decodeResult(const Bytes& data) {
    Reader reader{data};
    const auto header = decodeHeader(reader);
    if (!header || header->first != kMsgSearchResult) return std::nullopt;
    SearchResult out;
    out.messageId = header->second;
    std::uint64_t resultCode = 0;
    if (!reader.readUint(1, resultCode)) return std::nullopt;
    out.resultCode = static_cast<std::uint8_t>(resultCode);
    if (!reader.readString(out.dn) || !reader.readString(out.url)) return std::nullopt;
    if (reader.pos != data.size()) return std::nullopt;
    return out;
}

bool filterMatches(const std::string& filter,
                   const std::map<std::string, std::string>& attributes) {
    const std::string text = trim(filter);
    if (text.empty()) return true;
    if (text.size() < 2 || text.front() != '(' || text.back() != ')') return false;
    const auto halves = splitFirst(text.substr(1, text.size() - 2), '=');
    if (!halves) return false;
    const auto it = attributes.find(trim(halves->first));
    return it != attributes.end() && it->second == trim(halves->second);
}

}  // namespace starlink::ldap
