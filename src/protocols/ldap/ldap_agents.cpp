#include "protocols/ldap/ldap_agents.hpp"

namespace starlink::ldap {

DirectoryServer::DirectoryServer(net::Network& network, Config config)
    : network_(network), config_(std::move(config)), rng_(config_.seed) {
    listener_ = network_.listenTcp(config_.host, config_.port);
    listener_->onAccept([this](std::shared_ptr<net::TcpConnection> connection) {
        connections_.push_back(connection);
        auto weak = std::weak_ptr<net::TcpConnection>(connection);
        connection->onData([this, weak](const Bytes& data) {
            if (auto conn = weak.lock()) onRequest(conn, data);
        });
        connection->onClose([this, weak] {
            const auto conn = weak.lock();
            std::erase_if(connections_, [&conn](const auto& held) { return held == conn; });
        });
    });
}

void DirectoryServer::onRequest(const std::shared_ptr<net::TcpConnection>& connection,
                                const Bytes& data) {
    const auto request = decodeRequest(data);
    if (!request) return;

    SearchResult result;
    result.messageId = request->messageId;
    result.resultCode = 32;  // noSuchObject until a match is found
    for (const Entry& entry : entries_) {
        if (!request->serviceClass.empty() && entry.serviceClass != request->serviceClass) {
            continue;
        }
        if (!filterMatches(request->filter, entry.attributes)) continue;
        result.resultCode = 0;
        result.dn = entry.dn;
        result.url = entry.url;
        break;
    }

    const auto jitterUs = config_.responseDelayJitter.count();
    const net::Duration delay =
        config_.responseDelayBase + (jitterUs > 0 ? net::us(rng_.range(0, jitterUs)) : net::us(0));
    const Bytes encoded = encode(result);
    network_.scheduler().schedule(delay, [this, connection, encoded] {
        if (!connection->isOpen()) return;
        connection->send(encoded);
        ++served_;
    });
}

void DirectoryClient::search(const std::string& directoryHost, std::uint16_t directoryPort,
                             const std::string& serviceClass, const std::string& filter,
                             Callback callback) {
    SearchRequest request;
    request.messageId = nextId_++;
    request.serviceClass = serviceClass;
    request.filter = filter;
    const net::TimePoint start = network_.now();
    network_.connectTcp(
        host_, net::Address{directoryHost, directoryPort},
        [this, request, start, callback = std::move(callback)](
            std::shared_ptr<net::TcpConnection> connection) {
            if (!connection) {
                Result result;
                result.elapsed =
                    std::chrono::duration_cast<net::Duration>(network_.now() - start);
                callback(result);
                return;
            }
            connection->onData([this, request, start, callback,
                                connection](const Bytes& data) {
                Result result;
                const auto decoded = decodeResult(data);
                if (decoded && decoded->messageId == request.messageId &&
                    decoded->resultCode == 0) {
                    result.success = true;
                    result.url = decoded->url;
                }
                result.elapsed =
                    std::chrono::duration_cast<net::Duration>(network_.now() - start);
                connection->close();
                callback(result);
            });
            connection->send(encode(request));
        });
}

}  // namespace starlink::ldap
