// Legacy LDAP-style directory applications: a directory server holding
// service entries with attributes, and a one-shot search client. Both speak
// the simplified framing of ldap_codec.hpp over simulated TCP.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "protocols/ldap/ldap_codec.hpp"

namespace starlink::ldap {

/// One directory entry: a registered service with attributes.
struct Entry {
    std::string dn;            // "cn=printer1,dc=services,dc=local"
    std::string serviceClass;  // "service:printer"
    std::string url;
    std::map<std::string, std::string> attributes;
};

/// Serves search requests over TCP; first entry matching class + filter
/// wins (the codec's single-URL result mirrors the SLP subset).
class DirectoryServer {
public:
    struct Config {
        std::string host = "10.0.0.3";
        std::uint16_t port = kPort;
        net::Duration responseDelayBase = net::ms(70);
        net::Duration responseDelayJitter = net::ms(20);
        std::uint64_t seed = 29;
    };

    DirectoryServer(net::Network& network, Config config);

    void addEntry(Entry entry) { entries_.push_back(std::move(entry)); }

    std::size_t searchesServed() const { return served_; }
    const Config& config() const { return config_; }

private:
    void onRequest(const std::shared_ptr<net::TcpConnection>& connection, const Bytes& data);

    net::Network& network_;
    Config config_;
    Rng rng_;
    std::unique_ptr<net::TcpListener> listener_;
    std::vector<std::shared_ptr<net::TcpConnection>> connections_;
    std::vector<Entry> entries_;
    std::size_t served_ = 0;
};

/// Issues one search per call against a directory (or a bridge posing as
/// one).
class DirectoryClient {
public:
    struct Result {
        bool success = false;
        std::string url;
        net::Duration elapsed = net::ms(0);
    };
    using Callback = std::function<void(const Result&)>;

    DirectoryClient(net::Network& network, std::string host)
        : network_(network), host_(std::move(host)) {}

    void search(const std::string& directoryHost, std::uint16_t directoryPort,
                const std::string& serviceClass, const std::string& filter, Callback callback);

private:
    net::Network& network_;
    std::string host_;
    std::uint16_t nextId_ = 0x6000;
};

}  // namespace starlink::ldap
