// LDAP-style directory lookup codec.
//
// The paper singles out SLP <-> LDAP as the pair where intermediary-subset
// approaches lose expressiveness: "interoperability between two protocols
// such as SLP and LDAP that both support attribute-based requests is
// restricted" (section III-A). This LEGACY stack exists to reproduce that
// argument: its search requests carry an attribute FILTER alongside the
// service class, and the Starlink bridge translates BOTH -- no greatest-
// common-divisor loss.
//
// The wire format is a simplified binary framing, not ASN.1/BER (DESIGN.md
// substitution rule): Version 8 (=3) | MsgType 8 (1=SearchRequest,
// 2=SearchResult) | MessageID 16 | length-prefixed strings.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace starlink::ldap {

inline constexpr std::uint8_t kVersion = 3;
inline constexpr std::uint8_t kMsgSearchRequest = 1;
inline constexpr std::uint8_t kMsgSearchResult = 2;
inline constexpr std::uint16_t kPort = 389;

struct SearchRequest {
    std::uint16_t messageId = 0;
    std::string baseDn = "dc=services,dc=local";
    std::string serviceClass;  // e.g. "service:printer"
    std::string filter;        // attribute expression, e.g. "(color=true)"
};

struct SearchResult {
    std::uint16_t messageId = 0;
    std::uint8_t resultCode = 0;  // 0 = success, 32 = noSuchObject
    std::string dn;
    std::string url;
};

Bytes encode(const SearchRequest& message);
Bytes encode(const SearchResult& message);

std::optional<SearchRequest> decodeRequest(const Bytes& data);
std::optional<SearchResult> decodeResult(const Bytes& data);

/// Evaluates a single-term filter "(key=value)" against an attribute set.
/// An empty filter matches everything; a malformed filter matches nothing.
bool filterMatches(const std::string& filter,
                   const std::map<std::string, std::string>& attributes);

}  // namespace starlink::ldap
