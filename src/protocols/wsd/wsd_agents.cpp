#include "protocols/wsd/wsd_agents.hpp"

#include "common/log.hpp"

namespace starlink::wsd {

// ---------------------------------------------------------------------------
// Target

Target::Target(net::Network& network, Config config)
    : network_(network), config_(std::move(config)), rng_(config_.seed) {
    socket_ = network_.openUdp(config_.host, kPort);
    socket_->joinGroup(net::Address{kGroup, kPort});
    socket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onDatagram(payload, from);
    });
}

void Target::onDatagram(const Bytes& payload, const net::Address& from) {
    const auto probe = decodeProbe(payload);
    if (!probe) return;
    if (!probe->types.empty() && probe->types != config_.types) return;

    ProbeMatch match;
    match.messageId = "uuid:target-" + config_.host + "-" + std::to_string(nextId_++);
    match.relatesTo = probe->messageId;
    match.types = config_.types;
    match.xaddrs = config_.xaddrs;

    const auto jitterUs = config_.responseDelayJitter.count();
    const net::Duration delay =
        config_.responseDelayBase + (jitterUs > 0 ? net::us(rng_.range(0, jitterUs)) : net::us(0));
    const Bytes encoded = encode(match);
    network_.scheduler().schedule(delay, [this, encoded, from] {
        socket_->sendTo(from, encoded);
        ++answered_;
    });
}

// ---------------------------------------------------------------------------
// Client

Client::Client(net::Network& network, Config config)
    : network_(network), config_(std::move(config)) {
    socket_ = network_.openUdp(config_.host);
    socket_->onDatagram([this](const Bytes& payload, const net::Address& from) {
        onDatagram(payload, from);
    });
}

void Client::probe(const std::string& types, Callback callback) {
    if (pendingId_) {
        STARLINK_LOG(Warn, "wsd-client") << "probe already in flight; ignoring";
        return;
    }
    Probe probe;
    probe.messageId = "uuid:client-" + std::to_string(nextId_++);
    probe.types = types;
    pendingId_ = probe.messageId;
    callback_ = std::move(callback);
    sentAt_ = network_.now();
    socket_->sendTo(net::Address{kGroup, kPort}, encode(probe));

    timeoutEvent_ = network_.scheduler().schedule(config_.timeout, [this] {
        timeoutEvent_.reset();
        Result result;
        result.elapsed = std::chrono::duration_cast<net::Duration>(network_.now() - sentAt_);
        finish(std::move(result));
    });
}

void Client::onDatagram(const Bytes& payload, const net::Address&) {
    if (!pendingId_) return;
    const auto match = decodeProbeMatch(payload);
    if (!match || match->relatesTo != *pendingId_) return;
    Result result;
    result.xaddrs.push_back(match->xaddrs);
    result.elapsed = std::chrono::duration_cast<net::Duration>(network_.now() - sentAt_);
    if (timeoutEvent_) {
        network_.scheduler().cancel(*timeoutEvent_);
        timeoutEvent_.reset();
    }
    finish(std::move(result));
}

void Client::finish(Result result) {
    pendingId_.reset();
    Callback callback = std::move(callback_);
    callback_ = nullptr;
    if (callback) callback(result);
}

}  // namespace starlink::wsd
