// WS-Discovery codec (simplified SOAP-over-UDP).
//
// LEGACY stack exercising the XML protocol family: Probe / ProbeMatches
// envelopes on the WS-Discovery multicast group (239.255.255.250:3702).
// The envelope structure follows the WS-Discovery 1.0 shape without
// namespaces or signature blocks (DESIGN.md substitution rule):
//
//   <Envelope>
//     <Header>
//       <Action>http://schemas.xmlsoap.org/ws/2005/04/discovery/Probe</Action>
//       <MessageID>uuid:...</MessageID>
//       <RelatesTo>uuid:...</RelatesTo>            (matches only)
//     </Header>
//     <Body>
//       <Probe><Types>printer</Types></Probe>       (probe)
//       <ProbeMatches><ProbeMatch>
//         <Types>printer</Types><XAddrs>http://...</XAddrs>
//       </ProbeMatch></ProbeMatches>                (match)
//     </Body>
//   </Envelope>
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace starlink::wsd {

inline constexpr const char* kGroup = "239.255.255.250";
inline constexpr std::uint16_t kPort = 3702;

inline constexpr const char* kActionProbe =
    "http://schemas.xmlsoap.org/ws/2005/04/discovery/Probe";
inline constexpr const char* kActionProbeMatches =
    "http://schemas.xmlsoap.org/ws/2005/04/discovery/ProbeMatches";

struct Probe {
    std::string messageId;  // "uuid:..."
    std::string types;      // e.g. "printer"
};

struct ProbeMatch {
    std::string messageId;
    std::string relatesTo;  // the probe's MessageID
    std::string types;
    std::string xaddrs;     // the service's transport address (URL)
};

Bytes encode(const Probe& message);
Bytes encode(const ProbeMatch& message);

std::optional<Probe> decodeProbe(const Bytes& data);
std::optional<ProbeMatch> decodeProbeMatch(const Bytes& data);

}  // namespace starlink::wsd
