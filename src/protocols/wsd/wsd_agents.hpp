// Legacy WS-Discovery applications: a discoverable Target service and a
// probing Client.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "protocols/wsd/wsd_codec.hpp"

namespace starlink::wsd {

/// Answers Probes whose Types match the advertised service.
class Target {
public:
    struct Config {
        std::string host = "10.0.0.3";
        std::string types = "printer";
        std::string xaddrs = "http://10.0.0.3:5357/printer";
        net::Duration responseDelayBase = net::ms(200);
        net::Duration responseDelayJitter = net::ms(30);
        std::uint64_t seed = 37;
    };

    Target(net::Network& network, Config config);

    std::size_t probesAnswered() const { return answered_; }
    const Config& config() const { return config_; }

private:
    void onDatagram(const Bytes& payload, const net::Address& from);

    net::Network& network_;
    Config config_;
    Rng rng_;
    std::unique_ptr<net::UdpSocket> socket_;
    std::size_t answered_ = 0;
    std::uint32_t nextId_ = 1;
};

/// Multicasts one Probe and reports the first match (or timeout).
class Client {
public:
    struct Config {
        std::string host = "10.0.0.1";
        net::Duration timeout = net::ms(5000);
    };

    struct Result {
        std::vector<std::string> xaddrs;  // empty == timed out
        net::Duration elapsed = net::ms(0);
    };
    using Callback = std::function<void(const Result&)>;

    Client(net::Network& network, Config config);

    void probe(const std::string& types, Callback callback);

private:
    void onDatagram(const Bytes& payload, const net::Address& from);
    void finish(Result result);

    net::Network& network_;
    Config config_;
    std::unique_ptr<net::UdpSocket> socket_;
    std::optional<std::string> pendingId_;
    net::TimePoint sentAt_{};
    std::optional<net::EventId> timeoutEvent_;
    Callback callback_;
    std::uint32_t nextId_ = 100;
};

}  // namespace starlink::wsd
