#include "protocols/wsd/wsd_codec.hpp"

#include "common/strings.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace starlink::wsd {

namespace {

std::unique_ptr<xml::Node> parseEnvelope(const Bytes& data, const char* action) {
    std::unique_ptr<xml::Node> root;
    try {
        root = xml::parse(toString(data));
    } catch (...) {
        return nullptr;
    }
    if (root->name() != "Envelope") return nullptr;
    const xml::Node* header = root->child("Header");
    if (header == nullptr) return nullptr;
    const auto actionText = header->childText("Action");
    if (!actionText || trim(*actionText) != action) return nullptr;
    return root;
}

std::string textAt(const xml::Node& root, std::initializer_list<const char*> path) {
    const xml::Node* current = &root;
    for (const char* step : path) {
        current = current->child(step);
        if (current == nullptr) return "";
    }
    return trim(current->text());
}

}  // namespace

Bytes encode(const Probe& message) {
    xml::Node root("Envelope");
    xml::Node& header = root.appendChild("Header");
    header.appendChild("Action").setText(kActionProbe);
    header.appendChild("MessageID").setText(message.messageId);
    root.appendChild("Body").appendChild("Probe").appendChild("Types").setText(message.types);
    return toBytes(xml::write(root));
}

Bytes encode(const ProbeMatch& message) {
    xml::Node root("Envelope");
    xml::Node& header = root.appendChild("Header");
    header.appendChild("Action").setText(kActionProbeMatches);
    header.appendChild("MessageID").setText(message.messageId);
    header.appendChild("RelatesTo").setText(message.relatesTo);
    xml::Node& match =
        root.appendChild("Body").appendChild("ProbeMatches").appendChild("ProbeMatch");
    match.appendChild("Types").setText(message.types);
    match.appendChild("XAddrs").setText(message.xaddrs);
    return toBytes(xml::write(root));
}

std::optional<Probe> decodeProbe(const Bytes& data) {
    const auto root = parseEnvelope(data, kActionProbe);
    if (!root) return std::nullopt;
    Probe out;
    out.messageId = textAt(*root, {"Header", "MessageID"});
    out.types = textAt(*root, {"Body", "Probe", "Types"});
    if (out.types.empty()) return std::nullopt;
    return out;
}

std::optional<ProbeMatch> decodeProbeMatch(const Bytes& data) {
    const auto root = parseEnvelope(data, kActionProbeMatches);
    if (!root) return std::nullopt;
    ProbeMatch out;
    out.messageId = textAt(*root, {"Header", "MessageID"});
    out.relatesTo = textAt(*root, {"Header", "RelatesTo"});
    out.types = textAt(*root, {"Body", "ProbeMatches", "ProbeMatch", "Types"});
    out.xaddrs = textAt(*root, {"Body", "ProbeMatches", "ProbeMatch", "XAddrs"});
    if (out.xaddrs.empty()) return std::nullopt;
    return out;
}

}  // namespace starlink::wsd
